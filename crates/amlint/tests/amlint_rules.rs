//! Fixture suite for the amlint rules: one known-bad snippet per rule
//! (R1–R5) asserting the exact rule ID and line that fires, plus a
//! suppressed variant per rule asserting silence.
//!
//! These fixtures double as the rule catalog's executable examples —
//! if a rule's trigger conditions change, this file is where the
//! contract breaks first.

use amlint::lint_source;

/// The one (rule, line) pair of live findings in a snippet.
fn sole_finding(rel: &str, src: &str) -> (String, u32) {
    let diags = lint_source(rel, src);
    let live: Vec<_> = diags.iter().filter(|d| !d.suppressed).collect();
    assert_eq!(
        live.len(),
        1,
        "expected exactly one live finding in {rel}, got {live:#?}"
    );
    (live[0].rule.to_string(), live[0].line)
}

/// Assert a snippet produces zero live findings (suppressed ones may
/// remain, and are returned for inspection).
fn assert_silent(rel: &str, src: &str) -> usize {
    let diags = lint_source(rel, src);
    let live: Vec<_> = diags.iter().filter(|d| !d.suppressed).collect();
    assert!(live.is_empty(), "expected silence in {rel}, got {live:#?}");
    diags.iter().filter(|d| d.suppressed).count()
}

// ---------------------------------------------------------------- R1

#[test]
fn r1_unwrap_in_hot_path_fires_with_line() {
    let src = "\
fn scale(xs: &[f64]) -> f64 {
    let first = xs.first().unwrap();
    *first
}
";
    let (rule, line) = sole_finding("crates/ml/src/scaler.rs", src);
    assert_eq!(rule, "R1");
    assert_eq!(line, 2);
}

#[test]
fn r1_suppressed_unwrap_is_silent() {
    let src = "\
fn scale(xs: &[f64]) -> f64 {
    // amlint: allow(R1) -- caller guarantees non-empty, measured hot loop
    let first = xs.first().unwrap();
    *first
}
";
    assert_eq!(assert_silent("crates/ml/src/scaler.rs", src), 1);
}

#[test]
fn r1_is_scoped_to_hot_path_modules() {
    let src = "fn f(xs: &[f64]) -> f64 { *xs.first().unwrap() }";
    // Same code outside the hot path: not R1's business.
    assert_silent("crates/sim/src/engine.rs", src);
    assert_silent("crates/cli/src/commands.rs", src);
}

// ---------------------------------------------------------------- R2

#[test]
fn r2_plain_subtraction_on_tstamp_fires_with_line() {
    let src = "\
fn hop_latency(ingress_tstamp: u32, egress_tstamp: u32) -> u32 {
    egress_tstamp - ingress_tstamp
}
";
    let diags = lint_source("crates/int/src/metadata.rs", src);
    let live: Vec<_> = diags.iter().filter(|d| !d.suppressed).collect();
    // Both operands are timestamps; both sides report, same line.
    assert!(!live.is_empty());
    assert!(
        live.iter().all(|d| d.rule == "R2" && d.line == 2),
        "{live:#?}"
    );
}

#[test]
fn r2_saturating_sub_on_tstamp_fires() {
    let src = "\
fn gap(egress_tstamp: u32, prev_tstamp: u32) -> u32 {
    egress_tstamp.saturating_sub(prev_tstamp)
}
";
    let (rule, line) = sole_finding("crates/int/src/report.rs", src);
    assert_eq!(rule, "R2");
    assert_eq!(line, 2);
}

#[test]
fn r2_wrapping_sub_is_the_sanctioned_form() {
    let src = "\
fn hop_latency(ingress_tstamp: u32, egress_tstamp: u32) -> u32 {
    egress_tstamp.wrapping_sub(ingress_tstamp)
}
";
    assert_silent("crates/int/src/metadata.rs", src);
}

#[test]
fn r2_suppression_silences() {
    let src = "\
fn widened(egress_tstamp: u64) -> u64 {
    egress_tstamp - 1 // amlint: allow(R2) -- already widened to u64 collector clock
}
";
    assert_eq!(assert_silent("crates/int/src/report.rs", src), 1);
}

// ---------------------------------------------------------------- R3

#[test]
fn r3_float_equality_fires_with_line() {
    let src = "\
fn is_idle(rate: f64) -> bool {
    rate == 0.0
}
";
    let (rule, line) = sole_finding("crates/features/src/stats.rs", src);
    assert_eq!(rule, "R3");
    assert_eq!(line, 2);
}

#[test]
fn r3_suppressed_equality_is_silent() {
    let src = "\
fn is_sentinel(rate: f64) -> bool {
    // amlint: allow(R3) -- sentinel is assigned, never computed
    rate == -1.0
}
";
    assert_eq!(assert_silent("crates/features/src/stats.rs", src), 1);
}

// ---------------------------------------------------------------- R4

#[test]
fn r4_send_under_live_guard_fires_with_line() {
    let src = "\
fn forward(&self) {
    let guard = self.cursor.lock();
    self.tx.send(*guard);
}
";
    let (rule, line) = sole_finding("crates/core/src/runtime.rs", src);
    assert_eq!(rule, "R4");
    assert_eq!(line, 3);
}

#[test]
fn r4_dropping_the_guard_first_is_silent() {
    let src = "\
fn forward(&self) {
    let guard = self.cursor.lock();
    let v = *guard;
    drop(guard);
    self.tx.send(v);
}
";
    assert_silent("crates/core/src/runtime.rs", src);
}

#[test]
fn r4_suppression_silences() {
    let src = "\
fn forward(&self) {
    let guard = self.cursor.lock();
    self.tx.send(*guard); // amlint: allow(R4) -- unbounded channel, send never blocks
}
";
    assert_eq!(assert_silent("crates/core/src/runtime.rs", src), 1);
}

// ---------------------------------------------------------------- R5

#[test]
fn r5_unsafe_outside_shims_fires_with_line() {
    let src = "\
fn fast(xs: &[f64]) -> f64 {
    unsafe { *xs.get_unchecked(0) }
}
";
    let (rule, line) = sole_finding("crates/net/src/packet.rs", src);
    assert_eq!(rule, "R5");
    assert_eq!(line, 2);
}

#[test]
fn r5_shim_unsafe_needs_safety_comment() {
    let bare = "\
fn grow(ptr: *mut u8) {
    unsafe { dealloc(ptr) }
}
";
    let (rule, line) = sole_finding("shims/bytes/src/lib.rs", bare);
    assert_eq!(rule, "R5");
    assert_eq!(line, 2);

    let blessed = "\
fn grow(ptr: *mut u8) {
    // SAFETY: ptr was produced by alloc with the same layout above.
    unsafe { dealloc(ptr) }
}
";
    assert_silent("shims/bytes/src/lib.rs", blessed);
}

#[test]
fn r5_suppression_silences() {
    let src = "\
fn fast(xs: &[f64]) -> f64 {
    // amlint: allow(R5) -- transmute-free read, bounds proven by caller
    unsafe { *xs.get_unchecked(0) }
}
";
    assert_eq!(assert_silent("crates/net/src/packet.rs", src), 1);
}

// ------------------------------------------------------- cross-rule

#[test]
fn test_regions_are_exempt_from_hot_path_rules() {
    let src = "\
fn live() -> u32 { 1 }

#[cfg(test)]
mod tests {
    #[test]
    fn exercises_panics() {
        let v: Vec<u32> = vec![1];
        assert_eq!(*v.first().unwrap(), 1);
        if (0.5f64) == 0.5 {
            panic!(\"test-only panic is fine\");
        }
    }
}
";
    assert_silent("crates/ml/src/tree.rs", src);
}

#[test]
fn suppression_does_not_leak_to_other_lines() {
    let src = "\
fn f(xs: &[f64]) -> f64 {
    // amlint: allow(R1) -- covers only the next line
    let a = xs.first().unwrap();
    let b = xs.last().unwrap();
    *a + *b
}
";
    let diags = lint_source("crates/ml/src/scaler.rs", src);
    let live: Vec<_> = diags.iter().filter(|d| !d.suppressed).collect();
    assert_eq!(live.len(), 1);
    assert_eq!(live[0].line, 4);
    assert_eq!(diags.iter().filter(|d| d.suppressed).count(), 1);
}
