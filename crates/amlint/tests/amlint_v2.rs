//! Fixture suite for the cross-file rules (R6–R9) and the call-graph
//! machinery behind them, mirroring `amlint_rules.rs` for R1–R5: one
//! known-bad snippet per trigger asserting the exact rule and line,
//! one escape-hatch variant per rule asserting silence, plus the
//! resolver-precision cases that keep the graph from over-linking.
//!
//! The last section pins the acceptance contract from the v2 issue:
//! a deliberately introduced hot-path `Vec::push`, an unbounded
//! channel, and an unchecked narrowing cast must each fail.

use amlint::{analyze, lint_files, Report, SourceFile, EXPECTED_HOT_ROOTS, SCHEMA_VERSION};

/// The one (rule, file, line) triple of live findings in a fixture set.
fn sole_finding(files: &[(&str, &str)]) -> (String, String, u32) {
    let diags = lint_files(files);
    let live: Vec<_> = diags.iter().filter(|d| !d.suppressed).collect();
    assert_eq!(
        live.len(),
        1,
        "expected exactly one live finding, got {live:#?}"
    );
    (live[0].rule.to_string(), live[0].file.clone(), live[0].line)
}

/// Assert a fixture set produces zero live findings; returns the
/// suppressed count for inspection.
fn assert_silent(files: &[(&str, &str)]) -> usize {
    let diags = lint_files(files);
    let live: Vec<_> = diags.iter().filter(|d| !d.suppressed).collect();
    assert!(live.is_empty(), "expected silence, got {live:#?}");
    diags.iter().filter(|d| d.suppressed).count()
}

// ---------------------------------------------------------------- R6

#[test]
fn r6_hot_path_push_fires_with_line() {
    let src = "\
// amlint: hot
pub fn ingest(out: &mut Vec<u64>, v: u64) {
    out.push(v);
}
";
    let (rule, file, line) = sole_finding(&[("crates/net/src/fastpath.rs", src)]);
    assert_eq!(rule, "R6");
    assert_eq!(file, "crates/net/src/fastpath.rs");
    assert_eq!(line, 3);
}

#[test]
fn r6_without_hot_annotation_is_silent() {
    let src = "\
pub fn ingest(out: &mut Vec<u64>, v: u64) {
    out.push(v);
}
";
    let diags = lint_files(&[("crates/net/src/fastpath.rs", src)]);
    assert!(diags.is_empty(), "no hot root, no hot path: {diags:#?}");
}

#[test]
fn r6_allocation_fires_across_files() {
    let root = "\
// amlint: hot
pub fn ingest(frame: &[u8]) -> usize {
    decode_len(frame)
}
";
    let helper = "\
pub fn decode_len(frame: &[u8]) -> usize {
    let mut scratch = Vec::new();
    scratch.extend_from_slice(frame);
    scratch.len()
}
";
    let diags = lint_files(&[
        ("crates/net/src/rx.rs", root),
        ("crates/net/src/codec.rs", helper),
    ]);
    let live: Vec<_> = diags.iter().filter(|d| !d.suppressed).collect();
    assert_eq!(live.len(), 2, "{live:#?}");
    assert!(live
        .iter()
        .all(|d| d.rule == "R6" && d.file == "crates/net/src/codec.rs"));
    assert_eq!(live[0].line, 2); // Vec::new
    assert_eq!(live[1].line, 3); // extend_from_slice
                                 // The message names the call chain from the root.
    assert!(
        live[0].message.contains("ingest -> decode_len"),
        "{}",
        live[0].message
    );
}

#[test]
fn r6_fn_level_cold_stops_traversal() {
    let src = "\
// amlint: hot
pub fn ingest(&mut self, v: u64) {
    self.rebuild(v);
}

// amlint: cold -- rebuild runs at config reload only, not per event
fn rebuild(&mut self, v: u64) {
    self.cache = Vec::new();
    self.cache.push(v);
}
";
    let diags = lint_files(&[("crates/net/src/table.rs", src)]);
    assert!(
        diags.is_empty(),
        "cold fn is off the graph entirely: {diags:#?}"
    );
}

#[test]
fn r6_line_level_cold_blesses_one_site_with_reason() {
    let src = "\
// amlint: hot
pub fn ingest(out: &mut Vec<u64>, v: u64) {
    // amlint: cold -- pooled batch buffer, reused across calls
    out.push(v);
}
";
    let diags = lint_files(&[("crates/net/src/fastpath.rs", src)]);
    assert_eq!(diags.len(), 1);
    assert!(
        diags[0].suppressed,
        "blessed sites stay in the report as suppressed"
    );
    assert_eq!(
        diags[0].suppress_reason.as_deref(),
        Some("pooled batch buffer, reused across calls")
    );
}

// ---------------------------------------------------------------- R8

#[test]
fn r8_unwrap_fires_across_files_outside_r1_scope() {
    let root = "\
// amlint: hot
pub fn pump(frames: &[u8]) -> u32 {
    parse_frame(frames)
}
";
    let helper = "\
pub fn parse_frame(frame: &[u8]) -> u32 {
    let first = frame.first().unwrap();
    u32::from(*first)
}
";
    let diags = lint_files(&[
        ("crates/net/src/rx.rs", root),
        ("crates/net/src/wire.rs", helper),
    ]);
    let live: Vec<_> = diags.iter().filter(|d| !d.suppressed).collect();
    assert_eq!(live.len(), 1, "{live:#?}");
    assert_eq!(live[0].rule, "R8");
    assert_eq!(live[0].file, "crates/net/src/wire.rs");
    assert_eq!(live[0].line, 2);
    assert!(
        live[0].message.contains("pump -> parse_frame"),
        "{}",
        live[0].message
    );
}

#[test]
fn r8_unchecked_indexing_fires_with_line() {
    let src = "\
// amlint: hot
pub fn head(xs: &[u32]) -> u32 {
    xs[0]
}
";
    let (rule, _, line) = sole_finding(&[("crates/net/src/probe.rs", src)]);
    assert_eq!(rule, "R8");
    assert_eq!(line, 3);
}

#[test]
fn r8_fn_level_allow_covers_every_index_in_the_fn() {
    let src = "\
// amlint: hot
// amlint: allow(R8) -- indices masked to the table size by construction
pub fn probe(xs: &[u32], i: usize, j: usize) -> u32 {
    xs[i] + xs[j]
}
";
    assert_eq!(assert_silent(&[("crates/net/src/probe.rs", src)]), 1);
}

#[test]
fn r8_range_slicing_is_the_sanctioned_form() {
    let src = "\
// amlint: hot
pub fn window(xs: &[u32]) -> &[u32] {
    &xs[1..3]
}
";
    assert_silent(&[("crates/net/src/probe.rs", src)]);
}

// ---------------------------------------------------------------- R7

#[test]
fn r7_unbounded_channel_fires_bounded_is_silent() {
    let bad = "\
pub fn wire_up() {
    let (tx, rx) = unbounded();
    spawn_consumer(rx, tx);
}
";
    let (rule, _, line) = sole_finding(&[("crates/net/src/hub.rs", bad)]);
    assert_eq!(rule, "R7");
    assert_eq!(line, 2);

    let good = "\
pub fn wire_up() {
    let (tx, rx) = bounded(1024);
    spawn_consumer(rx, tx);
}
";
    assert_silent(&[("crates/net/src/hub.rs", good)]);
}

#[test]
fn r7_direct_send_under_live_guard_fires() {
    let src = "\
impl Relay {
    pub fn flush(&self) {
        let guard = self.state.lock();
        self.tx.send(*guard);
    }
}
";
    let (rule, _, line) = sole_finding(&[("crates/net/src/relay.rs", src)]);
    assert_eq!(rule, "R7");
    assert_eq!(line, 4);
}

#[test]
fn r7_transitive_send_under_guard_fires() {
    let src = "\
impl Relay {
    pub fn forward_locked(&self, v: u64) {
        let guard = self.seq.lock();
        self.forward(v + *guard);
    }

    fn forward(&self, v: u64) {
        self.tx.send(v);
    }
}
";
    let (rule, _, line) = sole_finding(&[("crates/net/src/relay.rs", src)]);
    assert_eq!(rule, "R7");
    assert_eq!(line, 4, "flagged at the call site, while the guard is live");
}

#[test]
fn r7_dropping_the_guard_first_is_silent() {
    let src = "\
impl Relay {
    pub fn forward_unlocked(&self, v: u64) {
        let guard = self.seq.lock();
        let seq = *guard;
        drop(guard);
        self.tx.send(seq + v);
    }
}
";
    assert_silent(&[("crates/net/src/relay.rs", src)]);
}

#[test]
fn r7_lock_order_cycle_is_detected() {
    let src = "\
impl Pair {
    pub fn ab(&self) -> u64 {
        let a = self.left.lock();
        let b = self.right.lock();
        *a + *b
    }

    pub fn ba(&self) -> u64 {
        let b = self.right.lock();
        let a = self.left.lock();
        *a + *b
    }
}
";
    let diags = lint_files(&[("crates/net/src/pair.rs", src)]);
    let cycles: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == "R7" && d.message.contains("lock-order cycle"))
        .collect();
    assert!(!cycles.is_empty(), "{diags:#?}");
    assert!(cycles[0].message.contains("Pair.left") || cycles[0].message.contains("Pair.right"));
}

// ---------------------------------------------------------------- R9

#[test]
fn r9_narrowing_cast_of_tainted_binding_fires() {
    let src = "\
pub fn decode(buf: &mut Bytes) -> u16 {
    let n = buf.get_u32();
    n as u16
}
";
    let (rule, _, line) = sole_finding(&[("crates/int/src/wire.rs", src)]);
    assert_eq!(rule, "R9");
    assert_eq!(line, 3);
}

#[test]
fn r9_narrowing_cast_of_getter_result_fires() {
    let src = "\
pub fn decode(buf: &mut Bytes) -> u8 {
    buf.get_u16() as u8
}
";
    let (rule, _, line) = sole_finding(&[("crates/sflow/src/wire.rs", src)]);
    assert_eq!(rule, "R9");
    assert_eq!(line, 2);
}

#[test]
fn r9_widening_and_checked_conversions_are_silent() {
    let src = "\
pub fn decode(buf: &mut Bytes) -> u32 {
    let wide = buf.get_u16() as u32;
    let exact = u16::try_from(buf.get_u32()).unwrap_or(0);
    wide + u32::from(exact)
}
";
    assert_silent(&[("crates/int/src/wire.rs", src)]);
}

#[test]
fn r9_tainted_with_capacity_fires_clamped_is_silent() {
    let bad = "\
pub fn decode(buf: &mut Bytes) -> Vec<u8> {
    let count = buf.get_u32() as usize;
    Vec::with_capacity(count)
}
";
    let (rule, _, line) = sole_finding(&[("crates/ingest/src/frame.rs", bad)]);
    assert_eq!(rule, "R9");
    assert_eq!(line, 3);

    let good = "\
pub fn decode(buf: &mut Bytes) -> Vec<u8> {
    let count = buf.get_u32() as usize;
    Vec::with_capacity(count.min(4096))
}
";
    assert_silent(&[("crates/ingest/src/frame.rs", good)]);
}

#[test]
fn r9_is_scoped_to_the_decode_crates() {
    let src = "\
pub fn shrink(buf: &mut Bytes) -> u16 {
    let n = buf.get_u32();
    n as u16
}
";
    // Same code outside int/sflow/ingest: not R9's business.
    assert_silent(&[("crates/features/src/stats.rs", src)]);
    assert_silent(&[("crates/sim/src/engine.rs", src)]);
}

// ------------------------------------------------ resolver precision

#[test]
fn generic_method_names_do_not_propagate_hotness() {
    let root = "\
// amlint: hot
pub fn lookup(&self, i: usize) -> u64 {
    self.table.get(i).copied().unwrap_or(0)
}
";
    // A workspace fn that happens to share a std collection method's
    // name must not be dragged into the hot set by a bare-name edge.
    let decoy = "\
pub fn get(map: &[u64]) -> u64 {
    map.to_vec().pop().unwrap()
}
";
    assert_silent(&[
        ("crates/net/src/index.rs", root),
        ("crates/net/src/store.rs", decoy),
    ]);
}

#[test]
fn external_type_methods_do_not_resolve_by_name() {
    let root = "\
// amlint: hot
pub fn stamp(&mut self) {
    self.last = Instant::now();
}
";
    // `Instant::now` is external; a by-name fallback would link this.
    let decoy = "\
pub fn now() -> u64 {
    let mut v = Vec::new();
    v.push(1);
    v.len()
}
";
    assert_silent(&[
        ("crates/net/src/clock.rs", root),
        ("crates/net/src/wall.rs", decoy),
    ]);
}

#[test]
fn free_drop_never_links_to_drop_impls() {
    let root = "\
// amlint: hot
pub fn publish(&mut self, v: u64) {
    let guard = self.q.lock();
    drop(guard);
    self.emit(v);
}

fn emit(&mut self, _v: u64) {}
";
    // `drop(x)` is always `std::mem::drop`; Rust forbids calling
    // `Drop::drop` directly, so this impl must stay unreachable.
    let decoy = "\
impl Conn {
    fn drop(&mut self) {
        self.log.push(0);
    }
}
";
    assert_silent(&[
        ("crates/net/src/bus.rs", root),
        ("crates/net/src/conn.rs", decoy),
    ]);
}

// ------------------------------------------------- schema & drift gate

#[test]
fn report_json_is_schema_v2_with_hot_roots() {
    assert_eq!(SCHEMA_VERSION, 2);
    let files = vec![SourceFile::new(
        "crates/net/src/fastpath.rs".to_string(),
        "// amlint: hot\npub fn ingest(v: u64) -> u64 {\n    v + 1\n}\n",
    )];
    let (diagnostics, hot_roots) = analyze(&files);
    assert_eq!(
        hot_roots,
        vec!["crates/net/src/fastpath.rs::ingest".to_string()]
    );
    let report = Report {
        diagnostics,
        files_scanned: files.len(),
        hot_roots,
    };
    let json = report.to_json();
    assert!(
        json.starts_with("{\n  \"version\": 2,"),
        "version leads the document"
    );
    assert!(json.contains("\"hot_roots\": ["));
    assert!(json.contains("\"crates/net/src/fastpath.rs::ingest\""));
    assert!(json.ends_with("}\n"));
}

#[test]
fn expected_hot_roots_floor_is_well_formed() {
    assert!(
        EXPECTED_HOT_ROOTS.len() >= 10,
        "the drift-gate floor must not shrink"
    );
    for root in EXPECTED_HOT_ROOTS {
        let (file, func) = root.split_once("::").expect("file::fn format");
        assert!(
            file.starts_with("crates/") && file.ends_with(".rs"),
            "{root}"
        );
        assert!(!func.is_empty(), "{root}");
    }
}

// -------------------------------------------- acceptance contract

/// The v2 acceptance trio: each deliberately introduced defect class
/// must produce at least one live finding under its rule.
#[test]
fn acceptance_trio_each_fails() {
    let hot_push = "\
// amlint: hot
pub fn ingest(out: &mut Vec<u64>, v: u64) {
    out.push(v);
}
";
    let unbounded = "\
pub fn wire_up() {
    let (tx, rx) = unbounded();
    spawn_consumer(rx, tx);
}
";
    let narrowing = "\
pub fn decode(buf: &mut Bytes) -> u16 {
    let n = buf.get_u32();
    n as u16
}
";
    for (rel, src, rule) in [
        ("crates/net/src/fastpath.rs", hot_push, "R6"),
        ("crates/net/src/hub.rs", unbounded, "R7"),
        ("crates/int/src/wire.rs", narrowing, "R9"),
    ] {
        let diags = lint_files(&[(rel, src)]);
        assert!(
            diags.iter().any(|d| !d.suppressed && d.rule == rule),
            "{rel} must fail {rule}, got {diags:#?}"
        );
    }
}
