//! The cross-file rules R6–R9, evaluated over the workspace call graph.
//!
//! * **R6 — static allocation discipline.** Functions reachable from
//!   `// amlint: hot` roots must not reach allocating constructs
//!   (`Vec::new` / `.push(` / `format!` / `.clone()` / `.collect()` …)
//!   except through an explicit `// amlint: cold` escape hatch: a
//!   fn-level annotation stops traversal, a line-level one blesses a
//!   single site (counted as suppressed, like `allow(...)`). This is
//!   the static twin of the stats_alloc runtime gate.
//! * **R7 — channel/lock topology.** Channel construction must be
//!   bounded (`unbounded(` is a violation anywhere in library code),
//!   no blocking channel op may be *transitively* reachable while a
//!   lock guard is held, and the per-type lock acquisition order must
//!   be acyclic. Generalizes the single-file R4 across calls.
//! * **R8 — transitive panic reachability.** R1 rechecked over the
//!   call graph: a hot-reachable helper that `unwrap`s or indexes
//!   (`x[i]`, non-range) is a violation even when it lives in a file
//!   R1 never listed. Range slices (`x[a..b]`) are out of scope —
//!   they are how the decoders already bound their accesses.
//! * **R9 — untrusted-cast taint.** In the `int` / `sflow` / `ingest`
//!   decode crates, values derived from datagram bytes (`get_u16()`,
//!   `.len()`, `remaining()`) must not flow through a *narrowing*
//!   `as` cast (widening is fine), and must not size an allocation
//!   (`with_capacity(n)`) unclamped. `try_from` / `try_into` are the
//!   sanctioned conversions.

use crate::callgraph::Workspace;
use crate::lexer::TokKind;
use crate::parser::is_keyword;
use crate::rules::{is_hot_path, r4_applies};
use crate::{Diagnostic, SourceFile};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Owning-container constructors: `Type::ctor(` allocates.
const ALLOC_TYPES: &[&str] = &[
    "Vec",
    "VecDeque",
    "String",
    "Box",
    "BytesMut",
    "HashMap",
    "HashSet",
    "BTreeMap",
    "BTreeSet",
    "FnvHashMap",
    "Rc",
];
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from", "with_hasher", "default"];

/// Methods that (re)allocate on owning containers.
const ALLOC_METHODS: &[&str] = &[
    "push",
    "push_back",
    "push_front",
    "insert",
    "extend",
    "extend_from_slice",
    "append",
    "reserve",
    "reserve_exact",
    "resize",
    "resize_with",
    "collect",
    "to_vec",
    "to_owned",
    "to_string",
    "clone",
    "split_off",
    "repeat",
    "or_insert",
    "or_insert_with",
];

/// Blocking channel operations (the `try_*` forms are exempt).
const CHAN_OPS: &[&str] = &["send", "recv", "send_timeout", "recv_timeout"];

/// Panicking constructs for R8 (macro names; method forms below).
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented", "unreachable"];

fn diag(rel: &str, line: u32, rule: &'static str, message: String) -> Diagnostic {
    Diagnostic {
        file: rel.to_string(),
        line,
        rule,
        message,
        suppressed: false,
        suppress_reason: None,
    }
}

/// Entry point: run R6–R9 over the parsed workspace, appending findings.
pub fn check_workspace(files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    let ws = Workspace::build(files);
    check_r6_r8(&ws, out);
    check_r7(&ws, out);
    check_r9(files, out);
}

/// Emit a finding, pre-suppressed when a line-level `// amlint: cold`
/// blesses the site.
fn emit_cold_aware(
    ws: &Workspace,
    f: usize,
    line: u32,
    rule: &'static str,
    message: String,
    out: &mut Vec<Diagnostic>,
) {
    let file = &ws.files[ws.fns[f].file];
    let mut d = diag(&file.rel, line, rule, message);
    if let Some(cold) = file.parsed.cold_line(line) {
        d.suppressed = true;
        d.suppress_reason = Some(cold.reason.clone().unwrap_or_else(|| "cold".to_string()));
    }
    out.push(d);
}

/// R6 (allocation) and R8 (panic/indexing) share the hot-reachable set.
fn check_r6_r8(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let reach = ws.hot_reachable();
    let mut seen: BTreeSet<(String, u32, String)> = BTreeSet::new();
    for f in 0..ws.fns.len() {
        if !reach.contains_key(&f) {
            continue;
        }
        let rel = ws.rel(f).to_string();
        let path = ws.path_to(&reach, f);
        let tokens = &ws.files[ws.fns[f].file].lexed.tokens;

        // R6/R8 over extracted call sites.
        for call in &ws.fns[f].calls {
            let construct = if call.is_method && ALLOC_METHODS.contains(&call.name.as_str()) {
                Some(format!(".{}(", call.name))
            } else if let Some(q) = &call.qualifier {
                if ALLOC_TYPES.contains(&q.as_str()) && ALLOC_CTORS.contains(&call.name.as_str()) {
                    Some(format!("{}::{}(", q, call.name))
                } else {
                    None
                }
            } else {
                None
            };
            if let Some(c) = construct {
                if seen.insert((rel.clone(), call.line, c.clone())) {
                    emit_cold_aware(
                        ws,
                        f,
                        call.line,
                        "R6",
                        format!(
                            "allocating construct `{c}` on the hot path ({path}); \
                             fix it or bless the site with `// amlint: cold -- why`"
                        ),
                        out,
                    );
                }
            }
            if call.is_method
                && (call.name == "unwrap" || call.name == "expect")
                && !is_hot_path(&rel)
                && seen.insert((rel.clone(), call.line, format!(".{}(", call.name)))
            {
                emit_cold_aware(
                    ws,
                    f,
                    call.line,
                    "R8",
                    format!(
                        ".{}() is hot-reachable ({path}) though {rel} is outside R1's \
                         file list; return an error or bless with `// amlint: cold -- why`",
                        call.name
                    ),
                    out,
                );
            }
        }

        // Token-level scans: macros and non-range indexing.
        let body = ws.body_token_indices(f);
        for (bi, &i) in body.iter().enumerate() {
            let t = &tokens[i];
            let next_is = |s: &str| tokens.get(i + 1).is_some_and(|n| n.text == s);
            if t.kind == TokKind::Ident && next_is("!") {
                if (t.text == "vec" || t.text == "format")
                    && seen.insert((rel.clone(), t.line, format!("{}!", t.text)))
                {
                    emit_cold_aware(
                        ws,
                        f,
                        t.line,
                        "R6",
                        format!(
                            "allocating macro `{}!` on the hot path ({path}); \
                             fix it or bless the site with `// amlint: cold -- why`",
                            t.text
                        ),
                        out,
                    );
                }
                if PANIC_MACROS.contains(&t.text.as_str())
                    && !is_hot_path(&rel)
                    && seen.insert((rel.clone(), t.line, format!("{}!", t.text)))
                {
                    emit_cold_aware(
                        ws,
                        f,
                        t.line,
                        "R8",
                        format!("`{}!` is hot-reachable ({path})", t.text),
                        out,
                    );
                }
            }
            // `expr[index]` — previous token ends an expression and the
            // brackets contain a non-range expression.
            if t.text == "[" && bi > 0 {
                let prev = &tokens[body[bi - 1]];
                let prev_ends_expr = (prev.kind == TokKind::Ident && !is_keyword(&prev.text))
                    || prev.text == ")"
                    || prev.text == "]";
                if prev_ends_expr {
                    let mut depth = 0i32;
                    let mut j = i;
                    let mut has_range = false;
                    let mut has_semi = false;
                    let mut close = None;
                    while j < tokens.len() {
                        match tokens[j].text.as_str() {
                            "[" => depth += 1,
                            "]" => {
                                depth -= 1;
                                if depth == 0 {
                                    close = Some(j);
                                    break;
                                }
                            }
                            ".." | "..=" => has_range = true,
                            ";" => has_semi = true,
                            _ => {}
                        }
                        j += 1;
                    }
                    let non_empty = close.is_some_and(|c| c > i + 1);
                    if non_empty
                        && !has_range
                        && !has_semi
                        && seen.insert((rel.clone(), t.line, "[]".into()))
                    {
                        emit_cold_aware(
                            ws,
                            f,
                            t.line,
                            "R8",
                            format!(
                                "unchecked indexing can panic and is hot-reachable ({path}); \
                                 prove the bound and bless the fn with \
                                 `// amlint: allow(R8) -- invariant`, or use `get(..)`"
                            ),
                            out,
                        );
                    }
                }
            }
        }
    }
}

/// One lock acquisition inside a fn body.
struct Acquisition {
    /// Stable lock identity: `Type.field` for `self.field.lock()`,
    /// `fn_name.var` for locals.
    id: String,
    /// Token index of the `lock` / `read` / `write` ident.
    tok: usize,
    line: u32,
    /// Exclusive token index where the guard is no longer live.
    region_end: usize,
}

fn lock_id(ws: &Workspace, f: usize, chain: &[String]) -> String {
    let item = ws.item(f);
    if chain.first().map(String::as_str) == Some("self") {
        let owner = item.impl_type.clone().unwrap_or_else(|| item.name.clone());
        format!("{owner}.{}", chain.last().cloned().unwrap_or_default())
    } else {
        format!("{}.{}", item.name, chain.join("."))
    }
}

/// Find lock-guard acquisitions in `f` with their live regions.
fn acquisitions(ws: &Workspace, f: usize) -> Vec<Acquisition> {
    let tokens = &ws.files[ws.fns[f].file].lexed.tokens;
    let body = ws.body_token_indices(f);
    let Some((body_start, body_end)) = ws.item(f).body else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (bi, &i) in body.iter().enumerate() {
        let t = &tokens[i];
        if !(t.kind == TokKind::Ident && matches!(t.text.as_str(), "lock" | "read" | "write")) {
            continue;
        }
        if !(tokens.get(i + 1).is_some_and(|n| n.text == "(")
            && tokens.get(i + 2).is_some_and(|n| n.text == ")"))
        {
            continue; // `.read(&mut buf)` is io, not a lock
        }
        if bi == 0 || tokens[body[bi - 1]].text != "." {
            continue;
        }
        // Walk the receiver chain backwards: `self . inner . lock`.
        let mut chain: Vec<String> = Vec::new();
        let mut j = bi - 1; // the `.`
        while j >= 1 {
            let prev = &tokens[body[j - 1]];
            if prev.kind == TokKind::Ident && !is_keyword(&prev.text) {
                chain.push(prev.text.clone());
                if j >= 3 && tokens[body[j - 2]].text == "." {
                    j -= 2;
                    continue;
                }
            }
            break;
        }
        chain.reverse();
        if chain.is_empty() {
            continue;
        }
        // Std stream locks (`stdout().lock()` handles) are per-process
        // conveniences, not part of the pipeline's lock topology.
        if matches!(
            chain.last().map(String::as_str),
            Some("stdout" | "stderr" | "stdin")
        ) {
            continue;
        }
        let head = body[j - 1];
        // Named guard (`let [mut] g = …`) lives to the end of the
        // enclosing block or an explicit `drop(g)`; a temporary dies at
        // the statement's `;`.
        let named = guard_binding(tokens, head);
        let region_end = match named {
            Some(ref name) => {
                let block_end = enclosing_block_end(tokens, (body_start, body_end), i);
                explicit_drop(tokens, i, block_end, name).unwrap_or(block_end)
            }
            None => statement_end(tokens, i, body_end),
        };
        out.push(Acquisition {
            id: lock_id(ws, f, &chain),
            tok: i,
            line: t.line,
            region_end,
        });
    }
    out
}

/// If the statement holding `head` is `let [mut] name = …`, the guard
/// variable name.
fn guard_binding(tokens: &[crate::lexer::Token], head: usize) -> Option<String> {
    let mut k = head;
    // `=` then the binding then (mut)? then `let`.
    if k == 0 || tokens[k - 1].text != "=" {
        return None;
    }
    k -= 1;
    let name = tokens.get(k.checked_sub(1)?)?;
    if name.kind != TokKind::Ident || is_keyword(&name.text) {
        return None;
    }
    let mut l = k - 1;
    if l >= 1 && tokens[l - 1].text == "mut" {
        l -= 1;
    }
    if l >= 1 && tokens[l - 1].text == "let" {
        Some(name.text.clone())
    } else {
        None
    }
}

/// End (exclusive token index) of the innermost block containing `pos`.
fn enclosing_block_end(tokens: &[crate::lexer::Token], body: (usize, usize), pos: usize) -> usize {
    let mut depth = 0i32;
    let mut i = pos;
    while i < body.1 {
        match tokens[i].text.as_str() {
            "{" => depth += 1,
            "}" => {
                if depth == 0 {
                    return i;
                }
                depth -= 1;
            }
            _ => {}
        }
        i += 1;
    }
    body.1
}

/// Token index of `drop(name)` between `from` and `to`, if present.
fn explicit_drop(
    tokens: &[crate::lexer::Token],
    from: usize,
    to: usize,
    name: &str,
) -> Option<usize> {
    (from..to.saturating_sub(2)).find(|&i| {
        tokens[i].text == "drop" && tokens[i + 1].text == "(" && tokens[i + 2].text == name
    })
}

/// Token index one past the `;` ending the statement containing `pos`.
fn statement_end(tokens: &[crate::lexer::Token], pos: usize, body_end: usize) -> usize {
    let mut depth = 0i32;
    let mut i = pos;
    while i < body_end {
        match tokens[i].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            ";" if depth <= 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    body_end
}

fn check_r7(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    // (a) unbounded channel construction anywhere in library code.
    for f in 0..ws.fns.len() {
        for call in &ws.fns[f].calls {
            if call.name == "unbounded" && !call.is_method {
                out.push(diag(
                    ws.rel(f),
                    call.line,
                    "R7",
                    "unbounded channel construction — every channel between pipeline \
                     stages must be bounded so backpressure sheds measurably"
                        .to_string(),
                ));
            }
        }
    }

    // (b) per-fn lock / blocking-channel summaries.
    let n = ws.fns.len();
    let acqs: Vec<Vec<Acquisition>> = (0..n).map(|f| acquisitions(ws, f)).collect();
    let mut chan_direct = vec![false; n];
    let mut locks_star: Vec<BTreeSet<String>> = (0..n)
        .map(|f| acqs[f].iter().map(|a| a.id.clone()).collect())
        .collect();
    for (f, g) in ws.fns.iter().enumerate() {
        chan_direct[f] = g
            .calls
            .iter()
            .any(|c| c.is_method && CHAN_OPS.contains(&c.name.as_str()));
    }
    let callees: Vec<Vec<usize>> = (0..n)
        .map(|f| {
            ws.fns[f]
                .calls
                .iter()
                .flat_map(|c| ws.resolve_strict(f, c))
                .collect()
        })
        .collect();
    let mut chan_star = chan_direct.clone();
    loop {
        let mut changed = false;
        for f in 0..n {
            for &g in &callees[f] {
                if chan_star[g] && !chan_star[f] {
                    chan_star[f] = true;
                    changed = true;
                }
                if !locks_star[g].is_empty() {
                    let before = locks_star[f].len();
                    let add: Vec<String> = locks_star[g].iter().cloned().collect();
                    locks_star[f].extend(add);
                    changed |= locks_star[f].len() != before;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // (c) guard regions: blocking ops and lock-order edges under a guard.
    let mut edges: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
    let mut flagged: BTreeSet<(String, u32, &'static str)> = BTreeSet::new();
    for (f, f_acqs) in acqs.iter().enumerate() {
        let rel = ws.rel(f).to_string();
        let tokens = &ws.files[ws.fns[f].file].lexed.tokens;
        for a in f_acqs {
            // Direct blocking channel ops in the region. R4 already
            // polices plain send/recv in its own files; R7 adds the
            // rest of the workspace and the timeout variants.
            for call in &ws.fns[f].calls {
                if call.tok <= a.tok || call.tok >= a.region_end {
                    continue;
                }
                if call.is_method && CHAN_OPS.contains(&call.name.as_str()) {
                    let plain = call.name == "send" || call.name == "recv";
                    if !(plain && r4_applies(&rel))
                        && flagged.insert((rel.clone(), call.line, "direct"))
                    {
                        out.push(diag(
                            &rel,
                            call.line,
                            "R7",
                            format!(
                                "blocking `.{}(` while holding lock `{}` (acquired line {})",
                                call.name, a.id, a.line
                            ),
                        ));
                    }
                    continue;
                }
                // Transitive: a callee that blocks on a channel or
                // takes another lock while this guard is live.
                for g in ws.resolve_strict(f, call) {
                    if chan_star[g] && flagged.insert((rel.clone(), call.line, "transitive")) {
                        out.push(diag(
                            &rel,
                            call.line,
                            "R7",
                            format!(
                                "`{}` can block on a channel and is called while lock `{}` \
                                 is held (acquired line {})",
                                ws.display_name(g),
                                a.id,
                                a.line
                            ),
                        ));
                    }
                    for m in &locks_star[g] {
                        if *m != a.id {
                            edges
                                .entry((a.id.clone(), m.clone()))
                                .or_insert((rel.clone(), call.line));
                        }
                    }
                }
            }
            // Nested direct acquisitions.
            for b in f_acqs {
                if b.tok > a.tok && b.tok < a.region_end {
                    if b.id == a.id {
                        if flagged.insert((rel.clone(), b.line, "reentrant")) {
                            out.push(diag(
                                &rel,
                                b.line,
                                "R7",
                                format!(
                                    "`{}` re-acquired while already held (line {}) — \
                                     parking_lot locks are not re-entrant",
                                    a.id, a.line
                                ),
                            ));
                        }
                    } else {
                        edges
                            .entry((a.id.clone(), b.id.clone()))
                            .or_insert((rel.clone(), tokens[b.tok].line));
                    }
                }
            }
        }
    }

    // (d) lock-order cycles: edge (a, b) is in a cycle iff b reaches a.
    let mut adj: BTreeMap<&String, BTreeSet<&String>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a).or_default().insert(b);
    }
    let reaches = |from: &String, to: &String| -> bool {
        let mut stack = vec![from];
        let mut seen = BTreeSet::new();
        while let Some(x) = stack.pop() {
            if x == to {
                return true;
            }
            if !seen.insert(x.clone()) {
                continue;
            }
            if let Some(next) = adj.get(x) {
                stack.extend(next.iter().copied());
            }
        }
        false
    };
    for ((a, b), (rel, line)) in &edges {
        if reaches(b, a) {
            out.push(diag(
                rel,
                *line,
                "R7",
                format!(
                    "lock-order cycle: `{a}` is held while acquiring `{b}` here, but \
                     another path orders them the other way"
                ),
            ));
        }
    }
}

/// Files in R9 scope: the wire-facing decode crates.
fn r9_applies(rel: &str) -> bool {
    rel.starts_with("crates/int/src/")
        || rel.starts_with("crates/sflow/src/")
        || rel.starts_with("crates/ingest/src/")
}

fn width_of(ty: &str) -> u32 {
    match ty {
        "u8" | "i8" => 8,
        "u16" | "i16" => 16,
        "u32" | "i32" => 32,
        "u64" | "i64" | "u128" | "i128" | "usize" | "isize" => 64,
        _ => 0,
    }
}

/// Bit width produced by a byte-derived getter, if it taints.
fn source_width(name: &str) -> u32 {
    match name {
        "get_u8" | "get_i8" => 8,
        "get_u16" | "get_i16" => 16,
        "get_u32" | "get_i32" => 32,
        "get_u64" | "get_i64" => 64,
        "len" | "remaining" => 64,
        _ => 0,
    }
}

fn check_r9(files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    for file in files {
        if file.class != crate::FileClass::Library || !r9_applies(&file.rel) {
            continue;
        }
        let tokens = &file.lexed.tokens;
        for item in &file.parsed.fns {
            if item.is_test {
                continue;
            }
            let Some((start, end)) = item.body else {
                continue;
            };
            let mut taint: HashMap<String, u32> = HashMap::new();
            let mut i = start + 1;
            let body_end = end.saturating_sub(1);
            while i < body_end {
                let t = &tokens[i];
                // `let [mut] x = <expr>;` — propagate taint to x.
                if t.kind == TokKind::Ident && t.text == "let" {
                    let mut k = i + 1;
                    if tokens.get(k).is_some_and(|n| n.text == "mut") {
                        k += 1;
                    }
                    let target = tokens
                        .get(k)
                        .filter(|n| n.kind == TokKind::Ident && !is_keyword(&n.text));
                    if let Some(target) = target {
                        if tokens.get(k + 1).is_some_and(|n| n.text == "=")
                            || (tokens.get(k + 1).is_some_and(|n| n.text == ":")
                                // typed binding: scan to the `=`
                                && (k + 1..statement_end(tokens, i, body_end))
                                    .any(|j| tokens[j].text == "="))
                        {
                            let stmt_end = statement_end(tokens, i, body_end);
                            let mut w = 0u32;
                            for j in k + 1..stmt_end {
                                let e = &tokens[j];
                                if e.kind != TokKind::Ident {
                                    continue;
                                }
                                if tokens.get(j + 1).is_some_and(|n| n.text == "(") {
                                    w = w.max(source_width(&e.text));
                                }
                                w = w.max(*taint.get(&e.text).unwrap_or(&0));
                            }
                            if w > 0 {
                                taint.insert(target.text.clone(), w);
                            }
                        }
                    }
                }
                // `… as T` — find the cast source just before `as`.
                if t.kind == TokKind::Ident && t.text == "as" && i > start + 1 {
                    let target_w = tokens.get(i + 1).map(|n| width_of(&n.text)).unwrap_or(0);
                    if target_w > 0 {
                        let prev = &tokens[i - 1];
                        let mut src_w = 0u32;
                        let mut what = String::new();
                        if prev.text == ")" {
                            // Walk back to the matching `(`, then the callee.
                            let mut depth = 0i32;
                            let mut j = i - 1;
                            loop {
                                match tokens[j].text.as_str() {
                                    ")" => depth += 1,
                                    "(" => {
                                        depth -= 1;
                                        if depth == 0 {
                                            break;
                                        }
                                    }
                                    _ => {}
                                }
                                if j == 0 {
                                    break;
                                }
                                j -= 1;
                            }
                            if j > 0 && tokens[j - 1].kind == TokKind::Ident {
                                src_w = source_width(&tokens[j - 1].text);
                                what = format!("{}()", tokens[j - 1].text);
                            }
                        } else if prev.kind == TokKind::Ident && !is_keyword(&prev.text) {
                            src_w = *taint.get(&prev.text).unwrap_or(&0);
                            what = format!("`{}`", prev.text);
                        }
                        if src_w > target_w {
                            out.push(diag(
                                &file.rel,
                                t.line,
                                "R9",
                                format!(
                                    "narrowing `as {}` on byte-derived {} ({}-bit) truncates \
                                     silently; use a checked conversion (`try_from` / saturate)",
                                    tokens[i + 1].text,
                                    what,
                                    src_w
                                ),
                            ));
                        }
                    }
                }
                // `with_capacity(x)` with x tainted and unclamped.
                if t.kind == TokKind::Ident
                    && t.text == "with_capacity"
                    && tokens.get(i + 1).is_some_and(|n| n.text == "(")
                {
                    if let (Some(arg), Some(close)) = (tokens.get(i + 2), tokens.get(i + 3)) {
                        if close.text == ")"
                            && arg.kind == TokKind::Ident
                            && taint.contains_key(&arg.text)
                        {
                            out.push(diag(
                                &file.rel,
                                t.line,
                                "R9",
                                format!(
                                    "`with_capacity({})` sized by untrusted wire bytes — an \
                                     attacker picks the allocation; clamp it first \
                                     (e.g. `{}.min(LIMIT)`)",
                                    arg.text, arg.text
                                ),
                            ));
                        }
                    }
                }
                i += 1;
            }
        }
    }
}
