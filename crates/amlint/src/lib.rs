//! amlint — workspace-native static analysis for the AmLight detection
//! pipeline.
//!
//! The detector is a soft-real-time system: a panic in the Data
//! Processor or Prediction module, a non-wrapping subtraction on the
//! 32-bit ns INT timestamps, or a lock held across a blocking channel
//! send silently breaks the "automated, always-on" property the
//! deployment depends on. `cargo test` cannot catch those classes of
//! regression — they are invariants about *how* code is written, not
//! what it computes — so amlint enforces them as machine-checkable
//! rules over every `.rs` file in the workspace.
//!
//! See [`rules`] for the rule catalog (R1–R5) and README.md for the
//! invariant ↔ paper mapping. Violations can be suppressed per line:
//!
//! ```text
//! some_hot_call().unwrap(); // amlint: allow(R1) -- bounded by startup-only path
//! ```
//!
//! The suppression must name the rule and should carry a reason after
//! `--`; suppressed findings are still counted and reported (in JSON
//! under `"suppressed"`), so CI can watch the suppression budget too.

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod xrules;

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// JSON report schema version. v2 added `version` itself, `hot_roots`
/// (the annotation drift gate), and the cross-file rules R6–R9.
pub const SCHEMA_VERSION: u32 = 2;

/// Hot-path roots that must stay annotated (`// amlint: hot`) — the
/// floor the drift gate and `--self-check` enforce. Removing one of
/// these annotations without updating amlint itself is a CI failure:
/// the zero-alloc / no-panic proofs silently stop covering that
/// entry point otherwise.
pub const EXPECTED_HOT_ROOTS: &[&str] = &[
    "crates/core/src/drift.rs::observe_row",
    "crates/core/src/epoch.rs::load",
    "crates/core/src/mailbox.rs::acquire",
    "crates/core/src/mailbox.rs::pop",
    "crates/core/src/mailbox.rs::publish",
    "crates/core/src/modules.rs::ingest",
    "crates/features/src/sharded.rs::apply_batch_into",
    "crates/features/src/table.rs::apply",
    "crates/features/src/triage.rs::assess",
    "crates/int/src/collector.rs::decode_datagram_into",
    "crates/int/src/collector.rs::ingest_into",
    "crates/pint/src/datagram.rs::ingest",
    "crates/pint/src/report.rs::encode",
    "crates/pint/src/sketch.rs::absorb",
    "crates/pint/src/sketch.rs::annotate",
    "crates/sflow/src/datagram.rs::ingest",
];

/// How a file is classified for rule applicability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library source under `crates/*/src` or the facade `src/`.
    Library,
    /// Offline dependency stand-ins under `shims/`.
    Shim,
    /// Integration tests, benches, examples, and the bench crate:
    /// test-context code where the hot-path rules don't apply.
    TestContext,
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
    pub suppressed: bool,
    pub suppress_reason: Option<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} {}{}",
            self.file,
            self.line,
            self.rule,
            self.message,
            if self.suppressed { " [suppressed]" } else { "" }
        )
    }
}

/// One lexed + parsed source file, the unit the workspace rules
/// consume.
#[derive(Debug)]
pub struct SourceFile {
    pub rel: String,
    pub class: FileClass,
    pub lexed: lexer::Lexed,
    pub parsed: parser::ParsedFile,
}

impl SourceFile {
    pub fn new(rel: String, source: &str) -> Self {
        let class = classify(&rel);
        let lexed = lexer::lex(source);
        let parsed = parser::parse(&lexed);
        SourceFile {
            rel,
            class,
            lexed,
            parsed,
        }
    }
}

/// Lint results for a whole tree.
#[derive(Debug, Default)]
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
    pub files_scanned: usize,
    /// `file::fn` for every `// amlint: hot` annotation found — part of
    /// the JSON snapshot so removing a root annotation fails the drift
    /// gate.
    pub hot_roots: Vec<String>,
}

impl Report {
    /// Non-suppressed findings — what gates CI.
    pub fn violations(&self) -> usize {
        self.diagnostics.iter().filter(|d| !d.suppressed).count()
    }

    pub fn suppressed(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.suppressed).count()
    }

    /// Render as a JSON document (hand-rolled: amlint is dependency-free
    /// by design, and the schema is two levels deep).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + self.diagnostics.len() * 128);
        s.push_str("{\n");
        s.push_str(&format!("  \"version\": {},\n", SCHEMA_VERSION));
        s.push_str(&format!("  \"violations\": {},\n", self.violations()));
        s.push_str(&format!("  \"suppressed\": {},\n", self.suppressed()));
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str("  \"hot_roots\": [");
        for (i, r) in self.hot_roots.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n    \"{}\"", json_escape(r)));
        }
        if !self.hot_roots.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n");
        s.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {");
            s.push_str(&format!("\"file\": \"{}\", ", json_escape(&d.file)));
            s.push_str(&format!("\"line\": {}, ", d.line));
            s.push_str(&format!("\"rule\": \"{}\", ", d.rule));
            s.push_str(&format!("\"suppressed\": {}, ", d.suppressed));
            if let Some(reason) = &d.suppress_reason {
                s.push_str(&format!("\"reason\": \"{}\", ", json_escape(reason)));
            }
            s.push_str(&format!("\"message\": \"{}\"}}", json_escape(&d.message)));
        }
        if !self.diagnostics.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Classify a workspace-relative path.
pub fn classify(rel: &str) -> FileClass {
    if rel.starts_with("shims/") {
        FileClass::Shim
    } else if rel.starts_with("tests/")
        || rel.starts_with("examples/")
        || rel.starts_with("crates/bench/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
    {
        FileClass::TestContext
    } else {
        FileClass::Library
    }
}

/// Lint one source text as if it lived at `rel` in the workspace —
/// the full rule set, with the workspace graph built from this one
/// file.
pub fn lint_source(rel: &str, source: &str) -> Vec<Diagnostic> {
    lint_files(&[(rel, source)])
}

/// Lint a set of sources as a self-contained workspace (the fixture
/// API for the cross-file rules: each entry is `(workspace-relative
/// path, source text)`).
pub fn lint_files(files: &[(&str, &str)]) -> Vec<Diagnostic> {
    let sources: Vec<SourceFile> = files
        .iter()
        .map(|(rel, src)| SourceFile::new(rel.to_string(), src))
        .collect();
    analyze(&sources).0
}

/// Run per-file rules (R1–R5) plus workspace rules (R6–R9) over parsed
/// sources; returns (diagnostics, hot roots).
pub fn analyze(sources: &[SourceFile]) -> (Vec<Diagnostic>, Vec<String>) {
    let mut diags = Vec::new();
    for f in sources {
        diags.extend(rules::check(&f.rel, f.class, &f.lexed));
    }
    xrules::check_workspace(sources, &mut diags);
    for f in sources {
        let mut mine: Vec<&mut Diagnostic> = diags.iter_mut().filter(|d| d.file == f.rel).collect();
        apply_suppressions(&f.lexed.comments, &mut mine);
        apply_fn_suppressions(f, &mut mine);
    }
    diags.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(b.rule))
            .then(a.message.cmp(&b.message))
    });
    let mut hot_roots: Vec<String> = sources
        .iter()
        .flat_map(|f| {
            f.parsed
                .fns
                .iter()
                .filter(|i| i.hot)
                .map(|i| format!("{}::{}", f.rel, i.name))
        })
        .collect();
    hot_roots.sort();
    hot_roots.dedup();
    (diags, hot_roots)
}

/// Honor `// amlint: allow(<rules>) -- <reason>` comments: a suppression
/// on the diagnostic's line, or on the line directly above it, marks the
/// finding suppressed (it stays in the report for counting).
fn apply_suppressions(comments: &[lexer::Comment], diags: &mut [&mut Diagnostic]) {
    let supps: Vec<(u32, Vec<String>, Option<String>)> = comments
        .iter()
        .filter_map(|c| parse_suppression(&c.text).map(|(rules, why)| (c.end_line, rules, why)))
        .collect();
    for d in diags.iter_mut() {
        for (line, rules, why) in &supps {
            let line_matches = *line == d.line || *line + 1 == d.line;
            if line_matches && rules.iter().any(|r| r == d.rule) {
                d.suppressed = true;
                d.suppress_reason = why.clone();
            }
        }
    }
}

/// Cross-file rules the fn-level escape applies to: an `allow(...)`
/// comment bound to a `fn` item (leading comment within 3 lines above
/// it) suppresses matching R6–R9 findings anywhere in that fn's span.
/// One documented invariant then covers e.g. every masked index in a
/// slab probe loop, instead of a comment per line. R1–R5 keep their
/// strictly line-level placement.
const FN_SUPPRESSABLE: &[&str] = &["R6", "R7", "R8", "R9"];

fn apply_fn_suppressions(file: &SourceFile, diags: &mut [&mut Diagnostic]) {
    let tokens = &file.lexed.tokens;
    for c in &file.lexed.comments {
        let Some((rules, why)) = parse_suppression(&c.text) else {
            continue;
        };
        // Leading comments only, same binding rule as hot/cold.
        if tokens.iter().any(|t| t.line == c.start_line) {
            continue;
        }
        let Some(f) = file
            .parsed
            .fns
            .iter()
            .find(|f| f.line >= c.end_line && f.line <= c.end_line + 3)
        else {
            continue;
        };
        let end_line = f
            .body
            .and_then(|(_, e)| tokens.get(e.saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(f.line);
        for d in diags.iter_mut() {
            if d.line >= f.line
                && d.line <= end_line
                && rules.iter().any(|r| r == d.rule)
                && FN_SUPPRESSABLE.contains(&d.rule)
            {
                d.suppressed = true;
                d.suppress_reason = why.clone();
            }
        }
    }
}

/// Parse `amlint: allow(R1, R2) -- reason` out of a comment.
fn parse_suppression(text: &str) -> Option<(Vec<String>, Option<String>)> {
    let at = text.find("amlint:")?;
    let rest = &text[at + "amlint:".len()..];
    let allow = rest.trim_start();
    let inner = allow.strip_prefix("allow(")?;
    let close = inner.find(')')?;
    let rules: Vec<String> = inner[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return None;
    }
    let reason = inner[close + 1..]
        .split_once("--")
        .map(|(_, why)| why.trim().to_string())
        .filter(|w| !w.is_empty());
    Some((rules, reason))
}

/// Recursively collect every `.rs` file worth linting under `root`.
fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "results"];
    let mut stack = vec![root.to_path_buf()];
    let mut files = Vec::new();
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lint the whole workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let files = collect_rs_files(root)?;
    let mut sources = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = fs::read_to_string(&path)?;
        sources.push(SourceFile::new(rel, &source));
    }
    let (diagnostics, hot_roots) = analyze(&sources);
    Ok(Report {
        diagnostics,
        files_scanned: sources.len(),
        hot_roots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_parses_rules_and_reason() {
        let (rules, why) =
            parse_suppression("// amlint: allow(R1, R4) -- startup-only, bounded").unwrap();
        assert_eq!(rules, ["R1", "R4"]);
        assert_eq!(why.as_deref(), Some("startup-only, bounded"));
        assert!(parse_suppression("// just a comment about amlint").is_none());
        let (rules, why) = parse_suppression("/* amlint: allow(R2) */").unwrap();
        assert_eq!(rules, ["R2"]);
        assert_eq!(why, None);
    }

    #[test]
    fn trailing_and_preceding_suppressions_apply() {
        let trailing = "fn f() { x.unwrap(); // amlint: allow(R1) -- bounded\n }";
        let d = lint_source("crates/ml/src/tree.rs", trailing);
        assert_eq!(d.len(), 1);
        assert!(d[0].suppressed);
        assert_eq!(d[0].suppress_reason.as_deref(), Some("bounded"));

        let above = "fn f() {\n // amlint: allow(R1) -- bounded\n x.unwrap();\n }";
        let d = lint_source("crates/ml/src/tree.rs", above);
        assert_eq!(d.len(), 1);
        assert!(d[0].suppressed);
    }

    #[test]
    fn suppression_must_name_the_right_rule() {
        let wrong = "fn f() { x.unwrap(); // amlint: allow(R2) -- not this rule\n }";
        let d = lint_source("crates/ml/src/tree.rs", wrong);
        assert_eq!(d.len(), 1);
        assert!(!d[0].suppressed);
    }

    #[test]
    fn classification_matches_layout() {
        assert_eq!(classify("crates/core/src/runtime.rs"), FileClass::Library);
        assert_eq!(classify("src/lib.rs"), FileClass::Library);
        assert_eq!(classify("shims/rand/src/lib.rs"), FileClass::Shim);
        assert_eq!(classify("tests/end_to_end.rs"), FileClass::TestContext);
        assert_eq!(classify("examples/quickstart.rs"), FileClass::TestContext);
        assert_eq!(classify("crates/bench/src/util.rs"), FileClass::TestContext);
        assert_eq!(
            classify("crates/ml/benches/inference.rs"),
            FileClass::TestContext
        );
    }

    #[test]
    fn json_report_is_well_formed_enough() {
        let mut r = Report {
            files_scanned: 2,
            ..Default::default()
        };
        r.diagnostics.push(Diagnostic {
            file: "a.rs".into(),
            line: 3,
            rule: "R1",
            message: "msg with \"quotes\"".into(),
            suppressed: false,
            suppress_reason: None,
        });
        let json = r.to_json();
        assert!(json.contains("\"violations\": 1"));
        assert!(json.contains("msg with \\\"quotes\\\""));
        assert!(json.ends_with("}\n"));
    }
}
