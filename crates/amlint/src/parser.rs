//! A lightweight recursive-descent item parser over [`crate::lexer`].
//!
//! amlint v2's cross-file rules (R6–R9) need more structure than a flat
//! token stream: *which function does this token belong to*, *what type
//! is this method implemented on*, and *did the author annotate this
//! item as a hot-path root or a cold escape hatch*. This module
//! recovers exactly that much structure — per-file item trees of
//! functions and the impl blocks that own them — and deliberately no
//! more. It is not a Rust parser; it is a brace-matching walk that is
//! precise about the three things the rules consume:
//!
//! 1. every `fn` item with its name, body token range, and line,
//! 2. the innermost `impl` type owning each method,
//! 3. `// amlint: hot` / `// amlint: cold` annotations bound to items.
//!
//! Annotation binding: a comment on its **own line** binds to the next
//! `fn` item starting within 3 lines (attributes in between are fine).
//! A trailing comment, or a leading comment with no `fn` nearby, is a
//! *line-level* annotation instead — it blesses the construct on that
//! line (or the line below, mirroring suppression placement).

use crate::lexer::{Comment, Lexed, TokKind, Token};
use crate::rules::test_spans;

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// Type name of the innermost enclosing `impl` block, if any.
    pub impl_type: Option<String>,
    /// Line of the `fn` keyword token.
    pub line: u32,
    /// Token index range of the body including the outer braces,
    /// `[start, end)`. `None` for bodiless declarations (trait method
    /// signatures, extern fns).
    pub body: Option<(usize, usize)>,
    /// Inside a `#[cfg(test)]` / `#[test]` span.
    pub is_test: bool,
    /// Annotated `// amlint: hot` — a hot-path root for R6/R8.
    pub hot: bool,
    /// Annotated `// amlint: cold` at fn level — reachability stops
    /// here; the whole fn is off the hot path by declaration.
    pub cold: bool,
}

/// Line-level annotation left over after fn binding: blesses a single
/// construct site as cold (R6/R8) without excusing a whole function.
#[derive(Debug, Clone)]
pub struct ColdLine {
    pub line: u32,
    /// Text after `--` in the annotation, the "why" shown in reports.
    pub reason: Option<String>,
}

/// Everything the cross-file rules need from one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    pub fns: Vec<FnItem>,
    pub cold_lines: Vec<ColdLine>,
}

impl ParsedFile {
    /// Is `line` blessed by a line-level `// amlint: cold`? Matches the
    /// annotation's own line or the line directly below it (same
    /// placement rules as `allow(...)` suppressions).
    pub fn line_is_cold(&self, line: u32) -> bool {
        self.cold_line(line).is_some()
    }

    /// The blessing annotation covering `line`, if any.
    pub fn cold_line(&self, line: u32) -> Option<&ColdLine> {
        self.cold_lines
            .iter()
            .find(|c| c.line == line || c.line + 1 == line)
    }
}

/// Keywords that can directly precede `(` or `[` without forming a
/// call/index expression, plus everything we must never treat as a
/// callee name.
pub const KEYWORDS: &[&str] = &[
    "as", "async", "await", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern",
    "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "where", "while",
];

pub fn is_keyword(text: &str) -> bool {
    KEYWORDS.contains(&text)
}

/// Index one past the `}` matching the `{` at `open` (or `tokens.len()`
/// if unbalanced).
pub fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < tokens.len() {
        match tokens[i].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    tokens.len()
}

/// Skip a generic argument list starting at a `<` token; returns the
/// index one past the matching `>`. Handles `>>` closing two levels
/// (`Vec<Vec<u8>>` lexes the tail as one token). Bails at `{` / `;` so
/// a stray comparison operator cannot swallow the file.
pub fn skip_angles(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < tokens.len() {
        match tokens[i].text.as_str() {
            "<" => depth += 1,
            "<<" => depth += 2,
            ">" => depth -= 1,
            ">>" => depth -= 2,
            "{" | ";" => return i,
            _ => {}
        }
        i += 1;
        if depth <= 0 {
            return i;
        }
    }
    tokens.len()
}

/// Scan `impl` blocks: `(body_start_tok, body_end_tok, type_name)`.
/// The type name is the last path segment of the implemented-on type —
/// the segment after `for` in a trait impl, the head type otherwise.
fn scan_impls(tokens: &[Token]) -> Vec<(usize, usize, String)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].kind == TokKind::Ident && tokens[i].text == "impl" {
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|t| t.text == "<") {
                j = skip_angles(tokens, j);
            }
            let mut name: Option<String> = None;
            while j < tokens.len() {
                let t = &tokens[j];
                match t.text.as_str() {
                    "{" => break,
                    ";" => break, // `impl Trait for Type;`-like degenerate input
                    "for" => {
                        name = None;
                        j += 1;
                    }
                    "where" => {
                        // Type is settled; scan forward to the body.
                        while j < tokens.len() && tokens[j].text != "{" {
                            j += 1;
                        }
                        break;
                    }
                    "<" => j = skip_angles(tokens, j),
                    _ => {
                        if t.kind == TokKind::Ident && !is_keyword(&t.text) {
                            name = Some(t.text.clone());
                        }
                        j += 1;
                    }
                }
            }
            if j < tokens.len() && tokens[j].text == "{" {
                let end = match_brace(tokens, j);
                if let Some(name) = name {
                    out.push((j, end, name));
                }
                // Do not skip the body: nested impls (rare) and the fns
                // inside are found by the main walk.
            }
            i = j.max(i + 1);
        } else {
            i += 1;
        }
    }
    out
}

/// Does a comment carry the given amlint marker (`hot` / `cold`)?
fn has_marker(c: &Comment, marker: &str) -> bool {
    c.text
        .find("amlint:")
        .map(|at| {
            let rest = c.text[at + "amlint:".len()..].trim_start();
            rest == marker
                || rest.starts_with(&format!("{marker} "))
                || rest.starts_with(&format!("{marker}\t"))
                || rest.starts_with(&format!("{marker}--"))
        })
        .unwrap_or(false)
}

/// The `-- why` tail of an annotation comment.
fn marker_reason(text: &str) -> Option<String> {
    text.split_once("--")
        .map(|(_, why)| why.trim().trim_end_matches("*/").trim().to_string())
        .filter(|w| !w.is_empty())
}

/// Parse one file into its item tree.
pub fn parse(lexed: &Lexed) -> ParsedFile {
    let tokens = &lexed.tokens;
    let spans = test_spans(tokens);
    let in_test = |line: u32| spans.iter().any(|&(s, e)| line >= s && line <= e);
    let impls = scan_impls(tokens);

    // A comment is "leading" when no token shares its start line —
    // those are item-annotation candidates; trailing comments are
    // always line-level.
    let mut line_has_code = std::collections::HashSet::new();
    for t in tokens.iter() {
        line_has_code.insert(t.line);
    }

    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind == TokKind::Ident && t.text == "fn" {
            let name = match tokens.get(i + 1) {
                Some(n) if n.kind == TokKind::Ident && !is_keyword(&n.text) => n.text.clone(),
                _ => {
                    // `fn(u32) -> u32` pointer type or malformed input.
                    i += 1;
                    continue;
                }
            };
            let mut j = i + 2;
            let mut body = None;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "{" => {
                        body = Some((j, match_brace(tokens, j)));
                        break;
                    }
                    ";" => break,
                    "<" => j = skip_angles(tokens, j),
                    _ => j += 1,
                }
            }
            let impl_type = impls
                .iter()
                .rfind(|(s, e, _)| *s < i && i < *e)
                .map(|(_, _, n)| n.clone());
            fns.push(FnItem {
                name,
                impl_type,
                line: t.line,
                body,
                is_test: in_test(t.line),
                hot: false,
                cold: false,
            });
        }
        i += 1;
    }

    // Bind hot/cold annotations. Leading comments bind to the first fn
    // whose `fn` token sits within the next 3 lines; everything else
    // (trailing comments, unbound cold markers) becomes line-level.
    let mut cold_lines = Vec::new();
    for c in &lexed.comments {
        let hot = has_marker(c, "hot");
        let cold = has_marker(c, "cold");
        if !hot && !cold {
            continue;
        }
        let leading = !line_has_code.contains(&c.start_line);
        let bound = if leading {
            fns.iter_mut()
                .find(|f| f.line >= c.end_line && f.line <= c.end_line + 3)
        } else {
            None
        };
        match bound {
            Some(f) => {
                f.hot |= hot;
                f.cold |= cold;
            }
            None => {
                if cold {
                    cold_lines.push(ColdLine {
                        line: c.end_line,
                        reason: marker_reason(&c.text),
                    });
                }
                // A dangling `hot` annotation binds nothing — the
                // self-check's expected-roots inventory catches roots
                // that silently detached.
            }
        }
    }

    ParsedFile { fns, cold_lines }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn finds_free_and_impl_fns() {
        let src = r#"
            pub fn free_fn(x: u32) -> u32 { x }
            struct Widget;
            impl Widget {
                pub fn method(&self) -> u32 { 1 }
            }
            impl Clone for Widget {
                fn clone(&self) -> Self { Widget }
            }
        "#;
        let p = parse(&lex(src));
        let names: Vec<(&str, Option<&str>)> = p
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.impl_type.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free_fn", None),
                ("method", Some("Widget")),
                ("clone", Some("Widget")),
            ]
        );
    }

    #[test]
    fn generic_impls_resolve_to_the_for_type() {
        let src = r#"
            impl<T: Clone> From<Vec<T>> for Holder<T> {
                fn from(v: Vec<T>) -> Self { Holder(v) }
            }
            impl<C> Runner<C> where C: Send {
                fn run(&self) {}
            }
        "#;
        let p = parse(&lex(src));
        assert_eq!(p.fns[0].impl_type.as_deref(), Some("Holder"));
        assert_eq!(p.fns[1].impl_type.as_deref(), Some("Runner"));
    }

    #[test]
    fn hot_and_cold_bind_to_items_or_lines() {
        let src = r#"
            // amlint: hot
            pub fn ingest(&mut self) {}

            // amlint: cold
            #[inline(never)]
            fn slow_path() {}

            fn mixed(v: &mut Vec<u8>) {
                v.push(1); // amlint: cold -- amortized
            }
        "#;
        let p = parse(&lex(src));
        assert!(p.fns[0].hot && !p.fns[0].cold);
        assert!(p.fns[1].cold && !p.fns[1].hot);
        assert!(!p.fns[2].hot && !p.fns[2].cold);
        assert!(p.line_is_cold(10), "trailing cold is line-level");
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "static F: fn(u32) -> u32 = id; fn id(x: u32) -> u32 { x }";
        let p = parse(&lex(src));
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "id");
    }

    #[test]
    fn test_fns_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n #[test]\n fn check() {}\n}";
        let p = parse(&lex(src));
        assert!(!p.fns[0].is_test);
        assert!(p.fns[1].is_test);
    }
}
