//! amlint CLI — the CI gate.
//!
//! ```sh
//! cargo run -p amlint                     # human-readable findings
//! cargo run -p amlint -- --format json    # machine-readable, for results/
//! cargo run -p amlint -- --format github  # ::error workflow commands
//! cargo run -p amlint -- --self-check     # lint amlint itself + root inventory
//! ```
//!
//! Exits 0 when every finding is suppressed (or there are none), 1 on
//! any live violation, 2 on usage/IO errors.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Github,
}

struct Args {
    root: PathBuf,
    format: Format,
    quiet: bool,
    self_check: bool,
}

const USAGE: &str =
    "usage: amlint [--root PATH] [--format text|json|github] [--quiet] [--self-check]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::new(),
        format: Format::Text,
        quiet: false,
        self_check: false,
    };
    let mut root: Option<PathBuf> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root needs a path")?;
                root = Some(PathBuf::from(v));
            }
            "--format" => match it.next().as_deref() {
                Some("json") => args.format = Format::Json,
                Some("text") => args.format = Format::Text,
                Some("github") => args.format = Format::Github,
                other => {
                    return Err(format!(
                        "--format must be text, json or github, got {other:?}"
                    ))
                }
            },
            "--self-check" => args.self_check = true,
            "--quiet" | "-q" => args.quiet = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    args.root = match root {
        Some(r) => r,
        None => find_workspace_root()?,
    };
    Ok(args)
}

/// Walk up from the current directory to the workspace root (the
/// directory whose Cargo.toml declares `[workspace]`). `cargo run -p
/// amlint` already starts there; this makes the binary callable from
/// any subdirectory too.
fn find_workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace Cargo.toml found above the current directory".to_string());
        }
    }
}

/// GitHub Actions workflow commands: one `::error` per live violation
/// (annotated inline on the PR diff), `::notice` for suppressed sites.
fn print_github(report: &amlint::Report) {
    for d in &report.diagnostics {
        let level = if d.suppressed { "notice" } else { "error" };
        // Workflow-command data: escape %, CR, LF per the Actions spec.
        let esc = |s: &str| {
            s.replace('%', "%25")
                .replace('\r', "%0D")
                .replace('\n', "%0A")
        };
        println!(
            "::{level} file={},line={},title=amlint {}::{}",
            esc(&d.file),
            d.line,
            d.rule,
            esc(&d.message)
        );
    }
    println!(
        "amlint: {} violation(s), {} suppressed, {} files scanned",
        report.violations(),
        report.suppressed(),
        report.files_scanned
    );
}

/// `--self-check`: amlint lints its own crate (the analyzer must pass
/// its own rules) and verifies the hot-root inventory — every root in
/// [`amlint::EXPECTED_HOT_ROOTS`] must still carry its `// amlint: hot`
/// annotation somewhere in the workspace.
fn self_check(report: &amlint::Report) -> Result<(), String> {
    let own: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| !d.suppressed && d.file.starts_with("crates/amlint/"))
        .collect();
    if !own.is_empty() {
        let mut msg = String::from("amlint fails its own rules:\n");
        for d in &own {
            msg.push_str(&format!("  {d}\n"));
        }
        return Err(msg);
    }
    let missing: Vec<&str> = amlint::EXPECTED_HOT_ROOTS
        .iter()
        .filter(|r| !report.hot_roots.iter().any(|h| h == *r))
        .copied()
        .collect();
    if !missing.is_empty() {
        return Err(format!(
            "hot-path root annotations missing (drift gate): {}\n\
             restore the `// amlint: hot` annotation or update EXPECTED_HOT_ROOTS \
             alongside the snapshot",
            missing.join(", ")
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let report = match amlint::lint_workspace(&args.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("amlint: failed to scan {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };

    if args.self_check {
        return match self_check(&report) {
            Ok(()) => {
                println!(
                    "amlint --self-check: ok ({} hot roots, own crate clean)",
                    report.hot_roots.len()
                );
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("{msg}");
                ExitCode::from(1)
            }
        };
    }

    match args.format {
        Format::Json => print!("{}", report.to_json()),
        Format::Github => print_github(&report),
        Format::Text => {
            if !args.quiet {
                for d in &report.diagnostics {
                    println!("{d}");
                }
            }
            println!(
                "amlint: {} violation(s), {} suppressed, {} files scanned",
                report.violations(),
                report.suppressed(),
                report.files_scanned
            );
        }
    }

    if report.violations() > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
