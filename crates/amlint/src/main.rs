//! amlint CLI — the CI gate.
//!
//! ```sh
//! cargo run -p amlint                   # human-readable findings
//! cargo run -p amlint -- --format json  # machine-readable, for results/
//! ```
//!
//! Exits 0 when every finding is suppressed (or there are none), 1 on
//! any live violation, 2 on usage/IO errors.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    json: bool,
    quiet: bool,
}

const USAGE: &str = "usage: amlint [--root PATH] [--format text|json] [--quiet]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::new(),
        json: false,
        quiet: false,
    };
    let mut root: Option<PathBuf> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root needs a path")?;
                root = Some(PathBuf::from(v));
            }
            "--format" => match it.next().as_deref() {
                Some("json") => args.json = true,
                Some("text") => args.json = false,
                other => return Err(format!("--format must be text or json, got {other:?}")),
            },
            "--quiet" | "-q" => args.quiet = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    args.root = match root {
        Some(r) => r,
        None => find_workspace_root()?,
    };
    Ok(args)
}

/// Walk up from the current directory to the workspace root (the
/// directory whose Cargo.toml declares `[workspace]`). `cargo run -p
/// amlint` already starts there; this makes the binary callable from
/// any subdirectory too.
fn find_workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace Cargo.toml found above the current directory".to_string());
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let report = match amlint::lint_workspace(&args.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("amlint: failed to scan {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };

    if args.json {
        print!("{}", report.to_json());
    } else {
        if !args.quiet {
            for d in &report.diagnostics {
                println!("{d}");
            }
        }
        println!(
            "amlint: {} violation(s), {} suppressed, {} files scanned",
            report.violations(),
            report.suppressed(),
            report.files_scanned
        );
    }

    if report.violations() > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
