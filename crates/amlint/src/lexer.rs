//! A small self-contained Rust lexer: just enough fidelity for the
//! amlint rules.
//!
//! The lexer produces a flat token stream with line numbers plus a
//! side-channel of comments (rules need comments for `// SAFETY:` and
//! `// amlint: allow(..)` handling, but no rule should ever match
//! *inside* one). It understands the parts of the language where a
//! naive scanner would misfire:
//!
//! * line and (nested) block comments,
//! * string / raw-string / byte-string literals (`"…"`, `r#"…"#`,
//!   `b"…"`) and char literals vs. lifetimes (`'a'` vs `'a`),
//! * multi-character operators (`==`, `!=`, `->`, `..=`, …) so rules
//!   can tell `-` from `->`,
//! * float vs. integer literals (R3 keys on float literals) without
//!   swallowing range expressions like `0..2`.
//!
//! It is *not* a parser: rules operate on token adjacency plus a
//! brace-matching pass, which is exactly the level of rigor the five
//! invariants need.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Int,
    Float,
    Str,
    Char,
    Lifetime,
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// One comment (line or block), with the line span it covers.
#[derive(Debug, Clone)]
pub struct Comment {
    pub start_line: u32,
    pub end_line: u32,
    pub text: String,
}

/// Lexer output: tokens plus comments.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Multi-character punctuation, longest first so greedy matching works.
const MULTI_PUNCT: &[&str] = &[
    "..=", "<<=", ">>=", "...", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Lex `source` into tokens and comments. The lexer never fails: on a
/// malformed construct it degrades to single-character punctuation,
/// which at worst makes a rule miss — it never aborts the whole lint.
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    while i < bytes.len() {
        let c = bytes[i] as char;

        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }

        // Line comment.
        if c == '/' && bytes.get(i + 1) == Some(&b'/') {
            let start = i;
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            out.comments.push(Comment {
                start_line: line,
                end_line: line,
                text: source[start..i].to_string(),
            });
            continue;
        }

        // Block comment (nested).
        if c == '/' && bytes.get(i + 1) == Some(&b'*') {
            let start = i;
            let start_line = line;
            let mut depth = 1u32;
            i += 2;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == b'\n' {
                    line += 1;
                    i += 1;
                } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            out.comments.push(Comment {
                start_line,
                end_line: line,
                text: source[start..i.min(bytes.len())].to_string(),
            });
            continue;
        }

        // Raw / byte string prefixes: r"…", r#"…"#, b"…", br#"…"#.
        if (c == 'r' || c == 'b') && is_string_prefix(bytes, i) {
            let (consumed, newlines) = lex_prefixed_string(bytes, i);
            out.tokens.push(Token {
                kind: TokKind::Str,
                text: String::new(), // rules never look inside strings
                line,
            });
            line += newlines;
            i += consumed;
            continue;
        }

        // Plain string literal.
        if c == '"' {
            let (consumed, newlines) = lex_quoted(bytes, i, b'"');
            out.tokens.push(Token {
                kind: TokKind::Str,
                text: String::new(),
                line,
            });
            line += newlines;
            i += consumed;
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            if let Some(consumed) = char_literal_len(bytes, i) {
                out.tokens.push(Token {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                });
                i += consumed;
            } else {
                // Lifetime: 'ident
                let mut j = i + 1;
                while j < bytes.len() && is_ident_continue(bytes[j]) {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Lifetime,
                    text: source[i..j].to_string(),
                    line,
                });
                i = j;
            }
            continue;
        }

        // Identifier / keyword.
        if is_ident_start(bytes[i]) {
            let mut j = i + 1;
            while j < bytes.len() && is_ident_continue(bytes[j]) {
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::Ident,
                text: source[i..j].to_string(),
                line,
            });
            i = j;
            continue;
        }

        // Number literal.
        if bytes[i].is_ascii_digit() {
            let (j, kind) = lex_number(bytes, i);
            out.tokens.push(Token {
                kind,
                text: source[i..j].to_string(),
                line,
            });
            i = j;
            continue;
        }

        // Punctuation: longest operator first.
        let rest = &source[i..];
        let mut matched = false;
        for op in MULTI_PUNCT {
            if rest.starts_with(op) {
                out.tokens.push(Token {
                    kind: TokKind::Punct,
                    text: (*op).to_string(),
                    line,
                });
                i += op.len();
                matched = true;
                break;
            }
        }
        if !matched {
            out.tokens.push(Token {
                kind: TokKind::Punct,
                text: c.to_string(),
                line,
            });
            i += c.len_utf8();
        }
    }

    out
}

fn is_ident_start(b: u8) -> bool {
    b == b'_' || (b as char).is_ascii_alphabetic()
}

fn is_ident_continue(b: u8) -> bool {
    b == b'_' || (b as char).is_ascii_alphanumeric()
}

/// Does `r`/`b` at `i` start a (raw/byte) string literal rather than an
/// identifier like `raw_bytes`?
fn is_string_prefix(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if j < bytes.len() && bytes[j] == b'r' {
        j += 1;
        while j < bytes.len() && bytes[j] == b'#' {
            j += 1;
        }
    }
    // After optional b / r## prefix there must be an opening quote, and
    // the prefix must not be part of a longer identifier (e.g. `rows`).
    j < bytes.len() && bytes[j] == b'"' && j > i
}

/// Length in bytes + newline count of a string starting with `b`/`r`
/// prefixes at `i`.
fn lex_prefixed_string(bytes: &[u8], i: usize) -> (usize, u32) {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    let raw = j < bytes.len() && bytes[j] == b'r';
    let mut hashes = 0usize;
    if raw {
        j += 1;
        while j < bytes.len() && bytes[j] == b'#' {
            hashes += 1;
            j += 1;
        }
    }
    debug_assert!(j < bytes.len() && bytes[j] == b'"');
    if raw {
        // Scan to `"` followed by `hashes` '#' characters, no escapes.
        j += 1;
        let mut newlines = 0u32;
        while j < bytes.len() {
            if bytes[j] == b'\n' {
                newlines += 1;
                j += 1;
            } else if bytes[j] == b'"' && bytes[j + 1..].iter().take(hashes).all(|&b| b == b'#') {
                j += 1 + hashes;
                return (j - i, newlines);
            } else {
                j += 1;
            }
        }
        (j - i, newlines)
    } else {
        let (consumed, newlines) = lex_quoted(bytes, j, b'"');
        (j - i + consumed, newlines)
    }
}

/// Length + newlines of a quoted literal with escape handling, starting
/// at the opening quote.
fn lex_quoted(bytes: &[u8], i: usize, quote: u8) -> (usize, u32) {
    let mut j = i + 1;
    let mut newlines = 0u32;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'\n' => {
                newlines += 1;
                j += 1;
            }
            b if b == quote => {
                j += 1;
                return (j - i, newlines);
            }
            _ => j += 1,
        }
    }
    (j - i, newlines)
}

/// If `'` at `i` begins a char literal, its byte length; `None` means
/// it is a lifetime.
fn char_literal_len(bytes: &[u8], i: usize) -> Option<usize> {
    let next = *bytes.get(i + 1)?;
    if next == b'\\' {
        // Escaped char: scan to closing quote.
        let mut j = i + 2;
        if j < bytes.len() {
            j += 1; // the escaped character itself
        }
        // \u{…} escapes.
        while j < bytes.len() && bytes[j] != b'\'' && bytes[j] != b'\n' {
            j += 1;
        }
        return (bytes.get(j) == Some(&b'\'')).then_some(j + 1 - i);
    }
    // 'x' is a char literal; 'x (no closing quote) is a lifetime. A
    // multi-byte UTF-8 scalar is also possible; find the next quote
    // within a few bytes.
    for (j, &b) in bytes
        .iter()
        .enumerate()
        .take((i + 6).min(bytes.len()))
        .skip(i + 2)
    {
        if b == b'\'' {
            return Some(j + 1 - i);
        }
        if b & 0x80 != 0x80 && j == i + 2 {
            break;
        }
    }
    if is_ident_start(next) {
        None // lifetime
    } else {
        Some(2) // degenerate; treat as punctuation-ish char
    }
}

/// Lex a number starting at a digit. Returns end index and kind. Floats
/// require a digit after the dot (so `0..2` stays two ints and a
/// range), or an exponent, or an explicit f32/f64 suffix.
fn lex_number(bytes: &[u8], i: usize) -> (usize, TokKind) {
    let mut j = i;
    let mut kind = TokKind::Int;
    // Radix prefixes never produce floats.
    if bytes[j] == b'0' && matches!(bytes.get(j + 1), Some(b'x' | b'b' | b'o')) {
        j += 2;
        while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
            j += 1;
        }
        return (j, TokKind::Int);
    }
    while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'_') {
        j += 1;
    }
    if j + 1 < bytes.len() && bytes[j] == b'.' && bytes[j + 1].is_ascii_digit() {
        kind = TokKind::Float;
        j += 1;
        while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'_') {
            j += 1;
        }
    }
    if j < bytes.len() && (bytes[j] == b'e' || bytes[j] == b'E') {
        let mut k = j + 1;
        if k < bytes.len() && (bytes[k] == b'+' || bytes[k] == b'-') {
            k += 1;
        }
        if k < bytes.len() && bytes[k].is_ascii_digit() {
            kind = TokKind::Float;
            j = k;
            while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'_') {
                j += 1;
            }
        }
    }
    // Type suffix (u32, i64, f64, usize, …).
    let suffix_start = j;
    while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
        j += 1;
    }
    if bytes[suffix_start..j].starts_with(b"f32") || bytes[suffix_start..j].starts_with(b"f64") {
        kind = TokKind::Float;
    }
    (j, kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn operators_lex_greedily() {
        assert_eq!(
            texts("a == b -> c - d"),
            ["a", "==", "b", "->", "c", "-", "d"]
        );
        assert_eq!(texts("0..2"), ["0", "..", "2"]);
    }

    #[test]
    fn floats_vs_ranges() {
        let lexed = lex("let x = 1.5 + 2e9; let r = 0..10; let f = 3f64;");
        let floats: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Float)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(floats, ["1.5", "2e9", "3f64"]);
    }

    #[test]
    fn comments_are_side_channel() {
        let lexed = lex("let a = 1; // amlint: allow(R1) -- reason\n/* block\nspan */ let b = 2;");
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("allow(R1)"));
        assert_eq!(lexed.comments[1].start_line, 2);
        assert_eq!(lexed.comments[1].end_line, 3);
        assert!(lexed.tokens.iter().all(|t| t.text != "allow"));
    }

    #[test]
    fn strings_and_chars_do_not_leak_tokens() {
        let lexed = lex(r#"let s = "unwrap() - tstamp"; let c = '-'; let r = r"a - b";"#);
        assert!(lexed
            .tokens
            .iter()
            .all(|t| t.text != "unwrap" && t.text != "tstamp"));
        let minus = lexed.tokens.iter().filter(|t| t.text == "-").count();
        assert_eq!(minus, 0);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 3);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("/* outer /* inner */ still */ after");
        assert_eq!(lexed.tokens.len(), 1);
        assert_eq!(lexed.tokens[0].text, "after");
    }
}
