//! The five amlint rules, evaluated over the token stream.
//!
//! Every rule is a lexical/structural approximation of a project
//! invariant (see README.md § "Static analysis & invariants"):
//!
//! * **R1** — no `unwrap()` / `expect()` / `panic!` / `todo!` /
//!   `unimplemented!` in hot-path modules outside `#[cfg(test)]`.
//! * **R2** — arithmetic on 32-bit INT ingress/egress timestamps must
//!   use `wrapping_*` operations (the paper's INT report carries 32-bit
//!   ns counters that wrap every ~4.3 s). Keys on identifiers that
//!   contain `tstamp` or `stamp32`.
//! * **R3** — no direct `==` / `!=` against floating-point literals
//!   (feature values are f64; exact comparison is how unclamped NaN and
//!   ULP noise sneak into the ensemble vote).
//! * **R4** — no lock guard held across a channel `.send(` / `.recv(`
//!   in the threaded runtime (`runtime.rs`, `sharded.rs`): a blocked
//!   bounded channel plus a held lock is the classic pipeline deadlock.
//! * **R5** — `unsafe` only in `shims/`, and every occurrence there
//!   must carry a `// SAFETY:` comment.
//!
//! Rules run on tokens — never inside comments or string literals — and
//! skip `#[cfg(test)]` / `#[test]` items where noted.

use crate::lexer::{Comment, Lexed, TokKind, Token};
use crate::{Diagnostic, FileClass};

/// Hot-path modules for R1 (workspace-relative path suffixes). The
/// sFlow agent and datagram codec joined the list when the telemetry-
/// generic event layer put them on the live ingest path; the ingest
/// server and the mailbox it publishes through joined when the socket
/// front end made them the first thing a wire datagram touches.
const HOT_PATH_FILES: &[&str] = &[
    "crates/core/src/pipeline.rs",
    "crates/core/src/batch.rs",
    "crates/core/src/runtime.rs",
    "crates/core/src/modules.rs",
    "crates/core/src/source.rs",
    "crates/core/src/event.rs",
    "crates/core/src/db.rs",
    "crates/core/src/mailbox.rs",
    "crates/core/src/epoch.rs",
    "crates/core/src/drift.rs",
    "crates/features/src/sharded.rs",
    "crates/features/src/table.rs",
    "crates/ingest/src/lib.rs",
    "crates/int/src/hops.rs",
    "crates/int/src/report.rs",
    "crates/int/src/collector.rs",
    "crates/int/src/metadata.rs",
    "crates/sflow/src/agent.rs",
    "crates/sflow/src/datagram.rs",
];

/// Files where R4 (lock-across-send) applies.
const R4_FILES: &[&str] = &[
    "crates/core/src/runtime.rs",
    "crates/core/src/modules.rs",
    "crates/core/src/epoch.rs",
    "crates/core/src/source.rs",
    "crates/core/src/event.rs",
    "crates/core/src/mailbox.rs",
    "crates/features/src/sharded.rs",
    "crates/ingest/src/lib.rs",
    "crates/sflow/src/agent.rs",
    "crates/sflow/src/datagram.rs",
];

/// Is this file part of the detection hot path (R1 scope)?
pub fn is_hot_path(rel: &str) -> bool {
    HOT_PATH_FILES.contains(&rel) || rel.starts_with("crates/ml/src/")
}

/// Does R4 apply to this file?
pub fn r4_applies(rel: &str) -> bool {
    R4_FILES.contains(&rel)
}

/// Inclusive line spans covered by `#[cfg(test)]` / `#[test]` items.
pub fn test_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        // Match an outer attribute `#[ … ]` (skip inner `#![ … ]`).
        if tokens[i].text == "#" && tokens.get(i + 1).is_some_and(|t| t.text == "[") {
            let (attr_end, is_test) = scan_attr(tokens, i + 1);
            if is_test {
                // Skip any further attributes between this one and the item.
                let mut j = attr_end;
                while j < tokens.len()
                    && tokens[j].text == "#"
                    && tokens.get(j + 1).is_some_and(|t| t.text == "[")
                {
                    let (next_end, _) = scan_attr(tokens, j + 1);
                    j = next_end;
                }
                let end = item_end(tokens, j);
                let start_line = tokens[i].line;
                let end_line = tokens
                    .get(end.saturating_sub(1))
                    .map_or(start_line, |t| t.line);
                spans.push((start_line, end_line));
                i = end;
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    spans
}

/// Scan an attribute starting at its `[` token; returns (index one past
/// the closing `]`, attribute-mentions-test).
fn scan_attr(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut is_test = false;
    let mut j = open;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return (j + 1, is_test);
                }
            }
            // `test` marks a test item — except under `not(test)`,
            // which marks the opposite.
            "test" if tokens[j].kind == TokKind::Ident => {
                let negated = j >= 2 && tokens[j - 1].text == "(" && tokens[j - 2].text == "not";
                if !negated {
                    is_test = true;
                }
            }
            _ => {}
        }
        j += 1;
    }
    (j, is_test)
}

/// One past the end of the item starting at `start`: the matching `}`
/// of the first top-level brace, or the first top-level `;`.
fn item_end(tokens: &[Token], start: usize) -> usize {
    let mut brace = 0i32;
    let mut entered = false;
    let mut j = start;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "{" => {
                brace += 1;
                entered = true;
            }
            "}" => {
                brace -= 1;
                if entered && brace == 0 {
                    return j + 1;
                }
            }
            ";" if !entered && brace == 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    j
}

fn in_spans(spans: &[(u32, u32)], line: u32) -> bool {
    spans.iter().any(|&(a, b)| line >= a && line <= b)
}

/// Evaluate every applicable rule; returns raw (pre-suppression)
/// diagnostics.
pub fn check(rel: &str, class: FileClass, lexed: &Lexed) -> Vec<Diagnostic> {
    let tokens = &lexed.tokens;
    let spans = test_spans(tokens);
    let mut diags = Vec::new();

    let lib_code = class == FileClass::Library;

    if lib_code && is_hot_path(rel) {
        r1_no_panics(rel, tokens, &spans, &mut diags);
    }
    if lib_code {
        r2_wrapping_timestamps(rel, tokens, &spans, &mut diags);
        r3_no_float_eq(rel, tokens, &spans, &mut diags);
    }
    if lib_code && r4_applies(rel) {
        r4_no_lock_across_channel(rel, tokens, &spans, &mut diags);
    }
    // R5 applies everywhere, tests included: unsafe in a test is still
    // unsafe, and shim tests need SAFETY comments like shim code does.
    r5_unsafe_policy(rel, class, tokens, &lexed.comments, &mut diags);

    diags.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.rule.cmp(b.rule)));
    diags
}

fn diag(rel: &str, line: u32, rule: &'static str, message: String) -> Diagnostic {
    Diagnostic {
        file: rel.to_string(),
        line,
        rule,
        message,
        suppressed: false,
        suppress_reason: None,
    }
}

/// R1: panicking constructs in hot-path modules.
fn r1_no_panics(rel: &str, tokens: &[Token], spans: &[(u32, u32)], out: &mut Vec<Diagnostic>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || in_spans(spans, t.line) {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| tokens[p].text.as_str());
        let next = tokens.get(i + 1).map(|n| n.text.as_str());
        match t.text.as_str() {
            "unwrap" | "expect" if prev == Some(".") && next == Some("(") => {
                out.push(diag(
                    rel,
                    t.line,
                    "R1",
                    format!(
                        "`.{}()` in hot-path module: return a typed error or add a suppression",
                        t.text
                    ),
                ));
            }
            "panic" | "todo" | "unimplemented" if next == Some("!") => {
                out.push(diag(
                    rel,
                    t.line,
                    "R1",
                    format!("`{}!` in hot-path module outside #[cfg(test)]", t.text),
                ));
            }
            _ => {}
        }
    }
}

/// Does an identifier name a 32-bit INT timestamp?
fn is_timestamp_ident(t: &Token) -> bool {
    t.kind == TokKind::Ident && (t.text.contains("tstamp") || t.text.contains("stamp32"))
}

/// Non-wrapping integer methods R2 forbids on timestamps.
const NON_WRAPPING_METHODS: &[&str] = &[
    "checked_sub",
    "checked_add",
    "saturating_sub",
    "saturating_add",
    "overflowing_sub",
    "overflowing_add",
];

/// R2: timestamp arithmetic must wrap.
fn r2_wrapping_timestamps(
    rel: &str,
    tokens: &[Token],
    spans: &[(u32, u32)],
    out: &mut Vec<Diagnostic>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if !is_timestamp_ident(t) || in_spans(spans, t.line) {
            continue;
        }
        // Struct-field init / declaration (`egress_tstamp: …`) is not
        // arithmetic; `::` paths are.
        if tokens.get(i + 1).is_some_and(|n| n.text == ":") {
            continue;
        }

        // ident(.method)* chain endings: `.checked_sub(` etc.
        if tokens.get(i + 1).is_some_and(|n| n.text == ".")
            && tokens
                .get(i + 2)
                .is_some_and(|m| NON_WRAPPING_METHODS.contains(&m.text.as_str()))
        {
            out.push(diag(
                rel,
                t.line,
                "R2",
                format!(
                    "`{}` on 32-bit INT timestamp `{}`: use the wrapping_* equivalent (stamps wrap every ~4.3 s)",
                    tokens[i + 2].text, t.text
                ),
            ));
            continue;
        }

        // Binary +/- with the timestamp as the *right* operand, allowing
        // a field chain on the left of the ident (`x - h.egress_tstamp`).
        let mut left = i;
        while left >= 2 && tokens[left - 1].text == "." && tokens[left - 2].kind == TokKind::Ident {
            left -= 2;
        }
        if left >= 1 && is_plain_add_sub(&tokens[left - 1]) {
            out.push(diag(
                rel,
                t.line,
                "R2",
                format!(
                    "non-wrapping `{}` on 32-bit INT timestamp `{}`: use wrapping_sub/wrapping_add",
                    tokens[left - 1].text,
                    t.text
                ),
            ));
            continue;
        }

        // Binary +/- (or -=, +=) with the timestamp as the *left*
        // operand, allowing an `as <type>` cast in between.
        let mut right = i + 1;
        if tokens.get(right).is_some_and(|n| n.text == "as")
            && tokens
                .get(right + 1)
                .is_some_and(|n| n.kind == TokKind::Ident)
        {
            right += 2;
        }
        if tokens.get(right).is_some_and(is_plain_add_sub) {
            out.push(diag(
                rel,
                t.line,
                "R2",
                format!(
                    "non-wrapping `{}` on 32-bit INT timestamp `{}`: use wrapping_sub/wrapping_add",
                    tokens[right].text, t.text
                ),
            ));
        }
    }
}

fn is_plain_add_sub(t: &Token) -> bool {
    matches!(t.text.as_str(), "-" | "+" | "-=" | "+=")
}

/// R3: exact equality against float literals.
fn r3_no_float_eq(rel: &str, tokens: &[Token], spans: &[(u32, u32)], out: &mut Vec<Diagnostic>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Punct || (t.text != "==" && t.text != "!=") || in_spans(spans, t.line)
        {
            continue;
        }
        let float_left = i
            .checked_sub(1)
            .is_some_and(|p| tokens[p].kind == TokKind::Float);
        // Right side may carry a unary sign: `x == -1.0`.
        let mut r = i + 1;
        if tokens
            .get(r)
            .is_some_and(|n| n.text == "-" || n.text == "+")
        {
            r += 1;
        }
        let float_right = tokens.get(r).is_some_and(|n| n.kind == TokKind::Float);
        // `x == f64::NAN` is always false — a special, always-wrong case.
        let nan = tokens
            .get(i + 1)
            .zip(tokens.get(i + 3))
            .is_some_and(|(a, b)| {
                a.kind == TokKind::Ident && tokens[i + 2].text == "::" && b.text == "NAN"
            });
        if float_left || float_right || nan {
            out.push(diag(
                rel,
                t.line,
                "R3",
                format!(
                    "exact `{}` against a floating-point value: compare with a tolerance or use total_cmp / is_nan",
                    t.text
                ),
            ));
        }
    }
}

/// Guard-acquiring methods on the parking_lot shim types.
const GUARD_METHODS: &[&str] = &["lock", "read", "write"];

/// R4: no lock guard live across a channel send/recv.
fn r4_no_lock_across_channel(
    rel: &str,
    tokens: &[Token],
    spans: &[(u32, u32)],
    out: &mut Vec<Diagnostic>,
) {
    for (i, t) in tokens.iter().enumerate() {
        let acquires = t.kind == TokKind::Ident
            && GUARD_METHODS.contains(&t.text.as_str())
            && i >= 1
            && tokens[i - 1].text == "."
            && tokens.get(i + 1).is_some_and(|n| n.text == "(")
            && tokens.get(i + 2).is_some_and(|n| n.text == ")");
        if !acquires || in_spans(spans, t.line) {
            continue;
        }

        // Find the binding name: statement looks like `let [mut] g = …`.
        // Walk back to the previous `;` / `{` / `}` and inspect.
        let mut s = i;
        while s > 0 && !matches!(tokens[s - 1].text.as_str(), ";" | "{" | "}") {
            s -= 1;
        }
        let bound_name = if tokens.get(s).is_some_and(|t| t.text == "let") {
            let mut n = s + 1;
            if tokens.get(n).is_some_and(|t| t.text == "mut") {
                n += 1;
            }
            tokens
                .get(n)
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone())
        } else {
            None
        };

        // Guard lifetime: a named guard lives to the end of the current
        // block (or an explicit `drop(name)`); a temporary guard dies at
        // the end of the statement.
        let mut depth = 0i32;
        let mut j = i + 3; // past `( )`
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth < 0 {
                        break; // end of enclosing block
                    }
                }
                ";" if bound_name.is_none() && depth == 0 => break,
                "drop"
                    if bound_name.is_some()
                        && tokens.get(j + 1).is_some_and(|n| n.text == "(")
                        && tokens
                            .get(j + 2)
                            .is_some_and(|n| Some(&n.text) == bound_name.as_ref()) =>
                {
                    break
                }
                "send" | "recv"
                    if tokens[j].kind == TokKind::Ident
                        && tokens[j - 1].text == "."
                        && tokens.get(j + 1).is_some_and(|n| n.text == "(") =>
                {
                    out.push(diag(
                        rel,
                        tokens[j].line,
                        "R4",
                        format!(
                            "channel `.{}(` while the {} guard acquired on line {} is still live: drop the guard first (bounded channels block; a held lock makes that a deadlock)",
                            tokens[j].text,
                            bound_name.as_deref().map_or_else(
                                || "temporary".to_string(),
                                |n| format!("`{n}`")
                            ),
                            t.line
                        ),
                    ));
                }
                _ => {}
            }
            j += 1;
        }
    }
}

/// R5: unsafe containment + SAFETY comments.
fn r5_unsafe_policy(
    rel: &str,
    class: FileClass,
    tokens: &[Token],
    comments: &[Comment],
    out: &mut Vec<Diagnostic>,
) {
    for t in tokens {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        if class != FileClass::Shim {
            out.push(diag(
                rel,
                t.line,
                "R5",
                "`unsafe` outside shims/: the detection crates are #![forbid(unsafe_code)] territory"
                    .to_string(),
            ));
            continue;
        }
        let blessed = comments.iter().any(|c| {
            c.text.contains("SAFETY:") && c.end_line <= t.line && c.end_line + 2 >= t.line
        });
        if !blessed {
            out.push(diag(
                rel,
                t.line,
                "R5",
                "`unsafe` in shims/ without a `// SAFETY:` comment on the preceding lines"
                    .to_string(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(rel: &str, class: FileClass, src: &str) -> Vec<Diagnostic> {
        check(rel, class, &lex(src))
    }

    const HOT: &str = "crates/ml/src/tree.rs";

    #[test]
    fn test_spans_cover_cfg_test_mods() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n fn x() { a.unwrap(); }\n}\n";
        let lexed = lex(src);
        let spans = test_spans(&lexed.tokens);
        assert_eq!(spans, vec![(2, 5)]);
    }

    #[test]
    fn r1_skips_test_regions() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }\n";
        let d = run(HOT, FileClass::Library, src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "R1");
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn r1_only_fires_in_hot_paths() {
        let src = "fn live() { x.unwrap(); }";
        assert!(run("crates/sim/src/engine.rs", FileClass::Library, src).is_empty());
        assert_eq!(run(HOT, FileClass::Library, src).len(), 1);
    }

    #[test]
    fn r1_catches_macros_but_not_lookalikes() {
        let src =
            "fn f() { panic!(\"x\"); todo!(); std::panic::catch_unwind(|| {}); v.unwrap_or(0); }";
        let d = run(HOT, FileClass::Library, src);
        assert_eq!(d.len(), 2);
        assert!(d.iter().all(|d| d.rule == "R1"));
    }

    #[test]
    fn r2_flags_plain_and_checked_arithmetic() {
        let src = "fn f(h: &Hop) -> u32 { let a = h.egress_tstamp - h.ingress_tstamp; \
                   let b = h.egress_tstamp.checked_sub(1).unwrap_or(0); a + b }";
        let d = run("crates/int/src/metadata.rs", FileClass::Library, src);
        let rules: Vec<_> = d.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&"R2"), "got {d:?}");
        // plain `-` (left operand), plain `-` (right operand), checked_sub
        assert_eq!(d.iter().filter(|d| d.rule == "R2").count(), 3, "{d:?}");
    }

    #[test]
    fn r2_allows_wrapping_and_field_init() {
        let src = "fn f(h: &Hop) -> u32 { let m = Hop { egress_tstamp: 7, ingress_tstamp: 3 }; \
                   h.egress_tstamp.wrapping_sub(h.ingress_tstamp) }";
        let d = run("crates/int/src/metadata.rs", FileClass::Library, src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn r2_allows_cast_then_wrap_but_flags_cast_then_sub() {
        let flagged = "fn f(s: u32, t: u64) -> u64 { let x = last_tstamp as u64 - t; x }";
        let d = run("crates/int/src/report.rs", FileClass::Library, flagged);
        assert_eq!(d.iter().filter(|d| d.rule == "R2").count(), 1, "{d:?}");
    }

    #[test]
    fn r3_flags_float_literal_equality() {
        let src = "fn f(x: f64) -> bool { x == 0.0 || 1.5 != x }";
        let d = run("crates/features/src/stats.rs", FileClass::Library, src);
        assert_eq!(d.iter().filter(|d| d.rule == "R3").count(), 2, "{d:?}");
    }

    #[test]
    fn r3_allows_integer_equality_and_tests() {
        let src = "fn f(x: u32) -> bool { x == 0 }\n#[cfg(test)]\nmod t { fn g(y: f64) -> bool { y == 0.5 } }";
        let d = run("crates/features/src/stats.rs", FileClass::Library, src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn r4_flags_send_under_live_guard() {
        let src = "fn f(&self) { let g = self.state.lock(); tx.send(1).unwrap(); }";
        let d = run("crates/core/src/runtime.rs", FileClass::Library, src);
        assert!(d.iter().any(|d| d.rule == "R4"), "{d:?}");
    }

    #[test]
    fn r4_allows_dropped_guard_and_other_files() {
        let dropped = "fn f(&self) { let g = self.state.lock(); drop(g); tx.send(1); }";
        let d = run("crates/core/src/runtime.rs", FileClass::Library, dropped);
        assert!(d.iter().all(|d| d.rule != "R4"), "{d:?}");
        let other = "fn f(&self) { let g = self.state.lock(); tx.send(1); }";
        let d = run("crates/core/src/db.rs", FileClass::Library, other);
        assert!(d.iter().all(|d| d.rule != "R4"), "{d:?}");
    }

    #[test]
    fn r4_temporary_guard_dies_at_statement_end() {
        let src = "fn f(&self) { *self.cursor.lock() = 5; tx.send(1); }";
        let d = run("crates/core/src/runtime.rs", FileClass::Library, src);
        assert!(d.iter().all(|d| d.rule != "R4"), "{d:?}");
    }

    #[test]
    fn r5_flags_unsafe_outside_shims() {
        let src = "fn f() { unsafe { std::hint::unreachable_unchecked() } }";
        let d = run("crates/net/src/packet.rs", FileClass::Library, src);
        assert!(d.iter().any(|d| d.rule == "R5"), "{d:?}");
    }

    #[test]
    fn r5_requires_safety_comment_in_shims() {
        let bare = "fn f() { unsafe { imp() } }";
        let d = run("shims/bytes/src/lib.rs", FileClass::Shim, bare);
        assert!(d.iter().any(|d| d.rule == "R5"), "{d:?}");
        let blessed = "fn f() {\n // SAFETY: imp has no preconditions here\n unsafe { imp() } }";
        let d = run("shims/bytes/src/lib.rs", FileClass::Shim, blessed);
        assert!(d.is_empty(), "{d:?}");
    }
}
