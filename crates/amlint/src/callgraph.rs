//! Workspace symbol table and conservative call graph.
//!
//! Resolution is *over*-approximate with one precision valve: a method
//! call `.m(` links to every workspace function named `m` (plus a
//! precise hit when the receiver is `self` or the callee is
//! path-qualified) — except through [`GENERIC_METHODS`], the ubiquitous
//! container/codec names (`push`, `get`, `parse`, `get_u64`, …) whose
//! bare-name edges are overwhelmingly std calls and would otherwise
//! fuse unrelated crates into one reachable blob. A workspace fn with
//! such a name that really sits on the hot path opts back in with its
//! own `// amlint: hot` annotation. For everything else the graph errs
//! toward an edge too many — which forces an explicit `// amlint: cold`
//! blessing — never an edge too few, which would silently hide an
//! allocation. Three trust boundaries bound the graph:
//!
//! * `shims/` is excluded — shims model external crates; R5 is their
//!   contract and their internals are not the workspace's hot path.
//! * test-context files and `#[cfg(test)]` items are excluded.
//! * `// amlint: cold` functions stop traversal: calling into one is
//!   fine, what happens inside is by declaration off the hot path.

use crate::lexer::{TokKind, Token};
use crate::parser::{is_keyword, FnItem};
use crate::SourceFile;
use std::collections::{HashMap, VecDeque};

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub name: String,
    /// Last path segment before `::name(` — `Vec` in `Vec::new(`,
    /// the impl type for `Self::helper(`. `None` for method and free
    /// calls.
    pub qualifier: Option<String>,
    /// `.name(` form.
    pub is_method: bool,
    /// Receiver is literally `self` — resolved against the enclosing
    /// impl type first.
    pub self_receiver: bool,
    pub line: u32,
    /// Token index of the callee name (for region membership tests).
    pub tok: usize,
}

/// A function in the workspace graph.
#[derive(Debug)]
pub struct GraphFn {
    /// Index into the [`SourceFile`] slice.
    pub file: usize,
    /// Index into that file's `parsed.fns`.
    pub item: usize,
    pub calls: Vec<CallSite>,
}

/// Symbol table + call graph over the library portion of a workspace.
pub struct Workspace<'a> {
    pub files: &'a [SourceFile],
    pub fns: Vec<GraphFn>,
    by_name: HashMap<String, Vec<usize>>,
    typed: HashMap<(String, String), Vec<usize>>,
}

/// Ubiquitous std-container / codec method names: a bare-name `.m(`
/// edge via one of these is overwhelmingly a `Vec`/`VecDeque`/slice/
/// `bytes::Buf` call, so neither the R6/R8 reachability closure nor
/// the R7 lock/channel summaries propagate through them (R6 still
/// flags the allocating ones directly at the call site, and precise
/// self/path-qualified calls always propagate). A workspace fn that
/// shares one of these names and really is hot must carry its own
/// `// amlint: hot` annotation — see `HopStack::push`.
const GENERIC_METHODS: &[&str] = &[
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "len",
    "is_empty",
    "clear",
    "iter",
    "iter_mut",
    "drain",
    "extend",
    "contains",
    "push_back",
    "push_front",
    "pop_front",
    "pop_back",
    "resize",
    "reserve",
    "truncate",
    "last",
    "first",
    "next",
    "take",
    "entry",
    "keys",
    "values",
    "parse",
    "clone",
    "collect",
    "from",
    "to_string",
    "extend_from_slice",
    "get_u8",
    "get_u16",
    "get_u32",
    "get_u64",
    "get_i32",
    "get_i64",
    "put_u8",
    "put_u16",
    "put_u32",
    "put_u64",
];

impl<'a> Workspace<'a> {
    /// Build the graph from parsed files. Only `Library` files outside
    /// test spans contribute symbols and call sites.
    pub fn build(files: &'a [SourceFile]) -> Self {
        let mut fns = Vec::new();
        let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
        let mut typed: HashMap<(String, String), Vec<usize>> = HashMap::new();
        for (fi, file) in files.iter().enumerate() {
            if file.class != crate::FileClass::Library {
                continue;
            }
            for (ii, item) in file.parsed.fns.iter().enumerate() {
                if item.is_test {
                    continue;
                }
                let idx = fns.len();
                let calls = item
                    .body
                    .map(|body| extract_calls(&file.lexed.tokens, body, item, &file.parsed.fns))
                    .unwrap_or_default();
                fns.push(GraphFn {
                    file: fi,
                    item: ii,
                    calls,
                });
                by_name.entry(item.name.clone()).or_default().push(idx);
                if let Some(ty) = &item.impl_type {
                    typed
                        .entry((ty.clone(), item.name.clone()))
                        .or_default()
                        .push(idx);
                }
            }
        }
        Workspace {
            files,
            fns,
            by_name,
            typed,
        }
    }

    pub fn item(&self, f: usize) -> &FnItem {
        &self.files[self.fns[f].file].parsed.fns[self.fns[f].item]
    }

    pub fn rel(&self, f: usize) -> &str {
        &self.files[self.fns[f].file].rel
    }

    /// Tokens of `f`'s body (inside the outer braces), with nested fn
    /// items carved out so their constructs are attributed to
    /// themselves.
    pub fn body_token_indices(&self, f: usize) -> Vec<usize> {
        let g = &self.fns[f];
        let file = &self.files[g.file];
        let Some((start, end)) = file.parsed.fns[g.item].body else {
            return Vec::new();
        };
        let nested: Vec<(usize, usize)> = file
            .parsed
            .fns
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != g.item)
            .filter_map(|(_, other)| other.body)
            .filter(|(s, e)| *s > start && *e <= end)
            .collect();
        (start + 1..end.saturating_sub(1))
            .filter(|i| !nested.iter().any(|(s, e)| i >= s && i < e))
            .collect()
    }

    /// Resolve a call site to candidate callees (conservative).
    pub fn resolve(&self, call: &CallSite) -> Vec<usize> {
        if Self::is_never_workspace(call) {
            return Vec::new();
        }
        if let Some(q) = &call.qualifier {
            if let Some(hits) = self.typed.get(&(q.clone(), call.name.clone())) {
                return hits.clone();
            }
            // Typed miss. An uppercase qualifier names a concrete type,
            // so the method is external or `#[derive]`d (`Vec::new`,
            // `DatagramOutcome::default`) — linking it by bare name
            // would connect every same-named fn in the workspace. A
            // lowercase qualifier is a module path (`codec::decode_one`)
            // where a by-name match still finds the free fn.
            const PRIMITIVES: &[&str] = &[
                "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128",
                "isize", "f32", "f64", "bool", "char", "str",
            ];
            if q.chars().next().is_some_and(char::is_uppercase) || PRIMITIVES.contains(&q.as_str())
            {
                return Vec::new();
            }
            return self.by_name.get(&call.name).cloned().unwrap_or_default();
        }
        if call.self_receiver {
            // Precise: `self.helper()` against the enclosing impl.
            // (Falls through when the impl type has no such method —
            // e.g. the method lives on a trait default.)
            // Note: resolved per call below, where the caller is known.
        }
        self.by_name.get(&call.name).cloned().unwrap_or_default()
    }

    /// Like [`Workspace::resolve`], with the caller known so that
    /// `self.helper()` resolves against the caller's impl type first.
    pub fn resolve_from(&self, caller: usize, call: &CallSite) -> Vec<usize> {
        if call.qualifier.is_none() && call.self_receiver {
            if let Some(ty) = &self.item(caller).impl_type {
                if let Some(hits) = self.typed.get(&(ty.clone(), call.name.clone())) {
                    return hits.clone();
                }
            }
        }
        self.resolve(call)
    }

    /// R7-grade resolution: drop by-name method edges through
    /// ubiquitous container method names (precise edges always kept).
    pub fn resolve_strict(&self, caller: usize, call: &CallSite) -> Vec<usize> {
        if call.qualifier.is_none() && call.self_receiver {
            if let Some(ty) = &self.item(caller).impl_type {
                if let Some(hits) = self.typed.get(&(ty.clone(), call.name.clone())) {
                    return hits.clone();
                }
            }
        }
        if call.qualifier.is_none()
            && call.is_method
            && GENERIC_METHODS.contains(&call.name.as_str())
        {
            return Vec::new();
        }
        self.resolve(call)
    }

    /// Edges every resolver refuses: a free `drop(x)` is always
    /// `std::mem::drop` — Rust forbids calling `Drop::drop` directly —
    /// so linking it by name to `fn drop(&mut self)` impls is never
    /// right.
    fn is_never_workspace(call: &CallSite) -> bool {
        call.name == "drop" && !call.is_method && call.qualifier.is_none()
    }

    /// All `// amlint: hot` roots.
    pub fn hot_roots(&self) -> Vec<usize> {
        (0..self.fns.len()).filter(|&f| self.item(f).hot).collect()
    }

    /// BFS over the call graph from the hot roots, stopping at
    /// `// amlint: cold` functions. Returns `fn -> parent` (roots map
    /// to themselves), enough to reconstruct one shortest call path
    /// for diagnostics.
    pub fn hot_reachable(&self) -> HashMap<usize, usize> {
        let mut parent: HashMap<usize, usize> = HashMap::new();
        let mut queue = VecDeque::new();
        for root in self.hot_roots() {
            parent.insert(root, root);
            queue.push_back(root);
        }
        while let Some(f) = queue.pop_front() {
            let calls = self.fns[f].calls.clone();
            for call in &calls {
                for callee in self.resolve_strict(f, call) {
                    if self.item(callee).cold || parent.contains_key(&callee) {
                        continue;
                    }
                    parent.insert(callee, f);
                    queue.push_back(callee);
                }
            }
        }
        parent
    }

    /// `root → … → f` as `a::b::c` style display names.
    pub fn path_to(&self, parents: &HashMap<usize, usize>, f: usize) -> String {
        let mut chain = vec![f];
        let mut cur = f;
        while let Some(&p) = parents.get(&cur) {
            if p == cur {
                break;
            }
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        chain
            .iter()
            .map(|&x| self.display_name(x))
            .collect::<Vec<_>>()
            .join(" -> ")
    }

    pub fn display_name(&self, f: usize) -> String {
        let item = self.item(f);
        match &item.impl_type {
            Some(ty) => format!("{ty}::{}", item.name),
            None => item.name.clone(),
        }
    }
}

/// Extract call sites from a body token range, skipping nested fn
/// bodies (they are their own graph nodes).
fn extract_calls(
    tokens: &[Token],
    body: (usize, usize),
    item: &FnItem,
    siblings: &[FnItem],
) -> Vec<CallSite> {
    let (start, end) = body;
    let nested: Vec<(usize, usize)> = siblings
        .iter()
        .filter(|other| other.line != item.line || other.name != item.name)
        .filter_map(|other| other.body)
        .filter(|(s, e)| *s > start && *e <= end)
        .collect();
    let mut out = Vec::new();
    let mut i = start + 1;
    let body_end = end.saturating_sub(1);
    while i < body_end {
        if let Some((s, e)) = nested.iter().find(|(s, e)| i >= *s && i < *e) {
            debug_assert!(s < e);
            i = *e;
            continue;
        }
        let t = &tokens[i];
        if t.kind == TokKind::Ident && !is_keyword(&t.text) && t.text != "self" && t.text != "Self"
        {
            // Optional turbofish between name and the argument list:
            // `collect::<Vec<_>>(` / `try_into::<u16>(`.
            let mut after = i + 1;
            if tokens.get(after).is_some_and(|n| n.text == "::")
                && tokens.get(after + 1).is_some_and(|n| n.text == "<")
            {
                after = crate::parser::skip_angles(tokens, after + 1);
            }
            if tokens.get(after).is_some_and(|n| n.text == "(") {
                let prev = i.checked_sub(1).map(|p| tokens[p].text.as_str());
                match prev {
                    Some(".") => {
                        let self_receiver = i >= 2 && tokens[i - 2].text == "self";
                        out.push(CallSite {
                            name: t.text.clone(),
                            qualifier: None,
                            is_method: true,
                            self_receiver,
                            line: t.line,
                            tok: i,
                        });
                    }
                    Some("::") => {
                        let mut qualifier = None;
                        if i >= 2 && tokens[i - 2].kind == TokKind::Ident {
                            let q = tokens[i - 2].text.as_str();
                            qualifier = Some(if q == "Self" {
                                item.impl_type.clone().unwrap_or_else(|| "Self".into())
                            } else {
                                q.to_string()
                            });
                        }
                        out.push(CallSite {
                            name: t.text.clone(),
                            qualifier,
                            is_method: false,
                            self_receiver: false,
                            line: t.line,
                            tok: i,
                        });
                    }
                    Some("fn") => {} // the item's own signature (nested fn heads are carved out)
                    _ => {
                        out.push(CallSite {
                            name: t.text.clone(),
                            qualifier: None,
                            is_method: false,
                            self_receiver: false,
                            line: t.line,
                            tok: i,
                        });
                    }
                }
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile::new(rel.to_string(), src)
    }

    fn ws_fixture() -> Vec<SourceFile> {
        vec![
            file(
                "crates/a/src/lib.rs",
                r#"
                pub struct Hot;
                impl Hot {
                    // amlint: hot
                    pub fn root(&self) { helper(); self.local(); }
                    fn local(&self) { Other::leaf(); }
                }
                "#,
            ),
            file(
                "crates/b/src/lib.rs",
                r#"
                pub fn helper() { frozen(); }
                // amlint: cold
                pub fn frozen() { hidden(); }
                fn hidden() {}
                pub struct Other;
                impl Other {
                    pub fn leaf() {}
                }
                "#,
            ),
        ]
    }

    #[test]
    fn reachability_crosses_files_and_stops_at_cold() {
        let files = ws_fixture();
        let ws = Workspace::build(&files);
        let reach = ws.hot_reachable();
        let names: Vec<String> = {
            let mut v: Vec<String> = reach.keys().map(|&f| ws.display_name(f)).collect();
            v.sort();
            v
        };
        assert_eq!(names, ["Hot::local", "Hot::root", "Other::leaf", "helper"]);
        // `frozen` is cold (stopped), `hidden` is behind it.
        assert!(!names.iter().any(|n| n == "frozen" || n == "hidden"));
    }

    #[test]
    fn paths_reconstruct_for_diagnostics() {
        let files = ws_fixture();
        let ws = Workspace::build(&files);
        let reach = ws.hot_reachable();
        let leaf = (0..ws.fns.len())
            .find(|&f| ws.display_name(f) == "Other::leaf")
            .unwrap();
        assert_eq!(
            ws.path_to(&reach, leaf),
            "Hot::root -> Hot::local -> Other::leaf"
        );
    }

    #[test]
    fn turbofish_calls_are_extracted() {
        let files = vec![file(
            "crates/a/src/lib.rs",
            "fn f(v: &[u8]) { let _: Vec<u8> = v.iter().copied().collect::<Vec<u8>>(); }",
        )];
        let ws = Workspace::build(&files);
        assert!(ws.fns[0].calls.iter().any(|c| c.name == "collect"));
    }

    #[test]
    fn lint_files_smoke() {
        let d = crate::lint_files(&[("crates/a/src/lib.rs", "fn ok() {}")]);
        assert!(d.is_empty());
    }
}
