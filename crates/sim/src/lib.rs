//! Discrete-event P4-style programmable dataplane simulator.
//!
//! The paper runs on Tofino-based Edgecore Wedge switches in the AmLight
//! production network and on a physical testbed (paper Fig. 6). We cannot
//! have that hardware, so this crate provides the substitute substrate:
//! switches with match-action forwarding and per-port FIFO egress queues,
//! connected by rate/delay links, driven by a discrete-event engine.
//!
//! What matters for the reproduction is that the simulator produces the
//! *same telemetry* a Tofino INT pipeline would export per hop:
//!
//! * ingress timestamp (ns) — when the packet enters the switch,
//! * egress timestamp (ns) — when the packet leaves the egress queue,
//! * queue occupancy — queue depth **when the packet is removed from the
//!   queue** (the paper's wording, matching Tofino's `deq_qdepth`).
//!
//! Timestamps are carried as `u64` internally; the INT layer truncates to
//! 32 bits on export, reproducing the 4.294967296 s wraparound the paper
//! discusses in §V.

// Compiler-enforced arm of amlint rule R5: unsafe stays in shims/.
#![forbid(unsafe_code)]

pub mod clock;
pub mod engine;
pub mod queue;
pub mod switch;
pub mod topology;

pub use clock::TelemetryClock;
pub use engine::{DropRecord, HopRecord, NetworkSim, PacketJourney, SimReport};
pub use queue::{EgressQueue, QueueConfig};
pub use switch::{Switch, SwitchConfig, SwitchId};
pub use topology::{HostId, LinkParams, PortId, Topology};
