//! The programmable switch model: match-action forwarding plus per-port
//! egress queues.
//!
//! A real P4 switch runs a parser, match-action pipeline, and traffic
//! manager. Our model keeps exactly what the telemetry pipeline observes:
//! a fixed ingress-pipeline latency, a destination-IP exact-match
//! forwarding table (the match-action stage), and one [`EgressQueue`] per
//! port (the traffic manager).

use crate::queue::{EgressQueue, QueueConfig};
use crate::topology::PortId;
use amlight_net::flow::FnvHashMap;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Index of a switch within its [`crate::topology::Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SwitchId(pub u32);

/// Static configuration of a switch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchConfig {
    /// Ingress parsing + match-action latency applied to every packet,
    /// before it reaches the egress queue. Tofino pipelines sit in the
    /// hundreds of nanoseconds.
    pub pipeline_latency_ns: u64,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        Self {
            pipeline_latency_ns: 450,
        }
    }
}

/// A switch instance: forwarding table + egress queues.
#[derive(Debug)]
pub struct Switch {
    pub id: SwitchId,
    pub name: String,
    pub config: SwitchConfig,
    /// Exact-match table: destination IP → egress port. This plays the
    /// role of the P4 match-action stage; AmLight's production tables are
    /// richer, but destination-based forwarding is all the experiments
    /// exercise.
    table: FnvHashMap<Ipv4Addr, PortId>,
    queues: Vec<EgressQueue>,
}

impl Switch {
    pub fn new(id: SwitchId, name: impl Into<String>, config: SwitchConfig) -> Self {
        Self {
            id,
            name: name.into(),
            config,
            table: FnvHashMap::default(),
            queues: Vec::new(),
        }
    }

    /// Add an egress port; returns its id.
    pub fn add_port(&mut self, queue: QueueConfig) -> PortId {
        let id = PortId(self.queues.len() as u16);
        self.queues.push(EgressQueue::new(queue));
        id
    }

    pub fn port_count(&self) -> usize {
        self.queues.len()
    }

    /// Install (or replace) a forwarding entry.
    pub fn set_route(&mut self, dst: Ipv4Addr, port: PortId) {
        assert!(
            (port.0 as usize) < self.queues.len(),
            "route points at nonexistent port {port:?} on {}",
            self.name
        );
        self.table.insert(dst, port);
    }

    /// Match-action lookup: egress port for a destination, if any.
    #[inline]
    pub fn lookup(&self, dst: Ipv4Addr) -> Option<PortId> {
        self.table.get(&dst).copied()
    }

    pub fn route_count(&self) -> usize {
        self.table.len()
    }

    #[inline]
    pub fn queue_mut(&mut self, port: PortId) -> &mut EgressQueue {
        &mut self.queues[port.0 as usize]
    }

    pub fn queue(&self, port: PortId) -> &EgressQueue {
        &self.queues[port.0 as usize]
    }

    /// Total tail-drops across all ports.
    pub fn total_drops(&self) -> u64 {
        self.queues.iter().map(|q| q.drops()).sum()
    }

    pub fn queues_mut(&mut self) -> impl Iterator<Item = (PortId, &mut EgressQueue)> {
        self.queues
            .iter_mut()
            .enumerate()
            .map(|(i, q)| (PortId(i as u16), q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sw() -> Switch {
        Switch::new(SwitchId(0), "sw0", SwitchConfig::default())
    }

    #[test]
    fn ports_are_sequential() {
        let mut s = sw();
        let p0 = s.add_port(QueueConfig::default());
        let p1 = s.add_port(QueueConfig::default());
        assert_eq!(p0, PortId(0));
        assert_eq!(p1, PortId(1));
        assert_eq!(s.port_count(), 2);
    }

    #[test]
    fn lookup_hits_and_misses() {
        let mut s = sw();
        let p = s.add_port(QueueConfig::default());
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        s.set_route(dst, p);
        assert_eq!(s.lookup(dst), Some(p));
        assert_eq!(s.lookup(Ipv4Addr::new(10, 0, 0, 3)), None);
        assert_eq!(s.route_count(), 1);
    }

    #[test]
    fn set_route_replaces() {
        let mut s = sw();
        let p0 = s.add_port(QueueConfig::default());
        let p1 = s.add_port(QueueConfig::default());
        let dst = Ipv4Addr::new(1, 1, 1, 1);
        s.set_route(dst, p0);
        s.set_route(dst, p1);
        assert_eq!(s.lookup(dst), Some(p1));
        assert_eq!(s.route_count(), 1);
    }

    #[test]
    #[should_panic(expected = "nonexistent port")]
    fn route_to_missing_port_panics() {
        let mut s = sw();
        s.set_route(Ipv4Addr::new(1, 1, 1, 1), PortId(3));
    }

    #[test]
    fn default_pipeline_latency_is_sub_microsecond() {
        assert!(SwitchConfig::default().pipeline_latency_ns < 1_000);
    }
}
