//! The discrete-event engine: drives a packet [`Trace`] through a
//! [`Topology`] and records per-hop telemetry for every packet.
//!
//! Event ordering is a global min-heap on (time, sequence); per-port queue
//! state is updated analytically by [`crate::queue::EgressQueue`], which requires (and
//! receives) arrivals in non-decreasing time order.

use crate::queue::Enqueued;
use crate::switch::SwitchId;
use crate::topology::{Endpoint, Topology};
use amlight_net::{Trace, TrafficClass};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One switch traversal's telemetry — the exact fields the paper's INT
/// collection module reads (§III-1): ingress time, egress time, queue
/// occupancy at dequeue. Times are full-width here; the INT crate
/// truncates to 32 bits at export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HopRecord {
    pub switch: SwitchId,
    pub ingress_ns: u64,
    pub egress_ns: u64,
    pub qdepth: u32,
}

impl HopRecord {
    /// Per-hop latency (ingress to egress), ns.
    pub fn hop_latency_ns(&self) -> u64 {
        self.egress_ns - self.ingress_ns
    }
}

/// A packet's full path through the network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PacketJourney {
    /// Index into the driving trace.
    pub trace_idx: u32,
    pub class: TrafficClass,
    pub hops: Vec<HopRecord>,
    /// Delivery time at the destination host, if it made it.
    pub delivered_ns: Option<u64>,
}

/// Where and why a packet died.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DropRecord {
    pub trace_idx: u32,
    pub switch: SwitchId,
    pub at_ns: u64,
    pub reason: DropReason,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// Egress queue full (tail drop).
    QueueFull,
    /// No forwarding entry for the destination.
    NoRoute,
}

/// Output of a simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    pub journeys: Vec<PacketJourney>,
    pub drops: Vec<DropRecord>,
    /// Wall-clock span of the run (first injection to last delivery), ns.
    pub horizon_ns: u64,
}

impl SimReport {
    pub fn delivered_count(&self) -> usize {
        self.journeys
            .iter()
            .filter(|j| j.delivered_ns.is_some())
            .count()
    }

    /// Mean end-to-end latency over delivered packets, ns.
    pub fn mean_latency_ns(&self) -> f64 {
        let mut sum = 0u128;
        let mut n = 0u64;
        for j in &self.journeys {
            if let (Some(first), Some(done)) = (j.hops.first(), j.delivered_ns) {
                sum += u128::from(done - first.ingress_ns);
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Arrival {
    at_ns: u64,
    seq: u64,
    switch: SwitchId,
    pkt: u32,
    hop: u16,
}

impl Ord for Arrival {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at_ns, self.seq).cmp(&(other.at_ns, other.seq))
    }
}

impl PartialOrd for Arrival {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The simulator: owns a topology and runs traces through it.
pub struct NetworkSim {
    topology: Topology,
    /// Safety valve against forwarding loops (misconfigured tables).
    pub max_hops: u16,
}

impl NetworkSim {
    pub fn new(topology: Topology) -> Self {
        Self {
            topology,
            max_hops: 32,
        }
    }

    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    pub fn into_topology(self) -> Topology {
        self.topology
    }

    /// Run `trace` through the network. The trace must be time-sorted.
    pub fn run(&mut self, trace: &Trace) -> SimReport {
        assert!(trace.is_sorted(), "trace must be sorted by timestamp");

        let records = trace.records();
        let mut journeys: Vec<PacketJourney> = records
            .iter()
            .enumerate()
            .map(|(i, r)| PacketJourney {
                trace_idx: i as u32,
                class: r.class,
                hops: Vec::with_capacity(2),
                delivered_ns: None,
            })
            .collect();
        let mut drops = Vec::new();
        let mut heap: BinaryHeap<Reverse<Arrival>> = BinaryHeap::with_capacity(records.len());
        let mut seq = 0u64;

        // Seed: every packet arrives at its source host's switch.
        for (i, rec) in records.iter().enumerate() {
            let Some(src_host) = self.topology.host_by_ip(rec.packet.ip.src) else {
                continue; // spoofed source with no host: inject at target's switch side
            };
            let Some((sw, _)) = src_host.attachment else {
                continue;
            };
            heap.push(Reverse(Arrival {
                at_ns: rec.ts_ns,
                seq,
                switch: sw,
                pkt: i as u32,
                hop: 0,
            }));
            seq += 1;
        }

        // Spoofed-source packets (SYN floods use randomized sources) are
        // injected at the switch of the *first* host whose subnet they do
        // not match — in our lab topologies everything enters via the
        // source agent's switch, so fall back to switch 0.
        for (i, rec) in records.iter().enumerate() {
            if self.topology.host_by_ip(rec.packet.ip.src).is_none() {
                heap.push(Reverse(Arrival {
                    at_ns: rec.ts_ns,
                    seq,
                    switch: SwitchId(0),
                    pkt: i as u32,
                    hop: 0,
                }));
                seq += 1;
            }
        }

        // Tag layout for queue bookkeeping: packet index << 16 | hop index.
        let mut serviced = Vec::with_capacity(64);
        let mut horizon = 0u64;

        while let Some(Reverse(ev)) = heap.pop() {
            horizon = horizon.max(ev.at_ns);
            if ev.hop >= self.max_hops {
                continue; // loop guard; counted as undelivered
            }
            let rec = &records[ev.pkt as usize];
            let dst = rec.packet.ip.dst;
            let sw_id = ev.switch;
            let pipeline = self.topology.switch(sw_id).config.pipeline_latency_ns;

            let Some(out_port) = self.topology.switch(sw_id).lookup(dst) else {
                drops.push(DropRecord {
                    trace_idx: ev.pkt,
                    switch: sw_id,
                    at_ns: ev.at_ns,
                    reason: DropReason::NoRoute,
                });
                continue;
            };

            let enq_time = ev.at_ns + pipeline;
            let bytes = rec.packet.wire_len();
            let tag = (u64::from(ev.pkt) << 16) | u64::from(ev.hop);

            serviced.clear();
            let result = self.topology.switch_mut(sw_id).queue_mut(out_port).enqueue(
                tag,
                enq_time,
                bytes,
                &mut serviced,
            );
            Self::apply_serviced(&mut journeys, &serviced);

            match result {
                Enqueued::Dropped => {
                    drops.push(DropRecord {
                        trace_idx: ev.pkt,
                        switch: sw_id,
                        at_ns: enq_time,
                        reason: DropReason::QueueFull,
                    });
                }
                Enqueued::Accepted { depart_ns } => {
                    // Record the hop now; egress/qdepth are patched when the
                    // queue reports service completion.
                    journeys[ev.pkt as usize].hops.push(HopRecord {
                        switch: sw_id,
                        ingress_ns: ev.at_ns,
                        egress_ns: depart_ns, // provisional; equals final depart
                        qdepth: u32::MAX,     // patched by apply_serviced
                    });
                    let delay = self.topology.link_delay(sw_id, out_port);
                    let next_at = depart_ns + delay;
                    horizon = horizon.max(next_at);
                    match self.topology.peer(sw_id, out_port) {
                        Some(Endpoint::Switch { sw: next_sw, .. }) => {
                            heap.push(Reverse(Arrival {
                                at_ns: next_at,
                                seq,
                                switch: next_sw,
                                pkt: ev.pkt,
                                hop: ev.hop + 1,
                            }));
                            seq += 1;
                        }
                        Some(Endpoint::Host(_)) => {
                            journeys[ev.pkt as usize].delivered_ns = Some(next_at);
                        }
                        None => { /* port not cabled: packet falls off the world */ }
                    }
                }
            }
        }

        // Drain every queue so all qdepth fields are final.
        for sw in self.topology.switches_mut() {
            for (_port, q) in sw.queues_mut() {
                serviced.clear();
                q.flush_all(&mut serviced);
                Self::apply_serviced(&mut journeys, &serviced);
            }
        }

        debug_assert!(
            journeys
                .iter()
                .flat_map(|j| &j.hops)
                .all(|h| h.qdepth != u32::MAX),
            "every accepted hop must receive its final qdepth"
        );

        SimReport {
            journeys,
            drops,
            horizon_ns: horizon,
        }
    }

    fn apply_serviced(journeys: &mut [PacketJourney], serviced: &[crate::queue::Serviced]) {
        for s in serviced {
            let pkt = (s.tag >> 16) as usize;
            let hop = (s.tag & 0xffff) as usize;
            let h = &mut journeys[pkt].hops[hop];
            h.egress_ns = s.depart_ns;
            h.qdepth = s.qdepth;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkParams;
    use amlight_net::{PacketBuilder, PacketRecord, TrafficClass};
    use std::net::Ipv4Addr;

    fn testbed_trace(n: u64, gap_ns: u64) -> Trace {
        let b = PacketBuilder::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2));
        (0..n)
            .map(|i| PacketRecord {
                ts_ns: i * gap_ns,
                packet: b.tcp_syn(40000 + (i % 10) as u16, 80, i as u32),
                class: TrafficClass::Benign,
            })
            .collect()
    }

    #[test]
    fn single_packet_traverses_testbed() {
        let (topo, _, _) = Topology::testbed();
        let mut sim = NetworkSim::new(topo);
        let report = sim.run(&testbed_trace(1, 0));
        assert_eq!(report.journeys.len(), 1);
        let j = &report.journeys[0];
        assert_eq!(j.hops.len(), 1);
        assert!(j.delivered_ns.is_some());
        let h = &j.hops[0];
        assert!(h.egress_ns > h.ingress_ns);
        assert_eq!(h.qdepth, 0);
        assert!(report.drops.is_empty());
    }

    #[test]
    fn spaced_packets_see_empty_queue() {
        let (topo, _, _) = Topology::testbed();
        let mut sim = NetworkSim::new(topo);
        // 1 ms apart at 100 Gb/s: queue always drains.
        let report = sim.run(&testbed_trace(50, 1_000_000));
        assert!(report.journeys.iter().all(|j| j.hops[0].qdepth == 0));
        assert_eq!(report.delivered_count(), 50);
    }

    #[test]
    fn burst_raises_qdepth() {
        let (topo, _, _) = Topology::testbed();
        let mut sim = NetworkSim::new(topo);
        // All packets at t=0: the k-th dequeues with n-1-k behind it.
        let report = sim.run(&testbed_trace(10, 0));
        let depths: Vec<u32> = report.journeys.iter().map(|j| j.hops[0].qdepth).collect();
        assert_eq!(depths[0], 9);
        assert_eq!(depths[9], 0);
    }

    #[test]
    fn chain_records_one_hop_per_switch() {
        let (topo, _, _) = Topology::linear_chain(3, LinkParams::default());
        let mut sim = NetworkSim::new(topo);
        let report = sim.run(&testbed_trace(5, 10_000));
        for j in &report.journeys {
            assert_eq!(j.hops.len(), 3, "three switches, three hops");
            assert!(j.delivered_ns.is_some());
            // Hops in time order, monotone.
            for w in j.hops.windows(2) {
                assert!(w[1].ingress_ns >= w[0].egress_ns);
            }
        }
    }

    #[test]
    fn hop_latency_includes_queueing() {
        let (topo, _, _) = Topology::testbed();
        let mut sim = NetworkSim::new(topo);
        let report = sim.run(&testbed_trace(100, 0));
        // Later packets in the burst wait longer.
        let first = report.journeys[0].hops[0].hop_latency_ns();
        let last = report.journeys[99].hops[0].hop_latency_ns();
        assert!(last > first);
    }

    #[test]
    fn no_route_is_reported() {
        let mut topo = Topology::new();
        let sw = topo.add_switch("s", Default::default());
        let h = topo.add_host("h", Ipv4Addr::new(10, 0, 0, 1));
        topo.attach_host(h, sw, LinkParams::default());
        topo.compute_routes();
        let mut sim = NetworkSim::new(topo);
        // Destination 10.0.0.2 has no host → no route.
        let report = sim.run(&testbed_trace(1, 0));
        assert_eq!(report.drops.len(), 1);
        assert_eq!(report.drops[0].reason, DropReason::NoRoute);
        assert_eq!(report.delivered_count(), 0);
    }

    #[test]
    fn queue_overflow_drops_and_counts() {
        let mut topo = Topology::new();
        let sw = topo.add_switch("s", Default::default());
        let src = topo.add_host("src", Ipv4Addr::new(10, 0, 0, 1));
        let dst = topo.add_host("dst", Ipv4Addr::new(10, 0, 0, 2));
        // Tiny slow queue: 1 Mb/s, 2-packet capacity.
        let slow = LinkParams {
            delay_ns: 0,
            queue: crate::queue::QueueConfig {
                rate_bps: 1_000_000,
                capacity_pkts: 2,
            },
        };
        topo.attach_host(src, sw, LinkParams::default());
        topo.attach_host(dst, sw, slow);
        topo.compute_routes();
        let mut sim = NetworkSim::new(topo);
        let report = sim.run(&testbed_trace(10, 0));
        assert!(!report.drops.is_empty());
        assert!(report
            .drops
            .iter()
            .all(|d| d.reason == DropReason::QueueFull));
        assert_eq!(report.delivered_count() + report.drops.len(), 10);
    }

    #[test]
    fn spoofed_sources_enter_at_switch_zero() {
        let (topo, _, _) = Topology::testbed();
        let mut sim = NetworkSim::new(topo);
        let b = PacketBuilder::new(Ipv4Addr::new(203, 0, 113, 5), Ipv4Addr::new(10, 0, 0, 2));
        let trace: Trace = (0..3)
            .map(|i| PacketRecord {
                ts_ns: i * 1000,
                packet: b.tcp_syn(1000 + i as u16, 80, 0),
                class: TrafficClass::SynFlood,
            })
            .collect();
        let report = sim.run(&trace);
        assert_eq!(report.delivered_count(), 3);
    }

    #[test]
    fn report_latency_statistics() {
        let (topo, _, _) = Topology::testbed();
        let mut sim = NetworkSim::new(topo);
        let report = sim.run(&testbed_trace(10, 1_000_000));
        let lat = report.mean_latency_ns();
        // pipeline 450 + tx (~5ns for 54B at 100G) + link 2000
        assert!(lat > 2_000.0 && lat < 10_000.0, "latency {lat}");
    }
}
