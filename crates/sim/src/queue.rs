//! Per-port FIFO egress queue with Tofino-style `deq_qdepth` accounting.
//!
//! The queue is simulated analytically rather than with per-packet events:
//! because service is FIFO at a fixed line rate, a packet's service-start
//! and departure times are fully determined at enqueue time. The only
//! subtlety is **queue occupancy at dequeue** — the paper's "queue depth
//! when the packet is removed from the queue" — which depends on *later*
//! arrivals. We therefore keep dequeued-but-unreported packets in a window
//! and report them lazily, once every arrival that could still be standing
//! behind them has been observed. Arrivals must be fed in non-decreasing
//! time order (the event engine guarantees this).

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Configuration of one egress queue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueConfig {
    /// Line rate in bits per second (e.g. 100 Gb/s on the testbed NICs).
    pub rate_bps: u64,
    /// Tail-drop threshold in packets.
    pub capacity_pkts: usize,
}

impl Default for QueueConfig {
    fn default() -> Self {
        Self {
            rate_bps: 100_000_000_000,
            capacity_pkts: 1024,
        }
    }
}

impl QueueConfig {
    /// Serialization time for a packet of `bytes` length at this line rate.
    #[inline]
    pub fn tx_time_ns(&self, bytes: usize) -> u64 {
        // ns = bits / (bits/s) * 1e9, computed in integer math with
        // rounding up so zero-length packets still cost one tick.
        let bits = (bytes as u64) * 8;
        (bits * 1_000_000_000).div_ceil(self.rate_bps).max(1)
    }
}

/// Result of offering a packet to the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enqueued {
    /// Accepted; packet will depart at `depart_ns`.
    Accepted { depart_ns: u64 },
    /// Tail-dropped: queue was at capacity.
    Dropped,
}

/// A completed service record, reported once occupancy is known.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Serviced {
    /// Opaque tag supplied at enqueue (the engine stores journey indices).
    pub tag: u64,
    /// When the packet started transmission (was "removed from the queue").
    pub service_start_ns: u64,
    /// When the last bit left the port.
    pub depart_ns: u64,
    /// Queue depth observed at dequeue — packets still waiting behind it.
    pub qdepth: u32,
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    tag: u64,
    arrival_ns: u64,
    service_start_ns: u64,
    depart_ns: u64,
}

/// FIFO egress queue. See module docs for the reporting discipline.
#[derive(Debug, Clone)]
pub struct EgressQueue {
    cfg: QueueConfig,
    /// Port becomes free at this time.
    busy_until_ns: u64,
    /// Packets enqueued and not yet *reported* (some may have already
    /// started service; they remain until occupancy is determinable).
    window: VecDeque<InFlight>,
    /// Number of packets in `window` that have not started service as of
    /// the last arrival processed — used for tail-drop decisions.
    drops: u64,
    enqueued: u64,
    /// Running peak of reported qdepth, for diagnostics.
    peak_qdepth: u32,
}

impl EgressQueue {
    pub fn new(cfg: QueueConfig) -> Self {
        Self {
            cfg,
            busy_until_ns: 0,
            window: VecDeque::new(),
            drops: 0,
            enqueued: 0,
            peak_qdepth: 0,
        }
    }

    pub fn config(&self) -> &QueueConfig {
        &self.cfg
    }

    pub fn drops(&self) -> u64 {
        self.drops
    }

    pub fn enqueued(&self) -> u64 {
        self.enqueued
    }

    pub fn peak_qdepth(&self) -> u32 {
        self.peak_qdepth
    }

    /// Number of packets waiting (not yet in service) at time `t_ns`.
    fn backlog_at(&self, t_ns: u64) -> usize {
        // Waiting = enqueued with service_start > t (service hasn't begun).
        self.window
            .iter()
            .filter(|p| p.service_start_ns > t_ns)
            .count()
    }

    /// Offer a packet of `bytes` length arriving at `arrival_ns`.
    ///
    /// `out` receives any packets whose occupancy became final because of
    /// this arrival (their service started strictly before `arrival_ns`).
    /// Arrivals must be fed in non-decreasing time order.
    pub fn enqueue(
        &mut self,
        tag: u64,
        arrival_ns: u64,
        bytes: usize,
        out: &mut Vec<Serviced>,
    ) -> Enqueued {
        // Report every packet that started service before this arrival:
        // nothing arriving from now on can stand behind them at their
        // dequeue instant.
        self.flush_before(arrival_ns, out);

        if self.backlog_at(arrival_ns) >= self.cfg.capacity_pkts {
            self.drops += 1;
            return Enqueued::Dropped;
        }

        let service_start = self.busy_until_ns.max(arrival_ns);
        let depart = service_start + self.cfg.tx_time_ns(bytes);
        self.busy_until_ns = depart;
        self.window.push_back(InFlight {
            tag,
            arrival_ns,
            service_start_ns: service_start,
            depart_ns: depart,
        });
        self.enqueued += 1;
        Enqueued::Accepted { depart_ns: depart }
    }

    /// Report all packets whose service starts strictly before `t_ns`.
    fn flush_before(&mut self, t_ns: u64, out: &mut Vec<Serviced>) {
        while let Some(front) = self.window.front() {
            if front.service_start_ns >= t_ns {
                break;
            }
            let p = *front;
            // Occupancy at dequeue: packets already arrived but not yet in
            // service at p's service start. All of them are behind p in the
            // window (FIFO), and all arrivals ≤ p.service_start have been
            // fed already (arrival order + service_start < t guarantees it).
            let qdepth = self
                .window
                .iter()
                .skip(1)
                .filter(|q| q.arrival_ns <= p.service_start_ns)
                .count() as u32;
            self.peak_qdepth = self.peak_qdepth.max(qdepth);
            out.push(Serviced {
                tag: p.tag,
                service_start_ns: p.service_start_ns,
                depart_ns: p.depart_ns,
                qdepth,
            });
            self.window.pop_front();
        }
    }

    /// Drain every remaining packet (end of simulation).
    pub fn flush_all(&mut self, out: &mut Vec<Serviced>) {
        self.flush_before(u64::MAX, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1 Gb/s → a 1000-byte packet takes 8 µs to serialize.
    fn gig() -> QueueConfig {
        QueueConfig {
            rate_bps: 1_000_000_000,
            capacity_pkts: 4,
        }
    }

    fn drain(q: &mut EgressQueue) -> Vec<Serviced> {
        let mut out = Vec::new();
        q.flush_all(&mut out);
        out
    }

    #[test]
    fn tx_time_scales_with_length_and_rate() {
        let cfg = gig();
        assert_eq!(cfg.tx_time_ns(1000), 8_000);
        assert_eq!(cfg.tx_time_ns(125), 1_000);
        let fast = QueueConfig {
            rate_bps: 100_000_000_000,
            capacity_pkts: 1,
        };
        assert_eq!(fast.tx_time_ns(1250), 100);
        // Zero-length still costs a tick.
        assert_eq!(cfg.tx_time_ns(0), 1);
    }

    #[test]
    fn idle_queue_services_immediately_with_zero_depth() {
        let mut q = EgressQueue::new(gig());
        let mut out = Vec::new();
        let r = q.enqueue(7, 1_000, 1000, &mut out);
        assert_eq!(r, Enqueued::Accepted { depart_ns: 9_000 });
        let s = drain(&mut q);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].tag, 7);
        assert_eq!(s[0].service_start_ns, 1_000);
        assert_eq!(s[0].qdepth, 0);
    }

    #[test]
    fn burst_builds_queue_and_qdepth_counts_waiters() {
        let mut q = EgressQueue::new(gig());
        let mut out = Vec::new();
        // Three packets arrive back-to-back at t=0; each takes 8 µs.
        for tag in 0..3 {
            q.enqueue(tag, 0, 1000, &mut out);
        }
        let s = drain(&mut q);
        assert_eq!(s.len(), 3);
        // First dequeues at t=0 with 2 behind it; second at 8µs with 1;
        // third at 16µs with 0.
        assert_eq!(s[0].qdepth, 2);
        assert_eq!(s[1].qdepth, 1);
        assert_eq!(s[2].qdepth, 0);
        assert_eq!(s[0].service_start_ns, 0);
        assert_eq!(s[1].service_start_ns, 8_000);
        assert_eq!(s[2].service_start_ns, 16_000);
        assert_eq!(q.peak_qdepth(), 2);
    }

    #[test]
    fn qdepth_excludes_late_arrivals() {
        let mut q = EgressQueue::new(gig());
        let mut out = Vec::new();
        q.enqueue(0, 0, 1000, &mut out); // services at 0
                                         // Arrives while packet 0 is in service — was NOT in the queue when
                                         // packet 0 was removed from it. This enqueue flushes packet 0 into
                                         // `out`.
        q.enqueue(1, 4_000, 1000, &mut out);
        out.extend(drain(&mut q));
        assert_eq!(out[0].qdepth, 0, "late arrival must not count");
        assert_eq!(out[1].service_start_ns, 8_000);
        assert_eq!(out[1].qdepth, 0);
    }

    #[test]
    fn tail_drop_at_capacity() {
        let mut q = EgressQueue::new(gig()); // capacity 4 waiting
        let mut out = Vec::new();
        // t=0: first goes straight to service; next 4 wait; 6th drops.
        let mut results = Vec::new();
        for tag in 0..6 {
            results.push(q.enqueue(tag, 0, 1000, &mut out));
        }
        assert!(matches!(results[4], Enqueued::Accepted { .. }));
        assert_eq!(results[5], Enqueued::Dropped);
        assert_eq!(q.drops(), 1);
        assert_eq!(q.enqueued(), 5);
        let s = drain(&mut q);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn queue_drains_and_accepts_again() {
        let mut q = EgressQueue::new(gig());
        let mut out = Vec::new();
        for tag in 0..5 {
            q.enqueue(tag, 0, 1000, &mut out);
        }
        assert_eq!(q.enqueue(99, 0, 1000, &mut out), Enqueued::Dropped);
        // After the backlog clears (5 × 8 µs), new arrivals are accepted.
        let r = q.enqueue(100, 50_000, 1000, &mut out);
        assert!(matches!(r, Enqueued::Accepted { .. }));
        assert_eq!(q.drops(), 1);
    }

    #[test]
    fn flush_reports_in_fifo_order() {
        let mut q = EgressQueue::new(gig());
        let mut out = Vec::new();
        q.enqueue(10, 0, 500, &mut out);
        q.enqueue(11, 100, 500, &mut out);
        q.enqueue(12, 40_000, 500, &mut out); // triggers flush of 10, 11
        assert_eq!(out.iter().map(|s| s.tag).collect::<Vec<_>>(), vec![10, 11]);
        let rest = drain(&mut q);
        assert_eq!(rest[0].tag, 12);
    }

    #[test]
    fn departures_never_overlap() {
        let mut q = EgressQueue::new(QueueConfig {
            rate_bps: 1_000_000_000,
            capacity_pkts: 64,
        });
        let mut out = Vec::new();
        for tag in 0..20 {
            q.enqueue(tag, tag * 100, 1500, &mut out);
        }
        let s = drain(&mut q);
        for pair in s.windows(2) {
            assert!(pair[1].service_start_ns >= pair[0].depart_ns);
        }
    }
}
