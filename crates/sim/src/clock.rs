//! The telemetry clock and its 32-bit wraparound arithmetic.
//!
//! The paper (§V) highlights a real INT deployment pain point: the INT
//! timestamp is "limited to 32 bits in nanoseconds, which effectively
//! restarts every 4.3 seconds", making inter-arrival times derived from
//! consecutive egress timestamps "susceptible to errors". We model the
//! full-width clock in the simulator and expose the truncated view here so
//! higher layers can (and do) hit the same artifact.

use serde::{Deserialize, Serialize};

/// Nanoseconds in one full wrap of the 32-bit telemetry timestamp:
/// 2³² ns ≈ 4.294967296 s — the paper's "restarts every 4.3 seconds".
pub const WRAP_PERIOD_NS: u64 = 1 << 32;

/// A nanosecond clock that exposes both the true 64-bit time and the
/// 32-bit truncated stamp a Tofino INT pipeline exports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetryClock {
    now_ns: u64,
}

impl TelemetryClock {
    pub fn new() -> Self {
        Self { now_ns: 0 }
    }

    pub fn at(now_ns: u64) -> Self {
        Self { now_ns }
    }

    /// Full-width simulation time.
    #[inline]
    pub fn now(&self) -> u64 {
        self.now_ns
    }

    /// Advance the clock; panics (in debug builds) on time travel.
    #[inline]
    pub fn advance_to(&mut self, t_ns: u64) {
        debug_assert!(t_ns >= self.now_ns, "clock moved backwards");
        self.now_ns = t_ns;
    }

    /// The 32-bit stamp INT metadata carries for the current time.
    #[inline]
    pub fn stamp32(&self) -> u32 {
        Self::truncate(self.now_ns)
    }

    /// Truncate an arbitrary 64-bit time to the 32-bit telemetry stamp.
    #[inline]
    pub fn truncate(t_ns: u64) -> u32 {
        (t_ns & 0xffff_ffff) as u32
    }

    /// Wrap-aware difference `later - earlier` between two 32-bit stamps.
    ///
    /// Correct whenever the true elapsed time is below one wrap period
    /// (4.295 s); beyond that the result aliases — exactly the error mode
    /// the paper warns about. [`stamp_delta_ns`] is the free-function form.
    #[inline]
    pub fn stamp_delta(earlier: u32, later: u32) -> u32 {
        later.wrapping_sub(earlier)
    }
}

/// Wrap-aware difference between two 32-bit stamps, in nanoseconds.
#[inline]
pub fn stamp_delta_ns(earlier: u32, later: u32) -> u64 {
    u64::from(TelemetryClock::stamp_delta(earlier, later))
}

/// Number of whole wrap periods that elapse in `span_ns` nanoseconds —
/// i.e. how many times a 32-bit stamp aliases over that span.
#[inline]
pub fn wraps_in(span_ns: u64) -> u64 {
    span_ns / WRAP_PERIOD_NS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_period_is_4_29_seconds() {
        assert_eq!(WRAP_PERIOD_NS, 4_294_967_296);
    }

    #[test]
    fn stamp_is_low_32_bits() {
        let c = TelemetryClock::at(WRAP_PERIOD_NS + 5);
        assert_eq!(c.stamp32(), 5);
        assert_eq!(TelemetryClock::truncate(u64::MAX), u32::MAX);
    }

    #[test]
    fn advance_moves_forward() {
        let mut c = TelemetryClock::new();
        c.advance_to(100);
        assert_eq!(c.now(), 100);
    }

    #[test]
    #[should_panic(expected = "clock moved backwards")]
    #[cfg(debug_assertions)]
    fn advance_rejects_time_travel() {
        let mut c = TelemetryClock::at(100);
        c.advance_to(50);
    }

    #[test]
    fn delta_without_wrap() {
        assert_eq!(TelemetryClock::stamp_delta(100, 250), 150);
    }

    #[test]
    fn delta_across_wrap_boundary() {
        // earlier stamp just before wrap, later just after
        let earlier = u32::MAX - 10;
        let later = 20u32;
        assert_eq!(TelemetryClock::stamp_delta(earlier, later), 31);
    }

    #[test]
    fn delta_aliases_beyond_one_wrap() {
        // True gap = one wrap + 7 ns: the 32-bit view reports only 7 ns.
        // This is the paper's §V error mode, reproduced on purpose.
        let t0 = 1000u64;
        let t1 = t0 + WRAP_PERIOD_NS + 7;
        let d = stamp_delta_ns(TelemetryClock::truncate(t0), TelemetryClock::truncate(t1));
        assert_eq!(d, 7);
        assert_ne!(d, t1 - t0);
    }

    #[test]
    fn wraps_in_counts_periods() {
        assert_eq!(wraps_in(0), 0);
        assert_eq!(wraps_in(WRAP_PERIOD_NS - 1), 0);
        assert_eq!(wraps_in(WRAP_PERIOD_NS), 1);
        assert_eq!(wraps_in(10 * WRAP_PERIOD_NS + 3), 10);
    }
}
