//! Network topologies: switches, hosts, links, and route computation.
//!
//! Two presets reproduce the paper's setups:
//!
//! * [`Topology::testbed`] — the Fig. 6 INT testbed: a source agent and a
//!   target agent joined by one Edgecore-class switch, 100 Gb/s links.
//! * [`Topology::linear_chain`] — the Fig. 1 source → transit → sink INT
//!   domain, used to exercise multi-hop metadata stacks.

use crate::queue::QueueConfig;
use crate::switch::{Switch, SwitchConfig, SwitchId};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Egress port index on a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PortId(pub u16);

/// Index of a host within its [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HostId(pub u32);

/// Physical link properties.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// Propagation delay, ns.
    pub delay_ns: u64,
    /// Egress queue feeding this link.
    pub queue: QueueConfig,
}

impl Default for LinkParams {
    fn default() -> Self {
        // 100 Gb/s, ~2 µs of fiber (a lab rack), 1024-packet queue.
        Self {
            delay_ns: 2_000,
            queue: QueueConfig::default(),
        }
    }
}

/// What a switch port is cabled to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    Host(HostId),
    Switch { sw: SwitchId, port: PortId },
}

/// A host (traffic source or sink).
#[derive(Debug, Clone)]
pub struct Host {
    pub id: HostId,
    pub name: String,
    pub ip: Ipv4Addr,
    /// Switch and port the host hangs off.
    pub attachment: Option<(SwitchId, PortId)>,
}

/// The network graph plus computed forwarding state.
#[derive(Debug, Default)]
pub struct Topology {
    switches: Vec<Switch>,
    hosts: Vec<Host>,
    /// `wires[sw][port]` = far end of that cable.
    wires: Vec<Vec<Option<Endpoint>>>,
    /// Per-port link delay, parallel to `wires`.
    delays: Vec<Vec<u64>>,
}

impl Topology {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add_switch(&mut self, name: impl Into<String>, config: SwitchConfig) -> SwitchId {
        let id = SwitchId(self.switches.len() as u32);
        self.switches.push(Switch::new(id, name, config));
        self.wires.push(Vec::new());
        self.delays.push(Vec::new());
        id
    }

    pub fn add_host(&mut self, name: impl Into<String>, ip: Ipv4Addr) -> HostId {
        let id = HostId(self.hosts.len() as u32);
        self.hosts.push(Host {
            id,
            name: name.into(),
            ip,
            attachment: None,
        });
        id
    }

    fn new_port(&mut self, sw: SwitchId, link: &LinkParams) -> PortId {
        let port = self.switches[sw.0 as usize].add_port(link.queue);
        self.wires[sw.0 as usize].push(None);
        self.delays[sw.0 as usize].push(link.delay_ns);
        port
    }

    /// Cable host ↔ switch. Creates the switch port.
    pub fn attach_host(&mut self, host: HostId, sw: SwitchId, link: LinkParams) -> PortId {
        let port = self.new_port(sw, &link);
        self.wires[sw.0 as usize][port.0 as usize] = Some(Endpoint::Host(host));
        self.hosts[host.0 as usize].attachment = Some((sw, port));
        port
    }

    /// Cable switch ↔ switch (full duplex: a port on each side).
    pub fn connect_switches(
        &mut self,
        a: SwitchId,
        b: SwitchId,
        link: LinkParams,
    ) -> (PortId, PortId) {
        let pa = self.new_port(a, &link);
        let pb = self.new_port(b, &link);
        self.wires[a.0 as usize][pa.0 as usize] = Some(Endpoint::Switch { sw: b, port: pb });
        self.wires[b.0 as usize][pb.0 as usize] = Some(Endpoint::Switch { sw: a, port: pa });
        (pa, pb)
    }

    pub fn switch(&self, id: SwitchId) -> &Switch {
        &self.switches[id.0 as usize]
    }

    pub fn switch_mut(&mut self, id: SwitchId) -> &mut Switch {
        &mut self.switches[id.0 as usize]
    }

    pub fn switches(&self) -> &[Switch] {
        &self.switches
    }

    pub fn switches_mut(&mut self) -> &mut [Switch] {
        &mut self.switches
    }

    pub fn host(&self, id: HostId) -> &Host {
        &self.hosts[id.0 as usize]
    }

    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    pub fn host_by_ip(&self, ip: Ipv4Addr) -> Option<&Host> {
        self.hosts.iter().find(|h| h.ip == ip)
    }

    /// Far end of a switch port, if cabled.
    pub fn peer(&self, sw: SwitchId, port: PortId) -> Option<Endpoint> {
        self.wires[sw.0 as usize][port.0 as usize]
    }

    /// Propagation delay out of a switch port.
    pub fn link_delay(&self, sw: SwitchId, port: PortId) -> u64 {
        self.delays[sw.0 as usize][port.0 as usize]
    }

    /// Populate every switch's forwarding table with shortest-path (hop
    /// count) routes toward every host, via BFS from each host's
    /// attachment switch.
    pub fn compute_routes(&mut self) {
        let host_info: Vec<(Ipv4Addr, Option<(SwitchId, PortId)>)> =
            self.hosts.iter().map(|h| (h.ip, h.attachment)).collect();
        for (ip, attachment) in host_info {
            let Some((root, root_port)) = attachment else {
                continue;
            };
            // The attachment switch forwards straight out the host port.
            self.switches[root.0 as usize].set_route(ip, root_port);
            // BFS outward; each discovered switch routes back the way we came.
            let n = self.switches.len();
            let mut visited = vec![false; n];
            visited[root.0 as usize] = true;
            let mut frontier = vec![root];
            while let Some(sw) = frontier.pop() {
                let ports = self.wires[sw.0 as usize].clone();
                for far in ports.into_iter().flatten() {
                    if let Endpoint::Switch {
                        sw: next,
                        port: far_port,
                    } = far
                    {
                        if !visited[next.0 as usize] {
                            visited[next.0 as usize] = true;
                            self.switches[next.0 as usize].set_route(ip, far_port);
                            frontier.push(next);
                        }
                    }
                }
            }
        }
    }

    /// The paper's Fig. 6 testbed: source agent ↔ switch ↔ target agent,
    /// 100 Gb/s ConnectX-5 links. Returns (topology, source, target).
    pub fn testbed() -> (Topology, HostId, HostId) {
        let mut t = Topology::new();
        let sw = t.add_switch("wedge-dcs800", SwitchConfig::default());
        let source = t.add_host("source-agent", Ipv4Addr::new(10, 0, 0, 1));
        let target = t.add_host("target-agent", Ipv4Addr::new(10, 0, 0, 2));
        let link = LinkParams::default();
        t.attach_host(source, sw, link);
        t.attach_host(target, sw, link);
        t.compute_routes();
        (t, source, target)
    }

    /// A Fig. 1-style linear INT domain: `hops` switches in a chain with a
    /// source host on the first and a sink host on the last. Returns
    /// (topology, source, target).
    pub fn linear_chain(hops: usize, link: LinkParams) -> (Topology, HostId, HostId) {
        assert!(hops >= 1, "need at least one switch");
        let mut t = Topology::new();
        let sws: Vec<SwitchId> = (0..hops)
            .map(|i| t.add_switch(format!("sw{i}"), SwitchConfig::default()))
            .collect();
        for pair in sws.windows(2) {
            t.connect_switches(pair[0], pair[1], link);
        }
        let source = t.add_host("source", Ipv4Addr::new(10, 0, 0, 1));
        let target = t.add_host("target", Ipv4Addr::new(10, 0, 0, 2));
        t.attach_host(source, sws[0], link);
        t.attach_host(target, sws[hops - 1], link);
        t.compute_routes();
        (t, source, target)
    }
}

impl Topology {
    /// A simplified AmLight intercontinental backbone (the production
    /// network of the paper's title): Miami → Fortaleza → São Paulo with
    /// a Santiago spur off São Paulo and a Cape Town spur off Fortaleza,
    /// long-haul one-way delays in the tens of milliseconds. Clients sit
    /// in Miami; the monitored web server in São Paulo.
    ///
    /// Returns (topology, miami_client_host, sao_paulo_server_host).
    pub fn amlight_backbone() -> (Topology, HostId, HostId) {
        let ms = 1_000_000u64; // ns per millisecond
        let long_haul = |delay_ms: u64| LinkParams {
            delay_ns: delay_ms * ms,
            queue: QueueConfig::default(), // 100 Gb/s waves
        };
        let mut t = Topology::new();
        let miami = t.add_switch("mia", SwitchConfig::default());
        let fortaleza = t.add_switch("for", SwitchConfig::default());
        let sao_paulo = t.add_switch("spo", SwitchConfig::default());
        let santiago = t.add_switch("scl", SwitchConfig::default());
        let cape_town = t.add_switch("cpt", SwitchConfig::default());

        // Monet / SACS / express segments, one-way propagation.
        t.connect_switches(miami, fortaleza, long_haul(32));
        t.connect_switches(fortaleza, sao_paulo, long_haul(12));
        t.connect_switches(sao_paulo, santiago, long_haul(15));
        t.connect_switches(fortaleza, cape_town, long_haul(34));

        let client = t.add_host("mia-client", Ipv4Addr::new(10, 0, 0, 1));
        let server = t.add_host("spo-server", Ipv4Addr::new(10, 0, 0, 2));
        let scl_host = t.add_host("scl-host", Ipv4Addr::new(10, 0, 1, 1));
        let cpt_host = t.add_host("cpt-host", Ipv4Addr::new(10, 0, 2, 1));
        let access = LinkParams {
            delay_ns: 50_000,
            ..LinkParams::default()
        };
        t.attach_host(client, miami, access);
        t.attach_host(server, sao_paulo, access);
        t.attach_host(scl_host, santiago, access);
        t.attach_host(cpt_host, cape_town, access);
        t.compute_routes();
        (t, client, server)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_has_one_switch_two_hosts() {
        let (t, s, d) = Topology::testbed();
        assert_eq!(t.switches().len(), 1);
        assert_eq!(t.hosts().len(), 2);
        assert_ne!(t.host(s).ip, t.host(d).ip);
        // Both hosts routable from the switch.
        let sw = t.switch(SwitchId(0));
        assert!(sw.lookup(t.host(s).ip).is_some());
        assert!(sw.lookup(t.host(d).ip).is_some());
    }

    #[test]
    fn chain_routes_point_toward_target() {
        let (t, _s, d) = Topology::linear_chain(3, LinkParams::default());
        let dst = t.host(d).ip;
        // Every switch must know a route to the target.
        for sw in t.switches() {
            assert!(sw.lookup(dst).is_some(), "{} lacks route", sw.name);
        }
        // Following the route from sw0 must reach the host in 3 hops.
        let mut at = SwitchId(0);
        for _ in 0..3 {
            let port = t.switch(at).lookup(dst).unwrap();
            match t.peer(at, port).unwrap() {
                Endpoint::Switch { sw, .. } => at = sw,
                Endpoint::Host(h) => {
                    assert_eq!(t.host(h).ip, dst);
                    return;
                }
            }
        }
        panic!("route did not terminate at target");
    }

    #[test]
    fn host_by_ip_finds_hosts() {
        let (t, s, _) = Topology::testbed();
        assert_eq!(t.host_by_ip(Ipv4Addr::new(10, 0, 0, 1)).unwrap().id, s);
        assert!(t.host_by_ip(Ipv4Addr::new(9, 9, 9, 9)).is_none());
    }

    #[test]
    fn connect_switches_is_full_duplex() {
        let mut t = Topology::new();
        let a = t.add_switch("a", SwitchConfig::default());
        let b = t.add_switch("b", SwitchConfig::default());
        let (pa, pb) = t.connect_switches(a, b, LinkParams::default());
        assert_eq!(t.peer(a, pa), Some(Endpoint::Switch { sw: b, port: pb }));
        assert_eq!(t.peer(b, pb), Some(Endpoint::Switch { sw: a, port: pa }));
    }

    #[test]
    fn link_delay_is_recorded_per_port() {
        let mut t = Topology::new();
        let a = t.add_switch("a", SwitchConfig::default());
        let h = t.add_host("h", Ipv4Addr::new(1, 1, 1, 1));
        let link = LinkParams {
            delay_ns: 123,
            ..Default::default()
        };
        let p = t.attach_host(h, a, link);
        assert_eq!(t.link_delay(a, p), 123);
    }

    #[test]
    #[should_panic(expected = "at least one switch")]
    fn zero_hop_chain_rejected() {
        let _ = Topology::linear_chain(0, LinkParams::default());
    }

    #[test]
    fn backbone_routes_span_the_ocean() {
        let (t, client, server) = Topology::amlight_backbone();
        assert_eq!(t.switches().len(), 5);
        assert_eq!(t.hosts().len(), 4);
        // Every switch can reach the monitored server.
        let dst = t.host(server).ip;
        for sw in t.switches() {
            assert!(sw.lookup(dst).is_some(), "{} lacks a route", sw.name);
        }
        // The Miami → São Paulo path is three switch hops.
        let mut at = t.host(client).attachment.unwrap().0;
        let mut hops = 0;
        loop {
            let port = t.switch(at).lookup(dst).unwrap();
            hops += 1;
            match t.peer(at, port).unwrap() {
                Endpoint::Switch { sw, .. } => at = sw,
                Endpoint::Host(h) => {
                    assert_eq!(h, server);
                    break;
                }
            }
            assert!(hops < 10, "routing loop");
        }
        assert_eq!(hops, 3, "mia → for → spo → host");
    }
}
