//! Traffic generation: a benign web-server workload model plus the four
//! attack generators of the paper's Table I (TCP SYN scan, UDP scan, TCP
//! SYN flood, SlowLoris).
//!
//! The paper captures production traffic to an AmLight web server
//! (June 6–11 2024) and injects attacks with `hping3` and a Python
//! SlowLoris script. We cannot have the capture, so this crate builds the
//! closest synthetic equivalent (see DESIGN.md §2): heavy-tailed benign
//! flows against a web server, and attack generators whose packet-level
//! signatures match the tools the paper used:
//!
//! * **SYN scan** — one SYN per destination port from one prober: each
//!   packet is its own single-packet flow of minimum size.
//! * **UDP scan** — same sweep shape with small UDP probes.
//! * **SYN flood** — line-rate minimum-size SYNs from randomized spoofed
//!   sources: an avalanche of single-packet flows that *builds queue
//!   occupancy*.
//! * **SlowLoris** — a few hundred long-lived connections trickling tiny
//!   partial-header packets: low-rate, low-footprint, the hard case.
//!
//! All generators are deterministic given a seed.

// Compiler-enforced arm of amlint rule R5: unsafe stays in shims/.
#![forbid(unsafe_code)]

pub mod attacks;
pub mod benign;
pub mod mix;
pub mod schedule;

pub use attacks::{AttackConfig, SlowLorisConfig, SynFloodConfig};
pub use benign::{BenignConfig, BenignGenerator};
pub use mix::{ReplayLibrary, TrafficMix, TrafficMixConfig};
pub use schedule::{AttackKind, Episode, EpisodeSchedule};
