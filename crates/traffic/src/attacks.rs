//! Attack generators: `hping3`-style scans and floods, plus SlowLoris.

use crate::schedule::AttackKind;
use amlight_net::{PacketBuilder, PacketRecord, TcpFlags, Trace, TrafficClass};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// SYN-flood knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SynFloodConfig {
    /// Packets per second during the episode.
    pub rate_pps: f64,
    /// Spoof source addresses uniformly (hping3 `--rand-source`). When
    /// `socket_pool` is set this is ignored.
    pub spoof_sources: bool,
    /// When set, the flood is driven by a fixed pool of `n` attacking
    /// sockets (source IP/port pairs) instead of per-packet spoofing —
    /// hping3 without `--rand-source`. The testbed replays of §IV-C use
    /// this, which is why flood packets produce flow *updates* (and thus
    /// predictions) in the paper's Table VI.
    pub socket_pool: Option<usize>,
}

impl Default for SynFloodConfig {
    /// Defaults mirror the paper's own attack simulation: `hping3` from a
    /// fixed attacker box (Table I floods target the authors' web server
    /// from their own host, not a botnet), so flood flows are
    /// multi-packet. Set `socket_pool: None` + `spoof_sources: true` for
    /// a `--rand-source` botnet-style flood (see the spoofed-flood
    /// ablation bench).
    fn default() -> Self {
        Self {
            rate_pps: 50_000.0,
            spoof_sources: true,
            socket_pool: Some(64),
        }
    }
}

/// SlowLoris knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlowLorisConfig {
    /// Number of concurrent held-open connections.
    pub connections: usize,
    /// Mean seconds between keep-alive header fragments per connection.
    pub keepalive_s: f64,
    /// Number of attacker hosts the connections spread over.
    pub attacker_hosts: usize,
    /// Seconds until the victim server gives up on a half-open request
    /// and closes it. The attacker immediately reconnects on a fresh
    /// source port — so one logical connection slot churns through many
    /// short flows, which is why most SlowLoris flows in a capture are
    /// only a handful of packets long.
    pub server_timeout_s: f64,
}

impl Default for SlowLorisConfig {
    fn default() -> Self {
        Self {
            connections: 200,
            keepalive_s: 12.0,
            attacker_hosts: 3,
            server_timeout_s: 60.0,
        }
    }
}

/// Shared attack configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackConfig {
    pub target_ip: Ipv4Addr,
    pub target_port: u16,
    /// Scan probes per second (both scan kinds).
    pub scan_rate_pps: f64,
    /// Probes sent per scanned port (scanners retransmit unanswered
    /// probes; nmap's default is 2–3 tries). Values > 1 make scan flows
    /// multi-packet, so the live pipeline can predict them.
    pub probes_per_port: usize,
    pub syn_flood: SynFloodConfig,
    pub slowloris: SlowLorisConfig,
}

impl Default for AttackConfig {
    fn default() -> Self {
        Self {
            target_ip: Ipv4Addr::new(10, 0, 0, 2),
            target_port: 80,
            scan_rate_pps: 400.0,
            probes_per_port: 3,
            syn_flood: SynFloodConfig::default(),
            slowloris: SlowLorisConfig::default(),
        }
    }
}

impl AttackConfig {
    /// Generate one episode of `kind` over `[start_ns, end_ns)`.
    pub fn generate(&self, kind: AttackKind, start_ns: u64, end_ns: u64, seed: u64) -> Trace {
        let mut rng = SmallRng::seed_from_u64(seed ^ (start_ns.rotate_left(17)));
        match kind {
            AttackKind::SynScan => self.scan(start_ns, end_ns, &mut rng, /*udp=*/ false),
            AttackKind::UdpScan => self.scan(start_ns, end_ns, &mut rng, /*udp=*/ true),
            AttackKind::SynFlood => self.syn_flood(start_ns, end_ns, &mut rng),
            AttackKind::SlowLoris => self.slowloris(start_ns, end_ns, &mut rng),
        }
    }

    /// Port sweep: `probes_per_port` minimum-size probes per destination
    /// port from a fixed prober address. The sweep advances at
    /// `scan_rate_pps` ports per second; unanswered probes retransmit
    /// with scanner-style backoff (~0.3–0.8 s, like nmap/hping retries),
    /// so each per-port flow is a short burst of small packets spread
    /// over a second or two.
    fn scan(&self, start_ns: u64, end_ns: u64, rng: &mut SmallRng, udp: bool) -> Trace {
        let prober = Ipv4Addr::new(198, 18, 0, rng.random_range(2..250));
        let builder = PacketBuilder::new(prober, self.target_ip);
        let sweep_gap_ns = (1e9 / self.scan_rate_pps) as u64;
        let class = if udp {
            TrafficClass::UdpScan
        } else {
            TrafficClass::SynScan
        };
        let src_port: u16 = rng.random_range(30000..60000);
        let tries = self.probes_per_port.max(1);

        let mut trace = Trace::new();
        let mut port_start = start_ns;
        let mut port: u16 = 1;
        while port_start < end_ns {
            let mut t = port_start;
            // Exponential retransmission backoff, as nmap/hping apply to
            // unanswered probes: ~0.4 s, then doubling per retry.
            let mut backoff_ns: u64 = rng.random_range(300_000_000..500_000_000);
            for _ in 0..tries {
                if t >= end_ns {
                    break;
                }
                // nmap-style SYN probes carry standard TCP options
                // (MSS, SACK-permitted, timestamps): 12–20 bytes, like
                // an OS stack. UDP probes carry small protocol payloads.
                let packet = if udp {
                    builder.udp(src_port, port, rng.random_range(8..24))
                } else {
                    let opts: u16 = rng.random_range(12..20);
                    builder.tcp(src_port, port, TcpFlags::SYN, rng.random(), 0, opts)
                };
                trace.push(PacketRecord {
                    ts_ns: t,
                    packet,
                    class,
                });
                t += backoff_ns;
                backoff_ns *= 2;
            }
            port = port.wrapping_add(1).max(1);
            let jitter = rng.random_range(0..sweep_gap_ns / 4 + 1);
            port_start += sweep_gap_ns + jitter - sweep_gap_ns / 8;
        }
        trace.sort();
        trace
    }

    /// SYN flood: line-rate minimum-size SYNs, randomized spoofed sources
    /// and ports (hping3 `-S --flood --rand-source`).
    fn syn_flood(&self, start_ns: u64, end_ns: u64, rng: &mut SmallRng) -> Trace {
        let gap_ns = ((1e9 / self.syn_flood.rate_pps) as u64).max(1);
        let mut trace = Trace::new();
        let mut t = start_ns;
        let mut socket = 0usize;
        while t < end_ns {
            let (src, src_port) = match self.syn_flood.socket_pool {
                Some(pool) => {
                    let n = pool.max(1);
                    let s = socket % n;
                    socket += 1;
                    (
                        Ipv4Addr::new(198, 18, 1, (1 + s / 64) as u8),
                        (20_000 + (s % 64)) as u16,
                    )
                }
                None if self.syn_flood.spoof_sources => (
                    Ipv4Addr::new(
                        rng.random_range(11..200),
                        rng.random(),
                        rng.random(),
                        rng.random_range(1..255),
                    ),
                    rng.random_range(1024..=65535),
                ),
                None => (Ipv4Addr::new(198, 18, 1, 1), rng.random_range(1024..=65535)),
            };
            let builder = PacketBuilder::new(src, self.target_ip);
            // TCP option-length variation, as for the scans.
            let pad: u16 = rng.random_range(0..12);
            let packet = builder.tcp(
                src_port,
                self.target_port,
                TcpFlags::SYN,
                rng.random(),
                0,
                pad,
            );
            trace.push(PacketRecord {
                ts_ns: t,
                packet,
                class: TrafficClass::SynFlood,
            });
            // Flood tools burst: small jitter around the nominal gap.
            t += rng.random_range(gap_ns / 2..gap_ns * 3 / 2 + 1).max(1);
        }
        trace
    }

    /// SlowLoris: `connections` concurrent slots, each holding a request
    /// open by trickling tiny partial-header fragments every
    /// `keepalive_s`. When the victim's `server_timeout_s` expires, the
    /// connection is closed and the slot reconnects on a fresh source
    /// port — so the episode produces many short-lived flows of ~3–5
    /// tiny packets each, churning for its whole duration.
    fn slowloris(&self, start_ns: u64, end_ns: u64, rng: &mut SmallRng) -> Trace {
        let cfg = &self.slowloris;
        let mut trace = Trace::new();
        let keepalive_ns = (cfg.keepalive_s * 1e9) as u64;
        let timeout_ns = (cfg.server_timeout_s * 1e9) as u64;
        let mut next_port: u32 = 10_000;
        for conn in 0..cfg.connections {
            let host = conn % cfg.attacker_hosts.max(1);
            let src = Ipv4Addr::new(198, 18, 10, (2 + host) as u8);
            // Connections ramp up over the first 10% of the episode.
            let ramp = (end_ns - start_ns) / 10;
            let mut slot_t = start_ns + rng.random_range(0..ramp.max(1));
            // Slot lifecycle: connect → trickle until the server timeout
            // → reconnect, until the episode ends.
            while slot_t < end_ns {
                let src_port = (next_port % 55_000 + 10_000) as u16;
                next_port += 1;
                let builder = PacketBuilder::new(src, self.target_ip);
                let mut seq: u32 = rng.random();
                // OS-stack SYN: 12-20 bytes of TCP options (MSS, SACK,
                // timestamps, window scale), unlike crafted scan probes.
                let opts: u16 = rng.random_range(12..20);
                trace.push(PacketRecord {
                    ts_ns: slot_t,
                    packet: builder.tcp(src_port, self.target_port, TcpFlags::SYN, seq, 0, opts),
                    class: TrafficClass::SlowLoris,
                });
                let death = (slot_t + timeout_ns).min(end_ns);
                let mut t = slot_t;
                loop {
                    let jitter = (rng.random::<f64>() - 0.5) * 0.4 * keepalive_ns as f64;
                    t += (keepalive_ns as f64 + jitter).max(1e6) as u64;
                    if t >= death {
                        break;
                    }
                    let frag: u16 = rng.random_range(5..16);
                    seq = seq.wrapping_add(u32::from(frag));
                    trace.push(PacketRecord {
                        ts_ns: t,
                        packet: builder.tcp(
                            src_port,
                            self.target_port,
                            TcpFlags::PSH | TcpFlags::ACK,
                            seq,
                            1,
                            frag,
                        ),
                        class: TrafficClass::SlowLoris,
                    });
                }
                // Reconnect shortly after the server drops the request.
                slot_t = slot_t + timeout_ns + rng.random_range(0..500_000_000);
            }
        }
        trace.sort();
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    const S: u64 = 1_000_000_000;

    fn cfg() -> AttackConfig {
        AttackConfig::default()
    }

    #[test]
    fn syn_scan_sweeps_ports_with_retries() {
        let t = cfg().generate(AttackKind::SynScan, 0, 2 * S, 1);
        assert!(t.len() > 400, "2 s at 400 pps");
        let mut per_flow: std::collections::HashMap<_, usize> = std::collections::HashMap::new();
        for r in t.iter() {
            assert_eq!(r.class, TrafficClass::SynScan);
            // 12-20 bytes of TCP options, like an OS stack.
            assert!((12..20).contains(&r.packet.payload_len), "probe options");
            assert!(r.packet.tcp_flags().unwrap().contains(TcpFlags::SYN));
            *per_flow.entry(r.packet.flow_key()).or_default() += 1;
        }
        // Default 3 probes per port; flows near the episode end get cut
        // short by the window, so require retries on a healthy fraction.
        assert!(per_flow.values().all(|&n| n <= 3));
        assert!(per_flow.values().filter(|&&n| n >= 2).count() > per_flow.len() / 4);
    }

    #[test]
    fn single_probe_scan_gives_one_packet_flows() {
        let mut c = cfg();
        c.probes_per_port = 1;
        let t = c.generate(AttackKind::SynScan, 0, S, 1);
        let mut flows = HashSet::new();
        for r in t.iter() {
            assert!(flows.insert(r.packet.flow_key()), "each probe its own flow");
        }
    }

    #[test]
    fn udp_scan_uses_udp_probes() {
        let t = cfg().generate(AttackKind::UdpScan, 0, S, 2);
        for r in t.iter() {
            assert_eq!(r.class, TrafficClass::UdpScan);
            assert!(r.packet.tcp_flags().is_none());
            assert!(r.packet.ip_len() < 60);
        }
        // Destination ports sweep (3 probes per port).
        let ports: HashSet<u16> = t.iter().map(|r| r.packet.flow_key().dst_port).collect();
        assert!(ports.len() >= t.len() / 4);
    }

    #[test]
    fn socket_pool_flood_reuses_flows() {
        let mut c = cfg();
        c.syn_flood.socket_pool = Some(8);
        let t = c.generate(AttackKind::SynFlood, 0, S / 10, 3);
        let flows: HashSet<_> = t.iter().map(|r| r.packet.flow_key()).collect();
        assert_eq!(flows.len(), 8, "fixed socket pool bounds flow count");
        assert!(t.len() > 100);
    }

    #[test]
    fn syn_flood_is_high_rate_minimum_size() {
        let t = cfg().generate(AttackKind::SynFlood, 0, S / 2, 3);
        let stats = t.stats();
        assert!(stats.pps() > 20_000.0, "flood rate {}", stats.pps());
        assert_eq!(stats.flows, 64, "default socket pool bounds flows");
        for r in t.iter() {
            // Minimum-size SYN plus up to 12 bytes of option padding.
            assert!(r.packet.ip_len() <= 52, "len {}", r.packet.ip_len());
        }
    }

    #[test]
    fn rand_source_flood_spoofs_per_packet() {
        let mut c = cfg();
        c.syn_flood.socket_pool = None;
        c.syn_flood.spoof_sources = true;
        let t = c.generate(AttackKind::SynFlood, 0, S / 2, 3);
        let sources: HashSet<Ipv4Addr> = t.iter().map(|r| r.packet.ip.src).collect();
        assert!(sources.len() > t.len() / 2, "spoofed sources must vary");
    }

    #[test]
    fn slowloris_is_low_rate_long_lived() {
        // Long episode so connections complete full lifecycles at the
        // default 12 s keepalive / 60 s server timeout.
        let t = cfg().generate(AttackKind::SlowLoris, 0, 120 * S, 4);
        let stats = t.stats();
        // 200 slots churning through ~2 lifecycles each.
        assert!(
            stats.flows >= 300 && stats.flows <= 600,
            "flows {}",
            stats.flows
        );
        assert!(
            stats.pps() < 1_000.0,
            "slowloris must be slow, got {}",
            stats.pps()
        );
        // Tiny fragments and option-bearing SYNs only.
        for r in t.iter() {
            assert!(r.packet.payload_len < 30);
        }
        // Connections persist for most of the server timeout: find a flow
        // with several packets and check its spread.
        let mut per_flow: std::collections::HashMap<_, Vec<u64>> = Default::default();
        for r in t.iter() {
            per_flow
                .entry(r.packet.flow_key())
                .or_default()
                .push(r.ts_ns);
        }
        let span = per_flow
            .values()
            .map(|ts| ts.last().unwrap() - ts.first().unwrap())
            .max()
            .unwrap();
        assert!(span > 30 * S, "longest connection span {span}");
        // Churn: flows die at the server timeout, never much past it.
        for ts in per_flow.values() {
            assert!(ts.last().unwrap() - ts.first().unwrap() <= 61 * S);
        }
    }

    #[test]
    fn episodes_respect_window() {
        for kind in AttackKind::ALL {
            let t = cfg().generate(kind, 5 * S, 7 * S, 9);
            for r in t.iter() {
                assert!(
                    r.ts_ns >= 5 * S && r.ts_ns < 7 * S,
                    "{kind:?} out of window"
                );
            }
        }
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let a = cfg().generate(AttackKind::SynFlood, 0, S / 10, 7);
        let b = cfg().generate(AttackKind::SynFlood, 0, S / 10, 7);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.records()[0], b.records()[0]);
    }

    #[test]
    fn scan_rate_configurable() {
        let mut c = cfg();
        c.scan_rate_pps = 50.0;
        let t = c.generate(AttackKind::SynScan, 0, 2 * S, 1);
        // 50 ports/s × 2 s × ≤3 tries each.
        assert!(t.len() < 350, "got {}", t.len());
        let mut fast = cfg();
        fast.scan_rate_pps = 500.0;
        let t_fast = fast.generate(AttackKind::SynScan, 0, 2 * S, 1);
        assert!(t_fast.len() > t.len() * 5);
    }
}
