//! Composing full experiment workloads: benign background plus scheduled
//! attack episodes, and the per-class replay library used on the testbed.

use crate::attacks::AttackConfig;
use crate::benign::{BenignConfig, BenignGenerator};
use crate::schedule::{AttackKind, EpisodeSchedule};
use amlight_net::{Trace, TrafficClass};
use serde::{Deserialize, Serialize};

/// Everything needed to produce the experiment capture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficMixConfig {
    pub benign: BenignConfig,
    pub attacks: AttackConfig,
    pub schedule: EpisodeSchedule,
    pub seed: u64,
}

impl TrafficMixConfig {
    /// The paper's capture, compressed: Table I schedule over two lab
    /// days of `day_len_s` seconds.
    ///
    /// Attack dynamics are scaled to the compressed clock: SlowLoris
    /// keepalives shrink from ~12 s to 0.3 s so the compressed episodes
    /// (a few seconds long) still contain full connection lifecycles.
    pub fn paper_capture(day_len_s: u64, seed: u64) -> Self {
        let attacks = AttackConfig {
            slowloris: crate::attacks::SlowLorisConfig {
                connections: 60,
                keepalive_s: 0.3,
                server_timeout_s: 2.0,
                ..Default::default()
            },
            ..Default::default()
        };
        Self {
            benign: BenignConfig::default(),
            attacks,
            schedule: EpisodeSchedule::table1(day_len_s),
            seed,
        }
    }
}

/// The composed workload generator.
#[derive(Debug, Clone)]
pub struct TrafficMix {
    cfg: TrafficMixConfig,
}

impl TrafficMix {
    pub fn new(cfg: TrafficMixConfig) -> Self {
        Self { cfg }
    }

    pub fn config(&self) -> &TrafficMixConfig {
        &self.cfg
    }

    pub fn schedule(&self) -> &EpisodeSchedule {
        &self.cfg.schedule
    }

    /// Generate the full capture: benign background over the whole window
    /// merged with every scheduled attack episode.
    pub fn generate(&self) -> Trace {
        let mut trace = BenignGenerator::new(self.cfg.benign, self.cfg.seed)
            .generate(self.cfg.schedule.window_ns);
        for (i, ep) in self.cfg.schedule.episodes.iter().enumerate() {
            let episode_trace = self.cfg.attacks.generate(
                ep.kind,
                ep.start_ns,
                ep.end_ns,
                self.cfg.seed.wrapping_add(1000 + i as u64),
            );
            trace.merge(episode_trace);
        }
        trace
    }

    /// Generate only the packets of one day (for the paper's Table IV
    /// temporal train/test split).
    pub fn generate_day(&self, day: u32) -> Trace {
        let full = self.generate();
        let day_len = self.cfg.schedule.window_ns / u64::from(self.cfg.schedule.days);
        full.slice_time(u64::from(day) * day_len, u64::from(day + 1) * day_len)
    }
}

/// Per-class replay traces for the testbed experiment (paper §IV-C.2:
/// "we replayed around 2500-packet data for each flow type").
#[derive(Debug, Clone)]
pub struct ReplayLibrary {
    pub benign: Trace,
    pub syn_scan: Trace,
    pub udp_scan: Trace,
    pub syn_flood: Trace,
    pub slowloris: Trace,
}

impl ReplayLibrary {
    /// Build per-class traces of roughly `packets_per_class` packets each.
    ///
    /// Each class is generated at its *natural* rate and then truncated —
    /// mirroring `tcpreplay` without `--pps`, which replays a pcap at its
    /// recorded pace. Time spans therefore differ wildly: a flood's
    /// 2,500 packets last a fraction of a second, a scan's span minutes
    /// (the paper's SYN-scan episode is 33 minutes long), SlowLoris
    /// trickles for minutes too. This pacing is what produces the paper's
    /// Table VI latency asymmetry.
    pub fn build(packets_per_class: usize, seed: u64) -> Self {
        // Replay floods come from a fixed socket pool (hping3 without
        // --rand-source), matching the paper's testbed where flood
        // packets produce flow updates and thus predictions (Table VI).
        // Scans retransmit so scan flows accumulate enough updates to
        // clear the 3-prediction smoothing window; the sweep advances at
        // a stealthy couple of ports per second, as the episode lengths
        // of paper Table I imply (~2,500 packets over tens of minutes).
        let attacks = AttackConfig {
            probes_per_port: 6,
            scan_rate_pps: 1.5,
            syn_flood: crate::attacks::SynFloodConfig {
                socket_pool: Some(16),
                ..Default::default()
            },
            // Real SlowLoris re-sends header fragments every ~10–15 s per
            // connection; connection count scales with the packet budget
            // so each flow clears the smoothing window.
            slowloris: crate::attacks::SlowLorisConfig {
                connections: (packets_per_class / 16).clamp(20, 150),
                ..Default::default()
            },
            ..Default::default()
        };
        // §V: the authors replay attack flows at "much lower packet rate
        // levels than we would observe in attack flows in order to run
        // experiments smoothly" — the flood replay is rate-limited.
        let mut attacks = attacks;
        attacks.syn_flood.rate_pps = 400.0;
        let s = 1_000_000_000u64;

        let cut = |mut t: Trace| {
            t.sort();
            t.records()
                .iter()
                .take(packets_per_class)
                .copied()
                .collect::<Trace>()
        };

        // Benign: replayed at the production capture's own pace — a busy
        // web server, ~100 packets per second. This is the replay that
        // saturates the prototype pipeline in the paper's Table VI.
        let benign_cfg = BenignConfig {
            flows_per_s: 12.0,
            ..Default::default()
        };
        let benign = cut(BenignGenerator::new(benign_cfg, seed).generate(300 * s));

        let scan_window = (packets_per_class as u64 * s / 4).max(120 * s);
        let syn_scan = cut(attacks.generate(AttackKind::SynScan, 0, scan_window, seed ^ 0xa1));
        let udp_scan = cut(attacks.generate(AttackKind::UdpScan, 0, scan_window, seed ^ 0xa2));
        let flood_window = (packets_per_class as u64 * s / 300).max(2 * s);
        let syn_flood = cut(attacks.generate(AttackKind::SynFlood, 0, flood_window, seed ^ 0xa3));
        let loris_window = (packets_per_class as u64 * s / 12).max(120 * s);
        let slowloris = cut(attacks.generate(AttackKind::SlowLoris, 0, loris_window, seed ^ 0xa4));

        Self {
            benign,
            syn_scan,
            udp_scan,
            syn_flood,
            slowloris,
        }
    }

    pub fn by_class(&self, class: TrafficClass) -> &Trace {
        match class {
            TrafficClass::Benign => &self.benign,
            TrafficClass::SynScan => &self.syn_scan,
            TrafficClass::UdpScan => &self.udp_scan,
            TrafficClass::SynFlood => &self.syn_flood,
            TrafficClass::SlowLoris => &self.slowloris,
        }
    }

    pub fn classes(&self) -> impl Iterator<Item = (TrafficClass, &Trace)> {
        TrafficClass::ALL
            .into_iter()
            .map(move |c| (c, self.by_class(c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_contains_all_classes() {
        let mix = TrafficMix::new(TrafficMixConfig::paper_capture(5, 11));
        let trace = mix.generate();
        let stats = trace.stats();
        for class in TrafficClass::ALL {
            assert!(
                stats.per_class.get(&class).copied().unwrap_or(0) > 0,
                "missing {class:?}"
            );
        }
        assert!(trace.is_sorted());
    }

    #[test]
    fn attack_packets_fall_inside_episodes() {
        let mix = TrafficMix::new(TrafficMixConfig::paper_capture(5, 12));
        let trace = mix.generate();
        let schedule = mix.schedule();
        for r in trace.iter() {
            if r.class != TrafficClass::Benign {
                let kind = schedule.active_at(r.ts_ns);
                assert_eq!(
                    kind.map(|k| k.class()),
                    Some(r.class),
                    "attack packet at {} outside its episode",
                    r.ts_ns
                );
            }
        }
    }

    #[test]
    fn day_slicing_partitions_capture() {
        let mix = TrafficMix::new(TrafficMixConfig::paper_capture(8, 13));
        let full = mix.generate();
        let d0 = mix.generate_day(0);
        let d1 = mix.generate_day(1);
        // Day slices jointly cover (benign flows opened near the window
        // end spill past it and are absent from both slices).
        assert!(d0.len() + d1.len() <= full.len());
        assert!(d0.len() + d1.len() >= full.len() * 4 / 5);
        // SlowLoris only on day 1.
        assert_eq!(d0.stats().per_class.get(&TrafficClass::SlowLoris), None);
        assert!(d1.stats().per_class[&TrafficClass::SlowLoris] > 0);
    }

    #[test]
    fn replay_library_sizes_match_request() {
        let lib = ReplayLibrary::build(500, 21);
        for (class, trace) in lib.classes() {
            assert!(
                trace.len() >= 300 && trace.len() <= 500,
                "{class:?} has {} packets",
                trace.len()
            );
            for r in trace.iter() {
                assert_eq!(r.class, class);
            }
        }
    }

    #[test]
    fn replay_time_spans_differ_by_class() {
        let lib = ReplayLibrary::build(1000, 22);
        let flood_span = lib.syn_flood.duration_ns();
        let loris_span = lib.slowloris.duration_ns();
        assert!(
            loris_span > flood_span * 10,
            "slowloris {loris_span} should dwarf flood {flood_span}"
        );
    }

    #[test]
    fn capture_is_seed_deterministic() {
        let a = TrafficMix::new(TrafficMixConfig::paper_capture(3, 5)).generate();
        let b = TrafficMix::new(TrafficMixConfig::paper_capture(3, 5)).generate();
        assert_eq!(a.len(), b.len());
    }
}
