//! The attack-episode schedule — paper Table I as a first-class object.

use amlight_net::TrafficClass;
use serde::{Deserialize, Serialize};

/// Attack families the paper simulates (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackKind {
    SynScan,
    UdpScan,
    SynFlood,
    SlowLoris,
}

impl AttackKind {
    pub fn class(self) -> TrafficClass {
        match self {
            AttackKind::SynScan => TrafficClass::SynScan,
            AttackKind::UdpScan => TrafficClass::UdpScan,
            AttackKind::SynFlood => TrafficClass::SynFlood,
            AttackKind::SlowLoris => TrafficClass::SlowLoris,
        }
    }

    pub fn name(self) -> &'static str {
        self.class().name()
    }

    pub const ALL: [AttackKind; 4] = [
        AttackKind::SynScan,
        AttackKind::UdpScan,
        AttackKind::SynFlood,
        AttackKind::SlowLoris,
    ];
}

/// One attack episode: kind plus a half-open time window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Episode {
    pub kind: AttackKind,
    pub start_ns: u64,
    pub end_ns: u64,
    /// Which experiment "day" the episode belongs to (0-based). The
    /// paper's zero-day split trains on day 0 and tests on day 1.
    pub day: u32,
}

impl Episode {
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }

    pub fn contains(&self, t_ns: u64) -> bool {
        t_ns >= self.start_ns && t_ns < self.end_ns
    }
}

/// An ordered set of episodes over an experiment window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpisodeSchedule {
    pub episodes: Vec<Episode>,
    /// Total window length (benign traffic runs over all of it).
    pub window_ns: u64,
    /// Number of days the window is divided into.
    pub days: u32,
}

const NS: u64 = 1_000_000_000;

impl EpisodeSchedule {
    /// The paper's Table I, compressed onto two lab "days" of
    /// `day_len_s` seconds each.
    ///
    /// Relative structure is preserved: day 0 carries the two SYN scans,
    /// two UDP scans, and two SYN floods; day 1 carries three SYN floods
    /// and the two SlowLoris episodes (the zero-day attack for the
    /// Table IV split). Durations scale with the paper's (the 33-minute
    /// scan is the longest, the 20-second flood the shortest).
    pub fn table1(day_len_s: u64) -> Self {
        let d = day_len_s * NS;
        // Episode boundaries as fractions of a day, loosely matching
        // Table I's relative spans.
        let ep = |kind, s: f64, e: f64, day: u64| Episode {
            kind,
            start_ns: (s * d as f64) as u64 + day * d,
            end_ns: (e * d as f64) as u64 + day * d,
            day: day as u32,
        };
        let episodes = vec![
            // Day 0 — June 10 in the paper.
            ep(AttackKind::SynScan, 0.05, 0.20, 0), // the long 33-min scan
            ep(AttackKind::SynScan, 0.28, 0.31, 0),
            ep(AttackKind::UdpScan, 0.33, 0.41, 0),
            ep(AttackKind::UdpScan, 0.44, 0.46, 0),
            ep(AttackKind::SynFlood, 0.60, 0.62, 0),
            ep(AttackKind::SynFlood, 0.70, 0.74, 0),
            // Day 1 — June 11.
            ep(AttackKind::SynFlood, 0.10, 0.14, 1),
            ep(AttackKind::SynFlood, 0.20, 0.21, 1),
            ep(AttackKind::SynFlood, 0.23, 0.24, 1),
            ep(AttackKind::SlowLoris, 0.40, 0.48, 1),
            ep(AttackKind::SlowLoris, 0.55, 0.70, 1),
        ];
        Self {
            episodes,
            window_ns: 2 * d,
            days: 2,
        }
    }

    /// A short smoke-test schedule: one episode of each kind in one day.
    pub fn smoke(day_len_s: u64) -> Self {
        let d = day_len_s * NS;
        let ep = |kind, s: f64, e: f64| Episode {
            kind,
            start_ns: (s * d as f64) as u64,
            end_ns: (e * d as f64) as u64,
            day: 0,
        };
        Self {
            episodes: vec![
                ep(AttackKind::SynScan, 0.10, 0.25),
                ep(AttackKind::UdpScan, 0.30, 0.45),
                ep(AttackKind::SynFlood, 0.50, 0.60),
                ep(AttackKind::SlowLoris, 0.70, 0.95),
            ],
            window_ns: d,
            days: 1,
        }
    }

    /// Episodes on a given day.
    pub fn on_day(&self, day: u32) -> impl Iterator<Item = &Episode> {
        self.episodes.iter().filter(move |e| e.day == day)
    }

    /// Which attack (if any) is active at time `t_ns`.
    pub fn active_at(&self, t_ns: u64) -> Option<AttackKind> {
        self.episodes
            .iter()
            .find(|e| e.contains(t_ns))
            .map(|e| e.kind)
    }

    /// Time boundary between day `day` and the next, ns.
    pub fn day_boundary_ns(&self, day: u32) -> u64 {
        (self.window_ns / u64::from(self.days)) * u64::from(day + 1)
    }

    /// Total attack-active time, ns.
    pub fn attack_time_ns(&self) -> u64 {
        self.episodes.iter().map(Episode::duration_ns).sum()
    }

    /// Count of episodes per attack kind.
    pub fn counts(&self) -> Vec<(AttackKind, usize)> {
        AttackKind::ALL
            .iter()
            .map(|k| (*k, self.episodes.iter().filter(|e| e.kind == *k).count()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_eleven_episodes_like_the_paper() {
        let s = EpisodeSchedule::table1(60);
        assert_eq!(s.episodes.len(), 11);
        let counts: std::collections::HashMap<_, _> = s.counts().into_iter().collect();
        assert_eq!(counts[&AttackKind::SynScan], 2);
        assert_eq!(counts[&AttackKind::UdpScan], 2);
        assert_eq!(counts[&AttackKind::SynFlood], 5);
        assert_eq!(counts[&AttackKind::SlowLoris], 2);
    }

    #[test]
    fn slowloris_only_on_day_one() {
        let s = EpisodeSchedule::table1(60);
        assert!(s.on_day(0).all(|e| e.kind != AttackKind::SlowLoris));
        assert!(s.on_day(1).any(|e| e.kind == AttackKind::SlowLoris));
    }

    #[test]
    fn episodes_are_disjoint_and_in_window() {
        let s = EpisodeSchedule::table1(60);
        let mut sorted = s.episodes.clone();
        sorted.sort_by_key(|e| e.start_ns);
        for pair in sorted.windows(2) {
            assert!(pair[0].end_ns <= pair[1].start_ns, "episodes overlap");
        }
        for e in &s.episodes {
            assert!(e.end_ns <= s.window_ns);
            assert!(e.start_ns < e.end_ns);
        }
    }

    #[test]
    fn active_at_matches_windows() {
        let s = EpisodeSchedule::smoke(100);
        let mid = |e: &Episode| (e.start_ns + e.end_ns) / 2;
        for e in &s.episodes {
            assert_eq!(s.active_at(mid(e)), Some(e.kind));
        }
        assert_eq!(s.active_at(0), None);
        assert_eq!(s.active_at(s.window_ns - 1), None);
    }

    #[test]
    fn day_boundary_splits_evenly() {
        let s = EpisodeSchedule::table1(60);
        assert_eq!(s.day_boundary_ns(0), 60 * NS);
        assert_eq!(s.day_boundary_ns(1), 120 * NS);
        // Every day-0 episode before the boundary, day-1 after.
        for e in s.on_day(0) {
            assert!(e.end_ns <= s.day_boundary_ns(0));
        }
        for e in s.on_day(1) {
            assert!(e.start_ns >= s.day_boundary_ns(0));
        }
    }

    #[test]
    fn episode_contains_is_half_open() {
        let e = Episode {
            kind: AttackKind::SynScan,
            start_ns: 100,
            end_ns: 200,
            day: 0,
        };
        assert!(e.contains(100));
        assert!(e.contains(199));
        assert!(!e.contains(200));
        assert_eq!(e.duration_ns(), 100);
    }

    #[test]
    fn attack_time_positive_but_minority() {
        let s = EpisodeSchedule::table1(60);
        let frac = s.attack_time_ns() as f64 / s.window_ns as f64;
        assert!(frac > 0.1 && frac < 0.6, "attack fraction {frac}");
    }
}
