//! The benign web-server workload model.
//!
//! Substitutes for the paper's production capture of "all traffic to this
//! server" (June 6–11 2024). Structure:
//!
//! * flow arrivals: Poisson process (exponential inter-arrival), with a
//!   mild diurnal modulation so the window isn't perfectly stationary;
//! * flow length (packets): heavy-tailed (Pareto) — most flows short,
//!   a few elephants;
//! * packet sizes: mixture of small request/ACK-sized packets and
//!   MTU-ish data segments (lognormal);
//! * within-flow inter-packet gaps: lognormal.
//!
//! Everything is seeded and deterministic.

use amlight_net::{Packet, PacketBuilder, PacketRecord, TcpFlags, Trace, TrafficClass};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Exp, LogNormal, Pareto};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Tuning knobs for the benign generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenignConfig {
    /// Web server under observation (the paper's production server).
    pub server_ip: Ipv4Addr,
    /// Mean new-flow arrival rate, flows per second.
    pub flows_per_s: f64,
    /// Pareto shape for flow length in packets (lower = heavier tail).
    pub flow_len_shape: f64,
    /// Minimum packets per flow.
    pub flow_len_min: f64,
    /// Mean of log inter-packet gap (ln ns).
    pub gap_ln_mean: f64,
    /// Std-dev of log inter-packet gap.
    pub gap_ln_std: f64,
    /// Fraction of packets that are small (requests/ACKs) vs data.
    pub small_pkt_frac: f64,
    /// Amplitude of the diurnal rate modulation (0 = stationary).
    pub diurnal_amplitude: f64,
    /// Fraction of flows that are long-poll / keepalive sessions: small
    /// packets at multi-hundred-millisecond gaps. Production web traffic
    /// always carries some of these, and they are the flows an anomaly
    /// detector confuses with low-rate attacks — the paper's benign
    /// accuracy dips to ~94 % (Table VI) for exactly this reason.
    pub keepalive_flow_frac: f64,
    /// Fraction of flows that are interactive "tinygram" sessions
    /// (SSH-over-443 style): small packets at sub-second human-paced
    /// gaps. These sit closest to low-rate attacks in feature space and
    /// are the main source of benign false alarms.
    pub tinygram_flow_frac: f64,
}

impl Default for BenignConfig {
    fn default() -> Self {
        Self {
            server_ip: Ipv4Addr::new(10, 0, 0, 2),
            flows_per_s: 40.0,
            flow_len_shape: 1.3,
            flow_len_min: 3.0,
            // exp(14.5) ns ≈ 2 ms median gap; σ=1.6 gives a heavy tail
            // reaching into seconds (idle HTTP sessions).
            gap_ln_mean: 14.5,
            gap_ln_std: 1.6,
            small_pkt_frac: 0.45,
            diurnal_amplitude: 0.3,
            keepalive_flow_frac: 0.10,
            tinygram_flow_frac: 0.04,
        }
    }
}

/// Generates benign flows over a window.
#[derive(Debug)]
pub struct BenignGenerator {
    cfg: BenignConfig,
    rng: SmallRng,
}

impl BenignGenerator {
    pub fn new(cfg: BenignConfig, seed: u64) -> Self {
        Self {
            cfg,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Deterministic client address pool: 203.0.113.0/24 and
    /// 198.51.100.0/24 (TEST-NETs), plus 192.0.2.0/24.
    fn client_ip(rng: &mut SmallRng) -> Ipv4Addr {
        let nets = [[203, 0, 113], [198, 51, 100], [192, 0, 2]];
        let net = nets[rng.random_range(0..nets.len())];
        Ipv4Addr::new(net[0], net[1], net[2], rng.random_range(2..255))
    }

    fn packet_size(&mut self) -> u16 {
        if self.rng.random_bool(self.cfg.small_pkt_frac) {
            // Requests: HTTP headers etc., 80–400 B payload.
            self.rng.random_range(80..400)
        } else {
            // Data segments: clustered near the MTU.
            let ln = LogNormal::new(7.0, 0.35).expect("valid lognormal");
            (ln.sample(&mut self.rng) as u16).clamp(200, 1460)
        }
    }

    /// Generate all benign flows whose *first packet* lands in
    /// `[0, window_ns)`. Packets may spill slightly past the window end;
    /// callers slice if they need a hard boundary.
    pub fn generate(&mut self, window_ns: u64) -> Trace {
        let mut trace = Trace::new();
        let exp = Exp::new(self.cfg.flows_per_s / 1e9).expect("positive rate");
        let flow_len =
            Pareto::new(self.cfg.flow_len_min, self.cfg.flow_len_shape).expect("valid pareto");
        let gap =
            LogNormal::new(self.cfg.gap_ln_mean, self.cfg.gap_ln_std).expect("valid lognormal");

        let mut t = 0u64;
        loop {
            // Diurnal thinning: modulate arrival acceptance by phase.
            let raw_gap = exp.sample(&mut self.rng).max(1.0);
            t += raw_gap as u64;
            if t >= window_ns {
                break;
            }
            let phase = (t as f64 / window_ns as f64) * std::f64::consts::TAU;
            let intensity = 1.0 + self.cfg.diurnal_amplitude * phase.sin();
            if self.rng.random::<f64>() > intensity / (1.0 + self.cfg.diurnal_amplitude) {
                continue;
            }
            self.emit_flow(&mut trace, t, &flow_len, &gap);
        }
        trace.sort();
        trace
    }

    fn emit_flow(
        &mut self,
        trace: &mut Trace,
        start_ns: u64,
        flow_len: &Pareto<f64>,
        gap: &LogNormal<f64>,
    ) {
        let client = Self::client_ip(&mut self.rng);
        let src_port: u16 = self.rng.random_range(1024..=65535);
        let dst_port: u16 = if self.rng.random_bool(0.7) { 443 } else { 80 };
        let builder = PacketBuilder::new(client, self.cfg.server_ip);
        let n_pkts = (flow_len.sample(&mut self.rng) as usize).clamp(1, 5_000);
        let style = self.rng.random::<f64>();
        let keepalive = style < self.cfg.keepalive_flow_frac;
        let tinygram =
            !keepalive && style < self.cfg.keepalive_flow_frac + self.cfg.tinygram_flow_frac;
        // Keepalive sessions: ~0.4 s median gaps, header-sized payloads
        // (heartbeats / long-poll responses carry full HTTP headers).
        let ka_gap = LogNormal::new(19.8, 1.0).expect("valid lognormal");

        let mut t = start_ns;
        let mut seq: u32 = self.rng.random();
        for i in 0..n_pkts {
            let (flags, payload) = if i == 0 {
                // OS-stack SYN carries 12-20 bytes of TCP options.
                (TcpFlags::SYN, self.rng.random_range(12..20))
            } else if i == n_pkts - 1 && n_pkts > 2 {
                (TcpFlags::FIN | TcpFlags::ACK, 0)
            } else if keepalive {
                (
                    TcpFlags::PSH | TcpFlags::ACK,
                    self.rng.random_range(60..300),
                )
            } else if tinygram {
                (
                    TcpFlags::PSH | TcpFlags::ACK,
                    self.rng.random_range(30..120),
                )
            } else {
                (TcpFlags::PSH | TcpFlags::ACK, self.packet_size())
            };
            let pkt: Packet = builder.tcp(src_port, dst_port, flags, seq, 0, payload);
            seq = seq.wrapping_add(u32::from(payload).max(1));
            trace.push(PacketRecord {
                ts_ns: t,
                packet: pkt,
                class: TrafficClass::Benign,
            });
            let g = if keepalive {
                ka_gap.sample(&mut self.rng)
            } else if tinygram {
                // Human-paced: 0.3–3 s between keystroke bursts.
                self.rng.random_range(3e8..3e9)
            } else {
                gap.sample(&mut self.rng)
            };
            t += (g as u64).max(1_000);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(seed: u64, window_s: u64) -> Trace {
        BenignGenerator::new(BenignConfig::default(), seed).generate(window_s * 1_000_000_000)
    }

    #[test]
    fn generates_traffic_at_roughly_configured_rate() {
        let t = gen(1, 10);
        let stats = t.stats();
        // 40 flows/s × 10 s with diurnal thinning → a few hundred flows.
        assert!(stats.flows > 100, "flows {}", stats.flows);
        assert!(stats.flows < 800, "flows {}", stats.flows);
        assert!(stats.packets > stats.flows, "multi-packet flows expected");
    }

    #[test]
    fn all_packets_are_benign_tcp_to_server() {
        let t = gen(2, 3);
        for r in t.iter() {
            assert_eq!(r.class, TrafficClass::Benign);
            assert_eq!(r.packet.ip.dst, Ipv4Addr::new(10, 0, 0, 2));
            let port = r.packet.flow_key().dst_port;
            assert!(port == 80 || port == 443);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = gen(42, 2);
        let b = gen(42, 2);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.records()[0], b.records()[0]);
        let c = gen(43, 2);
        assert_ne!(a.len(), c.len());
    }

    #[test]
    fn flows_start_with_syn() {
        let t = gen(3, 3);
        let mut seen = std::collections::HashSet::new();
        for r in t.iter() {
            let key = r.packet.flow_key();
            if seen.insert(key) {
                // First packet of the flow in time order.
                let flags = r.packet.tcp_flags().unwrap();
                assert!(flags.contains(TcpFlags::SYN), "flow must open with SYN");
            }
        }
    }

    #[test]
    fn trace_is_sorted() {
        let t = gen(4, 3);
        assert!(t.is_sorted());
        for w in t.records().windows(2) {
            assert!(w[0].ts_ns <= w[1].ts_ns);
        }
    }

    #[test]
    fn flow_lengths_are_heavy_tailed() {
        let t = gen(5, 20);
        let mut counts: std::collections::HashMap<_, usize> = std::collections::HashMap::new();
        for r in t.iter() {
            *counts.entry(r.packet.flow_key()).or_default() += 1;
        }
        let mut lens: Vec<usize> = counts.values().copied().collect();
        lens.sort_unstable();
        let median = lens[lens.len() / 2];
        let max = *lens.last().unwrap();
        assert!(max > median * 5, "tail: median={median} max={max}");
    }

    #[test]
    fn payload_sizes_span_requests_and_data() {
        let t = gen(6, 5);
        let small = t.iter().filter(|r| r.packet.payload_len < 300).count();
        let big = t.iter().filter(|r| r.packet.payload_len >= 1000).count();
        assert!(small > 0 && big > 0);
    }
}
