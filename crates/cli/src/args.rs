//! Minimal argument parsing — no external dependency for four
//! subcommands and a handful of flags.

use std::collections::HashMap;
use std::fmt;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    pub command: Command,
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

/// The subcommand to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Generate a labeled telemetry capture and write it to a file.
    Capture,
    /// Train a model bundle from a capture file.
    Train,
    /// Run the detection pipeline over a capture with a trained bundle.
    Detect,
    /// Send a capture's telemetry at a listening `detect --listen`.
    Replay,
    /// Scan a capture for queue microbursts.
    Microburst,
    /// End-to-end demonstration (capture → train → detect) in memory.
    Demo,
    /// Print usage.
    Help,
}

/// Parse failure, with the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid arguments: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

pub const USAGE: &str = "\
amlight — INT-based automated DDoS detection (AmLight reproduction)

USAGE:
    amlight <COMMAND> [OPTIONS]

COMMANDS:
    capture      generate a labeled telemetry capture
                   --out <file>        output path (default capture.json)
                   --day-len <secs>    compressed day length (default 10)
                   --seed <n>          workload seed (default 41751)
                   --hops <n>          switches in the path (default 1)
    train        train scaler + MLP/RF/GNB bundle from a capture
                   --capture <file>    input capture (default capture.json)
                   --out <file>        bundle path (default bundle.json)
                   --telemetry <b>     backend view to train on:
                                       int | sflow | pint
                                       (default int; sflow resamples the
                                       capture 1-in-N and drops the queue
                                       features; pint re-derives hop state
                                       from k-bit digests)
                   --sample-period <n> sFlow sampling period for --telemetry
                                       sflow (default 256)
                   --pint-bits <k>     PINT digest width in bits for
                                       --telemetry pint (default 8)
                   --include-slowloris train on SlowLoris too (default: held
                                       out as the zero-day attack)
                   --emit-meta         print the bundle's stamped metadata
                                       (schema, epoch, training window) as
                                       JSON after training
    detect       replay a capture through the detection pipeline
                   --capture <file>    input capture (default capture.json)
                   --bundle <file>     trained bundle (default bundle.json)
                   --telemetry <b>     backend to replay: int | sflow | pint
                                       (default int; must match the bundle)
                   --sample-period <n> sFlow sampling period (default 256)
                   --pint-bits <k>     PINT digest width in bits (default 8)
                   --paper-pace        model the paper's prototype latencies
                   --threaded          stream through the threaded runtime
                                       (wall-clock latency) instead of the
                                       virtual-time driver
                   --shards <n>        processor shards for --threaded
                                       (default 1, rounded to power of two)
                   --adapt             watch the benign distribution for
                                       drift, retrain in the background, and
                                       hot-swap fresh model epochs into the
                                       live run (implies --threaded)
                   --prefilter <m>     triage pre-filter mode: off | shadow
                                       | on (default off; implies
                                       --threaded). `shadow` scores every
                                       update without gating; `on` drops
                                       decimated flood updates and parks
                                       low-score ones on an idle-drained
                                       lane before the Predictor
                   --listen <url>      run as a collector daemon instead of
                                       replaying: bind udp://host:port or
                                       tcp://host:port (port 0 = ephemeral)
                                       and detect on whatever arrives; the
                                       wire framing follows --telemetry
                                       (sflow and pint are UDP-only)
                   --listeners <n>     SO_REUSEPORT listener threads
                                       (default 1)
                   --duration-ms <n>   listen window (default 10000)
                   --max-events <n>    stop after n decoded events
                                       (default 0 = until the window ends)
                   --port-file <file>  write the bound port for scripts
                                       that bound port 0
                   --require-clean     exit nonzero unless the run decoded
                                       events, produced predictions, and
                                       saw zero decode errors
    replay       send a capture's telemetry at a detect --listen daemon
                   --capture <file>    input capture (default capture.json)
                   --to <url>          destination udp://host:port or
                                       tcp://host:port
                   --telemetry <b>     wire framing: int | sflow | pint
                                       (default int; must match the daemon)
                   --sample-period <n> sFlow sampling period (default 256)
                   --pint-bits <k>     PINT digest width in bits (default 8)
                   --per-datagram <n>  reports per UDP datagram (default 4)
    microburst   scan a capture's queue telemetry for microbursts
                   --capture <file>    input capture (default capture.json)
    demo         run capture → train → detect end to end in memory
                   --seed <n>          workload seed
    help         show this message
";

impl Args {
    /// Parse tokens (not including the program name).
    pub fn parse<I, S>(tokens: I) -> Result<Self, ParseError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut iter = tokens.into_iter().map(Into::into);
        let command = match iter.next().as_deref() {
            Some("capture") => Command::Capture,
            Some("train") => Command::Train,
            Some("detect") => Command::Detect,
            Some("replay") => Command::Replay,
            Some("microburst") => Command::Microburst,
            Some("demo") => Command::Demo,
            Some("help") | Some("--help") | Some("-h") | None => Command::Help,
            Some(other) => return Err(ParseError(format!("unknown command `{other}`"))),
        };

        let mut flags = HashMap::new();
        let mut switches = Vec::new();
        let mut pending: Option<String> = None;
        for tok in iter {
            match pending.take() {
                Some(key) => {
                    flags.insert(key, tok);
                }
                None => {
                    if let Some(name) = tok.strip_prefix("--") {
                        if Self::is_switch(name) {
                            switches.push(name.to_string());
                        } else {
                            pending = Some(name.to_string());
                        }
                    } else {
                        return Err(ParseError(format!("unexpected token `{tok}`")));
                    }
                }
            }
        }
        if let Some(key) = pending {
            return Err(ParseError(format!("flag --{key} needs a value")));
        }
        Ok(Self {
            command,
            flags,
            switches,
        })
    }

    fn is_switch(name: &str) -> bool {
        matches!(
            name,
            "paper-pace"
                | "include-slowloris"
                | "fast"
                | "threaded"
                | "require-clean"
                | "adapt"
                | "emit-meta"
        )
    }

    /// String flag with a default.
    pub fn get<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.flags.get(name).map(String::as_str).unwrap_or(default)
    }

    /// Numeric flag with a default.
    pub fn get_u64(&self, name: &str, default: u64) -> Result<u64, ParseError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ParseError(format!("--{name} expects a number, got `{v}`"))),
        }
    }

    /// Boolean switch.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_commands() {
        for (tok, cmd) in [
            ("capture", Command::Capture),
            ("train", Command::Train),
            ("detect", Command::Detect),
            ("replay", Command::Replay),
            ("microburst", Command::Microburst),
            ("demo", Command::Demo),
            ("help", Command::Help),
        ] {
            assert_eq!(Args::parse([tok]).unwrap().command, cmd);
        }
    }

    #[test]
    fn empty_is_help() {
        let args = Args::parse(Vec::<String>::new()).unwrap();
        assert_eq!(args.command, Command::Help);
    }

    #[test]
    fn unknown_command_rejected() {
        assert!(Args::parse(["frobnicate"]).is_err());
    }

    #[test]
    fn flags_and_defaults() {
        let args = Args::parse(["capture", "--out", "x.json", "--seed", "9"]).unwrap();
        assert_eq!(args.get("out", "capture.json"), "x.json");
        assert_eq!(args.get("missing", "fallback"), "fallback");
        assert_eq!(args.get_u64("seed", 1).unwrap(), 9);
        assert_eq!(args.get_u64("day-len", 10).unwrap(), 10);
    }

    #[test]
    fn switches_are_recognized() {
        let args = Args::parse(["detect", "--paper-pace"]).unwrap();
        assert!(args.has("paper-pace"));
        assert!(!args.has("include-slowloris"));
    }

    #[test]
    fn threaded_switch_and_shards_flag() {
        let args = Args::parse(["detect", "--threaded", "--shards", "4"]).unwrap();
        assert!(args.has("threaded"));
        assert_eq!(args.get_u64("shards", 1).unwrap(), 4);
        // --shards without --threaded still parses; detect decides.
        let args = Args::parse(["detect", "--shards", "2"]).unwrap();
        assert!(!args.has("threaded"));
    }

    #[test]
    fn telemetry_flag_parses_for_train_and_detect() {
        let args = Args::parse(["train", "--telemetry", "sflow", "--sample-period", "64"]).unwrap();
        assert_eq!(args.get("telemetry", "int"), "sflow");
        assert_eq!(args.get_u64("sample-period", 256).unwrap(), 64);
        let args = Args::parse(["detect", "--telemetry", "int"]).unwrap();
        assert_eq!(args.get("telemetry", "int"), "int");
        // Defaults to INT when the flag is absent.
        let args = Args::parse(["detect"]).unwrap();
        assert_eq!(args.get("telemetry", "int"), "int");
    }

    #[test]
    fn listen_flags_parse() {
        let args = Args::parse([
            "detect",
            "--listen",
            "udp://127.0.0.1:0",
            "--listeners",
            "4",
            "--require-clean",
        ])
        .unwrap();
        assert_eq!(args.get("listen", ""), "udp://127.0.0.1:0");
        assert_eq!(args.get_u64("listeners", 1).unwrap(), 4);
        assert!(args.has("require-clean"));
        let args = Args::parse(["replay", "--to", "tcp://127.0.0.1:9000"]).unwrap();
        assert_eq!(args.command, Command::Replay);
        assert_eq!(args.get("to", ""), "tcp://127.0.0.1:9000");
    }

    #[test]
    fn prefilter_is_a_value_flag() {
        let args = Args::parse(["detect", "--prefilter", "shadow"]).unwrap();
        assert_eq!(args.get("prefilter", "off"), "shadow");
        // Value flag, not a switch: a dangling --prefilter is an error.
        assert!(Args::parse(["detect", "--prefilter"]).is_err());
        // Absent → off.
        let args = Args::parse(["detect"]).unwrap();
        assert_eq!(args.get("prefilter", "off"), "off");
    }

    #[test]
    fn dangling_flag_rejected() {
        let err = Args::parse(["capture", "--seed"]).unwrap_err();
        assert!(err.0.contains("--seed"));
    }

    #[test]
    fn bad_number_rejected() {
        let args = Args::parse(["capture", "--seed", "abc"]).unwrap();
        assert!(args.get_u64("seed", 0).is_err());
    }

    #[test]
    fn positional_junk_rejected() {
        assert!(Args::parse(["capture", "whoops"]).is_err());
    }
}
