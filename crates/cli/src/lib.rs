//! Library backing the `amlight` command-line tool.
//!
//! Everything the binary does lives here so it can be unit- and
//! integration-tested without spawning processes: argument parsing,
//! capture files, and the four subcommands (`capture`, `train`,
//! `detect`, `microburst`).

// Compiler-enforced arm of amlint rule R5: unsafe stays in shims/.
#![forbid(unsafe_code)]

pub mod args;
pub mod commands;

pub use args::{Args, Command};
pub use commands::{run, CaptureFile, CliError};
