//! The `amlight` command-line entry point. All logic lives in the
//! library (`amlight_cli`) so it stays testable.

use amlight_cli::{run, Args};

fn main() {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(tokens) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}\n\nrun `amlight help` for usage");
            std::process::exit(2);
        }
    };
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if let Err(e) = run(&args, &mut out) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
