//! The subcommand implementations.

use crate::args::{Args, Command, USAGE};
use amlight_core::event::{
    pint_view, sample_reports, TelemetryBackend, TelemetryEvent, ViewOptions,
};
use amlight_core::pipeline::{DetectionPipeline, PipelineConfig};
use amlight_core::runtime::{AdaptConfig, ThreadedPipeline};
use amlight_core::source::EventReplaySource;
use amlight_core::testbed::{Testbed, TestbedConfig};
use amlight_core::trainer::{
    dataset_from_events, dataset_from_labeled, train_bundle, ModelBundle, TrainerConfig,
};
use amlight_features::{FeatureSet, PrefilterMode};
use amlight_ingest::{IngestServer, ListenerConfig, WireProtocol};
use amlight_int::microburst::detect_from_reports;
use amlight_int::{IntCollector, MicroburstConfig, TelemetryReport};
use amlight_net::TrafficClass;
use amlight_sflow::{batch_into_datagrams, FlowSample, SamplingMode, SflowAgent};
use amlight_traffic::{TrafficMix, TrafficMixConfig};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::Write;
use std::path::Path;

/// Anything a subcommand can fail with.
#[derive(Debug)]
pub enum CliError {
    Usage(String),
    Io(std::io::Error),
    Format(serde_json::Error),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Format(e) => write!(f, "format error: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<serde_json::Error> for CliError {
    fn from(e: serde_json::Error) -> Self {
        CliError::Format(e)
    }
}

/// On-disk capture: labeled telemetry plus generation metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CaptureFile {
    pub seed: u64,
    pub day_len_s: u64,
    pub hops: usize,
    pub reports: Vec<(TelemetryReport, TrafficClass)>,
}

impl CaptureFile {
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CliError> {
        let json = serde_json::to_string(self)?;
        std::fs::write(path, json)?;
        Ok(())
    }

    pub fn load(path: impl AsRef<Path>) -> Result<Self, CliError> {
        let json = std::fs::read_to_string(path)?;
        Ok(serde_json::from_str(&json)?)
    }

    /// Generate a fresh capture in memory.
    pub fn generate(day_len_s: u64, seed: u64, hops: usize) -> Self {
        let lab = Testbed::new(TestbedConfig {
            hops,
            ..Default::default()
        });
        let mix = TrafficMix::new(TrafficMixConfig::paper_capture(day_len_s, seed));
        let reports = lab.run_labeled(&mix.generate());
        Self {
            seed,
            day_len_s,
            hops,
            reports,
        }
    }

    pub fn class_counts(&self) -> Vec<(TrafficClass, usize)> {
        TrafficClass::ALL
            .into_iter()
            .map(|c| (c, self.reports.iter().filter(|(_, k)| *k == c).count()))
            .collect()
    }
}

/// Dispatch a parsed command line; writes human output to `out`.
pub fn run(args: &Args, out: &mut impl Write) -> Result<(), CliError> {
    match args.command {
        Command::Help => {
            writeln!(out, "{USAGE}")?;
            Ok(())
        }
        Command::Capture => cmd_capture(args, out),
        Command::Train => cmd_train(args, out),
        Command::Detect => cmd_detect(args, out),
        Command::Replay => cmd_replay(args, out),
        Command::Microburst => cmd_microburst(args, out),
        Command::Demo => cmd_demo(args, out),
    }
}

fn bad(e: impl fmt::Display) -> CliError {
    CliError::Usage(e.to_string())
}

/// Parse `--telemetry` (default `int`) against the backend registry —
/// adding a backend to [`TelemetryBackend::ALL`] is all it takes to
/// surface it here.
fn telemetry_backend(args: &Args) -> Result<TelemetryBackend, CliError> {
    let name = args.get("telemetry", "int");
    TelemetryBackend::parse(name).ok_or_else(|| {
        let known: Vec<&str> = TelemetryBackend::ALL.iter().map(|b| b.name()).collect();
        CliError::Usage(format!(
            "--telemetry expects one of `{}`, got `{name}`",
            known.join("`, `"),
        ))
    })
}

/// Collect the per-backend view knobs (`--sample-period`,
/// `--pint-bits`) into one [`ViewOptions`]; backends ignore the knobs
/// that are not theirs.
fn view_options(args: &Args, seed: u64) -> Result<ViewOptions, CliError> {
    let period = args.get_u64("sample-period", 256).map_err(bad)? as u32;
    let bits = args.get_u64("pint-bits", 8).map_err(bad)?;
    if bits == 0 || bits > 32 {
        return Err(CliError::Usage(format!(
            "--pint-bits expects 1..=32, got {bits}"
        )));
    }
    Ok(ViewOptions {
        sample_period: period.max(1),
        pint_bits: bits as u8,
        seed,
    })
}

/// Parse `--prefilter` (default `off`) into a triage mode.
fn prefilter_mode(args: &Args) -> Result<PrefilterMode, CliError> {
    let name = args.get("prefilter", "off");
    PrefilterMode::parse(name).ok_or_else(|| {
        CliError::Usage(format!(
            "--prefilter expects `off`, `shadow`, or `on`, got `{name}`"
        ))
    })
}

/// The load-time model gate: schema version, feature width, and feature
/// set must all match the requested telemetry backend before any event
/// is scored — stale or mismatched artifacts fail loudly, not with
/// silent mispredictions.
fn validate_bundle(bundle: &ModelBundle, backend: TelemetryBackend) -> Result<(), CliError> {
    bundle.validate_for(backend.feature_set()).map_err(|e| {
        CliError::Usage(format!(
            "bundle does not fit --telemetry {}: {e}; \
             retrain with `amlight train --telemetry {}`",
            backend.name(),
            backend.name(),
        ))
    })
}

/// Re-observe an INT capture through a seeded sFlow sampling agent:
/// each report is one packet at the observation point, so the agent's
/// 1-in-N decision produces the sampled view of the same traffic.
fn sflow_view(capture: &CaptureFile, period: u32) -> Vec<(FlowSample, TrafficClass)> {
    let mut agent = SflowAgent::new(
        SamplingMode::RandomSkip {
            period: period.max(1),
        },
        capture.seed,
    );
    sample_reports(&capture.reports, &mut agent)
}

fn cmd_capture(args: &Args, out: &mut impl Write) -> Result<(), CliError> {
    let path = args.get("out", "capture.json").to_string();
    let day_len = args.get_u64("day-len", 10).map_err(bad)?;
    let seed = args.get_u64("seed", 41751).map_err(bad)?;
    let hops = args.get_u64("hops", 1).map_err(bad)? as usize;

    writeln!(
        out,
        "generating capture: 2 × {day_len}s days, seed {seed}, {hops} hop(s)…"
    )?;
    let capture = CaptureFile::generate(day_len, seed, hops.max(1));
    for (class, n) in capture.class_counts() {
        writeln!(out, "  {:<10} {:>8} reports", class.name(), n)?;
    }
    capture.save(&path)?;
    writeln!(out, "wrote {} reports to {path}", capture.reports.len())?;
    Ok(())
}

fn training_config(fast: bool) -> TrainerConfig {
    if fast {
        TrainerConfig {
            mlp: amlight_ml::MlpConfig {
                epochs: 5,
                batch_size: 256,
                ..amlight_ml::MlpConfig::paper_mlp()
            },
            forest: amlight_ml::RandomForestConfig {
                n_trees: 10,
                ..amlight_ml::RandomForestConfig::fast()
            },
            ..Default::default()
        }
    } else {
        TrainerConfig::default()
    }
}

fn cmd_train(args: &Args, out: &mut impl Write) -> Result<(), CliError> {
    let capture_path = args.get("capture", "capture.json").to_string();
    let bundle_path = args.get("out", "bundle.json").to_string();
    let include_slowloris = args.has("include-slowloris");
    let backend = telemetry_backend(args)?;

    let capture = CaptureFile::load(&capture_path)?;
    let opts = view_options(args, capture.seed)?;
    let training: Vec<_> = capture
        .reports
        .iter()
        .filter(|(_, c)| include_slowloris || *c != TrafficClass::SlowLoris)
        .cloned()
        .collect();
    writeln!(
        out,
        "training on {} of {} reports ({} view){}…",
        training.len(),
        capture.reports.len(),
        backend.name(),
        if include_slowloris {
            ""
        } else {
            " (SlowLoris held out as zero-day)"
        }
    )?;
    // Training-window bounds (telemetry-clock ns) for the bundle's
    // metadata stamp: the capture range this model is valid for.
    let (window_start, window_end) = training.iter().fold((u64::MAX, 0u64), |(lo, hi), (r, _)| {
        (lo.min(r.export_ns), hi.max(r.export_ns))
    });
    let view = backend.derive_view(&training, &opts);
    if view.len() != training.len() {
        writeln!(
            out,
            "{} view kept {} of {} reports",
            backend.name(),
            view.len(),
            training.len()
        )?;
    }
    let raw = dataset_from_labeled(&view, backend.feature_set());
    let bundle = train_bundle(
        &raw,
        backend.feature_set(),
        &training_config(args.has("fast")),
    )
    .with_train_window(window_start.min(window_end), window_end);
    bundle.save(&bundle_path)?;
    writeln!(
        out,
        "wrote bundle to {bundle_path} ({} forest trees, MLP {:?}, scaler over {} features)",
        bundle.forest.n_trees(),
        bundle.mlp.hidden_sizes(),
        bundle.scaler.n_features(),
    )?;
    if args.has("emit-meta") {
        writeln!(out, "bundle meta: {}", serde_json::to_string(&bundle.meta)?)?;
    }
    Ok(())
}

fn cmd_detect(args: &Args, out: &mut impl Write) -> Result<(), CliError> {
    if !args.get("listen", "").is_empty() {
        return cmd_detect_listen(args, out);
    }
    let backend = telemetry_backend(args)?;
    let capture = CaptureFile::load(args.get("capture", "capture.json"))?;
    let opts = view_options(args, capture.seed)?;
    let bundle = ModelBundle::load(args.get("bundle", "bundle.json"))?;
    validate_bundle(&bundle, backend)?;

    let view = backend.derive_view(&capture.reports, &opts);
    if view.len() != capture.reports.len() {
        writeln!(
            out,
            "{} view kept {} of {} reports",
            backend.name(),
            view.len(),
            capture.reports.len()
        )?;
    }

    let adapt = args.has("adapt");
    let prefilter = prefilter_mode(args)?;
    if args.has("threaded") || adapt || prefilter != PrefilterMode::Off {
        let shards = args.get_u64("shards", 1).map_err(bad)? as usize;
        let mut pipeline = ThreadedPipeline::new(bundle)
            .with_shards(shards.max(1))
            .with_prefilter(prefilter);
        if adapt {
            pipeline = pipeline.with_adaptation(AdaptConfig::default());
        }
        let handle = pipeline.start(EventReplaySource::new(view));
        let stats = handle.join().map_err(bad)?;
        print_threaded(&stats, backend, out)?;
        if adapt {
            let a = stats.adapt;
            writeln!(
                out,
                "adaptation: {} drift event(s), {} retrain(s) published; \
                 {} labeled sample(s) fed, {} shed; final epoch {}",
                a.drift_events, a.retrains, a.samples_fed, a.samples_shed, a.final_epoch,
            )?;
        }
        return Ok(());
    }

    let pace = if args.has("paper-pace") {
        PipelineConfig::paper_pace()
    } else {
        PipelineConfig::rust_pace()
    };

    let mut pipeline = DetectionPipeline::new(bundle, pace);
    let pairs: Vec<(TelemetryEvent, TrafficClass)> = view
        .into_iter()
        .map(|e| {
            let truth = e.truth.unwrap_or(TrafficClass::Benign);
            (e.event, truth)
        })
        .collect();
    let report = pipeline.run_sync(&pairs);
    print_detection(&report, out)
}

/// Split `udp://host:port` / `tcp://host:port` into (is_tcp, addr).
fn parse_endpoint(url: &str) -> Result<(bool, std::net::SocketAddr), CliError> {
    let usage = || {
        CliError::Usage(format!(
            "expected udp://host:port or tcp://host:port, got `{url}`"
        ))
    };
    let (scheme, rest) = url.split_once("://").ok_or_else(usage)?;
    let tcp = match scheme {
        "udp" => false,
        "tcp" => true,
        _ => return Err(usage()),
    };
    use std::net::ToSocketAddrs;
    let addr = rest
        .to_socket_addrs()
        .map_err(|_| usage())?
        .find(|a| a.is_ipv4())
        .ok_or_else(usage)?;
    Ok((tcp, addr))
}

/// Map `--telemetry` × URL scheme onto a wire framing. The registry
/// names the framing ([`TelemetryBackend::wire_name`]) and the ingest
/// crate parses the same name, so the two ends cannot drift apart.
fn wire_protocol(backend: TelemetryBackend, tcp: bool) -> Result<WireProtocol, CliError> {
    let name = backend.wire_name(tcp).ok_or_else(|| {
        CliError::Usage(format!(
            "{} telemetry is UDP-only; use udp://host:port",
            backend.name(),
        ))
    })?;
    WireProtocol::parse(name)
        .ok_or_else(|| CliError::Usage(format!("ingest does not speak `{name}`")))
}

/// `detect --listen`: run as a live collector daemon. Binds a sharded
/// `SO_REUSEPORT` listener group, streams whatever arrives through the
/// threaded pipeline, and stops after `--duration-ms` (or sooner once
/// `--max-events` have been decoded).
fn cmd_detect_listen(args: &Args, out: &mut impl Write) -> Result<(), CliError> {
    let backend = telemetry_backend(args)?;
    let (tcp, addr) = parse_endpoint(args.get("listen", ""))?;
    let protocol = wire_protocol(backend, tcp)?;
    let listeners = args.get_u64("listeners", 1).map_err(bad)? as usize;
    let duration_ms = args.get_u64("duration-ms", 10_000).map_err(bad)?;
    let max_events = args.get_u64("max-events", 0).map_err(bad)?;
    let shards = args.get_u64("shards", 1).map_err(bad)? as usize;

    let prefilter = prefilter_mode(args)?;
    let bundle = ModelBundle::load(args.get("bundle", "bundle.json"))?;
    validate_bundle(&bundle, backend)?;

    let server = IngestServer::bind(ListenerConfig::new(addr, protocol).listeners(listeners))
        .map_err(CliError::Io)?;
    let local = server.local_addr();
    let port_file = args.get("port-file", "");
    if !port_file.is_empty() {
        std::fs::write(port_file, local.port().to_string())?;
    }
    writeln!(
        out,
        "listening on {}://{local} — {} listener thread(s), {} framing",
        if tcp { "tcp" } else { "udp" },
        listeners.max(1),
        protocol.name(),
    )?;

    let pipeline = ThreadedPipeline::new(bundle)
        .with_shards(shards.max(1))
        .with_prefilter(prefilter);
    let handle = pipeline.start(server.source());
    let deadline = std::time::Instant::now() + std::time::Duration::from_millis(duration_ms);
    loop {
        std::thread::sleep(std::time::Duration::from_millis(20));
        if max_events > 0 && server.stats().events_decoded >= max_events {
            break;
        }
        if std::time::Instant::now() >= deadline {
            break;
        }
    }
    let ingest = server.shutdown();
    let stats = handle.join().map_err(bad)?;
    let predictions = stats.predictions;
    writeln!(
        out,
        "ingest: {} datagrams, {} bytes, {} events decoded, {} decode errors, {} events shed",
        ingest.datagrams,
        ingest.bytes,
        ingest.events_decoded,
        ingest.decode_errors,
        ingest.events_dropped,
    )?;
    print_threaded(&stats, backend, out)?;
    if args.has("require-clean") {
        if ingest.events_decoded == 0 || ingest.decode_errors > 0 || predictions == 0 {
            return Err(CliError::Usage(format!(
                "run was not clean: {} events decoded, {} decode errors, {} predictions",
                ingest.events_decoded, ingest.decode_errors, predictions,
            )));
        }
        writeln!(out, "clean run: decoded events, zero decode errors")?;
    }
    Ok(())
}

/// `replay`: push a capture's telemetry at a listening daemon over the
/// wire — the sender half of the loopback smoke test.
fn cmd_replay(args: &Args, out: &mut impl Write) -> Result<(), CliError> {
    let backend = telemetry_backend(args)?;
    let url = args.get("to", "");
    if url.is_empty() {
        return Err(CliError::Usage(
            "replay needs --to udp://host:port or tcp://host:port".to_string(),
        ));
    }
    let (tcp, addr) = parse_endpoint(url)?;
    let protocol = wire_protocol(backend, tcp)?;
    let period = args.get_u64("sample-period", 256).map_err(bad)? as u32;
    let per_datagram = args.get_u64("per-datagram", 4).map_err(bad)?.max(1) as usize;
    let capture = CaptureFile::load(args.get("capture", "capture.json"))?;

    match protocol {
        WireProtocol::IntTcp => {
            let reports: Vec<TelemetryReport> =
                capture.reports.iter().map(|(r, _)| r.clone()).collect();
            let bytes = IntCollector::encode_stream(&reports);
            let mut stream = std::net::TcpStream::connect(addr)?;
            stream.write_all(&bytes)?;
            writeln!(
                out,
                "sent {} reports ({} bytes) over tcp to {addr}",
                reports.len(),
                bytes.len(),
            )?;
        }
        WireProtocol::IntUdp => {
            let sock = std::net::UdpSocket::bind("0.0.0.0:0")?;
            let mut datagrams = 0u64;
            let mut reports = 0u64;
            let mut scratch = Vec::with_capacity(per_datagram);
            for chunk in capture.reports.chunks(per_datagram) {
                scratch.clear();
                scratch.extend(chunk.iter().map(|(r, _)| r.clone()));
                let dgram = IntCollector::encode_stream(&scratch);
                sock.send_to(&dgram, addr)?;
                datagrams += 1;
                reports += scratch.len() as u64;
            }
            writeln!(
                out,
                "sent {reports} reports in {datagrams} udp datagrams to {addr}",
            )?;
        }
        WireProtocol::SflowUdp => {
            let samples: Vec<FlowSample> = sflow_view(&capture, period)
                .into_iter()
                .map(|(s, _)| s)
                .collect();
            let grams =
                batch_into_datagrams(std::net::Ipv4Addr::LOCALHOST, &samples, per_datagram.max(1));
            let sock = std::net::UdpSocket::bind("0.0.0.0:0")?;
            for g in &grams {
                sock.send_to(g, addr)?;
            }
            writeln!(
                out,
                "sent {} sFlow samples (1-in-{period}) in {} udp datagrams to {addr}",
                samples.len(),
                grams.len(),
            )?;
        }
        WireProtocol::PintUdp => {
            let bits = view_options(args, capture.seed)?.pint_bits;
            let reports: Vec<amlight_pint::PintReport> = pint_view(&capture.reports, bits)
                .into_iter()
                .map(|(r, _)| r)
                .collect();
            let grams = amlight_pint::batch_into_datagrams(
                std::net::Ipv4Addr::LOCALHOST,
                &reports,
                per_datagram.max(1),
            );
            let sock = std::net::UdpSocket::bind("0.0.0.0:0")?;
            for g in &grams {
                sock.send_to(g, addr)?;
            }
            writeln!(
                out,
                "sent {} pint reports ({bits}-bit digests) in {} udp datagrams to {addr}",
                reports.len(),
                grams.len(),
            )?;
        }
    }
    Ok(())
}

/// Streaming-path summary: every backend replays through the same
/// threaded runtime, so the printout is backend-tagged but identical in
/// shape. Labels rode through the channels, so recall needs no
/// side-channel lookup.
fn print_threaded(
    stats: &amlight_core::runtime::ThreadedRunStats,
    backend: TelemetryBackend,
    out: &mut impl Write,
) -> Result<(), CliError> {
    writeln!(
        out,
        "threaded {} replay: {} events → {} flows, {} predictions",
        backend.name(),
        stats.events_in,
        stats.flows_created,
        stats.predictions
    )?;
    writeln!(
        out,
        "verdicts: {} attack / {} normal / {} pending",
        stats.attack_verdicts, stats.normal_verdicts, stats.pending_verdicts
    )?;
    if stats.labeled.labeled_updates() > 0 {
        writeln!(
            out,
            "labeled recall: {:.4} ({} of {} attack updates; false-alarm rate {:.4})",
            stats.labeled.recall(),
            stats.labeled.attack_hits,
            stats.labeled.attack_updates,
            stats.labeled.false_alarm_rate(),
        )?;
    }
    match stats.triage.mode {
        PrefilterMode::Off => {}
        PrefilterMode::Shadow => {
            let w = stats.triage.would;
            writeln!(
                out,
                "triage shadow: {} scored → would forward {} / defer {} / drop {} \
                 ({} windows, {} alarmed)",
                w.scored, w.forward, w.defer, w.drop, w.windows, w.alarm_windows,
            )?;
        }
        PrefilterMode::On => {
            let t = stats.triage;
            writeln!(
                out,
                "triage on: forwarded {} / deferred {} / dropped {} / shed {} \
                 ({} evaluated by the predictor)",
                t.forwarded,
                t.deferred,
                t.dropped,
                t.shed,
                t.evaluated(),
            )?;
        }
    }
    writeln!(
        out,
        "wall-clock prediction latency: mean {:.1} µs, max {:.1} µs",
        stats.mean_latency_us, stats.max_latency_us
    )?;
    Ok(())
}

fn print_detection(
    report: &amlight_core::pipeline::PipelineReport,
    out: &mut impl Write,
) -> Result<(), CliError> {
    writeln!(
        out,
        "{:<10} {:>8} {:>10} {:>8} {:>12} {:>12}",
        "class", "acc", "predicted", "pending", "avg lat (s)", "max lat (s)"
    )?;
    for class in report.classes() {
        let s = report.class_summary(class);
        let acc = if s.predicted == 0 {
            "   -    ".to_string() // nothing cleared the smoothing window
        } else {
            format!("{:>8.4}", s.accuracy())
        };
        writeln!(
            out,
            "{:<10} {acc} {:>10} {:>8} {:>12.4} {:>12.4}",
            class.name(),
            s.predicted,
            s.pending,
            s.avg_latency_s,
            s.max_latency_s,
        )?;
    }
    writeln!(out, "overall accuracy: {:.4}", report.overall_accuracy())?;
    if report.flood_alerts.is_empty() {
        writeln!(out, "new-flow-rate guard: quiet")?;
    } else {
        for a in &report.flood_alerts {
            writeln!(
                out,
                "GUARD ALERT: {} created {} flows in the epoch at t={:.1}s (baseline {:.1})",
                a.dst,
                a.new_flows,
                a.epoch_start_ns as f64 / 1e9,
                a.baseline,
            )?;
        }
    }
    Ok(())
}

fn cmd_microburst(args: &Args, out: &mut impl Write) -> Result<(), CliError> {
    let capture = CaptureFile::load(args.get("capture", "capture.json"))?;
    let bursts = detect_from_reports(
        capture.reports.iter().map(|(r, _)| r),
        MicroburstConfig::default(),
    );
    if bursts.is_empty() {
        writeln!(
            out,
            "no microbursts detected in {} reports",
            capture.reports.len()
        )?;
    } else {
        writeln!(out, "{} microburst(s) detected:", bursts.len())?;
        for b in &bursts {
            writeln!(
                out,
                "  t = {:.6}–{:.6} s, duration {:.1} µs, peak depth {}",
                b.start_ns as f64 / 1e9,
                b.end_ns as f64 / 1e9,
                b.duration_ns() as f64 / 1e3,
                b.peak_depth,
            )?;
        }
    }
    Ok(())
}

fn cmd_demo(args: &Args, out: &mut impl Write) -> Result<(), CliError> {
    let seed = args.get_u64("seed", 41751).map_err(bad)?;
    writeln!(
        out,
        "== amlight demo: capture → train → detect (seed {seed}) =="
    )?;

    let train_capture = CaptureFile::generate(5, seed, 1);
    writeln!(
        out,
        "training capture: {} reports",
        train_capture.reports.len()
    )?;
    let training: Vec<_> = train_capture
        .reports
        .iter()
        .filter(|(_, c)| *c != TrafficClass::SlowLoris)
        .cloned()
        .collect();
    let raw = dataset_from_events(&training, FeatureSet::full());
    let bundle = train_bundle(&raw, FeatureSet::full(), &training_config(true));

    let test_capture = CaptureFile::generate(5, seed ^ 0xD37EC7, 1);
    writeln!(
        out,
        "test capture: {} reports (fresh seed)",
        test_capture.reports.len()
    )?;
    let mut pipeline = DetectionPipeline::new(bundle, PipelineConfig::rust_pace());
    let report = pipeline.run_sync(&test_capture.reports);
    print_detection(&report, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("amlight-cli-{}-{name}", std::process::id()))
    }

    fn run_tokens(tokens: &[&str]) -> Result<String, CliError> {
        let args = Args::parse(tokens.iter().copied()).expect("parse");
        let mut out = Vec::new();
        run(&args, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    #[test]
    fn help_prints_usage() {
        let text = run_tokens(&["help"]).unwrap();
        assert!(text.contains("USAGE"));
        assert!(text.contains("microburst"));
    }

    #[test]
    fn capture_train_detect_roundtrip() {
        let cap = tmp("cap.json");
        let bun = tmp("bun.json");
        let cap_s = cap.to_str().unwrap();
        let bun_s = bun.to_str().unwrap();

        let text =
            run_tokens(&["capture", "--out", cap_s, "--day-len", "3", "--seed", "7"]).unwrap();
        assert!(text.contains("wrote"), "{text}");

        let text = run_tokens(&["train", "--capture", cap_s, "--out", bun_s, "--fast"]).unwrap();
        assert!(text.contains("SlowLoris held out"), "{text}");

        let text = run_tokens(&["detect", "--capture", cap_s, "--bundle", bun_s]).unwrap();
        assert!(text.contains("overall accuracy"), "{text}");
        assert!(text.contains("SlowLoris") || text.contains("Benign"));

        let text = run_tokens(&[
            "detect",
            "--capture",
            cap_s,
            "--bundle",
            bun_s,
            "--threaded",
            "--shards",
            "4",
        ])
        .unwrap();
        assert!(text.contains("threaded int replay"), "{text}");
        assert!(text.contains("labeled recall"), "{text}");
        assert!(text.contains("wall-clock prediction latency"), "{text}");

        let text = run_tokens(&["microburst", "--capture", cap_s]).unwrap();
        assert!(text.contains("microburst"), "{text}");

        std::fs::remove_file(&cap).ok();
        std::fs::remove_file(&bun).ok();
    }

    #[test]
    fn sflow_train_detect_roundtrip() {
        let cap = tmp("sflow-cap.json");
        let bun = tmp("sflow-bun.json");
        let cap_s = cap.to_str().unwrap();
        let bun_s = bun.to_str().unwrap();

        run_tokens(&["capture", "--out", cap_s, "--day-len", "3", "--seed", "11"]).unwrap();
        // A tight period keeps enough samples to train on a tiny capture.
        let text = run_tokens(&[
            "train",
            "--capture",
            cap_s,
            "--out",
            bun_s,
            "--fast",
            "--telemetry",
            "sflow",
            "--sample-period",
            "8",
        ])
        .unwrap();
        assert!(text.contains("sflow view"), "{text}");
        assert!(text.contains("sflow view kept"), "{text}");

        // An INT-features bundle must be rejected for an sFlow replay
        // (and vice versa) before any work happens.
        let text = run_tokens(&[
            "detect",
            "--capture",
            cap_s,
            "--bundle",
            bun_s,
            "--telemetry",
            "sflow",
            "--sample-period",
            "8",
        ])
        .unwrap();
        assert!(text.contains("overall accuracy"), "{text}");

        let err = run_tokens(&["detect", "--capture", cap_s, "--bundle", bun_s]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        assert!(err.to_string().contains("--telemetry"), "{err}");

        let text = run_tokens(&[
            "detect",
            "--capture",
            cap_s,
            "--bundle",
            bun_s,
            "--telemetry",
            "sflow",
            "--sample-period",
            "8",
            "--threaded",
            "--shards",
            "2",
        ])
        .unwrap();
        assert!(text.contains("threaded sflow replay"), "{text}");

        std::fs::remove_file(&cap).ok();
        std::fs::remove_file(&bun).ok();
    }

    #[test]
    fn listen_then_replay_loopback_roundtrip() {
        let cap = tmp("listen-cap.json");
        let bun = tmp("listen-bun.json");
        let port_file = tmp("listen-port.txt");
        let cap_s = cap.to_str().unwrap().to_string();
        let bun_s = bun.to_str().unwrap().to_string();
        let port_s = port_file.to_str().unwrap().to_string();

        run_tokens(&["capture", "--out", &cap_s, "--day-len", "2", "--seed", "13"]).unwrap();
        run_tokens(&["train", "--capture", &cap_s, "--out", &bun_s, "--fast"]).unwrap();
        std::fs::remove_file(&port_file).ok();

        // Daemon in a thread: ephemeral port, stop after 1000 events
        // (or the 10s safety window).
        let daemon = {
            let bun_s = bun_s.clone();
            let port_s = port_s.clone();
            std::thread::spawn(move || {
                run_tokens(&[
                    "detect",
                    "--listen",
                    "udp://127.0.0.1:0",
                    "--bundle",
                    &bun_s,
                    "--port-file",
                    &port_s,
                    "--listeners",
                    "2",
                    "--max-events",
                    "1000",
                    "--duration-ms",
                    "10000",
                    "--require-clean",
                ])
            })
        };

        // Wait for the daemon to publish its port.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let port = loop {
            if let Ok(s) = std::fs::read_to_string(&port_file) {
                if let Ok(p) = s.trim().parse::<u16>() {
                    break p;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "daemon never wrote its port"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        };

        let to = format!("udp://127.0.0.1:{port}");
        let text = run_tokens(&["replay", "--capture", &cap_s, "--to", &to]).unwrap();
        assert!(text.contains("udp datagrams"), "{text}");

        let text = daemon.join().unwrap().unwrap();
        assert!(text.contains("listening on udp://"), "{text}");
        assert!(text.contains("events decoded"), "{text}");
        assert!(text.contains("clean run"), "{text}");

        std::fs::remove_file(&cap).ok();
        std::fs::remove_file(&bun).ok();
        std::fs::remove_file(&port_file).ok();
    }

    #[test]
    fn pint_train_detect_roundtrip() {
        let cap = tmp("pint-cap.json");
        let bun = tmp("pint-bun.json");
        let cap_s = cap.to_str().unwrap();
        let bun_s = bun.to_str().unwrap();

        run_tokens(&["capture", "--out", cap_s, "--day-len", "3", "--seed", "17"]).unwrap();
        let text = run_tokens(&[
            "train",
            "--capture",
            cap_s,
            "--out",
            bun_s,
            "--fast",
            "--telemetry",
            "pint",
            "--pint-bits",
            "8",
        ])
        .unwrap();
        assert!(text.contains("pint view"), "{text}");

        let text = run_tokens(&[
            "detect",
            "--capture",
            cap_s,
            "--bundle",
            bun_s,
            "--telemetry",
            "pint",
        ])
        .unwrap();
        assert!(text.contains("overall accuracy"), "{text}");

        let text = run_tokens(&[
            "detect",
            "--capture",
            cap_s,
            "--bundle",
            bun_s,
            "--telemetry",
            "pint",
            "--threaded",
            "--shards",
            "2",
        ])
        .unwrap();
        assert!(text.contains("threaded pint replay"), "{text}");

        let err = run_tokens(&[
            "train",
            "--capture",
            cap_s,
            "--telemetry",
            "pint",
            "--pint-bits",
            "0",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("--pint-bits"), "{err}");

        std::fs::remove_file(&cap).ok();
        std::fs::remove_file(&bun).ok();
    }

    #[test]
    fn sflow_over_tcp_is_a_usage_error() {
        for backend in ["sflow", "pint"] {
            let err = run_tokens(&[
                "detect",
                "--listen",
                "tcp://127.0.0.1:0",
                "--telemetry",
                backend,
            ])
            .unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{err}");
            assert!(err.to_string().contains("UDP-only"), "{err}");
        }

        let err = run_tokens(&["replay", "--to", "ftp://127.0.0.1:1"]).unwrap_err();
        assert!(err.to_string().contains("udp://"), "{err}");

        let err = run_tokens(&["replay"]).unwrap_err();
        assert!(err.to_string().contains("--to"), "{err}");
    }

    #[test]
    fn emit_meta_prints_the_stamp_and_adapt_runs_threaded() {
        let cap = tmp("adapt-cap.json");
        let bun = tmp("adapt-bun.json");
        let cap_s = cap.to_str().unwrap();
        let bun_s = bun.to_str().unwrap();

        run_tokens(&["capture", "--out", cap_s, "--day-len", "3", "--seed", "23"]).unwrap();
        let text = run_tokens(&[
            "train",
            "--capture",
            cap_s,
            "--out",
            bun_s,
            "--fast",
            "--emit-meta",
        ])
        .unwrap();
        assert!(text.contains("bundle meta:"), "{text}");
        assert!(text.contains("\"schema_version\":3"), "{text}");
        assert!(text.contains("\"epoch\":0"), "{text}");
        assert!(text.contains("train_window_end_ns"), "{text}");

        // --adapt implies --threaded and reports the adaptation tallies.
        let text =
            run_tokens(&["detect", "--capture", cap_s, "--bundle", bun_s, "--adapt"]).unwrap();
        assert!(text.contains("threaded int replay"), "{text}");
        assert!(text.contains("adaptation:"), "{text}");
        assert!(text.contains("final epoch"), "{text}");

        std::fs::remove_file(&cap).ok();
        std::fs::remove_file(&bun).ok();
    }

    #[test]
    fn prefilter_modes_run_threaded_and_report_triage() {
        let cap = tmp("prefilter-cap.json");
        let bun = tmp("prefilter-bun.json");
        let cap_s = cap.to_str().unwrap();
        let bun_s = bun.to_str().unwrap();

        run_tokens(&["capture", "--out", cap_s, "--day-len", "3", "--seed", "29"]).unwrap();
        run_tokens(&["train", "--capture", cap_s, "--out", bun_s, "--fast"]).unwrap();

        // --prefilter shadow implies --threaded and prints the would-be
        // verdict tallies without changing the prediction count.
        let text = run_tokens(&[
            "detect",
            "--capture",
            cap_s,
            "--bundle",
            bun_s,
            "--prefilter",
            "shadow",
        ])
        .unwrap();
        assert!(text.contains("threaded int replay"), "{text}");
        assert!(text.contains("triage shadow:"), "{text}");
        assert!(text.contains("would forward"), "{text}");

        let text = run_tokens(&[
            "detect",
            "--capture",
            cap_s,
            "--bundle",
            bun_s,
            "--prefilter",
            "on",
            "--shards",
            "2",
        ])
        .unwrap();
        assert!(text.contains("triage on:"), "{text}");
        assert!(text.contains("evaluated by the predictor"), "{text}");

        // And off stays silent about triage.
        let text = run_tokens(&[
            "detect",
            "--capture",
            cap_s,
            "--bundle",
            bun_s,
            "--threaded",
        ])
        .unwrap();
        assert!(!text.contains("triage"), "{text}");

        let err = run_tokens(&[
            "detect",
            "--capture",
            cap_s,
            "--bundle",
            bun_s,
            "--prefilter",
            "sometimes",
        ])
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        assert!(err.to_string().contains("--prefilter"), "{err}");

        std::fs::remove_file(&cap).ok();
        std::fs::remove_file(&bun).ok();
    }

    #[test]
    fn bad_telemetry_value_is_a_usage_error() {
        let err = run_tokens(&["detect", "--telemetry", "netflow"]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        assert!(err.to_string().contains("netflow"), "{err}");
    }

    #[test]
    fn detect_with_missing_files_errors() {
        let err = run_tokens(&["detect", "--capture", "/nonexistent/x.json"]).unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
    }

    #[test]
    fn capture_file_roundtrip() {
        let capture = CaptureFile::generate(2, 3, 1);
        let path = tmp("roundtrip.json");
        capture.save(&path).unwrap();
        let back = CaptureFile::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.reports.len(), capture.reports.len());
        assert_eq!(back.seed, 3);
        assert_eq!(back.class_counts(), capture.class_counts());
    }
}
