//! The subcommand implementations.

use crate::args::{Args, Command, USAGE};
use amlight_core::event::{sample_reports, TelemetryBackend};
use amlight_core::pipeline::{DetectionPipeline, PipelineConfig};
use amlight_core::runtime::ThreadedPipeline;
use amlight_core::source::{ReplaySource, SflowReplaySource};
use amlight_core::testbed::{Testbed, TestbedConfig};
use amlight_core::trainer::{
    dataset_from_int, dataset_from_sflow, train_bundle, ModelBundle, TrainerConfig,
};
use amlight_features::FeatureSet;
use amlight_int::microburst::detect_from_reports;
use amlight_int::{MicroburstConfig, TelemetryReport};
use amlight_net::TrafficClass;
use amlight_sflow::{FlowSample, SamplingMode, SflowAgent};
use amlight_traffic::{TrafficMix, TrafficMixConfig};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::Write;
use std::path::Path;

/// Anything a subcommand can fail with.
#[derive(Debug)]
pub enum CliError {
    Usage(String),
    Io(std::io::Error),
    Format(serde_json::Error),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Format(e) => write!(f, "format error: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<serde_json::Error> for CliError {
    fn from(e: serde_json::Error) -> Self {
        CliError::Format(e)
    }
}

/// On-disk capture: labeled telemetry plus generation metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CaptureFile {
    pub seed: u64,
    pub day_len_s: u64,
    pub hops: usize,
    pub reports: Vec<(TelemetryReport, TrafficClass)>,
}

impl CaptureFile {
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CliError> {
        let json = serde_json::to_string(self)?;
        std::fs::write(path, json)?;
        Ok(())
    }

    pub fn load(path: impl AsRef<Path>) -> Result<Self, CliError> {
        let json = std::fs::read_to_string(path)?;
        Ok(serde_json::from_str(&json)?)
    }

    /// Generate a fresh capture in memory.
    pub fn generate(day_len_s: u64, seed: u64, hops: usize) -> Self {
        let lab = Testbed::new(TestbedConfig {
            hops,
            ..Default::default()
        });
        let mix = TrafficMix::new(TrafficMixConfig::paper_capture(day_len_s, seed));
        let reports = lab.run_labeled(&mix.generate());
        Self {
            seed,
            day_len_s,
            hops,
            reports,
        }
    }

    pub fn class_counts(&self) -> Vec<(TrafficClass, usize)> {
        TrafficClass::ALL
            .into_iter()
            .map(|c| (c, self.reports.iter().filter(|(_, k)| *k == c).count()))
            .collect()
    }
}

/// Dispatch a parsed command line; writes human output to `out`.
pub fn run(args: &Args, out: &mut impl Write) -> Result<(), CliError> {
    match args.command {
        Command::Help => {
            writeln!(out, "{USAGE}")?;
            Ok(())
        }
        Command::Capture => cmd_capture(args, out),
        Command::Train => cmd_train(args, out),
        Command::Detect => cmd_detect(args, out),
        Command::Microburst => cmd_microburst(args, out),
        Command::Demo => cmd_demo(args, out),
    }
}

fn bad(e: impl fmt::Display) -> CliError {
    CliError::Usage(e.to_string())
}

/// Parse `--telemetry` (default `int`).
fn telemetry_backend(args: &Args) -> Result<TelemetryBackend, CliError> {
    let name = args.get("telemetry", "int");
    TelemetryBackend::parse(name).ok_or_else(|| {
        CliError::Usage(format!(
            "--telemetry expects `int` or `sflow`, got `{name}`"
        ))
    })
}

/// Re-observe an INT capture through a seeded sFlow sampling agent:
/// each report is one packet at the observation point, so the agent's
/// 1-in-N decision produces the sampled view of the same traffic.
fn sflow_view(capture: &CaptureFile, period: u32) -> Vec<(FlowSample, TrafficClass)> {
    let mut agent = SflowAgent::new(
        SamplingMode::RandomSkip {
            period: period.max(1),
        },
        capture.seed,
    );
    sample_reports(&capture.reports, &mut agent)
}

fn cmd_capture(args: &Args, out: &mut impl Write) -> Result<(), CliError> {
    let path = args.get("out", "capture.json").to_string();
    let day_len = args.get_u64("day-len", 10).map_err(bad)?;
    let seed = args.get_u64("seed", 41751).map_err(bad)?;
    let hops = args.get_u64("hops", 1).map_err(bad)? as usize;

    writeln!(
        out,
        "generating capture: 2 × {day_len}s days, seed {seed}, {hops} hop(s)…"
    )?;
    let capture = CaptureFile::generate(day_len, seed, hops.max(1));
    for (class, n) in capture.class_counts() {
        writeln!(out, "  {:<10} {:>8} reports", class.name(), n)?;
    }
    capture.save(&path)?;
    writeln!(out, "wrote {} reports to {path}", capture.reports.len())?;
    Ok(())
}

fn training_config(fast: bool) -> TrainerConfig {
    if fast {
        TrainerConfig {
            mlp: amlight_ml::MlpConfig {
                epochs: 5,
                batch_size: 256,
                ..amlight_ml::MlpConfig::paper_mlp()
            },
            forest: amlight_ml::RandomForestConfig {
                n_trees: 10,
                ..amlight_ml::RandomForestConfig::fast()
            },
            ..Default::default()
        }
    } else {
        TrainerConfig::default()
    }
}

fn cmd_train(args: &Args, out: &mut impl Write) -> Result<(), CliError> {
    let capture_path = args.get("capture", "capture.json").to_string();
    let bundle_path = args.get("out", "bundle.json").to_string();
    let include_slowloris = args.has("include-slowloris");
    let backend = telemetry_backend(args)?;
    let period = args.get_u64("sample-period", 256).map_err(bad)? as u32;

    let capture = CaptureFile::load(&capture_path)?;
    let training: Vec<_> = capture
        .reports
        .iter()
        .filter(|(_, c)| include_slowloris || *c != TrafficClass::SlowLoris)
        .cloned()
        .collect();
    writeln!(
        out,
        "training on {} of {} reports ({} view){}…",
        training.len(),
        capture.reports.len(),
        backend.name(),
        if include_slowloris {
            ""
        } else {
            " (SlowLoris held out as zero-day)"
        }
    )?;
    let raw = match backend {
        TelemetryBackend::Int => dataset_from_int(&training, FeatureSet::Int),
        TelemetryBackend::Sflow => {
            let filtered = CaptureFile {
                seed: capture.seed,
                day_len_s: capture.day_len_s,
                hops: capture.hops,
                reports: training,
            };
            let samples = sflow_view(&filtered, period);
            writeln!(
                out,
                "sFlow 1-in-{period} sampling kept {} of {} reports",
                samples.len(),
                filtered.reports.len()
            )?;
            dataset_from_sflow(&samples)
        }
    };
    let bundle = train_bundle(
        &raw,
        backend.feature_set(),
        &training_config(args.has("fast")),
    );
    bundle.save(&bundle_path)?;
    writeln!(
        out,
        "wrote bundle to {bundle_path} ({} forest trees, MLP {:?}, scaler over {} features)",
        bundle.forest.n_trees(),
        bundle.mlp.hidden_sizes(),
        bundle.scaler.n_features(),
    )?;
    Ok(())
}

fn cmd_detect(args: &Args, out: &mut impl Write) -> Result<(), CliError> {
    let backend = telemetry_backend(args)?;
    let period = args.get_u64("sample-period", 256).map_err(bad)? as u32;
    let capture = CaptureFile::load(args.get("capture", "capture.json"))?;
    let bundle = ModelBundle::load(args.get("bundle", "bundle.json"))?;

    if bundle.feature_set != backend.feature_set() {
        return Err(CliError::Usage(format!(
            "bundle was trained on {:?} features but --telemetry {} needs {:?}; \
             retrain with `amlight train --telemetry {}`",
            bundle.feature_set,
            backend.name(),
            backend.feature_set(),
            backend.name(),
        )));
    }

    if args.has("threaded") {
        let shards = args.get_u64("shards", 1).map_err(bad)? as usize;
        let pipeline = ThreadedPipeline::new(bundle).with_shards(shards.max(1));
        let handle = match backend {
            TelemetryBackend::Int => pipeline.start(ReplaySource::from_labeled(&capture.reports)),
            TelemetryBackend::Sflow => {
                let samples = sflow_view(&capture, period);
                pipeline.start(SflowReplaySource::from_labeled(&samples))
            }
        };
        return print_threaded(handle.join().map_err(bad)?, backend, out);
    }

    let pace = if args.has("paper-pace") {
        PipelineConfig::paper_pace()
    } else {
        PipelineConfig::rust_pace()
    };

    let mut pipeline = DetectionPipeline::new(bundle, pace);
    let report = match backend {
        TelemetryBackend::Int => pipeline.run_sync(&capture.reports),
        TelemetryBackend::Sflow => {
            let samples = sflow_view(&capture, period);
            writeln!(
                out,
                "sFlow 1-in-{period} sampling kept {} of {} reports",
                samples.len(),
                capture.reports.len()
            )?;
            pipeline.run_sync_sflow(&samples)
        }
    };
    print_detection(&report, out)
}

/// Streaming-path summary: both backends replay through the same
/// threaded runtime, so the printout is backend-tagged but identical in
/// shape. Labels rode through the channels, so recall needs no
/// side-channel lookup.
fn print_threaded(
    stats: amlight_core::runtime::ThreadedRunStats,
    backend: TelemetryBackend,
    out: &mut impl Write,
) -> Result<(), CliError> {
    writeln!(
        out,
        "threaded {} replay: {} events → {} flows, {} predictions",
        backend.name(),
        stats.events_in,
        stats.flows_created,
        stats.predictions
    )?;
    writeln!(
        out,
        "verdicts: {} attack / {} normal / {} pending",
        stats.attack_verdicts, stats.normal_verdicts, stats.pending_verdicts
    )?;
    if stats.labeled.labeled_updates() > 0 {
        writeln!(
            out,
            "labeled recall: {:.4} ({} of {} attack updates; false-alarm rate {:.4})",
            stats.labeled.recall(),
            stats.labeled.attack_hits,
            stats.labeled.attack_updates,
            stats.labeled.false_alarm_rate(),
        )?;
    }
    writeln!(
        out,
        "wall-clock prediction latency: mean {:.1} µs, max {:.1} µs",
        stats.mean_latency_us, stats.max_latency_us
    )?;
    Ok(())
}

fn print_detection(
    report: &amlight_core::pipeline::PipelineReport,
    out: &mut impl Write,
) -> Result<(), CliError> {
    writeln!(
        out,
        "{:<10} {:>8} {:>10} {:>8} {:>12} {:>12}",
        "class", "acc", "predicted", "pending", "avg lat (s)", "max lat (s)"
    )?;
    for class in report.classes() {
        let s = report.class_summary(class);
        let acc = if s.predicted == 0 {
            "   -    ".to_string() // nothing cleared the smoothing window
        } else {
            format!("{:>8.4}", s.accuracy())
        };
        writeln!(
            out,
            "{:<10} {acc} {:>10} {:>8} {:>12.4} {:>12.4}",
            class.name(),
            s.predicted,
            s.pending,
            s.avg_latency_s,
            s.max_latency_s,
        )?;
    }
    writeln!(out, "overall accuracy: {:.4}", report.overall_accuracy())?;
    if report.flood_alerts.is_empty() {
        writeln!(out, "new-flow-rate guard: quiet")?;
    } else {
        for a in &report.flood_alerts {
            writeln!(
                out,
                "GUARD ALERT: {} created {} flows in the epoch at t={:.1}s (baseline {:.1})",
                a.dst,
                a.new_flows,
                a.epoch_start_ns as f64 / 1e9,
                a.baseline,
            )?;
        }
    }
    Ok(())
}

fn cmd_microburst(args: &Args, out: &mut impl Write) -> Result<(), CliError> {
    let capture = CaptureFile::load(args.get("capture", "capture.json"))?;
    let bursts = detect_from_reports(
        capture.reports.iter().map(|(r, _)| r),
        MicroburstConfig::default(),
    );
    if bursts.is_empty() {
        writeln!(
            out,
            "no microbursts detected in {} reports",
            capture.reports.len()
        )?;
    } else {
        writeln!(out, "{} microburst(s) detected:", bursts.len())?;
        for b in &bursts {
            writeln!(
                out,
                "  t = {:.6}–{:.6} s, duration {:.1} µs, peak depth {}",
                b.start_ns as f64 / 1e9,
                b.end_ns as f64 / 1e9,
                b.duration_ns() as f64 / 1e3,
                b.peak_depth,
            )?;
        }
    }
    Ok(())
}

fn cmd_demo(args: &Args, out: &mut impl Write) -> Result<(), CliError> {
    let seed = args.get_u64("seed", 41751).map_err(bad)?;
    writeln!(
        out,
        "== amlight demo: capture → train → detect (seed {seed}) =="
    )?;

    let train_capture = CaptureFile::generate(5, seed, 1);
    writeln!(
        out,
        "training capture: {} reports",
        train_capture.reports.len()
    )?;
    let training: Vec<_> = train_capture
        .reports
        .iter()
        .filter(|(_, c)| *c != TrafficClass::SlowLoris)
        .cloned()
        .collect();
    let raw = dataset_from_int(&training, FeatureSet::Int);
    let bundle = train_bundle(&raw, FeatureSet::Int, &training_config(true));

    let test_capture = CaptureFile::generate(5, seed ^ 0xD37EC7, 1);
    writeln!(
        out,
        "test capture: {} reports (fresh seed)",
        test_capture.reports.len()
    )?;
    let mut pipeline = DetectionPipeline::new(bundle, PipelineConfig::rust_pace());
    let report = pipeline.run_sync(&test_capture.reports);
    print_detection(&report, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("amlight-cli-{}-{name}", std::process::id()))
    }

    fn run_tokens(tokens: &[&str]) -> Result<String, CliError> {
        let args = Args::parse(tokens.iter().copied()).expect("parse");
        let mut out = Vec::new();
        run(&args, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    #[test]
    fn help_prints_usage() {
        let text = run_tokens(&["help"]).unwrap();
        assert!(text.contains("USAGE"));
        assert!(text.contains("microburst"));
    }

    #[test]
    fn capture_train_detect_roundtrip() {
        let cap = tmp("cap.json");
        let bun = tmp("bun.json");
        let cap_s = cap.to_str().unwrap();
        let bun_s = bun.to_str().unwrap();

        let text =
            run_tokens(&["capture", "--out", cap_s, "--day-len", "3", "--seed", "7"]).unwrap();
        assert!(text.contains("wrote"), "{text}");

        let text = run_tokens(&["train", "--capture", cap_s, "--out", bun_s, "--fast"]).unwrap();
        assert!(text.contains("SlowLoris held out"), "{text}");

        let text = run_tokens(&["detect", "--capture", cap_s, "--bundle", bun_s]).unwrap();
        assert!(text.contains("overall accuracy"), "{text}");
        assert!(text.contains("SlowLoris") || text.contains("Benign"));

        let text = run_tokens(&[
            "detect",
            "--capture",
            cap_s,
            "--bundle",
            bun_s,
            "--threaded",
            "--shards",
            "4",
        ])
        .unwrap();
        assert!(text.contains("threaded int replay"), "{text}");
        assert!(text.contains("labeled recall"), "{text}");
        assert!(text.contains("wall-clock prediction latency"), "{text}");

        let text = run_tokens(&["microburst", "--capture", cap_s]).unwrap();
        assert!(text.contains("microburst"), "{text}");

        std::fs::remove_file(&cap).ok();
        std::fs::remove_file(&bun).ok();
    }

    #[test]
    fn sflow_train_detect_roundtrip() {
        let cap = tmp("sflow-cap.json");
        let bun = tmp("sflow-bun.json");
        let cap_s = cap.to_str().unwrap();
        let bun_s = bun.to_str().unwrap();

        run_tokens(&["capture", "--out", cap_s, "--day-len", "3", "--seed", "11"]).unwrap();
        // A tight period keeps enough samples to train on a tiny capture.
        let text = run_tokens(&[
            "train",
            "--capture",
            cap_s,
            "--out",
            bun_s,
            "--fast",
            "--telemetry",
            "sflow",
            "--sample-period",
            "8",
        ])
        .unwrap();
        assert!(text.contains("sflow view"), "{text}");
        assert!(text.contains("sFlow 1-in-8 sampling kept"), "{text}");

        // An INT-features bundle must be rejected for an sFlow replay
        // (and vice versa) before any work happens.
        let text = run_tokens(&[
            "detect",
            "--capture",
            cap_s,
            "--bundle",
            bun_s,
            "--telemetry",
            "sflow",
            "--sample-period",
            "8",
        ])
        .unwrap();
        assert!(text.contains("overall accuracy"), "{text}");

        let err = run_tokens(&["detect", "--capture", cap_s, "--bundle", bun_s]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        assert!(err.to_string().contains("--telemetry"), "{err}");

        let text = run_tokens(&[
            "detect",
            "--capture",
            cap_s,
            "--bundle",
            bun_s,
            "--telemetry",
            "sflow",
            "--sample-period",
            "8",
            "--threaded",
            "--shards",
            "2",
        ])
        .unwrap();
        assert!(text.contains("threaded sflow replay"), "{text}");

        std::fs::remove_file(&cap).ok();
        std::fs::remove_file(&bun).ok();
    }

    #[test]
    fn bad_telemetry_value_is_a_usage_error() {
        let err = run_tokens(&["detect", "--telemetry", "netflow"]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        assert!(err.to_string().contains("netflow"), "{err}");
    }

    #[test]
    fn detect_with_missing_files_errors() {
        let err = run_tokens(&["detect", "--capture", "/nonexistent/x.json"]).unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
    }

    #[test]
    fn capture_file_roundtrip() {
        let capture = CaptureFile::generate(2, 3, 1);
        let path = tmp("roundtrip.json");
        capture.save(&path).unwrap();
        let back = CaptureFile::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.reports.len(), capture.reports.len());
        assert_eq!(back.seed, 3);
        assert_eq!(back.class_counts(), capture.class_counts());
    }
}
