//! INT source / transit / sink roles, and the instrumenter that turns
//! simulator output into telemetry reports.
//!
//! In hardware the roles live in the switches themselves (paper Fig. 1).
//! Our simulator already records per-hop ground truth ([`HopRecord`]); the
//! instrumenter replays those records through the INT state machine:
//! source inserts the header, every hop (source included, per INT-MD)
//! pushes metadata if the hop budget allows, sink strips and exports.
//! Timestamps are truncated to 32 bits here — the collector never sees
//! full-width time.

use crate::header::{InstructionSet, IntHeader};
use crate::metadata::HopMetadata;
use crate::report::TelemetryReport;
use amlight_net::{Trace, TrafficClass};
use amlight_sim::clock::TelemetryClock;
use amlight_sim::engine::{HopRecord, SimReport};
use serde::{Deserialize, Serialize};

/// Role a switch plays in the INT domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IntRole {
    Source,
    Transit,
    Sink,
    /// Outside the INT domain: contributes no metadata.
    None,
}

/// Fixed latency the sink adds between packet egress and report export —
/// mirrors the mirror-port + capture path on the testbed (port 5 tap).
pub const SINK_EXPORT_DELAY_NS: u64 = 1_500;

/// Turns simulated packet journeys into INT telemetry reports.
#[derive(Debug, Clone)]
pub struct IntInstrumenter {
    instructions: InstructionSet,
    hop_budget: u8,
}

impl IntInstrumenter {
    pub fn new(instructions: InstructionSet) -> Self {
        Self {
            instructions,
            hop_budget: IntHeader::DEFAULT_HOP_BUDGET,
        }
    }

    /// AmLight's production instruction set.
    pub fn amlight() -> Self {
        Self::new(InstructionSet::amlight())
    }

    pub fn with_hop_budget(mut self, budget: u8) -> Self {
        self.hop_budget = budget;
        self
    }

    pub fn instructions(&self) -> &InstructionSet {
        &self.instructions
    }

    fn hop_metadata(&self, h: &HopRecord) -> HopMetadata {
        let ingress = TelemetryClock::truncate(h.ingress_ns);
        let egress = TelemetryClock::truncate(h.egress_ns);
        HopMetadata {
            switch_id: h.switch.0,
            ingress_tstamp: if self
                .instructions
                .contains(crate::header::Instruction::IngressTstamp)
            {
                ingress
            } else {
                0
            },
            egress_tstamp: if self
                .instructions
                .contains(crate::header::Instruction::EgressTstamp)
            {
                egress
            } else {
                0
            },
            hop_latency: if self
                .instructions
                .contains(crate::header::Instruction::HopLatency)
            {
                egress.wrapping_sub(ingress)
            } else {
                0
            },
            queue_occupancy: if self
                .instructions
                .contains(crate::header::Instruction::QueueOccupancy)
            {
                h.qdepth
            } else {
                0
            },
        }
    }

    /// Produce one report per **delivered** packet (dropped packets never
    /// reach the sink, so they generate no telemetry — exactly the
    /// visibility gap a real INT deployment has).
    ///
    /// Reports come out ordered by sink export time.
    pub fn instrument(&self, trace: &Trace, sim: &SimReport) -> Vec<TelemetryReport> {
        let records = trace.records();
        let mut reports: Vec<TelemetryReport> = sim
            .journeys
            .iter()
            .filter(|j| j.delivered_ns.is_some())
            .map(|j| {
                let rec = &records[j.trace_idx as usize];
                let budget = self.hop_budget as usize;
                let hops: crate::hops::HopStack = j
                    .hops
                    .iter()
                    .take(budget)
                    .map(|h| self.hop_metadata(h))
                    .collect();
                TelemetryReport {
                    flow: rec.packet.flow_key(),
                    ip_len: rec.packet.ip_len(),
                    tcp_flags: rec.packet.tcp_flags().map(|f| f.bits()),
                    instructions: self.instructions,
                    hops,
                    export_ns: j.delivered_ns.unwrap() + SINK_EXPORT_DELAY_NS,
                }
            })
            .collect();
        reports.sort_by_key(|r| r.export_ns);
        reports
    }

    /// Like [`IntInstrumenter::instrument`], but also returns each
    /// report's ground-truth class (for labeling training data).
    pub fn instrument_labeled(
        &self,
        trace: &Trace,
        sim: &SimReport,
    ) -> Vec<(TelemetryReport, TrafficClass)> {
        let records = trace.records();
        let mut out: Vec<(TelemetryReport, TrafficClass)> = sim
            .journeys
            .iter()
            .filter(|j| j.delivered_ns.is_some())
            .map(|j| {
                let rec = &records[j.trace_idx as usize];
                let hops: crate::hops::HopStack = j
                    .hops
                    .iter()
                    .take(self.hop_budget as usize)
                    .map(|h| self.hop_metadata(h))
                    .collect();
                (
                    TelemetryReport {
                        flow: rec.packet.flow_key(),
                        ip_len: rec.packet.ip_len(),
                        tcp_flags: rec.packet.tcp_flags().map(|f| f.bits()),
                        instructions: self.instructions,
                        hops,
                        export_ns: j.delivered_ns.unwrap() + SINK_EXPORT_DELAY_NS,
                    },
                    rec.class,
                )
            })
            .collect();
        out.sort_by_key(|(r, _)| r.export_ns);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amlight_net::{PacketBuilder, PacketRecord};
    use amlight_sim::topology::LinkParams;
    use amlight_sim::{NetworkSim, Topology};
    use std::net::Ipv4Addr;

    fn run(n: u64, gap: u64) -> (Trace, SimReport) {
        let (topo, _, _) = Topology::testbed();
        let b = PacketBuilder::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2));
        let trace: Trace = (0..n)
            .map(|i| PacketRecord {
                ts_ns: i * gap,
                packet: b.tcp_syn(40000, 80, i as u32),
                class: TrafficClass::Benign,
            })
            .collect();
        let report = NetworkSim::new(topo).run(&trace);
        (trace, report)
    }

    #[test]
    fn one_report_per_delivered_packet() {
        let (trace, sim) = run(20, 1_000);
        let reports = IntInstrumenter::amlight().instrument(&trace, &sim);
        assert_eq!(reports.len(), 20);
    }

    #[test]
    fn reports_carry_truncated_timestamps() {
        let (trace, sim) = run(1, 0);
        let reports = IntInstrumenter::amlight().instrument(&trace, &sim);
        let hop = &reports[0].hops[0];
        let truth = &sim.journeys[0].hops[0];
        assert_eq!(
            hop.ingress_tstamp,
            TelemetryClock::truncate(truth.ingress_ns)
        );
        assert_eq!(hop.egress_tstamp, TelemetryClock::truncate(truth.egress_ns));
        assert_eq!(hop.queue_occupancy, truth.qdepth);
    }

    #[test]
    fn amlight_set_zeroes_hop_latency_field() {
        let (trace, sim) = run(1, 0);
        let reports = IntInstrumenter::amlight().instrument(&trace, &sim);
        assert_eq!(reports[0].hops[0].hop_latency, 0);
        let full = IntInstrumenter::new(InstructionSet::full()).instrument(&trace, &sim);
        assert!(full[0].hops[0].hop_latency > 0);
    }

    #[test]
    fn hop_budget_caps_stack_depth() {
        let (topo, _, _) = Topology::linear_chain(4, LinkParams::default());
        let b = PacketBuilder::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2));
        let trace: Trace = vec![PacketRecord {
            ts_ns: 0,
            packet: b.tcp_syn(1, 2, 3),
            class: TrafficClass::Benign,
        }]
        .into_iter()
        .collect();
        let sim = NetworkSim::new(topo).run(&trace);
        let full = IntInstrumenter::amlight().instrument(&trace, &sim);
        assert_eq!(full[0].hops.len(), 4);
        let capped = IntInstrumenter::amlight()
            .with_hop_budget(2)
            .instrument(&trace, &sim);
        assert_eq!(capped[0].hops.len(), 2);
    }

    #[test]
    fn export_order_is_chronological() {
        let (trace, sim) = run(50, 100);
        let reports = IntInstrumenter::amlight().instrument(&trace, &sim);
        for w in reports.windows(2) {
            assert!(w[0].export_ns <= w[1].export_ns);
        }
    }

    #[test]
    fn labeled_variant_preserves_classes() {
        let (topo, _, _) = Topology::testbed();
        let b = PacketBuilder::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2));
        let mut trace = Trace::new();
        trace.push(PacketRecord {
            ts_ns: 0,
            packet: b.tcp_syn(1, 2, 0),
            class: TrafficClass::Benign,
        });
        trace.push(PacketRecord {
            ts_ns: 100,
            packet: b.tcp_syn(3, 4, 0),
            class: TrafficClass::SynFlood,
        });
        let sim = NetworkSim::new(topo).run(&trace);
        let labeled = IntInstrumenter::amlight().instrument_labeled(&trace, &sim);
        assert_eq!(labeled.len(), 2);
        let classes: Vec<TrafficClass> = labeled.iter().map(|(_, c)| *c).collect();
        assert!(classes.contains(&TrafficClass::Benign));
        assert!(classes.contains(&TrafficClass::SynFlood));
    }
}
