//! Telemetry reports — what the INT sink exports to the collector.

use crate::header::InstructionSet;
use crate::hops::HopStack;
use crate::metadata::HopMetadata;
use amlight_net::{CodecError, Decode, Encode, FlowKey};
use bytes::{Buf, BufMut};
use serde::{Deserialize, Serialize};

/// Magic tag opening every telemetry report on the wire.
pub const REPORT_MAGIC: u16 = 0x1A17;

/// Upper bound on stack entries a well-formed report can carry — the
/// default INT hop budget. Decoding rejects larger counts, which bounds
/// how much stream a corrupted length field can swallow before the
/// collector resynchronizes.
pub const MAX_REPORT_HOPS: usize = 16;

/// A per-packet telemetry report: the IP-header fields the paper's INT
/// Data Collection module reads (§III-1) plus the per-hop metadata stack.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetryReport {
    /// Five-tuple of the reported packet.
    pub flow: FlowKey,
    /// IP total length ("Packet length" feature).
    pub ip_len: u16,
    /// TCP flag bits, or `None` for UDP.
    pub tcp_flags: Option<u8>,
    /// Which fields each stack entry carries.
    pub instructions: InstructionSet,
    /// Per-hop metadata, source hop first. Inline up to
    /// [`crate::hops::MAX_INLINE_HOPS`] entries; longer stacks spill to
    /// the heap explicitly (see [`HopStack`]), so decoding a typical
    /// AmLight report allocates nothing.
    pub hops: HopStack,
    /// Sink export time, full-width ns (collector-side bookkeeping; NOT
    /// part of the 32-bit INT stamps).
    pub export_ns: u64,
}

impl TelemetryReport {
    /// Telemetry of the sink hop (last switch before the collector tap).
    pub fn sink_hop(&self) -> Option<&HopMetadata> {
        self.hops.last()
    }

    /// Telemetry of the source hop.
    pub fn source_hop(&self) -> Option<&HopMetadata> {
        self.hops.first()
    }

    /// Maximum queue occupancy observed along the path.
    pub fn max_queue_occupancy(&self) -> u32 {
        self.hops
            .iter()
            .map(|h| h.queue_occupancy)
            .max()
            .unwrap_or(0)
    }

    /// Sum of per-hop latencies (wrap-aware derivation), ns.
    pub fn path_latency_ns(&self) -> u64 {
        self.hops
            .iter()
            .map(|h| u64::from(h.derived_latency_ns()))
            .sum()
    }
}

impl Encode for TelemetryReport {
    fn encoded_len(&self) -> usize {
        // magic(2) ver(1) hop_count(1) bitmap(2) ip_len(2) flags(1)
        // key(13) export(8) + stack
        2 + 1 + 1 + 2 + 2 + 1 + 13 + 8 + self.hops.len() * self.instructions.hop_metadata_len()
    }

    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u16(REPORT_MAGIC);
        buf.put_u8(1); // report format version
                       // Saturate rather than truncate: 256 hops `as u8` would alias
                       // to 0 and decode as a silently-empty report (the tail then
                       // misparses as garbage). 255 trips the decoder's
                       // MAX_REPORT_HOPS bound instead — the corruption is *detected*.
        buf.put_u8(u8::try_from(self.hops.len()).unwrap_or(u8::MAX));
        buf.put_u16(self.instructions.bits());
        buf.put_u16(self.ip_len);
        buf.put_u8(self.tcp_flags.map_or(0xff, |f| f & 0x3f));
        buf.put_slice(&self.flow.to_bytes());
        buf.put_u64(self.export_ns);
        for h in &self.hops {
            h.encode_selected(&self.instructions, buf);
        }
    }
}

impl Decode for TelemetryReport {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, CodecError> {
        const FIXED: usize = 2 + 1 + 1 + 2 + 2 + 1 + 13 + 8;
        if buf.remaining() < FIXED {
            return Err(CodecError::Truncated {
                needed: FIXED,
                had: buf.remaining(),
            });
        }
        let magic = buf.get_u16();
        if magic != REPORT_MAGIC {
            return Err(CodecError::Malformed("bad telemetry report magic"));
        }
        let version = buf.get_u8();
        if version != 1 {
            return Err(CodecError::Malformed("unsupported report version"));
        }
        let hop_count = buf.get_u8() as usize;
        if hop_count > MAX_REPORT_HOPS {
            return Err(CodecError::Malformed("implausible hop count"));
        }
        let instructions = InstructionSet::from_bits(buf.get_u16());
        let ip_len = buf.get_u16();
        let raw_flags = buf.get_u8();
        let tcp_flags = if raw_flags == 0xff {
            None
        } else {
            Some(raw_flags)
        };
        let mut key_bytes = [0u8; 13];
        buf.copy_to_slice(&mut key_bytes);
        let flow = FlowKey::from_bytes(&key_bytes)
            .ok_or(CodecError::Malformed("bad flow key in report"))?;
        let export_ns = buf.get_u64();
        // Inline for hop_count ≤ MAX_INLINE_HOPS (every AmLight report);
        // HopStack spills explicitly for the 9..=16 tail the wire format
        // still permits.
        let mut hops = HopStack::new();
        for _ in 0..hop_count {
            // amlint: cold -- HopStack inline push; heap spill only past MAX_INLINE_HOPS
            hops.push(HopMetadata::decode_selected(&instructions, buf)?);
        }
        Ok(Self {
            flow,
            ip_len,
            tcp_flags,
            instructions,
            hops,
            export_ns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amlight_net::Protocol;
    use std::net::Ipv4Addr;

    fn report(hops: usize) -> TelemetryReport {
        TelemetryReport {
            flow: FlowKey::new(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 0, 2),
                40001,
                80,
                Protocol::Tcp,
            ),
            ip_len: 40,
            tcp_flags: Some(0x02),
            instructions: InstructionSet::amlight(),
            hops: (0..hops)
                .map(|i| HopMetadata {
                    switch_id: i as u32,
                    ingress_tstamp: 100 * i as u32,
                    egress_tstamp: 100 * i as u32 + 50,
                    hop_latency: 0,
                    queue_occupancy: i as u32 * 3,
                })
                .collect(),
            export_ns: 123_456_789,
        }
    }

    #[test]
    fn roundtrip_multi_hop() {
        let r = report(3);
        let mut buf = r.encode_to_bytes();
        assert_eq!(buf.len(), r.encoded_len());
        let mut cursor = buf.split().freeze();
        assert_eq!(TelemetryReport::decode(&mut cursor).unwrap(), r);
    }

    #[test]
    fn roundtrip_udp_report_has_no_flags() {
        let mut r = report(1);
        r.tcp_flags = None;
        r.flow.protocol = Protocol::Udp;
        let mut cursor = r.encode_to_bytes().freeze();
        let back = TelemetryReport::decode(&mut cursor).unwrap();
        assert_eq!(back.tcp_flags, None);
    }

    #[test]
    fn roundtrip_past_inline_bound_spills() {
        let r = report(crate::hops::MAX_INLINE_HOPS + 3);
        assert!(r.hops.spilled());
        let mut cursor = r.encode_to_bytes().freeze();
        let back = TelemetryReport::decode(&mut cursor).unwrap();
        assert_eq!(back, r);
        assert!(back.hops.spilled(), "decode takes the explicit fallback");
    }

    #[test]
    fn typical_decode_stays_inline() {
        let r = report(5);
        let mut cursor = r.encode_to_bytes().freeze();
        let back = TelemetryReport::decode(&mut cursor).unwrap();
        assert!(!back.hops.spilled());
    }

    #[test]
    fn rejects_bad_magic() {
        let r = report(1);
        let mut bytes = r.encode_to_bytes();
        bytes[0] = 0;
        let mut cursor = bytes.freeze();
        assert!(TelemetryReport::decode(&mut cursor).is_err());
    }

    #[test]
    fn rejects_truncated_stack() {
        let r = report(2);
        let bytes = r.encode_to_bytes();
        let cut = bytes.len() - 4;
        let mut cursor = bytes.freeze().slice(..cut);
        assert!(matches!(
            TelemetryReport::decode(&mut cursor),
            Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn helpers_summarize_path() {
        let r = report(3);
        assert_eq!(r.source_hop().unwrap().switch_id, 0);
        assert_eq!(r.sink_hop().unwrap().switch_id, 2);
        assert_eq!(r.max_queue_occupancy(), 6);
        assert_eq!(r.path_latency_ns(), 150);
    }

    #[test]
    fn implausible_hop_count_rejected() {
        let r = report(1);
        let mut bytes = r.encode_to_bytes();
        bytes[3] = 200; // hop_count field
        let mut cursor = bytes.freeze();
        assert!(matches!(
            TelemetryReport::decode(&mut cursor),
            Err(CodecError::Malformed(_))
        ));
    }

    #[test]
    fn zero_hop_report_is_legal() {
        let r = TelemetryReport {
            hops: HopStack::new(),
            ..report(0)
        };
        let mut cursor = r.encode_to_bytes().freeze();
        let back = TelemetryReport::decode(&mut cursor).unwrap();
        assert!(back.hops.is_empty());
        assert_eq!(back.max_queue_occupancy(), 0);
        assert!(back.sink_hop().is_none());
    }
}
