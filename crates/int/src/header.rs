//! The INT-MD header: instruction bitmap and stack bookkeeping.

use amlight_net::{CodecError, Decode, Encode};
use bytes::{Buf, BufMut};
use serde::{Deserialize, Serialize};

/// One telemetry instruction — a bit in the INT instruction bitmap.
///
/// Bit positions follow the INT v2.1 spec's first instruction word
/// (bit 15 = MSB = instruction 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u16)]
pub enum Instruction {
    /// Node (switch) ID.
    SwitchId = 15,
    /// Ingress timestamp, 32-bit ns.
    IngressTstamp = 11,
    /// Egress timestamp, 32-bit ns.
    EgressTstamp = 10,
    /// Hop latency (egress − ingress), 32-bit ns.
    HopLatency = 13,
    /// Queue occupancy at dequeue.
    QueueOccupancy = 12,
}

impl Instruction {
    pub const ALL: [Instruction; 5] = [
        Instruction::SwitchId,
        Instruction::IngressTstamp,
        Instruction::EgressTstamp,
        Instruction::HopLatency,
        Instruction::QueueOccupancy,
    ];

    #[inline]
    fn mask(self) -> u16 {
        1 << (self as u16)
    }
}

/// A set of instructions — the bitmap carried in the INT header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct InstructionSet(u16);

impl InstructionSet {
    pub const fn empty() -> Self {
        InstructionSet(0)
    }

    /// The paper's deployment: switch id, both timestamps, and queue
    /// occupancy (§III-1 lists exactly these INT fields).
    pub fn amlight() -> Self {
        Self::empty()
            .with(Instruction::SwitchId)
            .with(Instruction::IngressTstamp)
            .with(Instruction::EgressTstamp)
            .with(Instruction::QueueOccupancy)
    }

    /// Everything we can collect (adds hop latency).
    pub fn full() -> Self {
        let mut s = Self::empty();
        for i in Instruction::ALL {
            s = s.with(i);
        }
        s
    }

    #[must_use]
    pub fn with(mut self, i: Instruction) -> Self {
        self.0 |= i.mask();
        self
    }

    #[inline]
    pub fn contains(&self, i: Instruction) -> bool {
        self.0 & i.mask() != 0
    }

    /// Number of requested instructions.
    pub fn len(&self) -> u32 {
        self.0.count_ones()
    }

    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Bytes of metadata each hop pushes: 4 bytes per instruction.
    pub fn hop_metadata_len(&self) -> usize {
        self.len() as usize * 4
    }

    pub fn bits(&self) -> u16 {
        self.0
    }

    pub fn from_bits(bits: u16) -> Self {
        InstructionSet(bits)
    }

    /// Iterate set instructions in canonical (stack) order.
    pub fn iter(&self) -> impl Iterator<Item = Instruction> + '_ {
        Instruction::ALL.into_iter().filter(|i| self.contains(*i))
    }
}

/// The INT-MD header inserted by the source switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntHeader {
    pub version: u8,
    pub instructions: InstructionSet,
    /// Hops remaining before transit switches stop pushing metadata.
    pub remaining_hop_count: u8,
    /// Number of metadata entries currently on the stack.
    pub stack_depth: u8,
}

impl IntHeader {
    pub const WIRE_LEN: usize = 8;
    pub const VERSION: u8 = 2;
    /// Default hop budget — generous for our ≤ 8-hop topologies.
    pub const DEFAULT_HOP_BUDGET: u8 = 16;

    pub fn new(instructions: InstructionSet) -> Self {
        Self {
            version: Self::VERSION,
            instructions,
            remaining_hop_count: Self::DEFAULT_HOP_BUDGET,
            stack_depth: 0,
        }
    }

    /// Total INT bytes a packet carries with `hops` stack entries:
    /// header + per-hop metadata. This is the payload-ratio overhead the
    /// paper references from \[6\].
    pub fn overhead_bytes(&self, hops: usize) -> usize {
        Self::WIRE_LEN + hops * self.instructions.hop_metadata_len()
    }
}

impl Encode for IntHeader {
    fn encoded_len(&self) -> usize {
        Self::WIRE_LEN
    }

    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u8(self.version);
        buf.put_u8(self.remaining_hop_count);
        buf.put_u8(self.stack_depth);
        buf.put_u8(0); // reserved
        buf.put_u16(self.instructions.bits());
        buf.put_u16(0); // reserved / domain id
    }
}

impl Decode for IntHeader {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, CodecError> {
        if buf.remaining() < Self::WIRE_LEN {
            return Err(CodecError::Truncated {
                needed: Self::WIRE_LEN,
                had: buf.remaining(),
            });
        }
        let version = buf.get_u8();
        if version != Self::VERSION {
            return Err(CodecError::Malformed("unsupported INT version"));
        }
        let remaining_hop_count = buf.get_u8();
        let stack_depth = buf.get_u8();
        let _rsvd = buf.get_u8();
        let instructions = InstructionSet::from_bits(buf.get_u16());
        let _rsvd2 = buf.get_u16();
        Ok(Self {
            version,
            instructions,
            remaining_hop_count,
            stack_depth,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amlight_set_matches_paper_fields() {
        let s = InstructionSet::amlight();
        assert!(s.contains(Instruction::SwitchId));
        assert!(s.contains(Instruction::IngressTstamp));
        assert!(s.contains(Instruction::EgressTstamp));
        assert!(s.contains(Instruction::QueueOccupancy));
        assert!(!s.contains(Instruction::HopLatency));
        assert_eq!(s.len(), 4);
        assert_eq!(s.hop_metadata_len(), 16);
    }

    #[test]
    fn full_set_has_all_five() {
        assert_eq!(InstructionSet::full().len(), 5);
        assert_eq!(InstructionSet::full().hop_metadata_len(), 20);
    }

    #[test]
    fn empty_set() {
        let s = InstructionSet::empty();
        assert!(s.is_empty());
        assert_eq!(s.hop_metadata_len(), 0);
    }

    #[test]
    fn iter_yields_only_set_instructions() {
        let s = InstructionSet::empty()
            .with(Instruction::SwitchId)
            .with(Instruction::QueueOccupancy);
        let got: Vec<Instruction> = s.iter().collect();
        assert_eq!(
            got,
            vec![Instruction::SwitchId, Instruction::QueueOccupancy]
        );
    }

    #[test]
    fn header_roundtrip() {
        let mut h = IntHeader::new(InstructionSet::amlight());
        h.remaining_hop_count = 3;
        h.stack_depth = 2;
        let mut buf = h.encode_to_bytes().freeze();
        assert_eq!(IntHeader::decode(&mut buf).unwrap(), h);
    }

    #[test]
    fn header_rejects_bad_version() {
        let h = IntHeader::new(InstructionSet::amlight());
        let mut bytes = h.encode_to_bytes();
        bytes[0] = 9;
        let mut cursor = bytes.freeze();
        assert!(IntHeader::decode(&mut cursor).is_err());
    }

    #[test]
    fn overhead_grows_per_hop() {
        let h = IntHeader::new(InstructionSet::amlight());
        assert_eq!(h.overhead_bytes(0), 8);
        assert_eq!(h.overhead_bytes(1), 8 + 16);
        assert_eq!(h.overhead_bytes(3), 8 + 48);
    }

    #[test]
    fn instruction_bits_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for i in Instruction::ALL {
            assert!(seen.insert(i.mask()));
        }
    }
}
