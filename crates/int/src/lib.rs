//! In-band Network Telemetry (INT) — headers, source/transit/sink roles,
//! telemetry reports, and the collector.
//!
//! The model follows the INT-MD (eMbedded Data) mode the paper deploys:
//! the **source** switch inserts an INT header carrying an instruction
//! bitmap; each **transit** switch pushes a per-hop metadata stack entry
//! answering those instructions; the **sink** switch strips the stack and
//! exports a telemetry report to the collector (paper Fig. 1).
//!
//! Two deliberate fidelity points:
//!
//! * Per-hop timestamps are truncated to **32 bits of nanoseconds** at
//!   export, as on Tofino — they wrap every 4.295 s (paper §V). The
//!   full-width times stay inside the simulator only.
//! * Queue occupancy is the depth **at dequeue** (`deq_qdepth`).

// Compiler-enforced arm of amlint rule R5: unsafe stays in shims/.
#![forbid(unsafe_code)]

pub mod budget;
pub mod collector;
pub mod header;
pub mod hops;
pub mod metadata;
pub mod microburst;
pub mod pipeline;
pub mod report;

pub use budget::{BudgetedTelemetry, OverheadStats, TelemetryBudget};
pub use collector::{CollectorStats, DatagramOutcome, IntCollector};
pub use header::{Instruction, InstructionSet, IntHeader};
pub use hops::{HopStack, MAX_INLINE_HOPS};
pub use metadata::HopMetadata;
pub use microburst::{Microburst, MicroburstConfig, MicroburstDetector};
pub use pipeline::{IntInstrumenter, IntRole};
pub use report::TelemetryReport;
