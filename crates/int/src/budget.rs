//! Telemetry-budget reduction: probabilistic and spatial INT sampling.
//!
//! The paper's future work leans on PINT (Ben Basat et al., SIGCOMM'20
//! — its ref \[30\]) and spatial sampling (Polverini et al. — its ref
//! \[31\]) to cut INT's per-packet overhead before production deployment.
//! This module implements both reduction modes over our telemetry
//! stream so the cost/accuracy trade-off can be measured
//! (`repro_overhead` in the bench crate):
//!
//! * **Probabilistic** — each packet carries the per-hop metadata stack
//!   with probability *p* (PINT's per-packet value sampling, the
//!   decoder side of its sketch simplified to presence/absence);
//! * **Spatial** — only every *k*-th hop of the path contributes
//!   metadata (a static spatial sampling pattern).
//!
//! Reduced reports still carry the five-tuple and packet length (those
//! ride the packet header, not the INT stack), so flow accounting keeps
//! working; what degrades is timestamp/queue coverage.

use crate::report::TelemetryReport;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How to spend the telemetry budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TelemetryBudget {
    /// Classic INT: every packet, every hop.
    Full,
    /// Each packet carries its metadata stack with probability `p`.
    Probabilistic { p: f64 },
    /// Keep one hop in every `stride` along the path (always including
    /// the sink hop, whose stamps drive inter-arrival features).
    Spatial { stride: usize },
}

/// Byte accounting for a (possibly reduced) telemetry stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OverheadStats {
    /// Packets observed.
    pub packets: u64,
    /// Metadata bytes a full-INT deployment would have carried.
    pub full_bytes: u64,
    /// Metadata bytes actually carried under the budget.
    pub carried_bytes: u64,
}

impl OverheadStats {
    /// Fraction of full-INT metadata bytes actually spent.
    pub fn cost_fraction(&self) -> f64 {
        if self.full_bytes == 0 {
            0.0
        } else {
            self.carried_bytes as f64 / self.full_bytes as f64
        }
    }

    /// Bytes saved relative to full INT.
    pub fn saved_bytes(&self) -> u64 {
        self.full_bytes - self.carried_bytes
    }
}

/// Applies a [`TelemetryBudget`] to a report stream.
#[derive(Debug, Clone)]
pub struct BudgetedTelemetry {
    budget: TelemetryBudget,
    rng: SmallRng,
    stats: OverheadStats,
}

impl BudgetedTelemetry {
    pub fn new(budget: TelemetryBudget, seed: u64) -> Self {
        if let TelemetryBudget::Probabilistic { p } = budget {
            assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        }
        if let TelemetryBudget::Spatial { stride } = budget {
            assert!(stride >= 1, "stride must be at least 1");
        }
        Self {
            budget,
            rng: SmallRng::seed_from_u64(seed),
            stats: OverheadStats::default(),
        }
    }

    pub fn budget(&self) -> TelemetryBudget {
        self.budget
    }

    pub fn stats(&self) -> OverheadStats {
        self.stats
    }

    /// Reduce one report in place per the budget; returns whether any
    /// metadata survived.
    pub fn apply(&mut self, report: &mut TelemetryReport) -> bool {
        let per_hop = report.instructions.hop_metadata_len() as u64;
        let full = per_hop * report.hops.len() as u64;
        self.stats.packets += 1;
        self.stats.full_bytes += full;

        match self.budget {
            TelemetryBudget::Full => {
                self.stats.carried_bytes += full;
                true
            }
            TelemetryBudget::Probabilistic { p } => {
                if self.rng.random::<f64>() < p {
                    self.stats.carried_bytes += full;
                    true
                } else {
                    report.hops.clear();
                    false
                }
            }
            TelemetryBudget::Spatial { stride } => {
                let n = report.hops.len();
                if n == 0 {
                    return false;
                }
                // Keep hops at indices ≡ 0 (mod stride) plus the sink.
                let mut kept = 0usize;
                let mut idx = 0usize;
                report.hops.retain(|_| {
                    let keep = idx.is_multiple_of(stride) || idx == n - 1;
                    idx += 1;
                    if keep {
                        kept += 1;
                    }
                    keep
                });
                self.stats.carried_bytes += per_hop * kept as u64;
                kept > 0
            }
        }
    }

    /// Reduce a whole labeled stream (convenience for the harness).
    pub fn apply_stream<L: Clone>(
        &mut self,
        labeled: &[(TelemetryReport, L)],
    ) -> Vec<(TelemetryReport, L)> {
        labeled
            .iter()
            .map(|(r, l)| {
                let mut r = r.clone();
                self.apply(&mut r);
                (r, l.clone())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::InstructionSet;
    use crate::metadata::HopMetadata;
    use amlight_net::{FlowKey, Protocol};
    use std::net::Ipv4Addr;

    fn report(hops: usize) -> TelemetryReport {
        TelemetryReport {
            flow: FlowKey::new(
                Ipv4Addr::new(1, 1, 1, 1),
                Ipv4Addr::new(2, 2, 2, 2),
                1,
                2,
                Protocol::Udp,
            ),
            ip_len: 100,
            tcp_flags: None,
            instructions: InstructionSet::amlight(),
            hops: (0..hops)
                .map(|i| HopMetadata {
                    switch_id: i as u32,
                    ..Default::default()
                })
                .collect(),
            export_ns: 0,
        }
    }

    #[test]
    fn full_budget_keeps_everything() {
        let mut b = BudgetedTelemetry::new(TelemetryBudget::Full, 1);
        let mut r = report(3);
        assert!(b.apply(&mut r));
        assert_eq!(r.hops.len(), 3);
        assert_eq!(b.stats().cost_fraction(), 1.0);
        assert_eq!(b.stats().saved_bytes(), 0);
    }

    #[test]
    fn zero_probability_strips_all_metadata() {
        let mut b = BudgetedTelemetry::new(TelemetryBudget::Probabilistic { p: 0.0 }, 1);
        let mut r = report(2);
        assert!(!b.apply(&mut r));
        assert!(r.hops.is_empty());
        assert_eq!(b.stats().cost_fraction(), 0.0);
        // Header-borne fields survive.
        assert_eq!(r.ip_len, 100);
    }

    #[test]
    fn probability_hits_expected_cost() {
        let mut b = BudgetedTelemetry::new(TelemetryBudget::Probabilistic { p: 0.25 }, 7);
        for _ in 0..4_000 {
            let mut r = report(1);
            b.apply(&mut r);
        }
        let frac = b.stats().cost_fraction();
        assert!((frac - 0.25).abs() < 0.03, "cost fraction {frac}");
    }

    #[test]
    fn spatial_keeps_sink_and_strided_hops() {
        let mut b = BudgetedTelemetry::new(TelemetryBudget::Spatial { stride: 2 }, 1);
        let mut r = report(5); // hops 0..4
        assert!(b.apply(&mut r));
        let ids: Vec<u32> = r.hops.iter().map(|h| h.switch_id).collect();
        assert_eq!(ids, vec![0, 2, 4], "indices 0,2 strided plus sink 4");
        // Cost: 3 of 5 hops.
        assert!((b.stats().cost_fraction() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn spatial_stride_one_is_full() {
        let mut b = BudgetedTelemetry::new(TelemetryBudget::Spatial { stride: 1 }, 1);
        let mut r = report(4);
        b.apply(&mut r);
        assert_eq!(r.hops.len(), 4);
        assert_eq!(b.stats().cost_fraction(), 1.0);
    }

    #[test]
    fn spatial_always_preserves_the_sink_hop() {
        let mut b = BudgetedTelemetry::new(TelemetryBudget::Spatial { stride: 100 }, 1);
        let mut r = report(6);
        assert!(b.apply(&mut r));
        let ids: Vec<u32> = r.hops.iter().map(|h| h.switch_id).collect();
        assert_eq!(ids, vec![0, 5], "source (stride) + sink always kept");
    }

    #[test]
    fn stream_application_is_label_preserving() {
        let mut b = BudgetedTelemetry::new(TelemetryBudget::Probabilistic { p: 0.5 }, 3);
        let labeled: Vec<(TelemetryReport, &str)> = (0..10).map(|_| (report(1), "tag")).collect();
        let out = b.apply_stream(&labeled);
        assert_eq!(out.len(), 10);
        assert!(out.iter().all(|(_, l)| *l == "tag"));
        assert_eq!(b.stats().packets, 10);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_rejected() {
        BudgetedTelemetry::new(TelemetryBudget::Probabilistic { p: 1.5 }, 1);
    }
}
