//! Microburst detection from per-packet queue telemetry.
//!
//! Before turning INT toward DDoS detection, AmLight used the same
//! telemetry to find *microbursts* — sub-millisecond queue buildups that
//! normal SNMP-rate counters can never see (Bezerra et al., NOMS'23 —
//! the paper's ref \[8\]). This module reimplements that capability on our
//! telemetry stream: an adaptive detector that flags intervals where
//! queue occupancy rises significantly above its recent baseline.
//!
//! The detector keeps an exponentially weighted moving average (EWMA)
//! and variance of the queue-depth series and opens a burst when a
//! sample exceeds `mean + k·σ` (with an absolute floor, so an all-idle
//! queue doesn't alarm on depth 1), closing it after `min_gap_ns` of
//! calm. Bursts shorter than `min_duration_ns` are discarded as noise.

use serde::{Deserialize, Serialize};

/// Detector tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MicroburstConfig {
    /// EWMA weight for new samples (0 < α ≤ 1).
    pub alpha: f64,
    /// Threshold in standard deviations above the moving mean.
    pub k_sigma: f64,
    /// Absolute minimum depth to consider burst-worthy.
    pub min_depth: u32,
    /// Calm time that closes an open burst, ns.
    pub min_gap_ns: u64,
    /// Bursts shorter than this are dropped, ns.
    pub min_duration_ns: u64,
}

impl Default for MicroburstConfig {
    fn default() -> Self {
        Self {
            alpha: 0.02,
            k_sigma: 4.0,
            min_depth: 8,
            min_gap_ns: 100_000,     // 100 µs of calm ends a burst
            min_duration_ns: 10_000, // ignore <10 µs blips
        }
    }
}

/// One detected burst.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Microburst {
    pub start_ns: u64,
    pub end_ns: u64,
    pub peak_depth: u32,
    /// Samples inside the burst.
    pub samples: u64,
}

impl Microburst {
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

#[derive(Debug, Clone, Copy)]
struct OpenBurst {
    start_ns: u64,
    last_hot_ns: u64,
    peak_depth: u32,
    samples: u64,
}

/// Streaming microburst detector over (timestamp, queue depth) samples.
#[derive(Debug, Clone)]
pub struct MicroburstDetector {
    cfg: MicroburstConfig,
    mean: f64,
    var: f64,
    seen: u64,
    open: Option<OpenBurst>,
    bursts: Vec<Microburst>,
}

impl MicroburstDetector {
    pub fn new(cfg: MicroburstConfig) -> Self {
        Self {
            cfg,
            mean: 0.0,
            var: 0.0,
            seen: 0,
            open: None,
            bursts: Vec::new(),
        }
    }

    /// Current adaptive threshold.
    pub fn threshold(&self) -> f64 {
        (self.mean + self.cfg.k_sigma * self.var.sqrt()).max(f64::from(self.cfg.min_depth))
    }

    /// Feed one sample. Samples must arrive in non-decreasing time order.
    pub fn push(&mut self, ts_ns: u64, depth: u32) {
        let hot = self.seen > 0 && f64::from(depth) > self.threshold();
        self.seen += 1;

        // Calm samples update mean and variance at full weight. Hot
        // samples pull only the mean, at 1/10th weight: short bursts
        // barely move the baseline (so they stay detectable end to end),
        // while a sustained level shift is eventually absorbed instead
        // of alarming forever. Variance is never learned from hot
        // samples — a burst must not widen its own detection band.
        let d = f64::from(depth) - self.mean;
        if hot {
            self.mean += self.cfg.alpha * 0.1 * d;
        } else {
            let a = self.cfg.alpha;
            self.mean += a * d;
            self.var = (1.0 - a) * (self.var + a * d * d);
        }

        match (&mut self.open, hot) {
            (Some(b), true) => {
                b.last_hot_ns = ts_ns;
                b.peak_depth = b.peak_depth.max(depth);
                b.samples += 1;
            }
            (Some(b), false) => {
                if ts_ns.saturating_sub(b.last_hot_ns) >= self.cfg.min_gap_ns {
                    let burst = *b;
                    self.open = None;
                    self.close(burst);
                }
            }
            (None, true) => {
                self.open = Some(OpenBurst {
                    start_ns: ts_ns,
                    last_hot_ns: ts_ns,
                    peak_depth: depth,
                    samples: 1,
                });
            }
            (None, false) => {}
        }
    }

    fn close(&mut self, b: OpenBurst) {
        let burst = Microburst {
            start_ns: b.start_ns,
            end_ns: b.last_hot_ns,
            peak_depth: b.peak_depth,
            samples: b.samples,
        };
        if burst.duration_ns() >= self.cfg.min_duration_ns {
            // amlint: cold -- one entry per completed burst episode, not per sample
            self.bursts.push(burst);
        }
    }

    /// Close any open burst and return everything detected.
    pub fn finish(mut self) -> Vec<Microburst> {
        if let Some(b) = self.open.take() {
            self.close(b);
        }
        self.bursts
    }

    /// Bursts closed so far (the open one, if any, is not included).
    pub fn bursts(&self) -> &[Microburst] {
        &self.bursts
    }
}

/// Convenience: detect bursts across a telemetry report stream using the
/// sink hop's queue depth and egress-derived timebase (collector clock).
pub fn detect_from_reports<'a, I>(reports: I, cfg: MicroburstConfig) -> Vec<Microburst>
where
    I: IntoIterator<Item = &'a crate::report::TelemetryReport>,
{
    let mut det = MicroburstDetector::new(cfg);
    for r in reports {
        if let Some(hop) = r.sink_hop() {
            det.push(r.export_ns, hop.queue_occupancy);
        }
    }
    det.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MicroburstConfig {
        MicroburstConfig::default()
    }

    /// Calm series with one square burst injected.
    fn series_with_burst(
        calm_depth: u32,
        burst_depth: u32,
        burst_at: u64,
        burst_len: u64,
    ) -> Vec<(u64, u32)> {
        (0..2_000u64)
            .map(|i| {
                let t = i * 1_000; // 1 µs cadence
                let d = if t >= burst_at && t < burst_at + burst_len {
                    burst_depth
                } else {
                    calm_depth
                };
                (t, d)
            })
            .collect()
    }

    #[test]
    fn detects_a_clear_burst() {
        let mut det = MicroburstDetector::new(cfg());
        for (t, d) in series_with_burst(1, 60, 1_000_000, 50_000) {
            det.push(t, d);
        }
        let bursts = det.finish();
        assert_eq!(bursts.len(), 1, "exactly one burst");
        let b = bursts[0];
        assert_eq!(b.peak_depth, 60);
        assert!(b.start_ns >= 1_000_000 && b.start_ns < 1_010_000);
        assert!(b.duration_ns() >= 40_000, "duration {}", b.duration_ns());
    }

    #[test]
    fn calm_traffic_never_alarms() {
        let mut det = MicroburstDetector::new(cfg());
        for i in 0..5_000u64 {
            det.push(i * 1_000, (i % 3) as u32); // depth 0..2 jitter
        }
        assert!(det.finish().is_empty());
    }

    #[test]
    fn short_blips_are_filtered() {
        let mut det = MicroburstDetector::new(cfg());
        // One single hot sample: 1 µs "burst", below min_duration.
        for (t, d) in series_with_burst(0, 100, 500_000, 1_000) {
            det.push(t, d);
        }
        assert!(det.finish().is_empty(), "sub-10 µs blip must be dropped");
    }

    #[test]
    fn two_separated_bursts_are_distinct() {
        let mut det = MicroburstDetector::new(cfg());
        for i in 0..4_000u64 {
            let t = i * 1_000;
            let d = if (500_000..550_000).contains(&t) || (2_000_000..2_060_000).contains(&t) {
                80
            } else {
                1
            };
            det.push(t, d);
        }
        let bursts = det.finish();
        assert_eq!(bursts.len(), 2);
        assert!(bursts[0].end_ns < bursts[1].start_ns);
    }

    #[test]
    fn baseline_adapts_to_sustained_load() {
        // A step to sustained depth 30 alarms once (the step itself is a
        // legitimate event) and is then absorbed into the baseline: the
        // second half of the series must be burst-free.
        let mut det = MicroburstDetector::new(MicroburstConfig {
            min_depth: 8,
            ..cfg()
        });
        let horizon = 40_000u64;
        for i in 0..horizon {
            det.push(i * 1_000, 30 + (i % 3) as u32);
        }
        let bursts = det.finish();
        assert!(
            bursts.len() <= 1,
            "at most the initial step alarm, got {bursts:?}"
        );
        for b in &bursts {
            assert!(
                b.end_ns < horizon * 1_000 / 2,
                "steady load must be absorbed: burst persists to {}",
                b.end_ns
            );
        }
    }

    #[test]
    fn open_burst_is_closed_by_finish() {
        let mut det = MicroburstDetector::new(cfg());
        // Warm-up calm, then hot till the end of input.
        for i in 0..1_000u64 {
            det.push(i * 1_000, 1);
        }
        for i in 1_000..1_100u64 {
            det.push(i * 1_000, 90);
        }
        assert!(det.bursts().is_empty(), "still open");
        let bursts = det.finish();
        assert_eq!(bursts.len(), 1);
        assert_eq!(bursts[0].peak_depth, 90);
    }

    #[test]
    fn threshold_has_absolute_floor() {
        let det = MicroburstDetector::new(cfg());
        assert!(det.threshold() >= 8.0);
    }
}
