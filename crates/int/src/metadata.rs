//! Per-hop INT metadata stack entries.

use crate::header::{Instruction, InstructionSet};
use amlight_net::CodecError;
use bytes::{Buf, BufMut};
use serde::{Deserialize, Serialize};

/// Telemetry one switch contributes to a packet's metadata stack.
///
/// All timestamps are the truncated 32-bit nanosecond stamps that real INT
/// hardware exports — wrap-aware arithmetic is the consumer's problem
/// (see `amlight_sim::clock`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HopMetadata {
    pub switch_id: u32,
    pub ingress_tstamp: u32,
    pub egress_tstamp: u32,
    pub hop_latency: u32,
    pub queue_occupancy: u32,
}

impl HopMetadata {
    /// Encode only the fields requested by `set`, in canonical order.
    pub fn encode_selected<B: BufMut>(&self, set: &InstructionSet, buf: &mut B) {
        for i in set.iter() {
            let v = self.field(i);
            buf.put_u32(v);
        }
    }

    /// Decode fields per `set`; unrequested fields stay zero.
    pub fn decode_selected<B: Buf>(set: &InstructionSet, buf: &mut B) -> Result<Self, CodecError> {
        let need = set.hop_metadata_len();
        if buf.remaining() < need {
            return Err(CodecError::Truncated {
                needed: need,
                had: buf.remaining(),
            });
        }
        let mut m = HopMetadata::default();
        for i in set.iter() {
            let v = buf.get_u32();
            m.set_field(i, v);
        }
        Ok(m)
    }

    fn field(&self, i: Instruction) -> u32 {
        match i {
            Instruction::SwitchId => self.switch_id,
            Instruction::IngressTstamp => self.ingress_tstamp,
            Instruction::EgressTstamp => self.egress_tstamp,
            Instruction::HopLatency => self.hop_latency,
            Instruction::QueueOccupancy => self.queue_occupancy,
        }
    }

    fn set_field(&mut self, i: Instruction, v: u32) {
        match i {
            Instruction::SwitchId => self.switch_id = v,
            Instruction::IngressTstamp => self.ingress_tstamp = v,
            Instruction::EgressTstamp => self.egress_tstamp = v,
            Instruction::HopLatency => self.hop_latency = v,
            Instruction::QueueOccupancy => self.queue_occupancy = v,
        }
    }

    /// Wrap-aware latency derived from the two stamps — may disagree with
    /// the `hop_latency` field if the stay exceeded one wrap period.
    pub fn derived_latency_ns(&self) -> u32 {
        self.egress_tstamp.wrapping_sub(self.ingress_tstamp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn sample() -> HopMetadata {
        HopMetadata {
            switch_id: 7,
            ingress_tstamp: 1_000,
            egress_tstamp: 9_000,
            hop_latency: 8_000,
            queue_occupancy: 42,
        }
    }

    #[test]
    fn selective_roundtrip_full() {
        let set = InstructionSet::full();
        let mut buf = BytesMut::new();
        sample().encode_selected(&set, &mut buf);
        assert_eq!(buf.len(), set.hop_metadata_len());
        let mut cursor = buf.freeze();
        let back = HopMetadata::decode_selected(&set, &mut cursor).unwrap();
        assert_eq!(back, sample());
    }

    #[test]
    fn selective_roundtrip_amlight_drops_hop_latency() {
        let set = InstructionSet::amlight();
        let mut buf = BytesMut::new();
        sample().encode_selected(&set, &mut buf);
        let mut cursor = buf.freeze();
        let back = HopMetadata::decode_selected(&set, &mut cursor).unwrap();
        assert_eq!(back.hop_latency, 0, "not requested, not carried");
        assert_eq!(back.queue_occupancy, 42);
        assert_eq!(back.switch_id, 7);
    }

    #[test]
    fn truncated_stack_is_an_error() {
        let set = InstructionSet::full();
        let raw = [0u8; 8]; // needs 20
        let mut cursor = &raw[..];
        assert!(matches!(
            HopMetadata::decode_selected(&set, &mut cursor),
            Err(CodecError::Truncated { needed: 20, had: 8 })
        ));
    }

    #[test]
    fn derived_latency_handles_wrap() {
        let m = HopMetadata {
            ingress_tstamp: u32::MAX - 5,
            egress_tstamp: 10,
            ..Default::default()
        };
        assert_eq!(m.derived_latency_ns(), 16);
    }

    #[test]
    fn empty_set_encodes_nothing() {
        let set = InstructionSet::empty();
        let mut buf = BytesMut::new();
        sample().encode_selected(&set, &mut buf);
        assert!(buf.is_empty());
        let mut cursor = buf.freeze();
        let back = HopMetadata::decode_selected(&set, &mut cursor).unwrap();
        assert_eq!(back, HopMetadata::default());
    }
}
