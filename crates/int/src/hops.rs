//! [`HopStack`]: the per-report hop container, inline up to
//! [`MAX_INLINE_HOPS`] entries.
//!
//! AmLight's INT deployment spans a handful of switches, so nearly every
//! telemetry report carries a short metadata stack — well under the
//! wire-format ceiling of [`crate::report::MAX_REPORT_HOPS`]. Storing
//! those hops in a `Vec` put one heap allocation (and one pointer chase)
//! in front of *every* decoded report; this container keeps the common
//! case inline in the report struct itself and falls back to a heap
//! spill **explicitly** only when a report exceeds the inline bound.
//!
//! Representation invariant: the stack is *inline* (`spill` empty,
//! elements in `inline[..len]`) or *spilled* (`len == 0`, elements in
//! `spill`). A spilled stack that is cleared returns to inline mode but
//! keeps its spill capacity, so even the overflow path stops allocating
//! after warmup when the container is reused.
//!
//! The container dereferences to `[HopMetadata]`, so all slice reads
//! (`len`, `iter`, `first`, `last`, indexing, `windows`, …) work
//! unchanged; mutation is limited to the small API the decode and
//! telemetry-budget paths need (`push`, `clear`, `retain`).

use crate::metadata::HopMetadata;
use serde::{DeError, Deserialize, Serialize, Value};

/// Hops stored inline before the stack spills to the heap.
///
/// Eight covers every AmLight path (and then some) while keeping
/// `TelemetryReport` comfortably copyable; the wire format still allows
/// up to [`crate::report::MAX_REPORT_HOPS`] — longer stacks are decoded
/// correctly through the spill fallback, they just pay the allocation.
pub const MAX_INLINE_HOPS: usize = 8;

/// Fixed-capacity inline hop array with an explicit heap fallback.
#[derive(Clone)]
pub struct HopStack {
    inline: [HopMetadata; MAX_INLINE_HOPS],
    /// Live inline entries; always 0 while spilled.
    len: u8,
    /// Overflow storage; non-empty iff the stack has spilled.
    spill: Vec<HopMetadata>,
}

impl HopStack {
    /// An empty, inline stack. Never allocates.
    pub const fn new() -> Self {
        Self {
            inline: [HopMetadata {
                switch_id: 0,
                ingress_tstamp: 0,
                egress_tstamp: 0,
                hop_latency: 0,
                queue_occupancy: 0,
            }; MAX_INLINE_HOPS],
            len: 0,
            // amlint: cold -- const empty Vec; allocation deferred to first spill
            spill: Vec::new(),
        }
    }

    /// Has this stack overflowed into its heap fallback?
    pub fn spilled(&self) -> bool {
        !self.spill.is_empty()
    }

    /// The hops as a slice, source hop first.
    #[inline]
    pub fn as_slice(&self) -> &[HopMetadata] {
        if self.spill.is_empty() {
            &self.inline[..usize::from(self.len)]
        } else {
            &self.spill
        }
    }

    /// Mutable slice over the hops.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [HopMetadata] {
        if self.spill.is_empty() {
            &mut self.inline[..usize::from(self.len)]
        } else {
            &mut self.spill
        }
    }

    /// Append a hop, spilling to the heap when the inline bound is
    /// exceeded. The spill migration copies the inline entries once;
    /// afterwards pushes go straight to the heap buffer.
    // amlint: hot
    // amlint: allow(R8) -- inline index guarded by `len < MAX_INLINE_HOPS`
    pub fn push(&mut self, hop: HopMetadata) {
        if !self.spill.is_empty() {
            // amlint: cold -- already spilled: amortized heap push by design
            self.spill.push(hop);
        } else if usize::from(self.len) < MAX_INLINE_HOPS {
            self.inline[usize::from(self.len)] = hop;
            self.len += 1;
        } else {
            // amlint: cold -- one-time spill migration past MAX_INLINE_HOPS
            self.spill.reserve(MAX_INLINE_HOPS + 1);
            self.spill.extend_from_slice(&self.inline); // amlint: cold -- same one-time migration
                                                        // amlint: cold -- spill tail append, same event as the migration above
            self.spill.push(hop);
            self.len = 0;
        }
    }

    /// Drop every hop. A spilled stack returns to inline mode but keeps
    /// its heap capacity for the next overflow.
    pub fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }

    /// Keep only the hops `f` approves, preserving order (in place, no
    /// allocation in either mode).
    // amlint: allow(R8) -- `kept <= i < len`, both within the inline array
    pub fn retain(&mut self, mut f: impl FnMut(&HopMetadata) -> bool) {
        if !self.spill.is_empty() {
            self.spill.retain(|h| f(h));
            return;
        }
        let mut kept = 0usize;
        for i in 0..usize::from(self.len) {
            if f(&self.inline[i]) {
                self.inline[kept] = self.inline[i];
                kept += 1;
            }
        }
        self.len = kept as u8;
    }
}

impl Default for HopStack {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for HopStack {
    type Target = [HopMetadata];

    #[inline]
    fn deref(&self) -> &[HopMetadata] {
        self.as_slice()
    }
}

impl std::ops::DerefMut for HopStack {
    #[inline]
    fn deref_mut(&mut self) -> &mut [HopMetadata] {
        self.as_mut_slice()
    }
}

impl std::fmt::Debug for HopStack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

// Equality is over the logical hop sequence — inline vs spilled is a
// storage detail, and stale inline slots past `len` must never leak
// into comparisons (which is why this is not derived).
impl PartialEq for HopStack {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for HopStack {}

impl PartialEq<Vec<HopMetadata>> for HopStack {
    fn eq(&self, other: &Vec<HopMetadata>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<[HopMetadata]> for HopStack {
    fn eq(&self, other: &[HopMetadata]) -> bool {
        self.as_slice() == other
    }
}

impl FromIterator<HopMetadata> for HopStack {
    fn from_iter<I: IntoIterator<Item = HopMetadata>>(iter: I) -> Self {
        let mut stack = Self::new();
        for hop in iter {
            stack.push(hop);
        }
        stack
    }
}

impl From<Vec<HopMetadata>> for HopStack {
    fn from(hops: Vec<HopMetadata>) -> Self {
        if hops.len() > MAX_INLINE_HOPS {
            Self {
                inline: Self::new().inline,
                len: 0,
                spill: hops,
            }
        } else {
            hops.into_iter().collect()
        }
    }
}

impl<const N: usize> From<[HopMetadata; N]> for HopStack {
    fn from(hops: [HopMetadata; N]) -> Self {
        hops.into_iter().collect()
    }
}

impl<'a> IntoIterator for &'a HopStack {
    type Item = &'a HopMetadata;
    type IntoIter = std::slice::Iter<'a, HopMetadata>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

// Serialized exactly like `Vec<HopMetadata>` (a plain array), so
// captures written before the inline representation existed still load,
// and the JSON shape of `TelemetryReport` is unchanged.
impl Serialize for HopStack {
    fn to_value(&self) -> Value {
        Value::Array(self.as_slice().iter().map(|h| h.to_value()).collect())
    }
}

impl Deserialize for HopStack {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array().ok_or_else(|| DeError::expected("array", v))?;
        let mut stack = Self::new();
        for item in items {
            stack.push(HopMetadata::from_value(item)?);
        }
        Ok(stack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hop(id: u32) -> HopMetadata {
        HopMetadata {
            switch_id: id,
            ingress_tstamp: id * 10,
            egress_tstamp: id * 10 + 5,
            hop_latency: 5,
            queue_occupancy: id,
        }
    }

    #[test]
    fn stays_inline_up_to_the_bound() {
        let mut s = HopStack::new();
        for i in 0..MAX_INLINE_HOPS as u32 {
            s.push(hop(i));
        }
        assert_eq!(s.len(), MAX_INLINE_HOPS);
        assert!(!s.spilled());
        assert_eq!(s.first().map(|h| h.switch_id), Some(0));
        assert_eq!(s.last().map(|h| h.switch_id), Some(7));
    }

    #[test]
    fn overflow_spills_and_preserves_order() {
        let s: HopStack = (0..12).map(hop).collect();
        assert_eq!(s.len(), 12);
        assert!(s.spilled());
        let ids: Vec<u32> = s.iter().map(|h| h.switch_id).collect();
        assert_eq!(ids, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn clear_returns_to_inline_mode() {
        let mut s: HopStack = (0..12).map(hop).collect();
        assert!(s.spilled());
        s.clear();
        assert!(s.is_empty());
        assert!(!s.spilled());
        s.push(hop(99));
        assert_eq!(s.len(), 1);
        assert!(!s.spilled(), "post-clear pushes use the inline buffer");
    }

    #[test]
    fn retain_works_in_both_modes() {
        let mut inline: HopStack = (0..5).map(hop).collect();
        inline.retain(|h| h.switch_id % 2 == 0);
        assert_eq!(
            inline.iter().map(|h| h.switch_id).collect::<Vec<_>>(),
            vec![0, 2, 4]
        );

        let mut spilled: HopStack = (0..10).map(hop).collect();
        spilled.retain(|h| h.switch_id < 3);
        assert_eq!(spilled.len(), 3);
        assert!(spilled.spilled(), "retain never migrates storage");
    }

    #[test]
    fn equality_ignores_representation() {
        let inline: HopStack = (0..3).map(hop).collect();
        let mut spilled: HopStack = (0..12).map(hop).collect();
        spilled.retain(|h| h.switch_id < 3);
        assert_eq!(inline, spilled);
        assert_eq!(inline, (0..3).map(hop).collect::<Vec<_>>());
    }

    #[test]
    fn from_vec_roundtrips_both_sizes() {
        for n in [0usize, 3, MAX_INLINE_HOPS, MAX_INLINE_HOPS + 4] {
            let v: Vec<HopMetadata> = (0..n as u32).map(hop).collect();
            let s = HopStack::from(v.clone());
            assert_eq!(s, v);
            assert_eq!(s.spilled(), n > MAX_INLINE_HOPS);
        }
    }

    #[test]
    fn serde_format_matches_vec() {
        for n in [0u32, 4, 11] {
            let v: Vec<HopMetadata> = (0..n).map(hop).collect();
            let s: HopStack = v.iter().copied().collect();
            assert_eq!(s.to_value(), v.to_value(), "n={n}");
            let back = HopStack::from_value(&v.to_value()).unwrap();
            assert_eq!(back, s);
        }
        assert!(HopStack::from_value(&Value::Int(7)).is_err());
    }

    #[test]
    fn indexing_and_mutation_through_deref() {
        let mut s: HopStack = (0..4).map(hop).collect();
        s[2].queue_occupancy = 77;
        assert_eq!(s[2].queue_occupancy, 77);
        assert_eq!(s.windows(2).count(), 3);
    }
}
