//! The INT collector: decodes the sink's report stream.
//!
//! The paper's "INT Data Collection" module is a Python script reading the
//! collector port; ours is a streaming decoder over a byte buffer. It
//! tolerates truncated tails (more bytes coming) and resynchronizes after
//! malformed reports by scanning for the next magic.

use crate::report::{TelemetryReport, REPORT_MAGIC};
use amlight_net::{CodecError, Decode, Encode};
use bytes::{Buf, BytesMut};
use serde::{Deserialize, Serialize};

/// Running collector statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectorStats {
    pub reports_decoded: u64,
    pub bytes_consumed: u64,
    pub decode_errors: u64,
    pub resyncs: u64,
}

/// What [`IntCollector::decode_datagram_into`] made of one datagram:
/// every byte is classified as part of a decoded report or blamed on a
/// decode error (malformed bytes resynced past, or a truncated tail
/// that atomic datagram framing can never complete).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatagramOutcome {
    pub reports: u32,
    pub decode_errors: u32,
}

/// Streaming telemetry-report decoder.
#[derive(Debug, Default)]
pub struct IntCollector {
    buffer: BytesMut,
    stats: CollectorStats,
}

impl IntCollector {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn stats(&self) -> CollectorStats {
        self.stats
    }

    /// Bytes buffered awaiting more input.
    pub fn pending_bytes(&self) -> usize {
        self.buffer.len()
    }

    /// Feed raw bytes from the sink; returns every complete report.
    // amlint: cold -- allocating convenience wrapper; hot callers use ingest_into
    pub fn ingest(&mut self, bytes: &[u8]) -> Vec<TelemetryReport> {
        let mut out = Vec::new();
        self.ingest_into(bytes, &mut out);
        out
    }

    /// Allocation-reusing form of [`IntCollector::ingest`]: appends every
    /// complete report to `out` instead of returning a fresh vector.
    /// Streaming consumers (e.g. `amlight_core`'s `CollectorSource`)
    /// call this once per byte chunk with a long-lived buffer.
    // amlint: hot
    pub fn ingest_into(&mut self, bytes: &[u8], out: &mut Vec<TelemetryReport>) {
        // amlint: cold -- BytesMut reassembly buffer: amortized growth, drained by advance()
        self.buffer.extend_from_slice(bytes);
        loop {
            if self.buffer.is_empty() {
                break;
            }
            // Try to decode from the front without consuming on failure.
            let mut probe = &self.buffer[..];
            let before = probe.remaining();
            match TelemetryReport::decode(&mut probe) {
                Ok(report) => {
                    let used = before - probe.remaining();
                    self.buffer.advance(used);
                    self.stats.bytes_consumed += used as u64;
                    self.stats.reports_decoded += 1;
                    // amlint: cold -- caller-owned batch vec, reused across calls
                    out.push(report);
                }
                Err(CodecError::Truncated { .. }) => break, // wait for more bytes
                Err(CodecError::Malformed(_)) => {
                    self.stats.decode_errors += 1;
                    self.resync();
                }
            }
        }
    }

    /// Skip forward to the next plausible report magic.
    fn resync(&mut self) {
        self.stats.resyncs += 1;
        let magic = REPORT_MAGIC.to_be_bytes();
        // Start searching one byte in so a bad report at the front is skipped.
        let pos = self.buffer[1..]
            .windows(2)
            .position(|w| w == magic)
            .map(|p| p + 1)
            .unwrap_or(self.buffer.len());
        self.stats.bytes_consumed += pos as u64;
        self.buffer.advance(pos);
    }

    /// Decode one self-contained *datagram* of reports — the UDP
    /// framing, where each datagram must carry only whole reports.
    ///
    /// Unlike the streaming [`IntCollector::ingest_into`], there is no
    /// cross-call reassembly buffer: a report truncated at the end of
    /// the datagram can never be completed by later bytes (UDP gives no
    /// ordering or adjacency guarantee), so a truncated tail is
    /// classified as a decode error rather than parked. Malformed bytes
    /// mid-datagram resync to the next magic exactly like the stream
    /// decoder. Stateless: safe to call from any listener thread.
    // amlint: hot
    pub fn decode_datagram_into(bytes: &[u8], out: &mut Vec<TelemetryReport>) -> DatagramOutcome {
        let mut outcome = DatagramOutcome::default();
        let mut buf = bytes;
        while !buf.is_empty() {
            let mut probe = buf;
            let before = probe.remaining();
            match TelemetryReport::decode(&mut probe) {
                Ok(report) => {
                    let used = before - probe.remaining();
                    buf = &buf[used.min(buf.len())..];
                    outcome.reports += 1;
                    // amlint: cold -- caller-owned batch vec, reused across calls
                    out.push(report);
                }
                Err(CodecError::Truncated { .. }) => {
                    // Atomic framing: a split report cannot continue in
                    // another datagram.
                    outcome.decode_errors += 1;
                    break;
                }
                Err(CodecError::Malformed(_)) => {
                    outcome.decode_errors += 1;
                    let magic = REPORT_MAGIC.to_be_bytes();
                    let skip = match buf.len() {
                        0 | 1 => buf.len(),
                        _ => buf[1..]
                            .windows(2)
                            .position(|w| w == magic)
                            .map(|p| p + 1)
                            .unwrap_or(buf.len()),
                    };
                    buf = &buf[skip.min(buf.len())..];
                }
            }
        }
        outcome
    }

    /// Encode a batch of reports as one contiguous stream (test/bench
    /// helper — the inverse of [`IntCollector::ingest`]).
    pub fn encode_stream(reports: &[TelemetryReport]) -> BytesMut {
        let total: usize = reports.iter().map(|r| r.encoded_len()).sum();
        let mut buf = BytesMut::with_capacity(total);
        for r in reports {
            r.encode(&mut buf);
        }
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::InstructionSet;
    use crate::metadata::HopMetadata;
    use amlight_net::{FlowKey, Protocol};
    use std::net::Ipv4Addr;

    fn report(tag: u32) -> TelemetryReport {
        TelemetryReport {
            flow: FlowKey::new(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 0, 2),
                (1000 + tag) as u16,
                80,
                Protocol::Tcp,
            ),
            ip_len: 40,
            tcp_flags: Some(0x02),
            instructions: InstructionSet::amlight(),
            hops: vec![HopMetadata {
                switch_id: tag,
                ..Default::default()
            }]
            .into(),
            export_ns: u64::from(tag) * 1000,
        }
    }

    #[test]
    fn decodes_batch() {
        let reports: Vec<_> = (0..10).map(report).collect();
        let stream = IntCollector::encode_stream(&reports);
        let mut c = IntCollector::new();
        let got = c.ingest(&stream);
        assert_eq!(got, reports);
        assert_eq!(c.stats().reports_decoded, 10);
        assert_eq!(c.stats().decode_errors, 0);
        assert_eq!(c.pending_bytes(), 0);
    }

    #[test]
    fn handles_split_delivery() {
        let reports: Vec<_> = (0..3).map(report).collect();
        let stream = IntCollector::encode_stream(&reports);
        let mut c = IntCollector::new();
        let mut got = Vec::new();
        // Deliver in 7-byte chunks.
        for chunk in stream.chunks(7) {
            got.extend(c.ingest(chunk));
        }
        assert_eq!(got, reports);
        assert_eq!(c.pending_bytes(), 0);
    }

    #[test]
    fn resyncs_after_garbage() {
        let good = report(1);
        let mut stream = BytesMut::new();
        stream.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef]); // garbage
        stream.extend_from_slice(&IntCollector::encode_stream(std::slice::from_ref(&good)));
        let mut c = IntCollector::new();
        let got = c.ingest(&stream);
        assert_eq!(got, vec![good]);
        assert!(c.stats().decode_errors >= 1);
        assert!(c.stats().resyncs >= 1);
    }

    #[test]
    fn truncated_tail_waits_for_more() {
        let r = report(5);
        let stream = IntCollector::encode_stream(std::slice::from_ref(&r));
        let mut c = IntCollector::new();
        let half = stream.len() / 2;
        assert!(c.ingest(&stream[..half]).is_empty());
        assert_eq!(c.pending_bytes(), half);
        let got = c.ingest(&stream[half..]);
        assert_eq!(got, vec![r]);
    }

    #[test]
    fn garbage_only_stream_consumes_everything() {
        let mut c = IntCollector::new();
        // Starts with a valid-looking magic so decode is attempted and
        // fails on version; resync then scans past it.
        let mut junk = vec![0x1a, 0x17, 0x99];
        junk.extend(std::iter::repeat_n(0u8, 64));
        let got = c.ingest(&junk);
        assert!(got.is_empty());
        assert_eq!(c.pending_bytes(), 0);
    }

    #[test]
    fn datagram_mode_decodes_whole_reports() {
        let reports: Vec<_> = (0..4).map(report).collect();
        let dgram = IntCollector::encode_stream(&reports);
        let mut out = Vec::new();
        let outcome = IntCollector::decode_datagram_into(&dgram, &mut out);
        assert_eq!(out, reports);
        assert_eq!(
            outcome,
            DatagramOutcome {
                reports: 4,
                decode_errors: 0
            }
        );
    }

    #[test]
    fn datagram_mode_counts_truncated_tail_as_error() {
        let reports: Vec<_> = (0..2).map(report).collect();
        let stream = IntCollector::encode_stream(&reports);
        // Cut the second report short: first decodes, tail is an error.
        let cut = stream.len() - 3;
        let mut out = Vec::new();
        let outcome = IntCollector::decode_datagram_into(&stream[..cut], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(outcome.reports, 1);
        assert_eq!(outcome.decode_errors, 1);
        // No hidden state: the same bytes decode identically again.
        let mut again = Vec::new();
        let outcome2 = IntCollector::decode_datagram_into(&stream[..cut], &mut again);
        assert_eq!(outcome, outcome2);
    }

    #[test]
    fn datagram_mode_resyncs_past_garbage() {
        let good = report(9);
        let mut dgram = BytesMut::new();
        dgram.extend_from_slice(&[0x1a, 0x17, 0xff, 0xee]); // magic + bad version
        dgram.extend_from_slice(&IntCollector::encode_stream(std::slice::from_ref(&good)));
        let mut out = Vec::new();
        let outcome = IntCollector::decode_datagram_into(&dgram, &mut out);
        assert_eq!(out, vec![good]);
        assert_eq!(outcome.reports, 1);
        assert!(outcome.decode_errors >= 1);
    }

    #[test]
    fn stats_count_bytes() {
        let reports: Vec<_> = (0..4).map(report).collect();
        let stream = IntCollector::encode_stream(&reports);
        let mut c = IntCollector::new();
        c.ingest(&stream);
        assert_eq!(c.stats().bytes_consumed, stream.len() as u64);
    }
}
