//! Timestamped packet traces — the reproduction's stand-in for the pcap
//! captures the paper replays with `tcpreplay`.

use crate::flow::FlowKey;
use crate::packet::Packet;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Ground-truth label attached to generated traffic. The paper labels
/// benign flows 0 and attack flows 1; we keep the provenance too so the
/// per-attack-type breakdown of Table VI is possible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficClass {
    Benign,
    SynScan,
    UdpScan,
    SynFlood,
    SlowLoris,
}

impl TrafficClass {
    /// Binary label used by the ML models (paper §IV-B.3).
    pub fn label(self) -> bool {
        !matches!(self, TrafficClass::Benign)
    }

    pub const ALL: [TrafficClass; 5] = [
        TrafficClass::Benign,
        TrafficClass::SynScan,
        TrafficClass::UdpScan,
        TrafficClass::SynFlood,
        TrafficClass::SlowLoris,
    ];

    pub fn name(self) -> &'static str {
        match self {
            TrafficClass::Benign => "Benign",
            TrafficClass::SynScan => "SYN Scan",
            TrafficClass::UdpScan => "UDP Scan",
            TrafficClass::SynFlood => "SYN Flood",
            TrafficClass::SlowLoris => "SlowLoris",
        }
    }
}

/// A packet with its injection time (nanoseconds since capture start) and
/// ground-truth class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketRecord {
    /// Time the packet enters the network, ns since trace epoch (u64 — the
    /// 32-bit INT wraparound is applied later, at telemetry-export time).
    pub ts_ns: u64,
    pub packet: Packet,
    pub class: TrafficClass,
}

/// An ordered packet trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trace {
    records: Vec<PacketRecord>,
    sorted: bool,
}

impl Default for Trace {
    fn default() -> Self {
        Self {
            records: Vec::new(),
            sorted: true,
        }
    }
}

impl Trace {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(n: usize) -> Self {
        Self {
            records: Vec::with_capacity(n),
            sorted: true,
        }
    }

    pub fn push(&mut self, rec: PacketRecord) {
        if let Some(last) = self.records.last() {
            if rec.ts_ns < last.ts_ns {
                self.sorted = false;
            }
        }
        self.records.push(rec);
    }

    /// Merge another trace into this one, preserving time order.
    pub fn merge(&mut self, other: Trace) {
        self.records.extend(other.records);
        self.sort();
    }

    /// Sort records by timestamp (stable, so equal-timestamp packets keep
    /// generation order).
    pub fn sort(&mut self) {
        self.records.sort_by_key(|r| r.ts_ns);
        self.sorted = true;
    }

    pub fn is_sorted(&self) -> bool {
        self.sorted
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    pub fn records(&self) -> &[PacketRecord] {
        &self.records
    }

    pub fn iter(&self) -> std::slice::Iter<'_, PacketRecord> {
        self.records.iter()
    }

    /// Duration between first and last packet, in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        match (self.records.first(), self.records.last()) {
            (Some(a), Some(b)) => b.ts_ns.saturating_sub(a.ts_ns),
            _ => 0,
        }
    }

    /// Keep only records within `[from_ns, to_ns)`.
    pub fn slice_time(&self, from_ns: u64, to_ns: u64) -> Trace {
        let records = self
            .records
            .iter()
            .filter(|r| r.ts_ns >= from_ns && r.ts_ns < to_ns)
            .copied()
            .collect();
        Trace {
            records,
            sorted: self.sorted,
        }
    }

    /// Truncate to the first `n` packets of each distinct flow — mirrors
    /// the paper's testbed replays of "around 2500-packet data for each
    /// flow type".
    pub fn take_per_flow(&self, n: usize) -> Trace {
        let mut seen: HashMap<FlowKey, usize> = HashMap::new();
        let records = self
            .records
            .iter()
            .filter(|r| {
                let c = seen.entry(r.packet.flow_key()).or_insert(0);
                *c += 1;
                *c <= n
            })
            .copied()
            .collect();
        Trace {
            records,
            sorted: self.sorted,
        }
    }

    /// Summary statistics for reporting and sanity checks.
    // amlint: cold -- offline trace summarization for reports, not the live path
    pub fn stats(&self) -> TraceStats {
        let mut per_class: HashMap<TrafficClass, usize> = HashMap::new();
        let mut flows: HashMap<FlowKey, ()> = HashMap::new();
        let mut bytes = 0u64;
        for r in &self.records {
            *per_class.entry(r.class).or_insert(0) += 1;
            flows.entry(r.packet.flow_key()).or_insert(());
            bytes += r.packet.wire_len() as u64;
        }
        TraceStats {
            packets: self.records.len(),
            flows: flows.len(),
            bytes,
            duration_ns: self.duration_ns(),
            per_class,
        }
    }
}

impl FromIterator<PacketRecord> for Trace {
    fn from_iter<I: IntoIterator<Item = PacketRecord>>(iter: I) -> Self {
        let mut t = Trace::new();
        for r in iter {
            t.push(r);
        }
        t
    }
}

/// Aggregate description of a [`Trace`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    pub packets: usize,
    pub flows: usize,
    pub bytes: u64,
    pub duration_ns: u64,
    pub per_class: HashMap<TrafficClass, usize>,
}

impl TraceStats {
    /// Average packet rate in packets/second.
    pub fn pps(&self) -> f64 {
        if self.duration_ns == 0 {
            return 0.0;
        }
        self.packets as f64 / (self.duration_ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketBuilder;
    use std::net::Ipv4Addr;

    fn rec(ts: u64, src_port: u16, class: TrafficClass) -> PacketRecord {
        let p = PacketBuilder::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
            .tcp_syn(src_port, 80, 0);
        PacketRecord {
            ts_ns: ts,
            packet: p,
            class,
        }
    }

    #[test]
    fn push_detects_out_of_order() {
        let mut t = Trace::new();
        t.push(rec(10, 1, TrafficClass::Benign));
        assert!(t.is_sorted() || t.len() == 1);
        t.push(rec(5, 2, TrafficClass::Benign));
        assert!(!t.is_sorted());
        t.sort();
        assert!(t.is_sorted());
        assert_eq!(t.records()[0].ts_ns, 5);
    }

    #[test]
    fn merge_interleaves_by_time() {
        let mut a: Trace = [
            rec(0, 1, TrafficClass::Benign),
            rec(100, 1, TrafficClass::Benign),
        ]
        .into_iter()
        .collect();
        let b: Trace = [rec(50, 2, TrafficClass::SynFlood)].into_iter().collect();
        a.merge(b);
        let ts: Vec<u64> = a.iter().map(|r| r.ts_ns).collect();
        assert_eq!(ts, vec![0, 50, 100]);
    }

    #[test]
    fn slice_time_is_half_open() {
        let t: Trace = (0..10)
            .map(|i| rec(i * 10, 1, TrafficClass::Benign))
            .collect();
        let s = t.slice_time(20, 50);
        let ts: Vec<u64> = s.iter().map(|r| r.ts_ns).collect();
        assert_eq!(ts, vec![20, 30, 40]);
    }

    #[test]
    fn take_per_flow_caps_each_flow() {
        let mut t = Trace::new();
        for i in 0..5 {
            t.push(rec(i, 1, TrafficClass::Benign)); // flow A x5
        }
        for i in 0..2 {
            t.push(rec(100 + i, 2, TrafficClass::Benign)); // flow B x2
        }
        let capped = t.take_per_flow(3);
        assert_eq!(capped.len(), 5); // 3 from A + 2 from B
    }

    #[test]
    fn stats_counts_classes_flows_and_rate() {
        let mut t = Trace::new();
        t.push(rec(0, 1, TrafficClass::Benign));
        t.push(rec(500_000_000, 1, TrafficClass::Benign));
        t.push(rec(1_000_000_000, 2, TrafficClass::SynFlood));
        let s = t.stats();
        assert_eq!(s.packets, 3);
        assert_eq!(s.flows, 2);
        assert_eq!(s.per_class[&TrafficClass::Benign], 2);
        assert_eq!(s.duration_ns, 1_000_000_000);
        assert!((s.pps() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_stats_are_zero() {
        let s = Trace::new().stats();
        assert_eq!(s.packets, 0);
        assert_eq!(s.pps(), 0.0);
    }

    #[test]
    fn class_labels_match_paper_encoding() {
        assert!(!TrafficClass::Benign.label());
        for c in [
            TrafficClass::SynScan,
            TrafficClass::UdpScan,
            TrafficClass::SynFlood,
            TrafficClass::SlowLoris,
        ] {
            assert!(c.label());
        }
    }
}
