//! Flow identification: the five-tuple *Flow ID* and a fast hasher for
//! hot-path flow-table lookups.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};
use std::net::Ipv4Addr;

/// Transport protocol carried by a packet.
///
/// The paper's feature set encodes protocol as a feature (paper Table II);
/// the numeric value used there is the IANA protocol number, which
/// [`Protocol::number`] exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Protocol {
    Tcp,
    Udp,
}

impl Protocol {
    /// IANA protocol number (TCP = 6, UDP = 17).
    #[inline]
    pub const fn number(self) -> u8 {
        match self {
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
        }
    }

    /// Inverse of [`Protocol::number`]. Returns `None` for protocols the
    /// reproduction does not model (the paper's pipeline only ingests TCP
    /// and UDP).
    #[inline]
    pub const fn from_number(n: u8) -> Option<Self> {
        match n {
            6 => Some(Protocol::Tcp),
            17 => Some(Protocol::Udp),
            _ => None,
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Tcp => write!(f, "TCP"),
            Protocol::Udp => write!(f, "UDP"),
        }
    }
}

/// The five-tuple flow identifier ("*Flow ID*", paper §III-2):
/// source IP, destination IP, source port, destination port, protocol.
///
/// `FlowKey` is `Copy`, 13 bytes of payload packed into 16, and hashes
/// quickly under [`FnvHasher`]; the flow table performs one lookup per
/// telemetry report so this is the hottest key type in the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowKey {
    pub src_ip: Ipv4Addr,
    pub dst_ip: Ipv4Addr,
    pub src_port: u16,
    pub dst_port: u16,
    pub protocol: Protocol,
}

impl FlowKey {
    pub fn new(
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        protocol: Protocol,
    ) -> Self {
        Self {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            protocol,
        }
    }

    /// The key of the reverse direction (server → client) of this flow.
    pub fn reversed(&self) -> Self {
        Self {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            protocol: self.protocol,
        }
    }

    /// Canonical byte encoding used for hashing and for embedding the key
    /// in telemetry reports: `src_ip ‖ dst_ip ‖ src_port ‖ dst_port ‖ proto`.
    pub fn to_bytes(&self) -> [u8; 13] {
        let mut b = [0u8; 13];
        b[0..4].copy_from_slice(&self.src_ip.octets());
        b[4..8].copy_from_slice(&self.dst_ip.octets());
        b[8..10].copy_from_slice(&self.src_port.to_be_bytes());
        b[10..12].copy_from_slice(&self.dst_port.to_be_bytes());
        b[12] = self.protocol.number();
        b
    }

    /// Inverse of [`FlowKey::to_bytes`].
    pub fn from_bytes(b: &[u8; 13]) -> Option<Self> {
        Some(Self {
            src_ip: Ipv4Addr::new(b[0], b[1], b[2], b[3]),
            dst_ip: Ipv4Addr::new(b[4], b[5], b[6], b[7]),
            src_port: u16::from_be_bytes([b[8], b[9]]),
            dst_port: u16::from_be_bytes([b[10], b[11]]),
            protocol: Protocol::from_number(b[12])?,
        })
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{} -> {}:{}",
            self.protocol, self.src_ip, self.src_port, self.dst_ip, self.dst_port
        )
    }
}

/// 64-bit FNV-1a hasher.
///
/// The flow table is keyed by [`FlowKey`]; SipHash (the std default) costs
/// noticeably more per lookup for such short keys. FNV-1a is the classic
/// fast-small-key choice and keeps the crate dependency-free. HashDoS is not
/// a concern: keys come from our own simulator, not an adversary with
/// visibility into the table.
#[derive(Debug, Clone)]
pub struct FnvHasher(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(FNV_OFFSET)
    }
}

impl Hasher for FnvHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }
}

/// `BuildHasher` for [`FnvHasher`], for use with `HashMap::with_hasher`.
pub type FnvBuildHasher = BuildHasherDefault<FnvHasher>;

/// Convenience alias: a `HashMap` keyed for flow-table duty.
pub type FnvHashMap<K, V> = std::collections::HashMap<K, V, FnvBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    fn key() -> FlowKey {
        FlowKey::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(192, 168, 1, 200),
            44211,
            80,
            Protocol::Tcp,
        )
    }

    #[test]
    fn protocol_numbers_match_iana() {
        assert_eq!(Protocol::Tcp.number(), 6);
        assert_eq!(Protocol::Udp.number(), 17);
        assert_eq!(Protocol::from_number(6), Some(Protocol::Tcp));
        assert_eq!(Protocol::from_number(17), Some(Protocol::Udp));
        assert_eq!(Protocol::from_number(1), None); // ICMP not modeled
    }

    #[test]
    fn flow_key_byte_roundtrip() {
        let k = key();
        assert_eq!(FlowKey::from_bytes(&k.to_bytes()), Some(k));
    }

    #[test]
    fn flow_key_bytes_reject_unknown_protocol() {
        let mut b = key().to_bytes();
        b[12] = 47; // GRE
        assert_eq!(FlowKey::from_bytes(&b), None);
    }

    #[test]
    fn reversed_swaps_endpoints_and_is_involutive() {
        let k = key();
        let r = k.reversed();
        assert_eq!(r.src_ip, k.dst_ip);
        assert_eq!(r.dst_port, k.src_port);
        assert_eq!(r.protocol, k.protocol);
        assert_eq!(r.reversed(), k);
    }

    #[test]
    fn fnv_distinguishes_near_identical_keys() {
        let build = FnvBuildHasher::default();
        let a = key();
        let mut bkey = key();
        bkey.src_port += 1;
        assert_ne!(build.hash_one(a), build.hash_one(bkey));
    }

    #[test]
    fn fnv_is_deterministic() {
        let build = FnvBuildHasher::default();
        assert_eq!(build.hash_one(key()), build.hash_one(key()));
    }

    #[test]
    fn fnv_empty_input_is_offset_basis() {
        let h = FnvHasher::default();
        assert_eq!(h.finish(), FNV_OFFSET);
    }

    #[test]
    fn fnv_known_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c
        let mut h = FnvHasher::default();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn display_is_human_readable() {
        let s = key().to_string();
        assert!(s.contains("TCP"));
        assert!(s.contains("10.0.0.1:44211"));
        assert!(s.contains("192.168.1.200:80"));
    }
}
