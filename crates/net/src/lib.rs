//! Packet model, wire codecs, and flow identification.
//!
//! This crate is the bottom layer of the AmLight INT DDoS reproduction:
//! everything above it (the dataplane simulator, INT, sFlow, the traffic
//! generators, the feature extractor) speaks in terms of the types defined
//! here.
//!
//! The packet model is deliberately faithful to what the paper's pipeline
//! consumes: Ethernet / IPv4 / {TCP, UDP} headers, a payload length, and a
//! five-tuple [`FlowKey`] ("*Flow ID*" in the paper) composed of source and
//! destination IP address, source and destination port, and protocol.
//!
//! Wire encode/decode is implemented over [`bytes`] buffers so the INT and
//! sFlow crates can embed real byte-level headers in their datagrams, and
//! property tests can round-trip arbitrary packets.

// Compiler-enforced arm of amlint rule R5: unsafe stays in shims/.
#![forbid(unsafe_code)]

pub mod codec;
pub mod flow;
pub mod headers;
pub mod packet;
pub mod trace;

pub use codec::{CodecError, Decode, Encode};
pub use flow::{FlowKey, FnvBuildHasher, FnvHasher, Protocol};
pub use headers::MacAddr;
pub use headers::{EthernetHeader, Ipv4Header, TcpFlags, TcpHeader, UdpHeader};
pub use packet::{Packet, PacketBuilder, Transport};
pub use trace::{PacketRecord, Trace, TraceStats, TrafficClass};
