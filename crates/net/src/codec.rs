//! Wire encode/decode traits shared by every header and telemetry format
//! in the workspace.

use bytes::{Buf, BufMut, BytesMut};
use std::fmt;

/// Errors produced while decoding wire formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the structure did.
    Truncated { needed: usize, had: usize },
    /// The bytes were present but semantically invalid.
    Malformed(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, had } => {
                write!(f, "truncated input: needed {needed} bytes, had {had}")
            }
            CodecError::Malformed(what) => write!(f, "malformed input: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Types that can serialize themselves to a byte buffer.
pub trait Encode {
    /// Exact number of bytes [`Encode::encode`] will write.
    fn encoded_len(&self) -> usize;

    /// Append the wire representation to `buf`.
    fn encode<B: BufMut>(&self, buf: &mut B);

    /// Convenience: encode into a fresh buffer of exactly the right size.
    fn encode_to_bytes(&self) -> BytesMut {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        self.encode(&mut buf);
        buf
    }
}

/// Types that can deserialize themselves from a byte buffer, consuming
/// exactly their wire representation.
pub trait Decode: Sized {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, CodecError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Pair(u16, u16);

    impl Encode for Pair {
        fn encoded_len(&self) -> usize {
            4
        }
        fn encode<B: BufMut>(&self, buf: &mut B) {
            buf.put_u16(self.0);
            buf.put_u16(self.1);
        }
    }

    impl Decode for Pair {
        fn decode<B: Buf>(buf: &mut B) -> Result<Self, CodecError> {
            if buf.remaining() < 4 {
                return Err(CodecError::Truncated {
                    needed: 4,
                    had: buf.remaining(),
                });
            }
            Ok(Pair(buf.get_u16(), buf.get_u16()))
        }
    }

    #[test]
    fn encode_to_bytes_sizes_exactly() {
        let b = Pair(1, 2).encode_to_bytes();
        assert_eq!(b.len(), 4);
        assert_eq!(&b[..], &[0, 1, 0, 2]);
    }

    #[test]
    fn error_display_is_informative() {
        let e = CodecError::Truncated { needed: 8, had: 3 };
        assert_eq!(e.to_string(), "truncated input: needed 8 bytes, had 3");
        assert_eq!(
            CodecError::Malformed("nope").to_string(),
            "malformed input: nope"
        );
    }
}
