//! The [`Packet`] type: a parsed Ethernet/IPv4/{TCP,UDP} packet as it
//! travels through the simulated dataplane.

use crate::codec::{CodecError, Decode, Encode};
use crate::flow::{FlowKey, Protocol};
use crate::headers::{EthernetHeader, Ipv4Header, MacAddr, TcpFlags, TcpHeader, UdpHeader};
use bytes::{Buf, BufMut};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Transport-layer header: TCP or UDP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Transport {
    Tcp(TcpHeader),
    Udp(UdpHeader),
}

impl Transport {
    pub fn protocol(&self) -> Protocol {
        match self {
            Transport::Tcp(_) => Protocol::Tcp,
            Transport::Udp(_) => Protocol::Udp,
        }
    }

    pub fn src_port(&self) -> u16 {
        match self {
            Transport::Tcp(h) => h.src_port,
            Transport::Udp(h) => h.src_port,
        }
    }

    pub fn dst_port(&self) -> u16 {
        match self {
            Transport::Tcp(h) => h.dst_port,
            Transport::Udp(h) => h.dst_port,
        }
    }

    pub fn wire_len(&self) -> usize {
        match self {
            Transport::Tcp(_) => TcpHeader::WIRE_LEN,
            Transport::Udp(_) => UdpHeader::WIRE_LEN,
        }
    }
}

/// A simulated packet.
///
/// The payload is represented by its length only — the detection pipeline
/// never inspects payload bytes (the paper's features are header- and
/// telemetry-derived), and carrying lengths instead of buffers lets the
/// simulator push tens of millions of packets per second.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    pub eth: EthernetHeader,
    pub ip: Ipv4Header,
    pub transport: Transport,
    /// Application payload length in bytes (not including any header).
    pub payload_len: u16,
}

impl Packet {
    /// The five-tuple flow identifier of this packet.
    pub fn flow_key(&self) -> FlowKey {
        FlowKey {
            src_ip: self.ip.src,
            dst_ip: self.ip.dst,
            src_port: self.transport.src_port(),
            dst_port: self.transport.dst_port(),
            protocol: self.transport.protocol(),
        }
    }

    /// Total on-wire length in bytes (Ethernet + IP + transport + payload).
    /// This is the "packet length" feature the paper extracts from the IP
    /// header, plus the L2 framing the switch actually serializes.
    pub fn wire_len(&self) -> usize {
        EthernetHeader::WIRE_LEN + usize::from(self.ip.total_len)
    }

    /// IP-level length (what the paper's "Packet length" feature reports).
    pub fn ip_len(&self) -> u16 {
        self.ip.total_len
    }

    /// TCP flags if this is a TCP packet.
    pub fn tcp_flags(&self) -> Option<TcpFlags> {
        match self.transport {
            Transport::Tcp(h) => Some(h.flags),
            Transport::Udp(_) => None,
        }
    }
}

impl Encode for Packet {
    fn encoded_len(&self) -> usize {
        // Headers plus a zero-filled payload of the declared length.
        EthernetHeader::WIRE_LEN
            + Ipv4Header::WIRE_LEN
            + self.transport.wire_len()
            + usize::from(self.payload_len)
    }

    fn encode<B: BufMut>(&self, buf: &mut B) {
        self.eth.encode(buf);
        self.ip.encode(buf);
        match &self.transport {
            Transport::Tcp(h) => h.encode(buf),
            Transport::Udp(h) => h.encode(buf),
        }
        buf.put_bytes(0, usize::from(self.payload_len));
    }
}

impl Decode for Packet {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, CodecError> {
        let eth = EthernetHeader::decode(buf)?;
        if eth.ethertype != crate::headers::ETHERTYPE_IPV4 {
            return Err(CodecError::Malformed("only IPv4 ethertype is supported"));
        }
        let ip = Ipv4Header::decode(buf)?;
        let transport = match Protocol::from_number(ip.protocol) {
            Some(Protocol::Tcp) => Transport::Tcp(TcpHeader::decode(buf)?),
            Some(Protocol::Udp) => Transport::Udp(UdpHeader::decode(buf)?),
            None => return Err(CodecError::Malformed("unsupported IP protocol")),
        };
        let hdr = Ipv4Header::WIRE_LEN + transport.wire_len();
        let payload_len = usize::from(ip.total_len)
            .checked_sub(hdr)
            .ok_or(CodecError::Malformed("IP total_len shorter than headers"))?;
        if buf.remaining() < payload_len {
            return Err(CodecError::Truncated {
                needed: payload_len,
                had: buf.remaining(),
            });
        }
        buf.advance(payload_len);
        Ok(Packet {
            eth,
            ip,
            transport,
            payload_len: payload_len as u16,
        })
    }
}

/// Fluent constructor for [`Packet`] — the traffic generators' workhorse.
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    ttl: u8,
    identification: u16,
}

impl PacketBuilder {
    pub fn new(src_ip: Ipv4Addr, dst_ip: Ipv4Addr) -> Self {
        Self {
            src_mac: MacAddr::lab(1),
            dst_mac: MacAddr::lab(2),
            src_ip,
            dst_ip,
            ttl: 64,
            identification: 0,
        }
    }

    pub fn ttl(mut self, ttl: u8) -> Self {
        self.ttl = ttl;
        self
    }

    pub fn identification(mut self, id: u16) -> Self {
        self.identification = id;
        self
    }

    pub fn macs(mut self, src: MacAddr, dst: MacAddr) -> Self {
        self.src_mac = src;
        self.dst_mac = dst;
        self
    }

    fn ip_header(&self, protocol: Protocol, transport_len: usize, payload_len: u16) -> Ipv4Header {
        Ipv4Header {
            dscp: 0,
            total_len: (Ipv4Header::WIRE_LEN + transport_len) as u16 + payload_len,
            identification: self.identification,
            ttl: self.ttl,
            protocol: protocol.number(),
            src: self.src_ip,
            dst: self.dst_ip,
        }
    }

    /// Build a TCP packet with the given ports, flags and payload length.
    pub fn tcp(
        &self,
        src_port: u16,
        dst_port: u16,
        flags: TcpFlags,
        seq: u32,
        ack: u32,
        payload_len: u16,
    ) -> Packet {
        let tcp = TcpHeader {
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window: 64240,
        };
        Packet {
            eth: EthernetHeader::ipv4(self.src_mac, self.dst_mac),
            ip: self.ip_header(Protocol::Tcp, TcpHeader::WIRE_LEN, payload_len),
            transport: Transport::Tcp(tcp),
            payload_len,
        }
    }

    /// Build a bare SYN (the SYN-flood / SYN-scan primitive).
    pub fn tcp_syn(&self, src_port: u16, dst_port: u16, seq: u32) -> Packet {
        self.tcp(src_port, dst_port, TcpFlags::SYN, seq, 0, 0)
    }

    /// Build a UDP packet with the given ports and payload length.
    pub fn udp(&self, src_port: u16, dst_port: u16, payload_len: u16) -> Packet {
        let udp = UdpHeader {
            src_port,
            dst_port,
            length: UdpHeader::WIRE_LEN as u16 + payload_len,
        };
        Packet {
            eth: EthernetHeader::ipv4(self.src_mac, self.dst_mac),
            ip: self.ip_header(Protocol::Udp, UdpHeader::WIRE_LEN, payload_len),
            transport: Transport::Udp(udp),
            payload_len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn builder() -> PacketBuilder {
        PacketBuilder::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
    }

    #[test]
    fn tcp_packet_roundtrip() {
        let p = builder().tcp(44211, 80, TcpFlags::PSH | TcpFlags::ACK, 1000, 2000, 512);
        let mut buf = p.encode_to_bytes().freeze();
        let back = Packet::decode(&mut buf).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn udp_packet_roundtrip() {
        let p = builder().udp(5000, 53, 300);
        let mut buf = p.encode_to_bytes().freeze();
        assert_eq!(Packet::decode(&mut buf).unwrap(), p);
    }

    #[test]
    fn flow_key_reflects_headers() {
        let p = builder().tcp_syn(31000, 443, 1);
        let k = p.flow_key();
        assert_eq!(k.src_port, 31000);
        assert_eq!(k.dst_port, 443);
        assert_eq!(k.protocol, Protocol::Tcp);
        assert_eq!(k.src_ip, Ipv4Addr::new(10, 0, 0, 1));
    }

    #[test]
    fn wire_len_accounts_for_all_layers() {
        let p = builder().udp(1, 2, 100);
        // 14 eth + 20 ip + 8 udp + 100 payload
        assert_eq!(p.wire_len(), 142);
        assert_eq!(p.ip_len(), 128);
        assert_eq!(p.encoded_len(), 142);
    }

    #[test]
    fn syn_has_zero_payload() {
        let p = builder().tcp_syn(5, 80, 7);
        assert_eq!(p.payload_len, 0);
        assert_eq!(p.tcp_flags(), Some(TcpFlags::SYN));
        assert_eq!(p.ip_len(), 40);
    }

    #[test]
    fn udp_packet_has_no_tcp_flags() {
        assert_eq!(builder().udp(1, 2, 0).tcp_flags(), None);
    }

    #[test]
    fn decode_rejects_total_len_shorter_than_headers() {
        let p = builder().tcp_syn(1, 2, 3);
        let mut bytes = p.encode_to_bytes();
        // Corrupt total_len to 10 (< 40) and re-fix the checksum by
        // re-encoding a doctored header.
        let mut ip = p.ip;
        ip.total_len = 10;
        let fixed = ip.encode_to_bytes();
        bytes[14..34].copy_from_slice(&fixed);
        let mut cursor = bytes.freeze();
        assert!(Packet::decode(&mut cursor).is_err());
    }

    #[test]
    fn decode_rejects_non_ipv4_ethertype() {
        let p = builder().tcp_syn(1, 2, 3);
        let mut bytes = p.encode_to_bytes();
        bytes[12] = 0x86; // 0x86dd = IPv6
        bytes[13] = 0xdd;
        let mut cursor = bytes.freeze();
        assert!(matches!(
            Packet::decode(&mut cursor),
            Err(CodecError::Malformed(_))
        ));
    }
}
