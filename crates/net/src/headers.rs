//! Protocol headers: Ethernet II, IPv4, TCP, UDP.
//!
//! Only the fields the reproduction needs are modeled, but the wire layout
//! of each header is the real one (RFC 791 / RFC 793 / RFC 768), so encoded
//! packets are byte-compatible with what a P4 parser would see.

use crate::codec::{CodecError, Decode, Encode};
use bytes::{Buf, BufMut};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// Deterministic MAC for host `n` in the simulated lab.
    pub const fn lab(n: u8) -> Self {
        MacAddr([0x02, 0xa1, 0x1c, 0x00, 0x00, n])
    }
}

/// Ethernet II frame header (no VLAN tag; AmLight's INT deployment strips
/// tags before the INT sink in our model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EthernetHeader {
    pub dst: MacAddr,
    pub src: MacAddr,
    pub ethertype: u16,
}

impl EthernetHeader {
    pub const WIRE_LEN: usize = 14;

    pub fn ipv4(src: MacAddr, dst: MacAddr) -> Self {
        Self {
            dst,
            src,
            ethertype: ETHERTYPE_IPV4,
        }
    }
}

impl Encode for EthernetHeader {
    fn encoded_len(&self) -> usize {
        Self::WIRE_LEN
    }

    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_slice(&self.dst.0);
        buf.put_slice(&self.src.0);
        buf.put_u16(self.ethertype);
    }
}

impl Decode for EthernetHeader {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, CodecError> {
        if buf.remaining() < Self::WIRE_LEN {
            return Err(CodecError::Truncated {
                needed: Self::WIRE_LEN,
                had: buf.remaining(),
            });
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        buf.copy_to_slice(&mut dst);
        buf.copy_to_slice(&mut src);
        let ethertype = buf.get_u16();
        Ok(Self {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype,
        })
    }
}

/// IPv4 header (20 bytes, no options).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ipv4Header {
    pub dscp: u8,
    /// Total length: header + transport header + payload, in bytes.
    pub total_len: u16,
    pub identification: u16,
    pub ttl: u8,
    pub protocol: u8,
    pub src: Ipv4Addr,
    pub dst: Ipv4Addr,
}

impl Ipv4Header {
    pub const WIRE_LEN: usize = 20;

    /// Header checksum over the encoded 20 bytes with the checksum field
    /// zeroed (RFC 1071 ones'-complement sum).
    pub fn checksum(&self) -> u16 {
        let mut bytes = [0u8; Self::WIRE_LEN];
        self.write_raw(&mut bytes, 0);
        ones_complement_sum(&bytes)
    }

    fn write_raw(&self, out: &mut [u8; Self::WIRE_LEN], checksum: u16) {
        out[0] = 0x45; // version 4, IHL 5
        out[1] = self.dscp << 2;
        out[2..4].copy_from_slice(&self.total_len.to_be_bytes());
        out[4..6].copy_from_slice(&self.identification.to_be_bytes());
        // flags + fragment offset: DF set, offset 0
        out[6] = 0x40;
        out[7] = 0;
        out[8] = self.ttl;
        out[9] = self.protocol;
        out[10..12].copy_from_slice(&checksum.to_be_bytes());
        out[12..16].copy_from_slice(&self.src.octets());
        out[16..20].copy_from_slice(&self.dst.octets());
    }
}

fn ones_complement_sum(bytes: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = bytes.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

impl Encode for Ipv4Header {
    fn encoded_len(&self) -> usize {
        Self::WIRE_LEN
    }

    fn encode<B: BufMut>(&self, buf: &mut B) {
        let mut raw = [0u8; Self::WIRE_LEN];
        let ck = self.checksum();
        self.write_raw(&mut raw, ck);
        buf.put_slice(&raw);
    }
}

impl Decode for Ipv4Header {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, CodecError> {
        if buf.remaining() < Self::WIRE_LEN {
            return Err(CodecError::Truncated {
                needed: Self::WIRE_LEN,
                had: buf.remaining(),
            });
        }
        let mut raw = [0u8; Self::WIRE_LEN];
        buf.copy_to_slice(&mut raw);
        if raw[0] >> 4 != 4 {
            return Err(CodecError::Malformed("IPv4 version field is not 4"));
        }
        if raw[0] & 0x0f != 5 {
            return Err(CodecError::Malformed("IPv4 options are not supported"));
        }
        let hdr = Self {
            dscp: raw[1] >> 2,
            total_len: u16::from_be_bytes([raw[2], raw[3]]),
            identification: u16::from_be_bytes([raw[4], raw[5]]),
            ttl: raw[8],
            protocol: raw[9],
            src: Ipv4Addr::new(raw[12], raw[13], raw[14], raw[15]),
            dst: Ipv4Addr::new(raw[16], raw[17], raw[18], raw[19]),
        };
        let wire_ck = u16::from_be_bytes([raw[10], raw[11]]);
        if wire_ck != hdr.checksum() {
            return Err(CodecError::Malformed("IPv4 header checksum mismatch"));
        }
        Ok(hdr)
    }
}

/// Tiny local stand-in for the `bitflags` crate — avoids an extra
/// dependency for six constants.
macro_rules! bitflags_lite {
    (
        $(#[$meta:meta])*
        pub struct $name:ident: $ty:ty {
            $(const $flag:ident = $val:expr;)*
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
        pub struct $name(pub $ty);

        impl $name {
            $(pub const $flag: $name = $name($val);)*

            pub const fn empty() -> Self { $name(0) }
            pub const fn bits(self) -> $ty { self.0 }
            pub const fn contains(self, other: $name) -> bool {
                self.0 & other.0 == other.0
            }
            pub const fn union(self, other: $name) -> $name {
                $name(self.0 | other.0)
            }
        }

        impl core::ops::BitOr for $name {
            type Output = $name;
            fn bitor(self, rhs: $name) -> $name { self.union(rhs) }
        }
    };
}

bitflags_lite! {
    /// TCP flag bits, in wire order (bit 0 = FIN).
    pub struct TcpFlags: u8 {
        const FIN = 0x01;
        const SYN = 0x02;
        const RST = 0x04;
        const PSH = 0x08;
        const ACK = 0x10;
        const URG = 0x20;
    }
}

/// TCP header (20 bytes, no options).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TcpHeader {
    pub src_port: u16,
    pub dst_port: u16,
    pub seq: u32,
    pub ack: u32,
    pub flags: TcpFlags,
    pub window: u16,
}

impl TcpHeader {
    pub const WIRE_LEN: usize = 20;

    pub fn syn(src_port: u16, dst_port: u16, seq: u32) -> Self {
        Self {
            src_port,
            dst_port,
            seq,
            ack: 0,
            flags: TcpFlags::SYN,
            window: 64240,
        }
    }
}

impl Encode for TcpHeader {
    fn encoded_len(&self) -> usize {
        Self::WIRE_LEN
    }

    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        buf.put_u32(self.seq);
        buf.put_u32(self.ack);
        buf.put_u8(5 << 4); // data offset 5 words
        buf.put_u8(self.flags.bits());
        buf.put_u16(self.window);
        buf.put_u16(0); // checksum: not modeled (simulator verifies IP level)
        buf.put_u16(0); // urgent pointer
    }
}

impl Decode for TcpHeader {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, CodecError> {
        if buf.remaining() < Self::WIRE_LEN {
            return Err(CodecError::Truncated {
                needed: Self::WIRE_LEN,
                had: buf.remaining(),
            });
        }
        let src_port = buf.get_u16();
        let dst_port = buf.get_u16();
        let seq = buf.get_u32();
        let ack = buf.get_u32();
        let offset = buf.get_u8() >> 4;
        if offset != 5 {
            return Err(CodecError::Malformed("TCP options are not supported"));
        }
        let flags = TcpFlags(buf.get_u8() & 0x3f);
        let window = buf.get_u16();
        let _checksum = buf.get_u16();
        let _urg = buf.get_u16();
        Ok(Self {
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window,
        })
    }
}

/// UDP header (8 bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UdpHeader {
    pub src_port: u16,
    pub dst_port: u16,
    /// Length: UDP header + payload, in bytes.
    pub length: u16,
}

impl UdpHeader {
    pub const WIRE_LEN: usize = 8;
}

impl Encode for UdpHeader {
    fn encoded_len(&self) -> usize {
        Self::WIRE_LEN
    }

    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        buf.put_u16(self.length);
        buf.put_u16(0); // checksum optional for IPv4
    }
}

impl Decode for UdpHeader {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, CodecError> {
        if buf.remaining() < Self::WIRE_LEN {
            return Err(CodecError::Truncated {
                needed: Self::WIRE_LEN,
                had: buf.remaining(),
            });
        }
        let src_port = buf.get_u16();
        let dst_port = buf.get_u16();
        let length = buf.get_u16();
        let _checksum = buf.get_u16();
        if (length as usize) < Self::WIRE_LEN {
            return Err(CodecError::Malformed("UDP length shorter than header"));
        }
        Ok(Self {
            src_port,
            dst_port,
            length,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: &T) {
        let mut buf = BytesMut::new();
        v.encode(&mut buf);
        assert_eq!(buf.len(), v.encoded_len());
        let mut cursor = buf.freeze();
        let back = T::decode(&mut cursor).expect("decode");
        assert_eq!(&back, v);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn ethernet_roundtrip() {
        roundtrip(&EthernetHeader::ipv4(MacAddr::lab(1), MacAddr::lab(2)));
    }

    #[test]
    fn ipv4_roundtrip_and_checksum() {
        let h = Ipv4Header {
            dscp: 0,
            total_len: 60,
            identification: 0x1234,
            ttl: 64,
            protocol: 6,
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(10, 0, 0, 2),
        };
        roundtrip(&h);
    }

    #[test]
    fn ipv4_checksum_detects_corruption() {
        let h = Ipv4Header {
            dscp: 0,
            total_len: 60,
            identification: 7,
            ttl: 64,
            protocol: 17,
            src: Ipv4Addr::new(1, 2, 3, 4),
            dst: Ipv4Addr::new(5, 6, 7, 8),
        };
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        buf[8] ^= 0xff; // flip TTL
        let mut cursor = buf.freeze();
        assert!(matches!(
            Ipv4Header::decode(&mut cursor),
            Err(CodecError::Malformed(_))
        ));
    }

    #[test]
    fn ipv4_rejects_wrong_version() {
        let mut raw = [0u8; 20];
        raw[0] = 0x65; // version 6
        let mut cursor = &raw[..];
        assert!(Ipv4Header::decode(&mut cursor).is_err());
    }

    #[test]
    fn ipv4_rejects_truncated() {
        let raw = [0x45u8; 10];
        let mut cursor = &raw[..];
        assert!(matches!(
            Ipv4Header::decode(&mut cursor),
            Err(CodecError::Truncated {
                needed: 20,
                had: 10
            })
        ));
    }

    #[test]
    fn tcp_roundtrip() {
        let h = TcpHeader {
            src_port: 443,
            dst_port: 51000,
            seq: 0xdead_beef,
            ack: 0x0badc0de,
            flags: TcpFlags::SYN | TcpFlags::ACK,
            window: 29200,
        };
        roundtrip(&h);
    }

    #[test]
    fn tcp_syn_constructor_sets_only_syn() {
        let h = TcpHeader::syn(1234, 80, 99);
        assert!(h.flags.contains(TcpFlags::SYN));
        assert!(!h.flags.contains(TcpFlags::ACK));
        assert_eq!(h.ack, 0);
    }

    #[test]
    fn udp_roundtrip() {
        roundtrip(&UdpHeader {
            src_port: 53,
            dst_port: 5353,
            length: 8 + 120,
        });
    }

    #[test]
    fn udp_rejects_impossible_length() {
        let raw: [u8; 8] = [0, 53, 0, 54, 0, 4, 0, 0]; // length=4 < 8
        let mut cursor = &raw[..];
        assert!(matches!(
            UdpHeader::decode(&mut cursor),
            Err(CodecError::Malformed(_))
        ));
    }

    #[test]
    fn tcp_flags_bit_positions_are_wire_accurate() {
        assert_eq!(TcpFlags::FIN.bits(), 0x01);
        assert_eq!(TcpFlags::SYN.bits(), 0x02);
        assert_eq!(TcpFlags::RST.bits(), 0x04);
        assert_eq!(TcpFlags::PSH.bits(), 0x08);
        assert_eq!(TcpFlags::ACK.bits(), 0x10);
        assert_eq!(TcpFlags::URG.bits(), 0x20);
        assert_eq!((TcpFlags::SYN | TcpFlags::ACK).bits(), 0x12);
    }

    #[test]
    fn ones_complement_known_vector() {
        // From RFC 1071 example adapted: all-zero block checksums to 0xffff.
        assert_eq!(super::ones_complement_sum(&[0; 20]), 0xffff);
    }
}
