//! The flow database at the center of Fig. 2.
//!
//! Semantics follow the paper: the Data Processor keeps **one record per
//! flow** (packet-level fields replaced, flow-level aggregates updated),
//! and the CentralServer *polls for changes*, skipping brand-new entries
//! — "it does not consider new entries with new Flow IDs, but focuses on
//! existing records from their first update" (§III-3).
//!
//! The store is in-memory behind a `parking_lot::RwLock` so the threaded
//! runtime can share it; the poll API is a monotone change log so pollers
//! never miss or double-see an update.

use amlight_features::FeatureVector;
use amlight_net::flow::FnvHashMap;
use amlight_net::FlowKey;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A change-log entry handed to pollers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UpdateEvent {
    /// Global, monotone change sequence.
    pub seq: u64,
    pub key: FlowKey,
    /// Per-flow update counter (1 = first update after creation).
    pub update_seq: u64,
    /// Feature snapshot at the time of the update.
    pub features: FeatureVector,
    /// Collector-clock registration time of this update, ns. Prediction
    /// latency is measured against this stamp (§III-2, item 8).
    pub registered_ns: u64,
}

/// A stored model verdict for one flow update.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictionRecord {
    pub key: FlowKey,
    /// Aggregated (ensemble + smoothing) label; None while smoothing is
    /// still pending.
    pub label: Option<bool>,
    /// Publication epoch of the model bundle that voted on this update
    /// (see [`crate::epoch::EpochHandle`]) — which model said this, as a
    /// database column instead of deployment-log archaeology.
    pub epoch: u64,
    /// When the prediction was produced, virtual collector clock ns.
    pub predicted_ns: u64,
    /// predicted_ns − registered_ns.
    pub latency_ns: u64,
}

#[derive(Debug, Default)]
struct DbInner {
    /// Latest record per flow (the "one record per flow" table).
    flows: FnvHashMap<FlowKey, UpdateEvent>,
    /// Change log of *updates only* (created entries are not logged —
    /// pollers must not see flows before their first update).
    log: Vec<UpdateEvent>,
    /// Stored predictions, append-only.
    predictions: Vec<PredictionRecord>,
    next_seq: u64,
    created: u64,
}

/// Shared handle to the database.
#[derive(Debug, Clone, Default)]
pub struct FlowDatabase {
    inner: Arc<RwLock<DbInner>>,
}

impl FlowDatabase {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a freshly *created* flow entry. Not added to the change
    /// log.
    // amlint: cold -- Fig. 2 DB module: RwLock'd store polled by the central server
    pub fn record_created(&self, key: FlowKey, features: FeatureVector, registered_ns: u64) {
        let mut g = self.inner.write();
        let seq = g.next_seq;
        g.next_seq += 1;
        g.created += 1;
        g.flows.insert(
            key,
            UpdateEvent {
                seq,
                key,
                update_seq: 0,
                features,
                registered_ns,
            },
        );
    }

    /// Record an *update* to an existing flow. Returns the global change
    /// sequence. Updates are what pollers see.
    // amlint: cold -- Fig. 2 DB module: RwLock'd store polled by the central server
    pub fn record_updated(
        &self,
        key: FlowKey,
        update_seq: u64,
        features: FeatureVector,
        registered_ns: u64,
    ) -> u64 {
        let mut g = self.inner.write();
        let seq = g.next_seq;
        g.next_seq += 1;
        let ev = UpdateEvent {
            seq,
            key,
            update_seq,
            features,
            registered_ns,
        };
        g.flows.insert(key, ev);
        g.log.push(ev);
        seq
    }

    /// Poll all updates with `seq >= since`, returning them and the next
    /// cursor value. This is the CentralServer's (4).
    pub fn poll_updates(&self, since: u64) -> (Vec<UpdateEvent>, u64) {
        let g = self.inner.read();
        let start = g.log.partition_point(|e| e.seq < since);
        let events = g.log[start..].to_vec();
        let next = events.last().map_or(since, |e| e.seq + 1);
        (events, next)
    }

    /// Latest record for a flow.
    pub fn get(&self, key: &FlowKey) -> Option<UpdateEvent> {
        self.inner.read().flows.get(key).copied()
    }

    /// Store an aggregated prediction (§III-2, item 8).
    pub fn store_prediction(&self, rec: PredictionRecord) {
        self.inner.write().predictions.push(rec);
    }

    pub fn predictions(&self) -> Vec<PredictionRecord> {
        self.inner.read().predictions.clone()
    }

    /// Cursor-based incremental read of stored predictions: everything
    /// from index `since` on, plus the next cursor value. Stats pollers
    /// use this instead of [`FlowDatabase::predictions`], which clones
    /// the entire append-only history on every call.
    pub fn predictions_since(&self, since: usize) -> (Vec<PredictionRecord>, usize) {
        let g = self.inner.read();
        let start = since.min(g.predictions.len());
        (g.predictions[start..].to_vec(), g.predictions.len())
    }

    pub fn prediction_count(&self) -> usize {
        self.inner.read().predictions.len()
    }

    /// Per-flow verdict sequences, in each flow's own prediction order.
    ///
    /// Store order *across* flows is nondeterministic once processor
    /// shards aggregate concurrently, but each flow's predictions are
    /// produced by exactly one shard in arrival order — so this grouping
    /// is the shard-count-invariant view of a run (used by the
    /// shard-invariance tests and stats tooling).
    pub fn verdict_sequences(&self) -> FnvHashMap<FlowKey, Vec<Option<bool>>> {
        let g = self.inner.read();
        let mut out: FnvHashMap<FlowKey, Vec<Option<bool>>> = FnvHashMap::default();
        for p in &g.predictions {
            out.entry(p.key).or_default().push(p.label);
        }
        out
    }

    /// Distinct model epochs that produced stored predictions, sorted.
    /// A hot-swapped run shows every epoch that actually voted — the
    /// observability half of the epoch publication protocol.
    pub fn epochs_used(&self) -> Vec<u64> {
        let g = self.inner.read();
        let mut epochs: Vec<u64> = g.predictions.iter().map(|p| p.epoch).collect();
        epochs.sort_unstable();
        epochs.dedup();
        epochs
    }

    pub fn flow_count(&self) -> usize {
        self.inner.read().flows.len()
    }

    pub fn update_count(&self) -> usize {
        self.inner.read().log.len()
    }

    pub fn created_count(&self) -> u64 {
        self.inner.read().created
    }

    /// Drop change-log entries below `seq` (long-running memory bound;
    /// safe once every poller's cursor has passed them).
    pub fn truncate_log_below(&self, seq: u64) {
        let mut g = self.inner.write();
        let keep = g.log.partition_point(|e| e.seq < seq);
        g.log.drain(..keep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amlight_net::Protocol;
    use std::net::Ipv4Addr;

    fn key(p: u16) -> FlowKey {
        FlowKey::new(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            p,
            80,
            Protocol::Tcp,
        )
    }

    fn feat() -> FeatureVector {
        FeatureVector::default()
    }

    #[test]
    fn created_entries_are_invisible_to_pollers() {
        let db = FlowDatabase::new();
        db.record_created(key(1), feat(), 100);
        let (events, next) = db.poll_updates(0);
        assert!(events.is_empty());
        assert_eq!(next, 0);
        assert_eq!(db.flow_count(), 1);
        assert_eq!(db.created_count(), 1);
    }

    #[test]
    fn updates_flow_through_poll_exactly_once() {
        let db = FlowDatabase::new();
        db.record_created(key(1), feat(), 100);
        db.record_updated(key(1), 1, feat(), 200);
        db.record_updated(key(1), 2, feat(), 300);

        let (events, cursor) = db.poll_updates(0);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].update_seq, 1);
        assert_eq!(events[1].registered_ns, 300);

        // Nothing new: empty poll, cursor stable.
        let (again, cursor2) = db.poll_updates(cursor);
        assert!(again.is_empty());
        assert_eq!(cursor2, cursor);

        // A later update appears exactly once.
        db.record_updated(key(1), 3, feat(), 400);
        let (more, _) = db.poll_updates(cursor);
        assert_eq!(more.len(), 1);
        assert_eq!(more[0].update_seq, 3);
    }

    #[test]
    fn get_returns_latest_snapshot() {
        let db = FlowDatabase::new();
        db.record_created(key(1), feat(), 100);
        db.record_updated(key(1), 1, feat(), 250);
        let rec = db.get(&key(1)).unwrap();
        assert_eq!(rec.update_seq, 1);
        assert_eq!(rec.registered_ns, 250);
        assert!(db.get(&key(9)).is_none());
    }

    #[test]
    fn predictions_accumulate() {
        let db = FlowDatabase::new();
        db.store_prediction(PredictionRecord {
            key: key(1),
            label: Some(true),
            epoch: 0,
            predicted_ns: 900,
            latency_ns: 700,
        });
        db.store_prediction(PredictionRecord {
            key: key(1),
            label: None,
            epoch: 1,
            predicted_ns: 950,
            latency_ns: 750,
        });
        let preds = db.predictions();
        assert_eq!(preds.len(), 2);
        assert_eq!(preds[0].label, Some(true));
        assert_eq!(preds[1].label, None);
        assert_eq!(db.epochs_used(), vec![0, 1]);
    }

    #[test]
    fn predictions_since_is_exactly_once() {
        let db = FlowDatabase::new();
        for i in 0..5u64 {
            db.store_prediction(PredictionRecord {
                key: key(1),
                label: Some(i % 2 == 0),
                epoch: 0,
                predicted_ns: i * 100,
                latency_ns: i,
            });
        }
        let (first, cursor) = db.predictions_since(0);
        assert_eq!(first.len(), 5);
        assert_eq!(cursor, 5);
        // Nothing new: empty, cursor stable.
        let (empty, cursor2) = db.predictions_since(cursor);
        assert!(empty.is_empty());
        assert_eq!(cursor2, cursor);
        // New records appear exactly once; stale cursors past the end
        // are clamped.
        db.store_prediction(PredictionRecord {
            key: key(2),
            label: None,
            epoch: 0,
            predicted_ns: 900,
            latency_ns: 9,
        });
        let (more, cursor3) = db.predictions_since(cursor);
        assert_eq!(more.len(), 1);
        assert_eq!(more[0].key, key(2));
        assert_eq!(cursor3, 6);
        assert_eq!(db.prediction_count(), 6);
        assert!(db.predictions_since(100).0.is_empty());
    }

    #[test]
    fn verdict_sequences_group_per_flow_in_order() {
        let db = FlowDatabase::new();
        for (port, label) in [(1, Some(true)), (2, None), (1, Some(false)), (1, None)] {
            db.store_prediction(PredictionRecord {
                key: key(port),
                label,
                epoch: 0,
                predicted_ns: 0,
                latency_ns: 0,
            });
        }
        let seqs = db.verdict_sequences();
        assert_eq!(seqs.len(), 2);
        assert_eq!(seqs[&key(1)], vec![Some(true), Some(false), None]);
        assert_eq!(seqs[&key(2)], vec![None]);
    }

    #[test]
    fn log_truncation_respects_cursors() {
        let db = FlowDatabase::new();
        db.record_created(key(1), feat(), 0);
        for i in 1..=5 {
            db.record_updated(key(1), i, feat(), i * 100);
        }
        let (all, cursor) = db.poll_updates(0);
        assert_eq!(all.len(), 5);
        db.truncate_log_below(cursor);
        assert_eq!(db.update_count(), 0);
        let (after, _) = db.poll_updates(cursor);
        assert!(after.is_empty());
    }

    #[test]
    fn shared_handles_see_same_state() {
        let db = FlowDatabase::new();
        let db2 = db.clone();
        db.record_created(key(3), feat(), 1);
        db.record_updated(key(3), 1, feat(), 2);
        assert_eq!(db2.flow_count(), 1);
        assert_eq!(db2.poll_updates(0).0.len(), 1);
    }

    #[test]
    fn concurrent_writers_do_not_lose_updates() {
        let db = FlowDatabase::new();
        db.record_created(key(0), feat(), 0);
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let db = db.clone();
                std::thread::spawn(move || {
                    for i in 0..250u64 {
                        db.record_updated(key(0), t * 1000 + i, feat(), i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(db.update_count(), 1000);
        let (events, _) = db.poll_updates(0);
        assert_eq!(events.len(), 1000);
        // Sequences strictly increasing.
        for w in events.windows(2) {
            assert!(w[1].seq > w[0].seq);
        }
    }
}
