//! The deterministic virtual-time pipeline driver.
//!
//! [`DetectionPipeline::run_sync`] replays a labeled telemetry stream
//! through the full Fig. 2 dataflow in one thread, advancing a virtual
//! clock. The module semantics — flow-table ingest, the CentralServer's
//! updates-only forwarding rule, batched ensemble voting, and verdict
//! smoothing — live in the shared [`crate::modules`] stage layer
//! ([`Processor`] / [`Predictor`] / [`Aggregator`]); this driver owns
//! only what is specific to virtual time. Prediction latency (paper
//! Table VI, cols 3–4) is produced by an explicit queueing model of the
//! CentralServer + Prediction path:
//!
//! * a single FIFO server handles one flow-update prediction at a time;
//! * each prediction costs `base_service_ns` **plus
//!   `scan_cost_per_flow_ns` × (live flow records)** — the paper's
//!   CentralServer polls the database by scanning records, so per-
//!   prediction overhead grows with table size. This is what makes
//!   benign replays (hundreds of concurrent flows, thousands of updates)
//!   orders of magnitude slower than a SYN-flood replay from a handful
//!   of sockets — the Table VI asymmetry.
//!
//! Two paces are provided: [`PipelineConfig::rust_pace`] (what this Rust
//! implementation actually costs) and [`PipelineConfig::paper_pace`]
//! (Python/JavaScript-era service times, for reproducing the paper's
//! absolute latency scale).

use crate::db::FlowDatabase;
use crate::event::Telemetry;
use crate::guard::{FloodAlert, GuardConfig, NewFlowGuard};
use crate::modules::{Aggregator, Ingest, JudgedUpdate, Predictor, Processor, VirtualClock};
use crate::trainer::ModelBundle;
use crate::verdict::Verdict;
use amlight_features::{FeatureSet, FlowTableConfig};
use amlight_net::{FlowKey, TrafficClass};
use serde::{Deserialize, Serialize};

/// Pipeline tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Data Processor per-report handling cost, ns (collection → record
    /// registered in the database).
    pub processing_delay_ns: u64,
    /// Fixed prediction cost per flow update, ns.
    pub base_service_ns: u64,
    /// CentralServer scan cost per live flow record per prediction, ns.
    pub scan_cost_per_flow_ns: u64,
    /// Smoothing window size (paper: 3).
    pub smoothing_window: usize,
    /// Flow-table housekeeping.
    pub table: FlowTableConfig,
    /// Optional new-flow-rate guard (catches spoofed floods the
    /// per-update ML path is structurally blind to; see ablation 4).
    pub guard: Option<GuardConfig>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self::rust_pace()
    }
}

impl PipelineConfig {
    /// Service times representative of this Rust implementation.
    pub fn rust_pace() -> Self {
        Self {
            processing_delay_ns: 2_000,
            base_service_ns: 20_000,    // 20 µs per ensemble prediction
            scan_cost_per_flow_ns: 200, // 0.2 µs per record scanned
            smoothing_window: 3,
            table: FlowTableConfig::default(),
            guard: Some(GuardConfig::default()),
        }
    }

    /// Service times representative of the paper's Python + JavaScript
    /// prototype, for reproducing Table VI's latency *shape*: the
    /// sklearn predict call itself is fast (~0.1 ms/row), but the
    /// CentralServer re-scans every database record per poll (~0.4 ms
    /// each), so prediction cost grows with live flow count. Replays
    /// with many concurrent flows (benign, scans) pay heavily; the
    /// 16-socket flood barely notices.
    pub fn paper_pace() -> Self {
        Self {
            processing_delay_ns: 100_000,   // 0.1 ms per packet in JS
            base_service_ns: 100_000,       // 0.1 ms per sklearn call
            scan_cost_per_flow_ns: 150_000, // 0.15 ms per record scan
            smoothing_window: 3,
            table: FlowTableConfig::default(),
            guard: Some(GuardConfig::default()),
        }
    }
}

/// One prediction event for the report timeline (Figs. 7a/7b).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimelinePoint {
    /// Order of the prediction within the run.
    pub index: u64,
    pub key: FlowKey,
    pub truth: TrafficClass,
    pub verdict: Verdict,
    pub registered_ns: u64,
    pub predicted_ns: u64,
}

impl TimelinePoint {
    pub fn latency_s(&self) -> f64 {
        (self.predicted_ns - self.registered_ns) as f64 / 1e9
    }
}

/// Per-traffic-class outcome (one row of the paper's Table VI).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassSummary {
    pub class: TrafficClass,
    /// Predictions with a final (non-pending) verdict.
    pub predicted: u64,
    pub misclassified: u64,
    /// Predictions still inside the smoothing warm-up.
    pub pending: u64,
    pub avg_latency_s: f64,
    pub max_latency_s: f64,
    pub p99_latency_s: f64,
}

impl ClassSummary {
    pub fn accuracy(&self) -> f64 {
        if self.predicted == 0 {
            0.0
        } else {
            1.0 - self.misclassified as f64 / self.predicted as f64
        }
    }
}

/// Full output of a pipeline run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineReport {
    pub timeline: Vec<TimelinePoint>,
    /// Updates that never got a verdict because their flow stayed inside
    /// the warm-up — included in the per-class `pending` counts.
    pub total_reports: u64,
    pub total_flows: u64,
    /// New-flow-rate alerts from the guard (empty when disabled).
    pub flood_alerts: Vec<FloodAlert>,
}

impl PipelineReport {
    /// Summarize one class (a Table VI row).
    pub fn class_summary(&self, class: TrafficClass) -> ClassSummary {
        let mut latencies: Vec<f64> = Vec::new();
        let mut predicted = 0u64;
        let mut misclassified = 0u64;
        let mut pending = 0u64;
        for p in self.timeline.iter().filter(|p| p.truth == class) {
            latencies.push(p.latency_s());
            match p.verdict.label() {
                None => pending += 1,
                Some(label) => {
                    predicted += 1;
                    if label != class.label() {
                        misclassified += 1;
                    }
                }
            }
        }
        latencies.sort_by(f64::total_cmp);
        let n = latencies.len();
        let avg = if n == 0 {
            0.0
        } else {
            latencies.iter().sum::<f64>() / n as f64
        };
        let max = latencies.last().copied().unwrap_or(0.0);
        let p99 = if n == 0 {
            0.0
        } else {
            latencies[((n as f64 * 0.99) as usize).min(n - 1)]
        };
        ClassSummary {
            class,
            predicted,
            misclassified,
            pending,
            avg_latency_s: avg,
            max_latency_s: max,
            p99_latency_s: p99,
        }
    }

    /// Classes present in this run, in canonical order.
    pub fn classes(&self) -> Vec<TrafficClass> {
        TrafficClass::ALL
            .into_iter()
            .filter(|c| self.timeline.iter().any(|p| p.truth == *c))
            .collect()
    }

    /// Overall accuracy across final verdicts.
    pub fn overall_accuracy(&self) -> f64 {
        let (mut ok, mut total) = (0u64, 0u64);
        for p in &self.timeline {
            if let Some(label) = p.verdict.label() {
                total += 1;
                ok += u64::from(label == p.truth.label());
            }
        }
        if total == 0 {
            0.0
        } else {
            ok as f64 / total as f64
        }
    }
}

/// The synchronous, virtual-time pipeline.
pub struct DetectionPipeline {
    config: PipelineConfig,
    predictor: Predictor,
    db: FlowDatabase,
}

/// Reports per columnar prediction flush in [`DetectionPipeline::run_sync`].
const PREDICTION_BATCH: usize = 1024;

impl DetectionPipeline {
    pub fn new(bundle: ModelBundle, config: PipelineConfig) -> Self {
        Self::shared(crate::epoch::EpochHandle::new(bundle), config)
    }

    /// Build the driver over an existing epoch handle, so a publish
    /// through any clone of it swaps the model between this driver's
    /// prediction micro-batches.
    pub fn shared(handle: crate::epoch::EpochHandle, config: PipelineConfig) -> Self {
        Self {
            config,
            predictor: Predictor::shared(handle),
            db: FlowDatabase::new(),
        }
    }

    /// The swappable model handle this driver predicts with.
    pub fn model_handle(&self) -> crate::epoch::EpochHandle {
        self.predictor.handle().clone()
    }

    pub fn database(&self) -> &FlowDatabase {
        &self.db
    }

    pub fn feature_set(&self) -> FeatureSet {
        self.predictor.feature_set()
    }

    /// Replay a labeled telemetry stream from any backend (must be
    /// event-time ordered) through the full detection dataflow. The
    /// backend only changes the normalized [`amlight_features::FlowUpdate`]
    /// each event lowers to and which feature projection the bundle was
    /// trained on — the dataflow is backend-blind.
    ///
    /// Ingest, forwarding, prediction, and aggregation are the shared
    /// [`crate::modules`] stages under a [`VirtualClock`]; this method
    /// adds only the virtual-time queueing model. Predictions are
    /// flushed in micro-batches of [`PREDICTION_BATCH`] reports through
    /// one columnar ensemble call instead of three virtual model calls
    /// per update. Deferring them is invisible to the queueing model:
    /// predictions never feed back into the flow table, each pending
    /// update carries the table size and registration stamp from its own
    /// collect step, and the flush walks updates in input order, so
    /// verdicts, latencies, and database contents are identical to the
    /// one-at-a-time replay. Static dispatch over [`Telemetry`] keeps
    /// each backend's path monomorphic — the INT instantiation is
    /// bit-identical to the pre-refactor driver.
    pub fn run_sync<E: Telemetry>(&mut self, labeled: &[(E, TrafficClass)]) -> PipelineReport {
        // (1)→(3): the shared Data Processor stage under virtual time.
        let mut processor = Processor::new(
            self.config.table,
            self.db.clone(),
            VirtualClock {
                processing_delay_ns: self.config.processing_delay_ns,
            },
            self.predictor.feature_set(),
        );
        // (6)→(8): the shared aggregation stage (fresh windows per run).
        let mut aggregator = Aggregator::new(self.db.clone(), self.config.smoothing_window);
        let mut guard = self.config.guard.map(NewFlowGuard::new);
        let mut timeline = Vec::new();
        let mut server_free_ns = 0u64;
        let mut index = 0u64;

        let dim = self.predictor.feature_set().dim();
        let mut pending: Vec<(JudgedUpdate, TrafficClass)> = Vec::with_capacity(PREDICTION_BATCH);
        let mut rows: Vec<f64> = Vec::with_capacity(PREDICTION_BATCH * dim);
        let mut decisions: Vec<bool> = Vec::new();

        for chunk in labeled.chunks(PREDICTION_BATCH) {
            pending.clear();
            rows.clear();

            for (report, class) in chunk {
                // One ingest call decides created-vs-updated, writes the
                // database record, and projects the feature row (§III-3:
                // brand-new flows are never forwarded).
                match processor.ingest(report, &mut rows) {
                    Ingest::Created { key, registered_ns } => {
                        if let Some(g) = guard.as_mut() {
                            g.record_created(key.dst_ip, registered_ns);
                        }
                    }
                    Ingest::Judged(judged) => pending.push((judged, *class)),
                    // The batch pipeline runs without the triage
                    // pre-filter, so nothing is ever dropped here.
                    Ingest::Dropped { .. } => {}
                }
            }

            // (5): standardize + predict — one columnar ensemble call for
            // every update this micro-batch judged, all scored against
            // one model epoch (a published swap lands between batches,
            // never inside one).
            let epoch = self.predictor.predict(&rows, &mut decisions);

            for ((judged, truth), &ensemble) in pending.iter().zip(&decisions) {
                // (4)→(5): CentralServer discovers the update and queues
                // it at the single-server Prediction stage. Service cost
                // includes the record scan proportional to table size.
                let service_ns = self.config.base_service_ns
                    + self.config.scan_cost_per_flow_ns * judged.table_len;
                let start_ns = server_free_ns.max(judged.registered_ns);
                let predicted_ns = start_ns + service_ns;
                server_free_ns = predicted_ns;

                // (6)→(7)→(8): smoothed verdict + stored latency stamp.
                let verdict = aggregator.aggregate(
                    judged.key,
                    ensemble,
                    judged.registered_ns,
                    predicted_ns,
                    epoch,
                );
                timeline.push(TimelinePoint {
                    index,
                    key: judged.key,
                    truth: *truth,
                    verdict,
                    registered_ns: judged.registered_ns,
                    predicted_ns,
                });
                index += 1;
            }
        }

        PipelineReport {
            timeline,
            total_reports: labeled.len() as u64,
            total_flows: processor.flow_count() as u64,
            flood_alerts: guard.map(NewFlowGuard::finish).unwrap_or_default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{dataset_from_events, train_bundle, TrainerConfig};
    use crate::verdict::SmoothingWindow;
    use amlight_features::{FlowTable, UpdateKind};
    use amlight_int::{HopMetadata, InstructionSet, TelemetryReport};
    use amlight_ml::MlpConfig;
    use amlight_net::flow::FnvHashMap;
    use amlight_net::{FlowKey, Protocol};
    use std::net::Ipv4Addr;

    fn report(port: u16, t_ns: u64, len: u16, qocc: u32) -> TelemetryReport {
        TelemetryReport {
            flow: FlowKey::new(
                Ipv4Addr::new(8, 8, 8, 8),
                Ipv4Addr::new(10, 0, 0, 2),
                port,
                80,
                Protocol::Tcp,
            ),
            ip_len: len,
            tcp_flags: Some(0x02),
            instructions: InstructionSet::amlight(),
            hops: vec![HopMetadata {
                switch_id: 0,
                ingress_tstamp: t_ns as u32,
                egress_tstamp: (t_ns as u32).wrapping_add(500),
                hop_latency: 0,
                queue_occupancy: qocc,
            }]
            .into(),
            export_ns: t_ns,
        }
    }

    /// Benign: 10 flows, 1 ms cadence, large packets. Attack: 4 flows,
    /// 2 µs cadence, tiny packets, queue pressure.
    fn capture(n: usize) -> Vec<(TelemetryReport, TrafficClass)> {
        let mut v = Vec::new();
        for i in 0..n as u64 {
            v.push((
                report(1000 + (i % 10) as u16, i * 1_000_000, 900, 0),
                TrafficClass::Benign,
            ));
            v.push((
                report(2000 + (i % 4) as u16, i * 2_000, 40, 25),
                TrafficClass::SynFlood,
            ));
        }
        v.sort_by_key(|(r, _)| r.export_ns);
        v
    }

    fn bundle(train: &[(TelemetryReport, TrafficClass)]) -> ModelBundle {
        let raw = dataset_from_events(train, FeatureSet::full());
        train_bundle(
            &raw,
            FeatureSet::full(),
            &TrainerConfig {
                mlp: MlpConfig {
                    epochs: 10,
                    ..MlpConfig::paper_mlp()
                },
                ..Default::default()
            },
        )
    }

    #[test]
    fn pipeline_detects_trained_contrast() {
        let train = capture(300);
        let b = bundle(&train);
        let mut pipe = DetectionPipeline::new(b, PipelineConfig::rust_pace());
        let test = capture(150);
        let rep = pipe.run_sync(&test);
        assert!(
            rep.overall_accuracy() > 0.9,
            "accuracy {}",
            rep.overall_accuracy()
        );
        let flood = rep.class_summary(TrafficClass::SynFlood);
        assert!(
            flood.accuracy() > 0.9,
            "flood accuracy {}",
            flood.accuracy()
        );
        assert!(flood.predicted > 0);
    }

    #[test]
    fn first_packet_of_each_flow_is_never_predicted() {
        let train = capture(200);
        let b = bundle(&train);
        let mut pipe = DetectionPipeline::new(b, PipelineConfig::rust_pace());
        let test = capture(50);
        let rep = pipe.run_sync(&test);
        // 14 distinct flows (10 benign + 4 attack) never produce a
        // prediction for their first packet.
        assert_eq!(rep.total_reports as usize, test.len());
        assert_eq!(rep.timeline.len(), test.len() - 14);
        assert_eq!(pipe.database().created_count(), 14);
    }

    #[test]
    fn smoothing_keeps_early_predictions_pending() {
        let train = capture(200);
        let b = bundle(&train);
        let mut pipe = DetectionPipeline::new(b, PipelineConfig::rust_pace());
        let test = capture(50);
        let rep = pipe.run_sync(&test);
        // Per flow, updates 1 and 2 are Pending (window 3 unfilled).
        let benign = rep.class_summary(TrafficClass::Benign);
        assert_eq!(benign.pending, 10 * 2);
    }

    #[test]
    fn latency_grows_with_backlog() {
        let train = capture(200);
        let b = bundle(&train);
        // Pathological pace: service far slower than arrivals.
        let cfg = PipelineConfig {
            base_service_ns: 10_000_000, // 10 ms per prediction
            scan_cost_per_flow_ns: 0,
            ..PipelineConfig::rust_pace()
        };
        let mut pipe = DetectionPipeline::new(b, cfg);
        let test = capture(100);
        let rep = pipe.run_sync(&test);
        let flood = rep.class_summary(TrafficClass::SynFlood);
        // Arrivals every ~2 µs, service 10 ms → deep backlog: the last
        // prediction waits ~ (n-1) * 10 ms.
        assert!(flood.max_latency_s > 0.5, "max {}", flood.max_latency_s);
        assert!(flood.max_latency_s > flood.avg_latency_s * 1.5);
    }

    #[test]
    fn scan_cost_penalizes_many_flows() {
        let train = capture(200);
        let b = bundle(&train);
        let cfg = PipelineConfig {
            base_service_ns: 1_000,
            scan_cost_per_flow_ns: 1_000_000, // 1 ms per live record
            ..PipelineConfig::rust_pace()
        };
        // Many-flow run vs few-flow run with the same packet count.
        let mut many: Vec<(TelemetryReport, TrafficClass)> = Vec::new();
        for i in 0..200u64 {
            many.push((
                report(3000 + (i % 100) as u16, i * 10_000, 500, 0),
                TrafficClass::Benign,
            ));
        }
        let mut few: Vec<(TelemetryReport, TrafficClass)> = Vec::new();
        for i in 0..200u64 {
            few.push((
                report(4000 + (i % 2) as u16, i * 10_000, 500, 0),
                TrafficClass::Benign,
            ));
        }
        let rep_many = DetectionPipeline::new(b.clone(), cfg).run_sync(&many);
        let rep_few = DetectionPipeline::new(b, cfg).run_sync(&few);
        let l_many = rep_many.class_summary(TrafficClass::Benign).avg_latency_s;
        let l_few = rep_few.class_summary(TrafficClass::Benign).avg_latency_s;
        assert!(
            l_many > l_few * 3.0,
            "many-flow latency {l_many} vs few-flow {l_few}"
        );
    }

    #[test]
    fn report_summaries_are_consistent() {
        let train = capture(200);
        let b = bundle(&train);
        let mut pipe = DetectionPipeline::new(b, PipelineConfig::rust_pace());
        let rep = pipe.run_sync(&capture(60));
        for class in rep.classes() {
            let s = rep.class_summary(class);
            assert!(s.max_latency_s >= s.avg_latency_s);
            assert!(s.max_latency_s >= s.p99_latency_s);
            assert_eq!(
                s.predicted + s.pending,
                rep.timeline.iter().filter(|p| p.truth == class).count() as u64
            );
        }
    }

    #[test]
    fn microbatching_matches_per_row_oracle() {
        let train = capture(200);
        let b = bundle(&train);
        let cfg = PipelineConfig::rust_pace();
        // 1400 reports: the run crosses the 1024-report flush boundary.
        let test = capture(700);
        let rep = DetectionPipeline::new(b.clone(), cfg).run_sync(&test);

        // Independent oracle: the pre-batching one-row-at-a-time replay.
        let mut table = FlowTable::new(cfg.table);
        let mut windows: FnvHashMap<FlowKey, SmoothingWindow> = FnvHashMap::default();
        let mut server_free = 0u64;
        let mut oracle = Vec::new();
        let mut buf = Vec::new();
        for (report, _) in &test {
            let registered = report.export_ns + cfg.processing_delay_ns;
            let (kind, rec) = table.apply(&report.flow_update());
            let features = rec.features();
            if kind == UpdateKind::Created {
                continue;
            }
            let service = cfg.base_service_ns + cfg.scan_cost_per_flow_ns * table.len() as u64;
            let predicted = server_free.max(registered) + service;
            server_free = predicted;
            buf.clear();
            features.project_into(b.feature_set, &mut buf);
            let verdict = windows
                .entry(report.flow)
                .or_insert_with(|| SmoothingWindow::new(cfg.smoothing_window))
                .push(b.ensemble_vote(&buf));
            oracle.push((report.flow, verdict, registered, predicted));
        }

        assert_eq!(rep.timeline.len(), oracle.len());
        for (t, (key, verdict, reg, pred)) in rep.timeline.iter().zip(&oracle) {
            assert_eq!(t.key, *key);
            assert_eq!(t.verdict, *verdict);
            assert_eq!(t.registered_ns, *reg);
            assert_eq!(t.predicted_ns, *pred, "latency model must be unchanged");
        }
    }

    #[test]
    fn database_mirrors_timeline() {
        let train = capture(200);
        let b = bundle(&train);
        let mut pipe = DetectionPipeline::new(b, PipelineConfig::rust_pace());
        let rep = pipe.run_sync(&capture(40));
        let preds = pipe.database().predictions();
        assert_eq!(preds.len(), rep.timeline.len());
        for (p, t) in preds.iter().zip(&rep.timeline) {
            assert_eq!(p.predicted_ns, t.predicted_ns);
            assert_eq!(p.latency_ns, t.predicted_ns - t.registered_ns);
        }
    }
}
