//! Streaming event sources for the threaded runtime.
//!
//! The paper's INT Data Collection module is an always-on reader of the
//! collector port; a production detector therefore cannot demand a fully
//! materialized event vector up front. [`EventSource`] is the pull
//! interface the runtime's collection stage drains instead — generic
//! over the telemetry backend, because every source yields
//! [`LabeledEvent`]s (an INT report *or* an sFlow sample, with optional
//! ground truth riding along for evaluation runs):
//!
//! * [`IterSource`] — any in-memory iterator (the old `Vec` replay path
//!   is `IterSource::from(vec)`);
//! * [`ChannelSource`] — a bounded crossbeam channel fed by external
//!   producers; the stream ends when every sender is dropped;
//! * [`ReplaySource`] — an INT capture replayed in export-time order,
//!   labels preserved, the shape the experiment binaries feed the
//!   runtime;
//! * [`CollectorSource`] — an [`amlight_int::IntCollector`] adapter that
//!   decodes a raw sink byte stream chunk by chunk, tolerating split and
//!   malformed reports exactly like the standalone collector;
//! * [`SflowReplaySource`] — the sFlow twin of [`ReplaySource`]: labeled
//!   samples replayed in observation order;
//! * [`PintReplaySource`] — the PINT twin: labeled k-bit digests
//!   replayed in export order (derive them from an INT capture with
//!   [`crate::event::pint_view`]);
//! * [`EventReplaySource`] — the backend-agnostic form registry-driven
//!   callers use: any `Vec<LabeledEvent>` replayed in timestamp order;
//! * [`SflowAgentSource`] — an [`SflowAgent`] driven over a packet
//!   trace, emitting only the packets the sampling state machine
//!   selects (the live-agent shape of the paper's sFlow baseline).
//!
//! Sources are *polled*, not blocked on: [`SourcePoll::Idle`] lets the
//! collection stage stay responsive to `stop()` while a live source has
//! nothing to hand over yet.

use crate::event::{LabeledEvent, Telemetry};
use crate::mailbox::EventMailbox;
use amlight_int::{IntCollector, TelemetryReport};
use amlight_net::{PacketRecord, Trace, TrafficClass};
use amlight_pint::PintReport;
use amlight_sflow::{FlowSample, SflowAgent};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// One poll of an [`EventSource`].
///
/// The event payload is boxed: a [`LabeledEvent`] is large (the INT
/// hop stack is inline, not heap-spilled), and `SourcePoll` now crosses
/// listener-thread channel boundaries where an oversized enum variant
/// is copied at every move. One pointer beats ~200 bytes of memcpy per
/// hop through the runtime; sources that already own their events pay
/// one small allocation at the poll boundary, which
/// `BENCH_ingest.json`'s listener-loop gate deliberately excludes (the
/// zero-alloc invariant guards the *listener* hot loop — decode, flow
/// table, mailbox — not the poll wrapper).
#[derive(Debug, Clone, PartialEq)]
pub enum SourcePoll {
    /// An event is ready.
    Event(Box<LabeledEvent>),
    /// Nothing right now, but the stream is still open — poll again.
    Idle,
    /// The stream has ended; no further events will ever arrive.
    End,
}

/// A pull-based stream of telemetry events from either backend.
///
/// `Send + 'static` because the runtime's collection stage owns the
/// source on its own thread.
pub trait EventSource: Send {
    /// Fetch the next event, or report idleness / end of stream. May
    /// block briefly (sub-millisecond) but must not block indefinitely:
    /// the collection stage checks its stop flag between polls.
    fn poll_event(&mut self) -> SourcePoll;
}

/// An in-memory iterator source. Never idles: it either yields or ends.
#[derive(Debug)]
pub struct IterSource<I> {
    iter: I,
}

impl<I> IterSource<I>
where
    I: Iterator<Item = LabeledEvent> + Send,
{
    pub fn new(iter: I) -> Self {
        Self { iter }
    }
}

/// The pre-streaming `Vec` replay paths, one per backend.
impl From<Vec<TelemetryReport>> for IterSource<std::vec::IntoIter<LabeledEvent>> {
    fn from(reports: Vec<TelemetryReport>) -> Self {
        let events: Vec<LabeledEvent> = reports.into_iter().map(LabeledEvent::from).collect();
        Self::new(events.into_iter())
    }
}

impl From<Vec<FlowSample>> for IterSource<std::vec::IntoIter<LabeledEvent>> {
    fn from(samples: Vec<FlowSample>) -> Self {
        let events: Vec<LabeledEvent> = samples.into_iter().map(LabeledEvent::from).collect();
        Self::new(events.into_iter())
    }
}

impl From<Vec<LabeledEvent>> for IterSource<std::vec::IntoIter<LabeledEvent>> {
    fn from(events: Vec<LabeledEvent>) -> Self {
        Self::new(events.into_iter())
    }
}

impl<I> EventSource for IterSource<I>
where
    I: Iterator<Item = LabeledEvent> + Send,
{
    fn poll_event(&mut self) -> SourcePoll {
        match self.iter.next() {
            Some(e) => SourcePoll::Event(Box::new(e)),
            None => SourcePoll::End,
        }
    }
}

/// How long a [`ChannelSource`] poll waits before reporting `Idle`.
const CHANNEL_POLL: Duration = Duration::from_micros(200);

/// A live, channel-fed source: producers hold the [`Sender`] half and
/// the pipeline drains the receiver. Ends when every sender is dropped.
/// Producers send [`LabeledEvent`]s — `report.into()` / `sample.into()`
/// for unlabeled live feeds.
#[derive(Debug)]
pub struct ChannelSource {
    rx: Receiver<LabeledEvent>,
}

impl ChannelSource {
    /// A bounded feed; hand the sender to the producer (collector socket
    /// loop, traffic generator, test harness, …).
    pub fn bounded(capacity: usize) -> (Sender<LabeledEvent>, Self) {
        let (tx, rx) = bounded(capacity.max(1));
        (tx, Self { rx })
    }

    /// Wrap an existing receiver.
    pub fn from_receiver(rx: Receiver<LabeledEvent>) -> Self {
        Self { rx }
    }
}

impl EventSource for ChannelSource {
    fn poll_event(&mut self) -> SourcePoll {
        // Fast path: drain whatever is already queued — and, crucially,
        // notice a disconnect *immediately*. Only an empty-but-open
        // channel pays the bounded recv_timeout wait; a source whose
        // senders are all gone reports `End` on this very poll instead
        // of spinning timeout-by-timeout.
        match self.rx.try_recv() {
            Ok(e) => return SourcePoll::Event(Box::new(e)),
            Err(TryRecvError::Disconnected) => return SourcePoll::End,
            Err(TryRecvError::Empty) => {}
        }
        match self.rx.recv_timeout(CHANNEL_POLL) {
            Ok(e) => SourcePoll::Event(Box::new(e)),
            Err(RecvTimeoutError::Timeout) => SourcePoll::Idle,
            Err(RecvTimeoutError::Disconnected) => SourcePoll::End,
        }
    }
}

/// Restore a batch of labeled events to native-timestamp order and
/// stream them once — shared by both backends' replay sources.
fn replay_order(mut events: Vec<LabeledEvent>) -> std::vec::IntoIter<LabeledEvent> {
    events.sort_by_key(|e| e.event.event_ns());
    events.into_iter()
}

/// An INT capture replay: reports are re-sorted into export-time order
/// (the order the collector would have emitted them) and streamed once.
/// Labels survive the trip — [`ReplaySource::from_labeled`] threads the
/// capture's ground truth into every event, so a streaming run can
/// report recall directly.
#[derive(Debug)]
pub struct ReplaySource {
    events: std::vec::IntoIter<LabeledEvent>,
}

impl ReplaySource {
    pub fn new(reports: Vec<TelemetryReport>) -> Self {
        Self {
            events: replay_order(reports.into_iter().map(LabeledEvent::from).collect()),
        }
    }

    /// Replay a labeled capture (the experiment binaries' and CLI's
    /// on-disk format) with the ground truth riding along.
    pub fn from_labeled(labeled: &[(TelemetryReport, TrafficClass)]) -> Self {
        Self {
            events: replay_order(
                labeled
                    .iter()
                    .map(|(r, c)| LabeledEvent::with_truth(r.clone().into(), *c))
                    .collect(),
            ),
        }
    }
}

impl EventSource for ReplaySource {
    fn poll_event(&mut self) -> SourcePoll {
        match self.events.next() {
            Some(e) => SourcePoll::Event(Box::new(e)),
            None => SourcePoll::End,
        }
    }
}

/// The sFlow twin of [`ReplaySource`]: samples replayed in observation
/// order, labels preserved.
#[derive(Debug)]
pub struct SflowReplaySource {
    events: std::vec::IntoIter<LabeledEvent>,
}

impl SflowReplaySource {
    pub fn new(samples: Vec<FlowSample>) -> Self {
        Self {
            events: replay_order(samples.into_iter().map(LabeledEvent::from).collect()),
        }
    }

    /// Replay labeled samples (e.g. from [`SflowAgent::sample_stream`]
    /// or [`crate::event::sample_reports`]) with ground truth attached.
    pub fn from_labeled(labeled: &[(FlowSample, TrafficClass)]) -> Self {
        Self {
            events: replay_order(
                labeled
                    .iter()
                    .map(|(s, c)| LabeledEvent::with_truth((*s).into(), *c))
                    .collect(),
            ),
        }
    }
}

impl EventSource for SflowReplaySource {
    fn poll_event(&mut self) -> SourcePoll {
        match self.events.next() {
            Some(e) => SourcePoll::Event(Box::new(e)),
            None => SourcePoll::End,
        }
    }
}

/// The PINT twin of [`ReplaySource`]: k-bit digest reports replayed in
/// export order, labels preserved. Feed it [`crate::event::pint_view`]
/// to derive the digest stream from an existing INT capture — the PINT
/// mirror of how [`crate::event::sample_reports`] derives the sFlow
/// view.
#[derive(Debug)]
pub struct PintReplaySource {
    events: std::vec::IntoIter<LabeledEvent>,
}

impl PintReplaySource {
    pub fn new(reports: Vec<PintReport>) -> Self {
        Self {
            events: replay_order(reports.into_iter().map(LabeledEvent::from).collect()),
        }
    }

    /// Replay labeled digests (e.g. from [`crate::event::pint_view`])
    /// with ground truth attached.
    pub fn from_labeled(labeled: &[(PintReport, TrafficClass)]) -> Self {
        Self {
            events: replay_order(
                labeled
                    .iter()
                    .map(|(r, c)| LabeledEvent::with_truth((*r).into(), *c))
                    .collect(),
            ),
        }
    }
}

impl EventSource for PintReplaySource {
    fn poll_event(&mut self) -> SourcePoll {
        match self.events.next() {
            Some(e) => SourcePoll::Event(Box::new(e)),
            None => SourcePoll::End,
        }
    }
}

/// Backend-agnostic replay: any mix of already-labeled events, restored
/// to native-timestamp order. This is what registry-driven callers use
/// ([`crate::event::TelemetryBackend::derive_view`] hands back
/// `Vec<LabeledEvent>` for *any* backend) — no per-backend source type
/// needed at the call site.
#[derive(Debug)]
pub struct EventReplaySource {
    events: std::vec::IntoIter<LabeledEvent>,
}

impl EventReplaySource {
    pub fn new(events: Vec<LabeledEvent>) -> Self {
        Self {
            events: replay_order(events),
        }
    }
}

impl EventSource for EventReplaySource {
    fn poll_event(&mut self) -> SourcePoll {
        match self.events.next() {
            Some(e) => SourcePoll::Event(Box::new(e)),
            None => SourcePoll::End,
        }
    }
}

/// Packets an [`SflowAgentSource`] offers its agent per poll before
/// yielding `Idle`: under 1-in-4,096 sampling most polls select nothing,
/// and the collection stage must still get its stop-flag check in.
const AGENT_BURST: usize = 4096;

/// An [`SflowAgent`] driven over a packet trace: the source *is* the
/// sampling switch. Every packet is offered to the agent's state
/// machine; only the selected ones become events, each labeled with the
/// trace's ground-truth class. This is the live-agent shape of the
/// paper's sFlow baseline — the detector downstream sees 1-in-N of the
/// traffic, which is exactly why SlowLoris vanishes (Fig. 5).
pub struct SflowAgentSource {
    agent: SflowAgent,
    packets: std::vec::IntoIter<PacketRecord>,
}

impl SflowAgentSource {
    /// Sample `trace` through `agent` (time order restored if needed).
    pub fn new(agent: SflowAgent, trace: &Trace) -> Self {
        let mut records: Vec<PacketRecord> = trace.records().to_vec();
        if !trace.is_sorted() {
            records.sort_by_key(|r| r.ts_ns);
        }
        Self {
            agent,
            packets: records.into_iter(),
        }
    }

    /// Sampling statistics so far (packets observed vs selected).
    pub fn agent(&self) -> &SflowAgent {
        &self.agent
    }
}

impl EventSource for SflowAgentSource {
    fn poll_event(&mut self) -> SourcePoll {
        for _ in 0..AGENT_BURST {
            let Some(rec) = self.packets.next() else {
                return SourcePoll::End;
            };
            if let Some(sample) = self.agent.observe(rec.ts_ns, &rec.packet) {
                return SourcePoll::Event(Box::new(LabeledEvent::with_truth(
                    sample.into(),
                    rec.class,
                )));
            }
        }
        SourcePoll::Idle
    }
}

/// The INT collector adapter: pulls raw byte chunks from the sink and
/// streams every report the [`IntCollector`] decodes out of them.
///
/// A chunk that completes no report (split delivery, garbage awaiting
/// resync) yields [`SourcePoll::Idle`], not `End` — exactly the
/// collector's own "more bytes coming" semantics.
pub struct CollectorSource<B> {
    chunks: B,
    collector: IntCollector,
    decoded: VecDeque<TelemetryReport>,
    scratch: Vec<TelemetryReport>,
}

impl<B> CollectorSource<B>
where
    B: Iterator<Item = Vec<u8>> + Send,
{
    pub fn new(chunks: B) -> Self {
        Self {
            chunks,
            collector: IntCollector::new(),
            decoded: VecDeque::new(),
            scratch: Vec::new(),
        }
    }

    /// Decoder statistics (resyncs, malformed reports, bytes consumed).
    pub fn stats(&self) -> amlight_int::CollectorStats {
        self.collector.stats()
    }
}

impl<B> EventSource for CollectorSource<B>
where
    B: Iterator<Item = Vec<u8>> + Send,
{
    fn poll_event(&mut self) -> SourcePoll {
        if let Some(r) = self.decoded.pop_front() {
            return SourcePoll::Event(Box::new(r.into()));
        }
        match self.chunks.next() {
            Some(chunk) => {
                self.scratch.clear();
                self.collector.ingest_into(&chunk, &mut self.scratch);
                self.decoded.extend(self.scratch.drain(..));
                match self.decoded.pop_front() {
                    Some(r) => SourcePoll::Event(Box::new(r.into())),
                    None => SourcePoll::Idle, // partial report buffered
                }
            }
            None => SourcePoll::End,
        }
    }
}

/// How long a [`SocketSource`] poll sleeps before reporting `Idle` when
/// every mailbox is momentarily empty — long enough to stay off the
/// listener threads' mutexes, short enough that a fresh batch is picked
/// up promptly.
const SOCKET_IDLE_WAIT: Duration = Duration::from_micros(100);

/// The listener-group fan-in: one [`EventSource`] over the per-listener
/// [`EventMailbox`]es of a network ingest server
/// (`amlight_ingest::IngestServer`).
///
/// Each listener thread owns exactly one mailbox (no producer-side
/// contention) and publishes event *batches*; this source drains the
/// mailboxes round-robin, hands events to the collection stage one at
/// a time, and recycles every drained batch shell back to the mailbox
/// it came from so the listener's steady state allocates nothing.
///
/// The stream ends when every mailbox is closed *and* empty — i.e. all
/// listener threads exited and everything they published was consumed.
pub struct SocketSource {
    mailboxes: Vec<Arc<EventMailbox>>,
    /// The batch currently being drained, reversed so `pop()` yields
    /// events in published order without shifting.
    current: Vec<LabeledEvent>,
    /// Which mailbox `current` came from (its recycling address).
    owner: usize,
    /// Round-robin scan cursor.
    next: usize,
    /// Events handed to the pipeline so far.
    consumed: u64,
}

impl SocketSource {
    /// Fan in `mailboxes` (one per listener thread).
    pub fn new(mailboxes: Vec<Arc<EventMailbox>>) -> Self {
        Self {
            mailboxes,
            current: Vec::new(),
            owner: 0,
            next: 0,
            consumed: 0,
        }
    }

    /// Events this source has handed to the pipeline.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Pull the next ready batch into `current`, round-robin across the
    /// mailboxes. Returns false if every mailbox was empty.
    fn refill(&mut self) -> bool {
        let n = self.mailboxes.len();
        for i in 0..n {
            let idx = (self.next + i) % n;
            let Some(mailbox) = self.mailboxes.get(idx) else {
                continue;
            };
            if let Some(mut batch) = mailbox.pop() {
                // Reverse once so per-event pop() is O(1) *and* events
                // come out in the order the listener pushed them.
                batch.reverse();
                self.current = batch;
                self.owner = idx;
                self.next = (idx + 1) % n;
                return true;
            }
        }
        false
    }
}

impl EventSource for SocketSource {
    fn poll_event(&mut self) -> SourcePoll {
        loop {
            if let Some(event) = self.current.pop() {
                self.consumed += 1;
                return SourcePoll::Event(Box::new(event));
            }
            // Drained: send the shell home before looking for more.
            if self.current.capacity() > 0 {
                let shell = std::mem::take(&mut self.current);
                if let Some(owner) = self.mailboxes.get(self.owner) {
                    owner.recycle(shell);
                }
            }
            if self.refill() {
                continue;
            }
            if self.mailboxes.iter().all(|m| m.is_finished()) {
                return SourcePoll::End;
            }
            // Every mailbox empty but at least one producer is still
            // alive: nap briefly so this poll loop doesn't hammer the
            // mailbox mutexes, then let the collection stage get its
            // stop-flag check in.
            std::thread::sleep(SOCKET_IDLE_WAIT);
            return SourcePoll::Idle;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TelemetryEvent;
    use crate::mailbox::OverflowPolicy;
    use amlight_int::{HopMetadata, InstructionSet};
    use amlight_net::{FlowKey, PacketBuilder, Protocol};
    use amlight_sflow::SamplingMode;
    use std::net::Ipv4Addr;

    fn report(tag: u32) -> TelemetryReport {
        TelemetryReport {
            flow: FlowKey::new(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 0, 2),
                (2000 + tag) as u16,
                80,
                Protocol::Tcp,
            ),
            ip_len: 60,
            tcp_flags: Some(0x02),
            instructions: InstructionSet::amlight(),
            hops: vec![HopMetadata {
                switch_id: tag,
                ..Default::default()
            }]
            .into(),
            export_ns: u64::from(tag) * 500,
        }
    }

    fn sample(tag: u32) -> FlowSample {
        FlowSample {
            flow: FlowKey::new(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 0, 2),
                (3000 + tag) as u16,
                80,
                Protocol::Tcp,
            ),
            ip_len: 60,
            tcp_flags: Some(0x02),
            observed_ns: u64::from(tag) * 700,
            sampling_period: 64,
        }
    }

    fn drain(source: &mut impl EventSource) -> Vec<LabeledEvent> {
        let mut out = Vec::new();
        loop {
            match source.poll_event() {
                SourcePoll::Event(e) => out.push(*e),
                SourcePoll::Idle => continue,
                SourcePoll::End => return out,
            }
        }
    }

    fn int_events(events: &[LabeledEvent]) -> Vec<TelemetryReport> {
        events
            .iter()
            .map(|e| match &e.event {
                TelemetryEvent::Int(r) => r.clone(),
                other => panic!("expected INT event, got {other:?}"),
            })
            .collect()
    }

    #[test]
    fn iter_source_yields_then_ends() {
        let reports: Vec<_> = (0..5).map(report).collect();
        let mut src = IterSource::from(reports.clone());
        assert_eq!(int_events(&drain(&mut src)), reports);
        assert_eq!(src.poll_event(), SourcePoll::End, "End is sticky");
    }

    #[test]
    fn iter_source_takes_sflow_samples_too() {
        let samples: Vec<_> = (0..3).map(sample).collect();
        let mut src = IterSource::from(samples.clone());
        let got = drain(&mut src);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].event, TelemetryEvent::Sflow(samples[0]));
        assert_eq!(got[0].truth, None);
    }

    #[test]
    fn channel_source_idles_then_ends() {
        let (tx, mut src) = ChannelSource::bounded(4);
        assert_eq!(src.poll_event(), SourcePoll::Idle);
        tx.send(report(1).into()).unwrap();
        assert_eq!(
            src.poll_event(),
            SourcePoll::Event(Box::new(report(1).into()))
        );
        drop(tx);
        assert_eq!(src.poll_event(), SourcePoll::End);
    }

    #[test]
    fn replay_source_orders_by_export_time() {
        let mut shuffled = vec![report(3), report(1), report(2)];
        shuffled.swap(0, 2);
        let mut src = ReplaySource::new(shuffled);
        let got = int_events(&drain(&mut src));
        assert_eq!(got, vec![report(1), report(2), report(3)]);
    }

    #[test]
    fn replay_source_threads_labels() {
        let labeled = vec![
            (report(2), TrafficClass::SynFlood),
            (report(1), TrafficClass::Benign),
        ];
        let mut src = ReplaySource::from_labeled(&labeled);
        let got = drain(&mut src);
        assert_eq!(got.len(), 2);
        // Re-sorted by export time, each event still wearing its label.
        assert_eq!(got[0].event, TelemetryEvent::Int(report(1)));
        assert_eq!(got[0].truth, Some(TrafficClass::Benign));
        assert_eq!(got[1].truth, Some(TrafficClass::SynFlood));
    }

    #[test]
    fn sflow_replay_source_orders_and_labels() {
        let labeled = vec![
            (sample(5), TrafficClass::SlowLoris),
            (sample(1), TrafficClass::Benign),
            (sample(3), TrafficClass::SlowLoris),
        ];
        let mut src = SflowReplaySource::from_labeled(&labeled);
        let got = drain(&mut src);
        let times: Vec<u64> = got.iter().map(|e| e.event.event_ns()).collect();
        assert_eq!(times, vec![700, 2100, 3500]);
        assert_eq!(got[0].truth, Some(TrafficClass::Benign));
        assert_eq!(got[2].truth, Some(TrafficClass::SlowLoris));
    }

    #[test]
    fn sflow_agent_source_samples_a_trace() {
        // 1-in-4 deterministic sampling over a 40-packet trace.
        let pkt = PacketBuilder::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
            .tcp_syn(4242, 80, 1);
        let trace: Trace = (0..40u64)
            .map(|i| PacketRecord {
                ts_ns: i * 100,
                packet: pkt,
                class: TrafficClass::SynFlood,
            })
            .collect();
        let agent = SflowAgent::new(
            SamplingMode::Deterministic {
                period: 4,
                phase: 0,
            },
            0,
        );
        let mut src = SflowAgentSource::new(agent, &trace);
        let got = drain(&mut src);
        assert_eq!(got.len(), 10);
        assert_eq!(src.agent().observed(), 40);
        assert_eq!(src.agent().sampled(), 10);
        for e in &got {
            assert_eq!(e.truth, Some(TrafficClass::SynFlood));
            assert!(matches!(e.event, TelemetryEvent::Sflow(_)));
        }
    }

    #[test]
    fn sflow_agent_source_idles_on_long_unsampled_stretches() {
        // Period large enough that the first AGENT_BURST packets can all
        // be skipped → Idle, then the stream still ends cleanly.
        let pkt = PacketBuilder::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
            .tcp_syn(4242, 80, 1);
        let trace: Trace = (0..AGENT_BURST as u64 + 10)
            .map(|i| PacketRecord {
                ts_ns: i,
                packet: pkt,
                class: TrafficClass::Benign,
            })
            .collect();
        let agent = SflowAgent::new(
            SamplingMode::Deterministic {
                period: u32::MAX,
                phase: 1_000_000,
            },
            0,
        );
        let mut src = SflowAgentSource::new(agent, &trace);
        assert_eq!(src.poll_event(), SourcePoll::Idle);
        assert_eq!(src.poll_event(), SourcePoll::End);
    }

    #[test]
    fn collector_source_decodes_split_chunks() {
        let reports: Vec<_> = (0..6).map(report).collect();
        let stream = IntCollector::encode_stream(&reports);
        let chunks: Vec<Vec<u8>> = stream.chunks(7).map(<[u8]>::to_vec).collect();
        let mut src = CollectorSource::new(chunks.into_iter());
        assert_eq!(int_events(&drain(&mut src)), reports);
        assert_eq!(src.stats().reports_decoded, 6);
    }

    #[test]
    fn collector_source_survives_garbage() {
        let good = report(9);
        let mut bytes = vec![0xde, 0xad, 0xbe, 0xef];
        bytes.extend_from_slice(&IntCollector::encode_stream(std::slice::from_ref(&good)));
        let mut src = CollectorSource::new(vec![bytes].into_iter());
        assert_eq!(int_events(&drain(&mut src)), vec![good]);
        assert!(src.stats().resyncs >= 1);
    }

    #[test]
    fn channel_source_ends_immediately_on_disconnect() {
        let (tx, mut src) = ChannelSource::bounded(8);
        // Buffered events survive the disconnect and drain first…
        tx.send(report(1).into()).unwrap();
        tx.send(report(2).into()).unwrap();
        drop(tx);
        assert_eq!(
            src.poll_event(),
            SourcePoll::Event(Box::new(report(1).into()))
        );
        assert_eq!(
            src.poll_event(),
            SourcePoll::Event(Box::new(report(2).into()))
        );
        // …then the very next poll is End, via the non-blocking
        // disconnect check — not an Idle after a timeout wait.
        let t0 = std::time::Instant::now();
        assert_eq!(src.poll_event(), SourcePoll::End);
        assert!(
            t0.elapsed() < CHANNEL_POLL * 50,
            "disconnect must not wait out recv_timeout"
        );
        // End is sticky.
        assert_eq!(src.poll_event(), SourcePoll::End);
    }

    #[test]
    fn socket_source_fans_in_round_robin_and_recycles() {
        let mb_a = Arc::new(EventMailbox::new(4, OverflowPolicy::DropOldest));
        let mb_b = Arc::new(EventMailbox::new(4, OverflowPolicy::DropOldest));
        mb_a.publish((0..3).map(|i| LabeledEvent::from(report(i))).collect());
        mb_b.publish((10..12).map(|i| LabeledEvent::from(report(i))).collect());
        let mut src = SocketSource::new(vec![Arc::clone(&mb_a), Arc::clone(&mb_b)]);

        // Batch A first (round-robin starts at 0), in published order.
        let mut tags = Vec::new();
        for _ in 0..5 {
            match src.poll_event() {
                SourcePoll::Event(e) => match &e.event {
                    TelemetryEvent::Int(r) => tags.push(r.hops[0].switch_id),
                    other => panic!("unexpected event {other:?}"),
                },
                other => panic!("expected event, got {other:?}"),
            }
        }
        assert_eq!(tags, vec![0, 1, 2, 10, 11]);
        assert_eq!(src.consumed(), 5);

        // Open mailboxes, nothing pending: Idle, not End.
        assert_eq!(src.poll_event(), SourcePoll::Idle);
        mb_a.close();
        mb_b.close();
        assert_eq!(src.poll_event(), SourcePoll::End);

        // Drained shells went home: the next acquire reuses them.
        let recycled = mb_a.acquire();
        assert!(recycled.capacity() >= 3, "shell returned to its mailbox");
    }

    #[test]
    fn socket_source_end_waits_for_pending_batches() {
        let mb = Arc::new(EventMailbox::new(4, OverflowPolicy::DropNewest));
        mb.publish(vec![LabeledEvent::from(report(7))]);
        mb.close(); // producer exits with a batch still queued
        let mut src = SocketSource::new(vec![Arc::clone(&mb)]);
        assert!(matches!(src.poll_event(), SourcePoll::Event(_)));
        assert_eq!(src.poll_event(), SourcePoll::End);
    }
}
