//! Streaming report sources for the threaded runtime.
//!
//! The paper's INT Data Collection module is an always-on reader of the
//! collector port; a production detector therefore cannot demand a fully
//! materialized `Vec<TelemetryReport>` up front. [`ReportSource`] is the
//! pull interface the runtime's collection stage drains instead, with
//! four implementations:
//!
//! * [`IterSource`] — any in-memory iterator (the old `Vec` replay path
//!   is `IterSource::from(vec)`);
//! * [`ChannelSource`] — a bounded crossbeam channel fed by external
//!   producers; the stream ends when every sender is dropped;
//! * [`ReplaySource`] — a capture replayed in export-time order, the
//!   shape the experiment binaries feed the virtual-time driver;
//! * [`CollectorSource`] — an [`amlight_int::IntCollector`] adapter that
//!   decodes a raw sink byte stream chunk by chunk, tolerating split and
//!   malformed reports exactly like the standalone collector.
//!
//! Sources are *polled*, not blocked on: [`SourcePoll::Idle`] lets the
//! collection stage stay responsive to `stop()` while a live source has
//! nothing to hand over yet.

use amlight_int::{IntCollector, TelemetryReport};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use std::collections::VecDeque;
use std::time::Duration;

/// One poll of a [`ReportSource`].
#[derive(Debug, Clone, PartialEq)]
pub enum SourcePoll {
    /// A report is ready.
    Report(TelemetryReport),
    /// Nothing right now, but the stream is still open — poll again.
    Idle,
    /// The stream has ended; no further reports will ever arrive.
    End,
}

/// A pull-based stream of telemetry reports.
///
/// `Send + 'static` because the runtime's collection stage owns the
/// source on its own thread.
pub trait ReportSource: Send {
    /// Fetch the next report, or report idleness / end of stream. May
    /// block briefly (sub-millisecond) but must not block indefinitely:
    /// the collection stage checks its stop flag between polls.
    fn poll_report(&mut self) -> SourcePoll;
}

/// An in-memory iterator source. Never idles: it either yields or ends.
#[derive(Debug)]
pub struct IterSource<I> {
    iter: I,
}

impl<I> IterSource<I>
where
    I: Iterator<Item = TelemetryReport> + Send,
{
    pub fn new(iter: I) -> Self {
        Self { iter }
    }
}

impl From<Vec<TelemetryReport>> for IterSource<std::vec::IntoIter<TelemetryReport>> {
    fn from(reports: Vec<TelemetryReport>) -> Self {
        Self::new(reports.into_iter())
    }
}

impl<I> ReportSource for IterSource<I>
where
    I: Iterator<Item = TelemetryReport> + Send,
{
    fn poll_report(&mut self) -> SourcePoll {
        match self.iter.next() {
            Some(r) => SourcePoll::Report(r),
            None => SourcePoll::End,
        }
    }
}

/// How long a [`ChannelSource`] poll waits before reporting `Idle`.
const CHANNEL_POLL: Duration = Duration::from_micros(200);

/// A live, channel-fed source: producers hold the [`Sender`] half and
/// the pipeline drains the receiver. Ends when every sender is dropped.
#[derive(Debug)]
pub struct ChannelSource {
    rx: Receiver<TelemetryReport>,
}

impl ChannelSource {
    /// A bounded feed; hand the sender to the producer (collector socket
    /// loop, traffic generator, test harness, …).
    pub fn bounded(capacity: usize) -> (Sender<TelemetryReport>, Self) {
        let (tx, rx) = bounded(capacity.max(1));
        (tx, Self { rx })
    }

    /// Wrap an existing receiver.
    pub fn from_receiver(rx: Receiver<TelemetryReport>) -> Self {
        Self { rx }
    }
}

impl ReportSource for ChannelSource {
    fn poll_report(&mut self) -> SourcePoll {
        match self.rx.recv_timeout(CHANNEL_POLL) {
            Ok(r) => SourcePoll::Report(r),
            Err(RecvTimeoutError::Timeout) => SourcePoll::Idle,
            Err(RecvTimeoutError::Disconnected) => SourcePoll::End,
        }
    }
}

/// A capture replay: reports are re-sorted into export-time order (the
/// order the collector would have emitted them) and streamed once.
#[derive(Debug)]
pub struct ReplaySource {
    reports: std::vec::IntoIter<TelemetryReport>,
}

impl ReplaySource {
    pub fn new(mut reports: Vec<TelemetryReport>) -> Self {
        reports.sort_by_key(|r| r.export_ns);
        Self {
            reports: reports.into_iter(),
        }
    }

    /// Strip labels off a labeled capture (the experiment binaries' and
    /// CLI's on-disk format) and replay the reports.
    pub fn from_labeled<L>(labeled: &[(TelemetryReport, L)]) -> Self {
        Self::new(labeled.iter().map(|(r, _)| r.clone()).collect())
    }
}

impl ReportSource for ReplaySource {
    fn poll_report(&mut self) -> SourcePoll {
        match self.reports.next() {
            Some(r) => SourcePoll::Report(r),
            None => SourcePoll::End,
        }
    }
}

/// The INT collector adapter: pulls raw byte chunks from the sink and
/// streams every report the [`IntCollector`] decodes out of them.
///
/// A chunk that completes no report (split delivery, garbage awaiting
/// resync) yields [`SourcePoll::Idle`], not `End` — exactly the
/// collector's own "more bytes coming" semantics.
pub struct CollectorSource<B> {
    chunks: B,
    collector: IntCollector,
    decoded: VecDeque<TelemetryReport>,
    scratch: Vec<TelemetryReport>,
}

impl<B> CollectorSource<B>
where
    B: Iterator<Item = Vec<u8>> + Send,
{
    pub fn new(chunks: B) -> Self {
        Self {
            chunks,
            collector: IntCollector::new(),
            decoded: VecDeque::new(),
            scratch: Vec::new(),
        }
    }

    /// Decoder statistics (resyncs, malformed reports, bytes consumed).
    pub fn stats(&self) -> amlight_int::CollectorStats {
        self.collector.stats()
    }
}

impl<B> ReportSource for CollectorSource<B>
where
    B: Iterator<Item = Vec<u8>> + Send,
{
    fn poll_report(&mut self) -> SourcePoll {
        if let Some(r) = self.decoded.pop_front() {
            return SourcePoll::Report(r);
        }
        match self.chunks.next() {
            Some(chunk) => {
                self.scratch.clear();
                self.collector.ingest_into(&chunk, &mut self.scratch);
                self.decoded.extend(self.scratch.drain(..));
                match self.decoded.pop_front() {
                    Some(r) => SourcePoll::Report(r),
                    None => SourcePoll::Idle, // partial report buffered
                }
            }
            None => SourcePoll::End,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amlight_int::{HopMetadata, InstructionSet};
    use amlight_net::{FlowKey, Protocol};
    use std::net::Ipv4Addr;

    fn report(tag: u32) -> TelemetryReport {
        TelemetryReport {
            flow: FlowKey::new(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 0, 2),
                (2000 + tag) as u16,
                80,
                Protocol::Tcp,
            ),
            ip_len: 60,
            tcp_flags: Some(0x02),
            instructions: InstructionSet::amlight(),
            hops: vec![HopMetadata {
                switch_id: tag,
                ..Default::default()
            }],
            export_ns: u64::from(tag) * 500,
        }
    }

    fn drain(source: &mut impl ReportSource) -> Vec<TelemetryReport> {
        let mut out = Vec::new();
        loop {
            match source.poll_report() {
                SourcePoll::Report(r) => out.push(r),
                SourcePoll::Idle => continue,
                SourcePoll::End => return out,
            }
        }
    }

    #[test]
    fn iter_source_yields_then_ends() {
        let reports: Vec<_> = (0..5).map(report).collect();
        let mut src = IterSource::from(reports.clone());
        assert_eq!(drain(&mut src), reports);
        assert_eq!(src.poll_report(), SourcePoll::End, "End is sticky");
    }

    #[test]
    fn channel_source_idles_then_ends() {
        let (tx, mut src) = ChannelSource::bounded(4);
        assert_eq!(src.poll_report(), SourcePoll::Idle);
        tx.send(report(1)).unwrap();
        assert_eq!(src.poll_report(), SourcePoll::Report(report(1)));
        drop(tx);
        assert_eq!(src.poll_report(), SourcePoll::End);
    }

    #[test]
    fn replay_source_orders_by_export_time() {
        let mut shuffled = vec![report(3), report(1), report(2)];
        shuffled.swap(0, 2);
        let mut src = ReplaySource::new(shuffled);
        let got = drain(&mut src);
        assert_eq!(got, vec![report(1), report(2), report(3)]);
    }

    #[test]
    fn replay_source_strips_labels() {
        let labeled = vec![(report(2), "b"), (report(1), "a")];
        let mut src = ReplaySource::from_labeled(&labeled);
        assert_eq!(drain(&mut src), vec![report(1), report(2)]);
    }

    #[test]
    fn collector_source_decodes_split_chunks() {
        let reports: Vec<_> = (0..6).map(report).collect();
        let stream = IntCollector::encode_stream(&reports);
        let chunks: Vec<Vec<u8>> = stream.chunks(7).map(<[u8]>::to_vec).collect();
        let mut src = CollectorSource::new(chunks.into_iter());
        assert_eq!(drain(&mut src), reports);
        assert_eq!(src.stats().reports_decoded, 6);
    }

    #[test]
    fn collector_source_survives_garbage() {
        let good = report(9);
        let mut bytes = vec![0xde, 0xad, 0xbe, 0xef];
        bytes.extend_from_slice(&IntCollector::encode_stream(std::slice::from_ref(&good)));
        let mut src = CollectorSource::new(vec![bytes].into_iter());
        assert_eq!(drain(&mut src), vec![good]);
        assert!(src.stats().resyncs >= 1);
    }
}
