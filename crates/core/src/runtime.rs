//! The threaded runtime: the four Fig. 2 modules as real OS threads
//! connected by crossbeam channels, sharing the [`FlowDatabase`].
//!
//! This is the live-deployment shape of the mechanism — the same
//! dataflow as [`crate::pipeline::DetectionPipeline`], but with actual
//! concurrency: collection → processor (channel), processor → database
//! (shared store), central server polls the database and feeds the
//! prediction thread, predictions return to the processor for
//! aggregation. Wall-clock prediction latency is measured with
//! `Instant`, not modeled.

use crate::db::{FlowDatabase, PredictionRecord};
use crate::trainer::{ModelBundle, VoteScratch};
use crate::verdict::SmoothingWindow;
use amlight_features::{FlowTable, FlowTableConfig, UpdateKind};
use amlight_int::TelemetryReport;
use amlight_net::flow::FnvHashMap;
use amlight_net::FlowKey;
use crossbeam::channel::bounded;
use parking_lot::Mutex;
use std::thread::JoinHandle;
use std::time::Instant;

/// Most flow updates a single channel message may carry.
const MAX_JOB_BATCH: usize = 256;

/// A batch of prediction jobs flowing CentralServer → Prediction: one
/// channel message (and one columnar ensemble call downstream) for every
/// update the processor had on hand, not one message per flow update.
struct BatchJob {
    /// (flow, registration stamp) per judged update, in input order.
    items: Vec<(FlowKey, Instant)>,
    /// Row-major raw feature rows, parallel to `items`.
    rows: Vec<f64>,
}

/// The scored batch flowing Prediction → aggregation.
struct BatchVoted {
    items: Vec<(FlowKey, Instant)>,
    attacks: Vec<bool>,
}

/// Failure of the threaded runtime: one of the four module threads
/// panicked, so the pipeline's output cannot be trusted. The always-on
/// deployment treats this as "restart the detector", not "crash the
/// collector host" — which is why [`ThreadedPipeline::run`] returns it
/// instead of propagating the panic (amlint rule R1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeError {
    /// Which Fig. 2 module died.
    pub module: &'static str,
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} thread panicked", self.module)
    }
}

impl std::error::Error for RuntimeError {}

/// Summary of a threaded run.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadedRunStats {
    pub reports_in: u64,
    pub flows_created: u64,
    pub predictions: u64,
    pub attack_verdicts: u64,
    pub normal_verdicts: u64,
    pub pending_verdicts: u64,
    pub mean_latency_us: f64,
    pub max_latency_us: f64,
}

/// The live four-module pipeline.
pub struct ThreadedPipeline {
    db: FlowDatabase,
    bundle: ModelBundle,
    smoothing_window: usize,
    channel_capacity: usize,
    /// Cursor into the database's prediction history for
    /// [`ThreadedPipeline::new_predictions`].
    pred_cursor: Mutex<usize>,
}

impl ThreadedPipeline {
    pub fn new(bundle: ModelBundle) -> Self {
        Self {
            db: FlowDatabase::new(),
            bundle,
            smoothing_window: 3,
            channel_capacity: 1024,
            pred_cursor: Mutex::new(0),
        }
    }

    pub fn with_smoothing_window(mut self, window: usize) -> Self {
        self.smoothing_window = window;
        self
    }

    pub fn database(&self) -> &FlowDatabase {
        &self.db
    }

    /// Predictions stored since the previous call — a cursor-based view
    /// via [`FlowDatabase::predictions_since`], so repeated stats polls
    /// never re-clone the whole append-only history.
    pub fn new_predictions(&self) -> Vec<PredictionRecord> {
        let mut cursor = self.pred_cursor.lock();
        let (recs, next) = self.db.predictions_since(*cursor);
        *cursor = next;
        recs
    }

    /// Run the full pipeline over a report stream. Blocks until every
    /// module drains and joins; a panicked module thread surfaces as
    /// [`RuntimeError`] naming it.
    pub fn run(&self, reports: Vec<TelemetryReport>) -> Result<ThreadedRunStats, RuntimeError> {
        let reports_in = reports.len() as u64;
        let (col_tx, col_rx) = bounded::<TelemetryReport>(self.channel_capacity);
        let (job_tx, job_rx) = bounded::<BatchJob>(self.channel_capacity);
        let (vote_tx, vote_rx) = bounded::<BatchVoted>(self.channel_capacity);

        // Module 1: INT Data Collection — feeds the processor.
        let collection: JoinHandle<()> = std::thread::spawn(move || {
            for r in reports {
                if col_tx.send(r).is_err() {
                    break;
                }
            }
        });

        // Module 2a: Data Processor (ingest half) — flow table + DB +
        // CentralServer hand-off. The CentralServer's DB poll is folded
        // into the same thread to keep the dataflow deterministic; it
        // still only forwards *updates*, never creations.
        let db = self.db.clone();
        let feature_set = self.bundle.feature_set;
        let processor: JoinHandle<u64> = std::thread::spawn(move || {
            let mut table = FlowTable::new(FlowTableConfig::default());
            let mut created = 0u64;
            let mut buf = Vec::with_capacity(16);
            let mut batch = BatchJob {
                items: Vec::with_capacity(MAX_JOB_BATCH),
                rows: Vec::new(),
            };
            'ingest: for report in col_rx.iter() {
                let now = Instant::now();
                let (kind, rec) = table.update_int(&report);
                let features = rec.features();
                match kind {
                    UpdateKind::Created => {
                        created += 1;
                        db.record_created(report.flow, features, report.export_ns);
                    }
                    UpdateKind::Updated => {
                        db.record_updated(report.flow, rec.update_seq, features, report.export_ns);
                        buf.clear();
                        features.project_into(feature_set, &mut buf);
                        batch.items.push((report.flow, now));
                        batch.rows.extend_from_slice(&buf);
                        if batch.items.len() >= MAX_JOB_BATCH {
                            let full = std::mem::replace(
                                &mut batch,
                                BatchJob {
                                    items: Vec::with_capacity(MAX_JOB_BATCH),
                                    rows: Vec::new(),
                                },
                            );
                            if job_tx.send(full).is_err() {
                                break 'ingest;
                            }
                        }
                    }
                }
            }
            if !batch.items.is_empty() {
                let _ = job_tx.send(batch);
            }
            created
        });

        // Module 4: Prediction — one columnar scaler + ensemble pass per
        // polled batch instead of a scaler/model walk per flow update.
        let bundle = self.bundle.clone();
        let prediction: JoinHandle<()> = std::thread::spawn(move || {
            let mut scratch = VoteScratch::default();
            let mut attacks = Vec::new();
            for job in job_rx.iter() {
                let n_features = job.rows.len() / job.items.len().max(1);
                bundle.votes_batch(&job.rows, n_features, &mut scratch, &mut attacks);
                let voted = BatchVoted {
                    items: job.items,
                    attacks: std::mem::take(&mut attacks),
                };
                if vote_tx.send(voted).is_err() {
                    break;
                }
            }
        });

        // Module 2b: Data Processor (aggregation half) — smoothing +
        // latency stamping back into the database.
        let db = self.db.clone();
        let window_size = self.smoothing_window;
        let aggregator: JoinHandle<(u64, u64, u64, u64, f64, f64)> =
            std::thread::spawn(move || {
                let mut windows: FnvHashMap<FlowKey, SmoothingWindow> = FnvHashMap::default();
                let (mut preds, mut attacks, mut normals, mut pendings) = (0u64, 0u64, 0u64, 0u64);
                let mut lat_sum = 0.0f64;
                let mut lat_max = 0.0f64;
                for batch in vote_rx.iter() {
                    for (&(key, registered_at), &attack) in batch.items.iter().zip(&batch.attacks) {
                        let latency = registered_at.elapsed();
                        let lat_us = latency.as_secs_f64() * 1e6;
                        lat_sum += lat_us;
                        lat_max = lat_max.max(lat_us);
                        let w = windows
                            .entry(key)
                            .or_insert_with(|| SmoothingWindow::new(window_size));
                        let verdict = w.push(attack);
                        match verdict.label() {
                            Some(true) => attacks += 1,
                            Some(false) => normals += 1,
                            None => pendings += 1,
                        }
                        preds += 1;
                        db.store_prediction(PredictionRecord {
                            key,
                            label: verdict.label(),
                            predicted_ns: 0, // wall-clock mode: see latency_ns
                            latency_ns: latency.as_nanos() as u64,
                        });
                    }
                }
                (preds, attacks, normals, pendings, lat_sum, lat_max)
            });

        // Join ALL four threads before reporting any failure: a panicked
        // module drops its channel endpoints, which drains the others to
        // completion — erroring out early would leave them detached and
        // still writing to the shared database.
        let col = collection.join().map_err(|_| RuntimeError {
            module: "collection",
        });
        let proc = processor.join().map_err(|_| RuntimeError {
            module: "processor",
        });
        let pred = prediction.join().map_err(|_| RuntimeError {
            module: "prediction",
        });
        let agg = aggregator.join().map_err(|_| RuntimeError {
            module: "aggregator",
        });
        col?;
        let flows_created = proc?;
        pred?;
        let (predictions, attack_verdicts, normal_verdicts, pending_verdicts, lat_sum, lat_max) =
            agg?;

        Ok(ThreadedRunStats {
            reports_in,
            flows_created,
            predictions,
            attack_verdicts,
            normal_verdicts,
            pending_verdicts,
            mean_latency_us: if predictions == 0 {
                0.0
            } else {
                lat_sum / predictions as f64
            },
            max_latency_us: lat_max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{dataset_from_int, train_bundle, TrainerConfig};
    use amlight_features::FeatureSet;
    use amlight_int::{HopMetadata, InstructionSet};
    use amlight_ml::MlpConfig;
    use amlight_net::{Protocol, TrafficClass};
    use std::net::Ipv4Addr;

    fn report(port: u16, t_ns: u64, len: u16, qocc: u32) -> TelemetryReport {
        TelemetryReport {
            flow: FlowKey::new(
                Ipv4Addr::new(7, 7, 7, 7),
                Ipv4Addr::new(10, 0, 0, 2),
                port,
                80,
                Protocol::Tcp,
            ),
            ip_len: len,
            tcp_flags: Some(0x02),
            instructions: InstructionSet::amlight(),
            hops: vec![HopMetadata {
                switch_id: 0,
                ingress_tstamp: t_ns as u32,
                egress_tstamp: (t_ns as u32).wrapping_add(400),
                hop_latency: 0,
                queue_occupancy: qocc,
            }],
            export_ns: t_ns,
        }
    }

    fn capture(n: usize) -> Vec<(TelemetryReport, TrafficClass)> {
        let mut v = Vec::new();
        for i in 0..n as u64 {
            v.push((
                report(1000 + (i % 5) as u16, i * 1_000_000, 800, 0),
                TrafficClass::Benign,
            ));
            v.push((
                report(2000 + (i % 3) as u16, i * 3_000, 40, 20),
                TrafficClass::SynFlood,
            ));
        }
        v.sort_by_key(|(r, _)| r.export_ns);
        v
    }

    fn bundle() -> ModelBundle {
        let train = capture(200);
        let raw = dataset_from_int(&train, FeatureSet::Int);
        train_bundle(
            &raw,
            FeatureSet::Int,
            &TrainerConfig {
                mlp: MlpConfig {
                    epochs: 8,
                    ..MlpConfig::paper_mlp()
                },
                ..Default::default()
            },
        )
    }

    #[test]
    fn threaded_run_processes_everything() {
        let pipe = ThreadedPipeline::new(bundle());
        let reports: Vec<TelemetryReport> = capture(100).into_iter().map(|(r, _)| r).collect();
        let n = reports.len() as u64;
        let stats = pipe.run(reports).expect("no module panicked");
        assert_eq!(stats.reports_in, n);
        assert_eq!(stats.flows_created, 8); // 5 benign + 3 attack flows
        assert_eq!(stats.predictions, n - 8);
        assert_eq!(
            stats.attack_verdicts + stats.normal_verdicts + stats.pending_verdicts,
            stats.predictions
        );
        assert_eq!(
            pipe.database().predictions().len() as u64,
            stats.predictions
        );
    }

    #[test]
    fn latency_is_measured_and_positive() {
        let pipe = ThreadedPipeline::new(bundle());
        let reports: Vec<TelemetryReport> = capture(50).into_iter().map(|(r, _)| r).collect();
        let stats = pipe.run(reports).expect("no module panicked");
        assert!(stats.mean_latency_us > 0.0);
        assert!(stats.max_latency_us >= stats.mean_latency_us);
    }

    #[test]
    fn detects_attacks_in_live_mode() {
        let pipe = ThreadedPipeline::new(bundle());
        // Attack-only stream (skip benign) — most verdicts should be
        // attack once smoothing warms up.
        let reports: Vec<TelemetryReport> = capture(120)
            .into_iter()
            .filter(|(_, c)| *c == TrafficClass::SynFlood)
            .map(|(r, _)| r)
            .collect();
        let stats = pipe.run(reports).expect("no module panicked");
        assert!(
            stats.attack_verdicts > stats.normal_verdicts,
            "attacks {} vs normals {}",
            stats.attack_verdicts,
            stats.normal_verdicts
        );
    }

    #[test]
    fn empty_stream_is_a_noop() {
        let pipe = ThreadedPipeline::new(bundle());
        let stats = pipe.run(Vec::new()).expect("no module panicked");
        assert_eq!(stats.reports_in, 0);
        assert_eq!(stats.predictions, 0);
        assert_eq!(stats.mean_latency_us, 0.0);
    }

    #[test]
    fn smoothing_window_is_configurable() {
        let pipe = ThreadedPipeline::new(bundle()).with_smoothing_window(1);
        let reports: Vec<TelemetryReport> = capture(30).into_iter().map(|(r, _)| r).collect();
        let stats = pipe.run(reports).expect("no module panicked");
        assert_eq!(stats.pending_verdicts, 0, "window of 1 never pends");
    }
}
