//! The threaded runtime: the Fig. 2 modules as real OS threads connected
//! by crossbeam channels, sharing the [`FlowDatabase`].
//!
//! This is the live-deployment shape of the mechanism — the same module
//! logic as [`crate::pipeline::DetectionPipeline`] (both drivers are
//! built on the shared [`crate::modules`] stages), but with actual
//! concurrency and a wall clock instead of a virtual one:
//!
//! * **collection** drains a streaming [`EventSource`] (iterator,
//!   channel, capture replay, raw INT byte stream, or a live sFlow
//!   sampling agent — both telemetry backends speak
//!   [`crate::event::LabeledEvent`]) and fans events out to the
//!   processor shards, routed by
//!   [`amlight_features::sharded::ShardRouter`] over the event's
//!   5-tuple, which both backends carry — so a given flow always lands
//!   on the same shard no matter which telemetry system observed it;
//! * **processor shards** (N threads) each own a private
//!   [`Processor`] — flow table + database writes + the CentralServer's
//!   updates-only forwarding rule, with the backend-specific table
//!   update behind [`crate::event::Telemetry`] dispatch — and
//!   micro-batch judged updates ([`MAX_JOB_BATCH`] per channel message)
//!   toward prediction;
//! * **prediction** (one thread) fans the shard batches back in and runs
//!   one columnar ensemble pass per batch via the shared [`Predictor`];
//! * **aggregation** (one thread) folds votes into per-flow smoothing
//!   windows with the shared [`Aggregator`], stamping every stored
//!   [`PredictionRecord`] with a real wall-clock `predicted_ns` (no more
//!   placeholder zeros) and the measured prediction latency.
//!
//! Every stage stamps time with one shared [`WallClock`] epoch, so
//! registration and prediction stamps are directly comparable.
//!
//! [`ThreadedPipeline::start`] returns a [`RunHandle`] with an explicit
//! lifecycle: `drain()` waits for everything ingested so far to flow all
//! the way to the database, `stop()` ends collection early, and
//! `join()` blocks until the source ends and every module thread exits.
//! [`ThreadedPipeline::run`] keeps the old batch ergonomics as a
//! `start(IterSource) + join()` wrapper.

use crate::db::{FlowDatabase, PredictionRecord};
use crate::drift::{DriftConfig, DriftDetector};
use crate::epoch::EpochHandle;
use crate::event::{LabeledEvent, Telemetry};
use crate::modules::{Clock, Ingest, LaneCounts, Predictor, Processor, WallClock};
use crate::source::{EventSource, IterSource, SourcePoll};
use crate::trainer::{train_bundle, ModelBundle, TrainerConfig};
use crate::verdict::{RecallCounts, VerdictCounts};
use amlight_features::sharded::ShardRouter;
use amlight_features::{
    FlowTableConfig, PrefilterMode, TriageConfig, TriageCounters, TriageVerdict,
};
use amlight_int::TelemetryReport;
use amlight_ml::Dataset;
use amlight_net::{FlowKey, TrafficClass};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TryRecvError, TrySendError};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Most flow updates a single channel message may carry.
const MAX_JOB_BATCH: usize = 256;

/// Bounded depth (in batches) of the low-priority deferred lane. Kept
/// deliberately shallow: the lane is a parking lot for "evaluate when
/// idle" work, and overflow under sustained load is explicit shed —
/// exactly the load-shedding the pre-filter exists to provide.
const DEFER_DEPTH: usize = 8;

/// How long the prediction thread blocks on the main lane before
/// re-checking the deferred lane (priority-drain loop, prefilter on).
const IDLE_WAIT: Duration = Duration::from_millis(1);

/// How many recycled [`BatchJob`] shells (per shard) and prediction
/// scratch vectors the pool channels hold. Deep enough to cover the
/// batches in flight across the job and vote channels under normal
/// pacing; when the pool momentarily runs dry a fresh buffer is
/// allocated, and when it is full a returning buffer is simply dropped —
/// both paths are non-blocking, so recycling can never deadlock the
/// pipeline.
const POOL_DEPTH: usize = 32;

/// A batch of prediction jobs flowing shard → Prediction: one channel
/// message (and one columnar ensemble call downstream) for every update
/// the shard had on hand, not one message per flow update.
///
/// After aggregation stores the batch's verdicts, the (cleared) shell
/// travels back to its shard over a per-shard pool channel, so the
/// steady-state hot path reuses `items`/`rows` capacity instead of
/// allocating per batch.
struct BatchJob {
    /// Which processor shard built this batch — the return address for
    /// buffer recycling.
    shard: usize,
    /// (flow, wall-clock registration stamp ns, ground truth if the
    /// source was labeled) per judged update, in the shard's arrival
    /// order.
    items: Vec<(FlowKey, u64, Option<TrafficClass>)>,
    /// Row-major raw feature rows, parallel to `items`.
    rows: Vec<f64>,
}

impl BatchJob {
    fn empty(shard: usize) -> Self {
        Self {
            shard,
            items: Vec::with_capacity(MAX_JOB_BATCH),
            rows: Vec::new(),
        }
    }
}

/// The scored batch flowing Prediction → aggregation. Carries the whole
/// job (not just its items) so aggregation can recycle the row buffers
/// back to the owning shard.
struct BatchVoted {
    job: BatchJob,
    attacks: Vec<bool>,
    /// Model epoch the whole batch was scored against — stamped into
    /// every stored verdict. One epoch per batch by construction (the
    /// predictor loads the handle once per batch).
    epoch: u64,
}

/// Labeled feature rows flowing aggregation → the shadow trainer over a
/// bounded channel (non-blocking send: a slow trainer sheds samples, it
/// never backpressures the verdict path).
struct SampleBatch {
    /// Row-major raw feature rows.
    rows: Vec<f64>,
    /// Ground-truth labels, parallel to the rows (`true` = attack).
    labels: Vec<bool>,
}

/// Online-adaptation knobs for [`ThreadedPipeline::with_adaptation`]:
/// drift detection over the benign distribution, plus the shadow
/// retrainer that turns a drift flag into a published epoch.
#[derive(Debug, Clone)]
pub struct AdaptConfig {
    /// Page–Hinkley tuning for the benign-distribution watch.
    pub drift: DriftConfig,
    /// Hyperparameters for shadow retraining.
    pub trainer: TrainerConfig,
    /// Sliding window of labeled rows kept for retraining (oldest rows
    /// are dropped first).
    pub max_buffer_rows: usize,
    /// Rows (with both classes present) the buffer must hold before a
    /// drift flag may retrain.
    pub min_train_rows: usize,
    /// Bounded capacity (in sample batches) of the aggregation → trainer
    /// channel.
    pub queue_capacity: usize,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        Self {
            drift: DriftConfig::default(),
            trainer: TrainerConfig::default(),
            max_buffer_rows: 8_192,
            min_train_rows: 256,
            queue_capacity: 64,
        }
    }
}

/// What the adaptation stage did during a run. All-zero when adaptation
/// was not enabled (or the stream carried no labels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdaptStats {
    /// Labeled rows handed to the shadow trainer.
    pub samples_fed: u64,
    /// Labeled rows shed because the trainer channel was full.
    pub samples_shed: u64,
    /// Times the drift detector tripped.
    pub drift_events: u64,
    /// Fresh bundles published (each one a new epoch).
    pub retrains: u64,
    /// Live epoch when the run ended.
    pub final_epoch: u64,
}

/// Failure of the threaded runtime: one of the module threads panicked,
/// so the pipeline's output cannot be trusted. The always-on deployment
/// treats this as "restart the detector", not "crash the collector
/// host" — which is why [`RunHandle::join`] returns it instead of
/// propagating the panic (amlint rule R1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeError {
    /// Which Fig. 2 module died.
    pub module: &'static str,
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} thread panicked", self.module)
    }
}

impl std::error::Error for RuntimeError {}

/// What the triage pre-filter did during a run, aggregated across the
/// processor shards. All-zero (mode `Off`) when the stage is disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TriageStats {
    pub mode: PrefilterMode,
    /// Updates evaluated on the normal prediction lane.
    pub forwarded: u64,
    /// Updates parked on the low-priority lane (drained when idle).
    pub deferred: u64,
    /// Updates the pre-filter dropped before prediction.
    pub dropped: u64,
    /// Deferred updates shed because the low-priority lane was full —
    /// the lane's explicit overflow, counted, never silent.
    pub shed: u64,
    /// The scorer's would-be verdicts (what `on` would have done) —
    /// shadow mode's measurement output.
    pub would: TriageCounters,
}

impl TriageStats {
    /// Updates that actually reached the ensemble:
    /// forwarded plus the deferred ones that weren't shed.
    pub fn evaluated(&self) -> u64 {
        self.forwarded + self.deferred - self.shed
    }
}

/// What one processor shard hands back when it exits.
struct ShardStats {
    created: u64,
    lanes: LaneCounts,
    triage: TriageCounters,
    shed: u64,
}

/// Summary of a threaded run.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadedRunStats {
    /// Telemetry events ingested (INT reports and/or sFlow samples).
    pub events_in: u64,
    pub flows_created: u64,
    pub predictions: u64,
    pub attack_verdicts: u64,
    pub normal_verdicts: u64,
    pub pending_verdicts: u64,
    /// Ground-truth-aware tallies, populated when the source threaded
    /// labels through (e.g. a capture replay). All-zero for unlabeled
    /// live streams.
    pub labeled: RecallCounts,
    /// Online-adaptation tallies (drift flags, retrains, publishes).
    pub adapt: AdaptStats,
    /// Triage pre-filter tallies (lanes, shed, would-be verdicts).
    pub triage: TriageStats,
    pub mean_latency_us: f64,
    pub max_latency_us: f64,
}

/// Sets a flag when dropped — survives panics, so [`RunHandle::drain`]
/// can never spin forever on a dead aggregator.
struct SetOnDrop(Arc<AtomicBool>);

impl Drop for SetOnDrop {
    fn drop(&mut self) {
        self.0.store(true, Ordering::Release);
    }
}

/// The live multi-module pipeline.
pub struct ThreadedPipeline {
    db: FlowDatabase,
    /// The one swappable model handle every run's prediction thread
    /// reads — publish through (a clone of) it and the next micro-batch
    /// votes with the new epoch.
    handle: EpochHandle,
    smoothing_window: usize,
    channel_capacity: usize,
    shards: usize,
    table: FlowTableConfig,
    adapt: Option<AdaptConfig>,
    prefilter: PrefilterMode,
    triage: TriageConfig,
    /// Cursor into the database's prediction history for
    /// [`ThreadedPipeline::new_predictions`].
    pred_cursor: Mutex<usize>,
}

impl ThreadedPipeline {
    pub fn new(bundle: ModelBundle) -> Self {
        Self::shared(EpochHandle::new(bundle))
    }

    /// Build the runtime over an existing epoch handle — the hot-swap
    /// entry point: whoever holds a clone of the handle can publish a
    /// fresh bundle into a live run.
    pub fn shared(handle: EpochHandle) -> Self {
        Self {
            db: FlowDatabase::new(),
            handle,
            smoothing_window: 3,
            channel_capacity: 1024,
            shards: 1,
            table: FlowTableConfig::default(),
            adapt: None,
            prefilter: PrefilterMode::Off,
            triage: TriageConfig::default(),
            pred_cursor: Mutex::new(0),
        }
    }

    /// A clone of the swappable model handle (for external publishers
    /// and for inspecting the live epoch).
    pub fn model_handle(&self) -> EpochHandle {
        self.handle.clone()
    }

    pub fn with_smoothing_window(mut self, window: usize) -> Self {
        self.smoothing_window = window;
        self
    }

    /// Enable the shadow-trainer stage: a drift detector watching the
    /// benign feature distribution and a background retrainer that
    /// consumes labeled flows and atomically publishes fresh epochs into
    /// the live run. Requires a labeled source to have any effect.
    pub fn with_adaptation(mut self, adapt: AdaptConfig) -> Self {
        self.adapt = Some(adapt);
        self
    }

    /// Enable the triage pre-filter (`features::triage`): per-shard
    /// sketch state grades every flow update Forward/Defer/Drop.
    /// `Shadow` scores without gating (recall-parity measurement); `On`
    /// routes Defer onto a bounded low-priority lane the prediction
    /// thread drains only when the main lane is idle, and skips Drop
    /// entirely.
    pub fn with_prefilter(mut self, mode: PrefilterMode) -> Self {
        self.prefilter = mode;
        self
    }

    /// Tune the triage stage (thresholds, sketch sizes, alarm knobs).
    pub fn with_triage_config(mut self, cfg: TriageConfig) -> Self {
        self.triage = cfg;
        self
    }

    /// Fan ingest across at least `shards` processor shards (rounded up
    /// to a power of two by the router). Per-flow order — and therefore
    /// every per-flow verdict sequence — is independent of the count,
    /// because a flow always routes to the same shard.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Flow-table housekeeping for every processor shard. Each shard
    /// gets the *full* configuration (not a split budget): shard tables
    /// partition the flow space, and keeping per-shard limits identical
    /// to the single-shard ones is what makes shard count observable
    /// only as throughput.
    pub fn with_table(mut self, table: FlowTableConfig) -> Self {
        self.table = table;
        self
    }

    pub fn database(&self) -> &FlowDatabase {
        &self.db
    }

    /// Predictions stored since the previous call — a cursor-based view
    /// via [`FlowDatabase::predictions_since`], so repeated stats polls
    /// never re-clone the whole append-only history.
    pub fn new_predictions(&self) -> Vec<PredictionRecord> {
        let mut cursor = self.pred_cursor.lock();
        let (recs, next) = self.db.predictions_since(*cursor);
        *cursor = next;
        recs
    }

    /// Run the full pipeline over an in-memory INT report batch: the
    /// pre-streaming API, kept as `start(IterSource) + join()`. Blocks
    /// until every module drains; a panicked module thread surfaces as
    /// [`RuntimeError`] naming it.
    pub fn run(&self, reports: Vec<TelemetryReport>) -> Result<ThreadedRunStats, RuntimeError> {
        self.start(IterSource::from(reports)).join()
    }

    /// Same batch ergonomics for the sFlow backend: the bundle should be
    /// trained on the queue-blind projection
    /// ([`crate::event::TelemetryBackend::Sflow`]'s feature set).
    pub fn run_samples(
        &self,
        samples: Vec<amlight_sflow::FlowSample>,
    ) -> Result<ThreadedRunStats, RuntimeError> {
        self.start(IterSource::from(samples)).join()
    }

    /// Spawn the module threads over a streaming source and return the
    /// lifecycle handle. The run ends when the source reports
    /// [`SourcePoll::End`] (e.g. every channel sender dropped) or
    /// [`RunHandle::stop`] is called.
    pub fn start<S: EventSource + 'static>(&self, source: S) -> RunHandle {
        let router = ShardRouter::new(self.shards);
        let n_shards = router.shard_count();
        let clock = WallClock::new();
        let stop = Arc::new(AtomicBool::new(false));
        let in_flight = Arc::new(AtomicUsize::new(0));
        let done = Arc::new(AtomicBool::new(false));

        let mut shard_txs = Vec::with_capacity(n_shards);
        let mut shard_rxs = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            let (tx, rx) = bounded::<LabeledEvent>(self.channel_capacity);
            shard_txs.push(tx);
            shard_rxs.push(rx);
        }
        let (job_tx, job_rx) = bounded::<BatchJob>(self.channel_capacity);
        // The low-priority lane: deferred batches park here until the
        // prediction thread finds the main lane idle. Deliberately
        // shallow — overflow is explicit, counted shed.
        let (defer_tx, defer_rx) = bounded::<BatchJob>(DEFER_DEPTH);
        let (vote_tx, vote_rx) = bounded::<BatchVoted>(self.channel_capacity);

        // Optional adaptation stage: a bounded sample channel from the
        // aggregator (which sees rows + ground truth together) into a
        // shadow-trainer thread that watches for drift, retrains, and
        // publishes fresh epochs through the shared handle.
        let feature_set = self.handle.feature_set();
        let dim = feature_set.dim();
        let (sample_tx, adaptation) = match &self.adapt {
            Some(cfg) => {
                let (tx, rx) = bounded::<SampleBatch>(cfg.queue_capacity);
                let cfg = cfg.clone();
                let handle = self.handle.clone();
                let worker: JoinHandle<(u64, u64)> = std::thread::spawn(move || {
                    let dim = feature_set.dim();
                    let mut detector = DriftDetector::new(dim, cfg.drift);
                    let mut buf_rows: Vec<f64> = Vec::new();
                    let mut buf_labels: Vec<bool> = Vec::new();
                    let mut drift_events = 0u64;
                    let mut retrains = 0u64;
                    for batch in rx.iter() {
                        for (row, &label) in batch.rows.chunks_exact(dim).zip(&batch.labels) {
                            // Drift is defined over the *benign*
                            // distribution — attack rows must not be
                            // able to fake (or mask) a drift flag.
                            if !label && detector.observe_row(row) {
                                drift_events += 1;
                            }
                            buf_rows.extend_from_slice(row);
                            buf_labels.push(label);
                        }
                        // Sliding retraining window: oldest rows out.
                        if buf_labels.len() > cfg.max_buffer_rows {
                            let excess = buf_labels.len() - cfg.max_buffer_rows;
                            buf_labels.drain(..excess);
                            buf_rows.drain(..excess * dim);
                        }
                        let both_classes =
                            buf_labels.iter().any(|&l| l) && buf_labels.iter().any(|&l| !l);
                        if detector.drifted()
                            && both_classes
                            && buf_labels.len() >= cfg.min_train_rows
                        {
                            let mut data = Dataset::with_capacity(dim, buf_labels.len());
                            for (row, &label) in buf_rows.chunks_exact(dim).zip(&buf_labels) {
                                data.push(row, label);
                            }
                            let fresh = train_bundle(&data, feature_set, &cfg.trainer);
                            if handle.publish(fresh).is_ok() {
                                retrains += 1;
                            }
                            // The retrained distribution is the new
                            // baseline; stale moments must not re-trip.
                            detector.reset();
                        }
                    }
                    (drift_events, retrains)
                });
                (Some(tx), Some(worker))
            }
            None => (None, None),
        };

        // Buffer-recycling pools: aggregation returns drained BatchJob
        // shells to their owning shard, and drained vote vectors to
        // prediction. Strictly non-blocking on both ends (try_recv to
        // acquire, try_send to return) so the pools can only ever save
        // allocations, never stall the pipeline.
        let mut pool_txs = Vec::with_capacity(n_shards);
        let mut pool_rxs = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            let (tx, rx) = bounded::<BatchJob>(POOL_DEPTH);
            pool_txs.push(tx);
            pool_rxs.push(rx);
        }
        let (scratch_tx, scratch_rx) = bounded::<Vec<bool>>(POOL_DEPTH);

        // Module 1: Data Collection — drains the source (either
        // telemetry backend) and fans events out by flow hash; both
        // event kinds carry the 5-tuple, so routing is backend-blind.
        // Exiting drops every shard sender, which cascades shutdown
        // through the whole pipeline.
        let collection: JoinHandle<u64> = {
            let stop = Arc::clone(&stop);
            let in_flight = Arc::clone(&in_flight);
            std::thread::spawn(move || {
                let mut source = source;
                let mut events_in = 0u64;
                while !stop.load(Ordering::Acquire) {
                    match source.poll_event() {
                        SourcePoll::Event(event) => {
                            // Unbox at the fan-out: the shard channels
                            // move owned events, and the Box has done
                            // its job (one pointer-sized poll result
                            // instead of a ~200-byte enum copy).
                            let event = *event;
                            let shard = router.route(event.event.flow());
                            in_flight.fetch_add(1, Ordering::AcqRel);
                            if shard_txs[shard].send(event).is_err() {
                                in_flight.fetch_sub(1, Ordering::AcqRel);
                                break;
                            }
                            events_in += 1;
                        }
                        // Blocking sources already waited briefly before
                        // reporting Idle; just re-check the stop flag.
                        SourcePoll::Idle => std::thread::yield_now(),
                        SourcePoll::End => break,
                    }
                }
                events_in
            })
        };

        // Module 2a: Data Processor shards — per-shard flow table + DB
        // writes + the CentralServer's updates-only forwarding, via the
        // shared Processor stage. Batches flush when full *or* when the
        // shard channel goes momentarily idle, so a trickling live
        // source still sees its updates predicted promptly.
        let prefilter = self.prefilter;
        let triage_cfg = self.triage;
        let processors: Vec<JoinHandle<ShardStats>> = shard_rxs
            .into_iter()
            .zip(pool_rxs)
            .enumerate()
            .map(|(shard_idx, (shard_rx, pool_rx))| {
                let db = self.db.clone();
                let table = self.table;
                let job_tx = job_tx.clone();
                let defer_tx = defer_tx.clone();
                let in_flight = Arc::clone(&in_flight);
                std::thread::spawn(move || {
                    let mut processor = Processor::new(table, db, clock, feature_set)
                        .with_prefilter(prefilter, triage_cfg);
                    let mut batch = BatchJob::empty(shard_idx);
                    let mut defer = BatchJob::empty(shard_idx);
                    let mut shed = 0u64;
                    'work: loop {
                        let Ok(event) = shard_rx.recv() else {
                            break 'work;
                        };
                        ingest_event(
                            &mut processor,
                            &event,
                            &mut batch,
                            &mut defer,
                            dim,
                            &in_flight,
                        );
                        while batch.items.len() < MAX_JOB_BATCH && defer.items.len() < MAX_JOB_BATCH
                        {
                            match shard_rx.try_recv() {
                                Ok(event) => {
                                    ingest_event(
                                        &mut processor,
                                        &event,
                                        &mut batch,
                                        &mut defer,
                                        dim,
                                        &in_flight,
                                    );
                                }
                                Err(TryRecvError::Empty) => break,
                                Err(TryRecvError::Disconnected) => break,
                            }
                        }
                        if !batch.items.is_empty() {
                            // Prefer a recycled shell (cleared by the
                            // aggregator) over a fresh allocation.
                            let shell = match pool_rx.try_recv() {
                                Ok(recycled) => recycled,
                                Err(_) => BatchJob::empty(shard_idx),
                            };
                            let full = std::mem::replace(&mut batch, shell);
                            if job_tx.send(full).is_err() {
                                break 'work;
                            }
                        }
                        if !defer.items.is_empty() {
                            let shell = match pool_rx.try_recv() {
                                Ok(recycled) => recycled,
                                Err(_) => BatchJob::empty(shard_idx),
                            };
                            let full = std::mem::replace(&mut defer, shell);
                            // Strictly non-blocking: a saturated deferred
                            // lane sheds, it never backpressures ingest —
                            // that is the lane's whole contract.
                            if let Err(err) = defer_tx.try_send(full) {
                                let mut rejected = match err {
                                    TrySendError::Full(job) => job,
                                    TrySendError::Disconnected(job) => job,
                                };
                                let n = rejected.items.len();
                                shed += n as u64;
                                in_flight.fetch_sub(n, Ordering::AcqRel);
                                rejected.items.clear();
                                rejected.rows.clear();
                                defer = rejected;
                            }
                        }
                    }
                    if !batch.items.is_empty() {
                        let _ = job_tx.send(batch);
                    }
                    if !defer.items.is_empty() {
                        let n = defer.items.len();
                        if defer_tx.try_send(defer).is_err() {
                            shed += n as u64;
                            in_flight.fetch_sub(n, Ordering::AcqRel);
                        }
                    }
                    ShardStats {
                        created: processor.created(),
                        lanes: processor.lane_counts(),
                        triage: processor.triage_counters(),
                        shed,
                    }
                })
            })
            .collect();
        // The spawn loop cloned per-shard senders; drop the originals so
        // the job and defer channels close once every shard exits.
        drop(job_tx);
        drop(defer_tx);

        // Module 4: Prediction — shard batches fan back in here; one
        // columnar scaler + ensemble pass per batch, against whatever
        // model epoch is published when the batch arrives (one wait-free
        // handle load per batch, so a hot-swap lands between batches,
        // never inside one).
        let prediction: JoinHandle<()> = {
            let handle = self.handle.clone();
            std::thread::spawn(move || {
                let mut predictor = Predictor::shared(handle);
                if prefilter != PrefilterMode::On {
                    // No deferred lane to service (Off and Shadow both
                    // route everything onto the main lane): the plain
                    // blocking loop, so shadow's timing stays identical
                    // to off and its measurements are apples-to-apples.
                    drop(defer_rx);
                    for job in job_rx.iter() {
                        if !score_batch(&mut predictor, job, &scratch_rx, &vote_tx) {
                            return;
                        }
                    }
                    return;
                }
                // Priority drain: the main lane is served strictly first;
                // the deferred lane is only touched when the main lane is
                // momentarily empty ("the Predictor drains it when idle").
                loop {
                    match job_rx.try_recv() {
                        Ok(job) => {
                            if !score_batch(&mut predictor, job, &scratch_rx, &vote_tx) {
                                return;
                            }
                            continue;
                        }
                        Err(TryRecvError::Disconnected) => break,
                        Err(TryRecvError::Empty) => {}
                    }
                    if let Ok(job) = defer_rx.try_recv() {
                        if !score_batch(&mut predictor, job, &scratch_rx, &vote_tx) {
                            return;
                        }
                        continue;
                    }
                    match job_rx.recv_timeout(IDLE_WAIT) {
                        Ok(job) => {
                            if !score_batch(&mut predictor, job, &scratch_rx, &vote_tx) {
                                return;
                            }
                        }
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
                // Drain discipline: once the main lane closes, everything
                // deferred (and not shed) is still evaluated before the
                // run ends — which is what keeps verdict totals, and
                // recall, shard-count invariant.
                for job in defer_rx.iter() {
                    if !score_batch(&mut predictor, job, &scratch_rx, &vote_tx) {
                        return;
                    }
                }
            })
        };

        // Module 2b: Data Processor (aggregation half) — smoothing +
        // the stored verdict with a real wall-clock prediction stamp.
        // When the source threaded labels through, every smoothed
        // verdict is also scored against its ground truth here, so the
        // run reports recall without a side-channel lookup table.
        let aggregator: JoinHandle<(VerdictCounts, RecallCounts, f64, f64, u64, u64)> = {
            let db = self.db.clone();
            let window_size = self.smoothing_window;
            let in_flight = Arc::clone(&in_flight);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let _done_guard = SetOnDrop(done);
                let mut agg = crate::modules::Aggregator::new(db, window_size);
                let mut labeled = RecallCounts::default();
                let mut samples_fed = 0u64;
                let mut samples_shed = 0u64;
                for batch in vote_rx.iter() {
                    for (&(key, registered_ns, truth), &attack) in
                        batch.job.items.iter().zip(&batch.attacks)
                    {
                        let predicted_ns = clock.now_ns();
                        let verdict =
                            agg.aggregate(key, attack, registered_ns, predicted_ns, batch.epoch);
                        if let Some(class) = truth {
                            labeled.observe(class.label(), verdict);
                        }
                        in_flight.fetch_sub(1, Ordering::AcqRel);
                    }
                    // Feed the shadow trainer: the aggregator is the one
                    // stage that sees feature rows and ground truth side
                    // by side. Strictly non-blocking (try_send) — a busy
                    // trainer sheds samples, it never stalls verdicts.
                    if let Some(tx) = &sample_tx {
                        feed_trainer(&batch, dim, tx, &mut samples_fed, &mut samples_shed);
                    }
                    // Recycle: drained shells go home to their shard,
                    // vote vectors back to prediction. try_send — a full
                    // pool (or an exited stage) just drops the buffer.
                    let BatchVoted {
                        mut job,
                        mut attacks,
                        epoch: _,
                    } = batch;
                    job.items.clear();
                    job.rows.clear();
                    let _ = pool_txs[job.shard].try_send(job);
                    attacks.clear();
                    let _ = scratch_tx.try_send(attacks);
                }
                // Dropping sample_tx here disconnects the trainer's
                // receiver, which is what ends the adaptation thread.
                (
                    agg.counts(),
                    labeled,
                    agg.mean_latency_us(),
                    agg.max_latency_us(),
                    samples_fed,
                    samples_shed,
                )
            })
        };

        RunHandle {
            collection,
            processors,
            prediction,
            aggregator,
            adaptation,
            handle: self.handle.clone(),
            prefilter,
            stop,
            in_flight,
            done,
        }
    }
}

/// Score one batch through the shared ensemble and pass it to
/// aggregation. Returns `false` when aggregation has exited (time for
/// the prediction thread to stop too).
fn score_batch(
    predictor: &mut Predictor,
    job: BatchJob,
    scratch_rx: &Receiver<Vec<bool>>,
    vote_tx: &Sender<BatchVoted>,
) -> bool {
    // Vote buffers round-trip through aggregation and come back via the
    // scratch pool; predict() clears them.
    let mut attacks: Vec<bool> = scratch_rx.try_recv().unwrap_or_default();
    let epoch = predictor.predict(&job.rows, &mut attacks);
    vote_tx
        .send(BatchVoted {
            job,
            attacks,
            epoch,
        })
        .is_ok()
}

/// Copy a voted batch's labeled rows toward the shadow trainer over the
/// bounded sample channel. Only rows with ground truth ride along; an
/// unlabeled live stream feeds the trainer nothing.
fn feed_trainer(
    batch: &BatchVoted,
    dim: usize,
    tx: &Sender<SampleBatch>,
    samples_fed: &mut u64,
    samples_shed: &mut u64,
) {
    let labeled_rows = batch
        .job
        .items
        .iter()
        .filter(|(_, _, truth)| truth.is_some())
        .count();
    if labeled_rows == 0 {
        return;
    }
    // amlint: cold -- adaptation feed: allocates only when --adapt is on
    let mut rows = Vec::with_capacity(labeled_rows * dim);
    let mut labels = Vec::with_capacity(labeled_rows);
    for (&(_, _, truth), row) in batch.job.items.iter().zip(batch.job.rows.chunks_exact(dim)) {
        if let Some(class) = truth {
            // amlint: cold -- adaptation feed: allocates only when --adapt is on
            rows.extend_from_slice(row);
            labels.push(class.label());
        }
    }
    let n = labels.len() as u64;
    match tx.try_send(SampleBatch { rows, labels }) {
        Ok(()) => *samples_fed += n,
        Err(_) => *samples_shed += n,
    }
}

/// One telemetry event (either backend) through the shared Processor
/// stage, batching judged updates into their triage lane. Created flows
/// retire from the in-flight count here (they never reach aggregation,
/// §III-3), and so do triage-dropped updates (no verdict will ever be
/// stored for them); judged ones retire after their verdict is stored.
/// A deferred update's feature row migrates from the main batch (where
/// `Processor::ingest` appended it) into the defer batch, keeping the
/// two row buffers parallel to their item lists. The event's ground
/// truth, if any, rides along with the judged item so aggregation can
/// score the verdict.
// amlint: hot
fn ingest_event<C: Clock>(
    processor: &mut Processor<C>,
    event: &LabeledEvent,
    batch: &mut BatchJob,
    defer: &mut BatchJob,
    dim: usize,
    in_flight: &AtomicUsize,
) {
    match processor.ingest(&event.event, &mut batch.rows) {
        Ingest::Created { .. } | Ingest::Dropped { .. } => {
            in_flight.fetch_sub(1, Ordering::AcqRel);
        }
        Ingest::Judged(judged) => {
            if judged.lane == TriageVerdict::Defer {
                let split = batch.rows.len() - dim;
                // amlint: cold -- pooled BatchJob buffer, reused across batches
                defer.rows.extend_from_slice(&batch.rows[split..]);
                batch.rows.truncate(split);
                defer
                    .items
                    // amlint: cold -- pooled BatchJob buffer, reused across batches
                    .push((judged.key, judged.registered_ns, event.truth));
            } else {
                batch
                    .items
                    // amlint: cold -- pooled BatchJob buffer, reused across batches
                    .push((judged.key, judged.registered_ns, event.truth));
            }
        }
    }
}

/// Consecutive zero-in-flight observations [`RunHandle::drain`] requires
/// before declaring the pipeline quiescent (spaced [`DRAIN_POLL`] apart —
/// long enough for a report sitting in a channel source's buffer to be
/// polled up and counted).
const DRAIN_STABLE_POLLS: u32 = 5;
const DRAIN_POLL: Duration = Duration::from_micros(400);

/// A running threaded pipeline: the explicit lifecycle around
/// [`ThreadedPipeline::start`].
pub struct RunHandle {
    collection: JoinHandle<u64>,
    processors: Vec<JoinHandle<ShardStats>>,
    prediction: JoinHandle<()>,
    aggregator: JoinHandle<(VerdictCounts, RecallCounts, f64, f64, u64, u64)>,
    /// The shadow-trainer thread, present when adaptation is enabled.
    /// Returns (drift events, retrains published).
    adaptation: Option<JoinHandle<(u64, u64)>>,
    /// The run's model handle, for stamping final-epoch stats and for
    /// callers that want to publish into the live run.
    handle: EpochHandle,
    /// Which pre-filter mode the run was started with (stamped into the
    /// final stats).
    prefilter: PrefilterMode,
    stop: Arc<AtomicBool>,
    in_flight: Arc<AtomicUsize>,
    done: Arc<AtomicBool>,
}

impl RunHandle {
    /// Ask collection to stop reading the source. Reports already
    /// ingested still flow through to the database; follow with
    /// [`RunHandle::join`] to wait for that.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Block until everything ingested so far has been fully processed
    /// (its verdict stored) — the pipeline stays running and the source
    /// stays open. Returns immediately if the pipeline already shut
    /// down.
    pub fn drain(&self) {
        let mut stable = 0u32;
        while stable < DRAIN_STABLE_POLLS {
            if self.done.load(Ordering::Acquire) {
                return;
            }
            if self.in_flight.load(Ordering::Acquire) == 0 {
                stable += 1;
            } else {
                stable = 0;
            }
            std::thread::sleep(DRAIN_POLL);
        }
    }

    /// Wait for the source to end (or [`RunHandle::stop`]) and every
    /// module thread to exit. Joins ALL threads before reporting any
    /// failure: a panicked module drops its channel endpoints, which
    /// drains the others to completion — erroring out early would leave
    /// them detached and still writing to the shared database.
    pub fn join(self) -> Result<ThreadedRunStats, RuntimeError> {
        let col = self.collection.join().map_err(|_| RuntimeError {
            module: "collection",
        });
        let mut flows_created = 0u64;
        let mut lanes = LaneCounts::default();
        let mut would = TriageCounters::default();
        let mut shed = 0u64;
        let mut shard_err = None;
        for shard in self.processors {
            match shard.join() {
                Ok(stats) => {
                    flows_created += stats.created;
                    lanes.merge(&stats.lanes);
                    would.merge(&stats.triage);
                    shed += stats.shed;
                }
                Err(_) => {
                    shard_err = Some(RuntimeError {
                        module: "processor",
                    });
                }
            }
        }
        let pred = self.prediction.join().map_err(|_| RuntimeError {
            module: "prediction",
        });
        let agg = self.aggregator.join().map_err(|_| RuntimeError {
            module: "aggregator",
        });
        // The aggregator dropping its sample sender is what disconnects
        // the trainer's receiver, so this join comes after the
        // aggregator's and cannot hang.
        let adapt_out = match self.adaptation {
            Some(worker) => Some(worker.join().map_err(|_| RuntimeError {
                module: "adaptation",
            })?),
            None => None,
        };
        let events_in = col?;
        if let Some(err) = shard_err {
            return Err(err);
        }
        pred?;
        let (counts, labeled, mean_latency_us, max_latency_us, samples_fed, samples_shed) = agg?;
        let (drift_events, retrains) = adapt_out.unwrap_or((0, 0));

        Ok(ThreadedRunStats {
            events_in,
            flows_created,
            predictions: counts.predictions,
            attack_verdicts: counts.attacks,
            normal_verdicts: counts.normals,
            pending_verdicts: counts.pendings,
            labeled,
            adapt: AdaptStats {
                samples_fed,
                samples_shed,
                drift_events,
                retrains,
                final_epoch: self.handle.current_epoch(),
            },
            triage: TriageStats {
                mode: self.prefilter,
                forwarded: lanes.forwarded,
                deferred: lanes.deferred,
                dropped: lanes.dropped,
                shed,
                would,
            },
            mean_latency_us,
            max_latency_us,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::ChannelSource;
    use crate::trainer::{dataset_from_events, train_bundle, TrainerConfig};
    use amlight_features::FeatureSet;
    use amlight_int::{HopMetadata, InstructionSet};
    use amlight_ml::MlpConfig;
    use amlight_net::{Protocol, TrafficClass};
    use std::net::Ipv4Addr;

    fn report(port: u16, t_ns: u64, len: u16, qocc: u32) -> TelemetryReport {
        TelemetryReport {
            flow: FlowKey::new(
                Ipv4Addr::new(7, 7, 7, 7),
                Ipv4Addr::new(10, 0, 0, 2),
                port,
                80,
                Protocol::Tcp,
            ),
            ip_len: len,
            tcp_flags: Some(0x02),
            instructions: InstructionSet::amlight(),
            hops: vec![HopMetadata {
                switch_id: 0,
                ingress_tstamp: t_ns as u32,
                egress_tstamp: (t_ns as u32).wrapping_add(400),
                hop_latency: 0,
                queue_occupancy: qocc,
            }]
            .into(),
            export_ns: t_ns,
        }
    }

    fn capture(n: usize) -> Vec<(TelemetryReport, TrafficClass)> {
        let mut v = Vec::new();
        for i in 0..n as u64 {
            v.push((
                report(1000 + (i % 5) as u16, i * 1_000_000, 800, 0),
                TrafficClass::Benign,
            ));
            v.push((
                report(2000 + (i % 3) as u16, i * 3_000, 40, 20),
                TrafficClass::SynFlood,
            ));
        }
        v.sort_by_key(|(r, _)| r.export_ns);
        v
    }

    fn bundle() -> ModelBundle {
        let train = capture(200);
        let raw = dataset_from_events(&train, FeatureSet::full());
        train_bundle(
            &raw,
            FeatureSet::full(),
            &TrainerConfig {
                mlp: MlpConfig {
                    epochs: 8,
                    ..MlpConfig::paper_mlp()
                },
                ..Default::default()
            },
        )
    }

    #[test]
    fn threaded_run_processes_everything() {
        let pipe = ThreadedPipeline::new(bundle());
        let reports: Vec<TelemetryReport> = capture(100).into_iter().map(|(r, _)| r).collect();
        let n = reports.len() as u64;
        let stats = pipe.run(reports).expect("no module panicked");
        assert_eq!(stats.events_in, n);
        assert_eq!(stats.flows_created, 8); // 5 benign + 3 attack flows
        assert_eq!(stats.predictions, n - 8);
        assert_eq!(
            stats.attack_verdicts + stats.normal_verdicts + stats.pending_verdicts,
            stats.predictions
        );
        assert_eq!(
            pipe.database().predictions().len() as u64,
            stats.predictions
        );
    }

    #[test]
    fn latency_is_measured_and_positive() {
        let pipe = ThreadedPipeline::new(bundle());
        let reports: Vec<TelemetryReport> = capture(50).into_iter().map(|(r, _)| r).collect();
        let stats = pipe.run(reports).expect("no module panicked");
        assert!(stats.mean_latency_us > 0.0);
        assert!(stats.max_latency_us >= stats.mean_latency_us);
    }

    #[test]
    fn detects_attacks_in_live_mode() {
        let pipe = ThreadedPipeline::new(bundle());
        // Attack-only stream (skip benign) — most verdicts should be
        // attack once smoothing warms up.
        let reports: Vec<TelemetryReport> = capture(120)
            .into_iter()
            .filter(|(_, c)| *c == TrafficClass::SynFlood)
            .map(|(r, _)| r)
            .collect();
        let stats = pipe.run(reports).expect("no module panicked");
        assert!(
            stats.attack_verdicts > stats.normal_verdicts,
            "attacks {} vs normals {}",
            stats.attack_verdicts,
            stats.normal_verdicts
        );
    }

    #[test]
    fn empty_stream_is_a_noop() {
        let pipe = ThreadedPipeline::new(bundle());
        let stats = pipe.run(Vec::new()).expect("no module panicked");
        assert_eq!(stats.events_in, 0);
        assert_eq!(stats.predictions, 0);
        assert_eq!(stats.mean_latency_us, 0.0);
    }

    #[test]
    fn smoothing_window_is_configurable() {
        let pipe = ThreadedPipeline::new(bundle()).with_smoothing_window(1);
        let reports: Vec<TelemetryReport> = capture(30).into_iter().map(|(r, _)| r).collect();
        let stats = pipe.run(reports).expect("no module panicked");
        assert_eq!(stats.pending_verdicts, 0, "window of 1 never pends");
    }

    #[test]
    fn wall_clock_prediction_stamps_are_real() {
        let pipe = ThreadedPipeline::new(bundle());
        let reports: Vec<TelemetryReport> = capture(40).into_iter().map(|(r, _)| r).collect();
        pipe.run(reports).expect("no module panicked");
        let preds = pipe.database().predictions();
        assert!(!preds.is_empty());
        for p in preds {
            assert!(p.predicted_ns > 0, "placeholder stamp leaked through");
            assert!(p.latency_ns <= p.predicted_ns);
        }
    }

    #[test]
    fn channel_source_lifecycle_drain_then_join() {
        let pipe = ThreadedPipeline::new(bundle()).with_shards(2);
        let reports: Vec<TelemetryReport> = capture(60).into_iter().map(|(r, _)| r).collect();
        let n = reports.len() as u64;
        let (tx, source) = ChannelSource::bounded(64);
        let handle = pipe.start(source);

        let (first, rest) = reports.split_at(reports.len() / 2);
        for r in first {
            tx.send(r.clone().into()).expect("pipeline is live");
        }
        handle.drain();
        let mid = pipe.database().prediction_count();
        assert!(mid > 0, "drained pipeline must have stored verdicts");

        for r in rest {
            tx.send(r.clone().into()).expect("pipeline is live");
        }
        drop(tx); // end of stream
        let stats = handle.join().expect("no module panicked");
        assert_eq!(stats.events_in, n);
        assert_eq!(stats.flows_created, 8);
        assert_eq!(stats.predictions, n - 8);
        assert!(pipe.database().prediction_count() >= mid);
    }

    /// A labeled stream whose benign distribution steps halfway through:
    /// packet sizes collapse and queues build, several sigma away from
    /// the prefix — exactly the diurnal-shift scenario §IV-A motivates.
    fn drifting_capture(n: usize) -> Vec<(TelemetryReport, TrafficClass)> {
        let mut v = Vec::new();
        for i in 0..n as u64 {
            let (len, qocc) = if (i as usize) < n / 2 {
                (800, 0)
            } else {
                (200, 10)
            };
            v.push((
                report(1000 + (i % 5) as u16, i * 1_000_000, len, qocc),
                TrafficClass::Benign,
            ));
            v.push((
                report(2000 + (i % 3) as u16, i * 3_000, 40, 20),
                TrafficClass::SynFlood,
            ));
        }
        v.sort_by_key(|(r, _)| r.export_ns);
        v
    }

    /// A second bundle trained on different data — genuinely different
    /// weights, same feature set, so a swap changes the epoch stamp
    /// without invalidating the pipeline's feature rows.
    fn other_bundle() -> ModelBundle {
        let train = drifting_capture(200);
        let raw = dataset_from_events(&train, FeatureSet::full());
        train_bundle(
            &raw,
            FeatureSet::full(),
            &TrainerConfig {
                mlp: MlpConfig {
                    epochs: 4,
                    ..MlpConfig::paper_mlp()
                },
                ..Default::default()
            },
        )
    }

    #[test]
    fn hot_swap_mid_run_drops_nothing_and_stamps_both_epochs() {
        let pipe = ThreadedPipeline::new(bundle()).with_shards(2);
        let reports: Vec<TelemetryReport> = capture(80).into_iter().map(|(r, _)| r).collect();
        let n = reports.len() as u64;
        let (tx, source) = ChannelSource::bounded(64);
        let handle = pipe.start(source);

        let (first, rest) = reports.split_at(reports.len() / 2);
        for r in first {
            tx.send(r.clone().into()).expect("pipeline is live");
        }
        handle.drain();

        // Publish a genuinely different bundle into the live run.
        let model = pipe.model_handle();
        assert_eq!(model.current_epoch(), 0);
        model.publish(other_bundle()).expect("same feature set");
        assert_eq!(model.current_epoch(), 1);

        for r in rest {
            tx.send(r.clone().into()).expect("pipeline is live");
        }
        drop(tx);
        let stats = handle.join().expect("no module panicked");

        // Zero dropped events: everything ingested was either a flow
        // creation or produced a stored verdict.
        assert_eq!(stats.events_in, n);
        assert_eq!(stats.flows_created + stats.predictions, n);
        assert_eq!(
            pipe.database().predictions().len() as u64,
            stats.predictions
        );
        // Both epochs voted, and the boundary is clean: epoch is
        // monotonic over the stored sequence (one handle load per batch,
        // so no batch straddles the swap).
        assert_eq!(pipe.database().epochs_used(), vec![0, 1]);
        assert_eq!(stats.adapt.final_epoch, 1);
    }

    #[test]
    fn identical_bundle_swap_is_invisible_to_verdicts() {
        let b = bundle();
        let reports: Vec<TelemetryReport> = capture(60).into_iter().map(|(r, _)| r).collect();

        let frozen = ThreadedPipeline::new(b.clone());
        let baseline = frozen.run(reports.clone()).expect("no module panicked");

        let swapped = ThreadedPipeline::new(b.clone());
        let (tx, source) = ChannelSource::bounded(64);
        let handle = swapped.start(source);
        let (first, rest) = reports.split_at(reports.len() / 2);
        for r in first {
            tx.send(r.clone().into()).expect("pipeline is live");
        }
        handle.drain();
        // Same weights, new epoch: votes cannot change, stamps must.
        swapped.model_handle().publish(b).expect("same feature set");
        for r in rest {
            tx.send(r.clone().into()).expect("pipeline is live");
        }
        drop(tx);
        let stats = handle.join().expect("no module panicked");

        assert_eq!(stats.attack_verdicts, baseline.attack_verdicts);
        assert_eq!(stats.normal_verdicts, baseline.normal_verdicts);
        assert_eq!(stats.pending_verdicts, baseline.pending_verdicts);
        assert_eq!(swapped.database().epochs_used(), vec![0, 1]);
    }

    #[test]
    fn adaptation_detects_drift_and_publishes_a_fresh_epoch() {
        let adapt = AdaptConfig {
            drift: DriftConfig {
                delta: 0.05,
                lambda: 15.0,
                min_samples: 128,
            },
            trainer: TrainerConfig {
                mlp: MlpConfig {
                    epochs: 2,
                    ..MlpConfig::paper_mlp()
                },
                ..Default::default()
            },
            max_buffer_rows: 4_096,
            min_train_rows: 64,
            queue_capacity: 1_024,
        };
        let pipe = ThreadedPipeline::new(bundle()).with_adaptation(adapt);
        let labeled = drifting_capture(600);
        let n = labeled.len() as u64;
        let handle = pipe.start(crate::source::ReplaySource::from_labeled(&labeled));
        let stats = handle.join().expect("no module panicked");

        // Nothing dropped while the shadow trainer ran.
        assert_eq!(stats.events_in, n);
        assert_eq!(stats.flows_created + stats.predictions, n);
        // The benign step tripped the detector and a retrained bundle
        // was actually published into the live run.
        assert!(stats.adapt.samples_fed > 0, "aggregator fed the trainer");
        assert!(stats.adapt.drift_events >= 1, "benign step must trip");
        assert!(stats.adapt.retrains >= 1, "drift flag must retrain");
        assert_eq!(
            stats.adapt.final_epoch, stats.adapt.retrains,
            "every publish is one epoch, starting from the offline 0"
        );
    }

    #[test]
    fn adaptation_stats_are_zero_without_the_stage() {
        let pipe = ThreadedPipeline::new(bundle());
        let reports: Vec<TelemetryReport> = capture(20).into_iter().map(|(r, _)| r).collect();
        let stats = pipe.run(reports).expect("no module panicked");
        assert_eq!(stats.adapt, AdaptStats::default());
    }

    /// Default triage knobs with the aggregate alarm disabled — these
    /// tests exercise the per-flow lanes, not the alarm heuristics.
    fn quiet_triage() -> TriageConfig {
        TriageConfig {
            alarm_min_events: u64::MAX,
            ..TriageConfig::default()
        }
    }

    #[test]
    fn prefilter_on_cuts_predictor_load_and_accounts_every_update() {
        let reports: Vec<TelemetryReport> = capture(150).into_iter().map(|(r, _)| r).collect();
        let n = reports.len() as u64;

        let off = ThreadedPipeline::new(bundle());
        let base = off.run(reports.clone()).expect("no module panicked");
        assert_eq!(base.predictions, n - 8);
        // Off still tallies the (sole) lane; the scorer never ran.
        assert_eq!(
            base.triage,
            TriageStats {
                forwarded: n - 8,
                ..TriageStats::default()
            }
        );

        let on = ThreadedPipeline::new(bundle())
            .with_prefilter(PrefilterMode::On)
            .with_triage_config(quiet_triage());
        let stats = on.run(reports).expect("no module panicked");
        let t = stats.triage;
        assert_eq!(t.mode, PrefilterMode::On);
        assert!(t.dropped > 0, "flood updates must be decimated");
        // Conservation: every ingested event is a flow creation, a
        // stored verdict, a triage drop, or explicit shed — nothing
        // vanishes silently.
        assert_eq!(
            stats.flows_created + stats.predictions + t.dropped + t.shed,
            stats.events_in
        );
        assert_eq!(stats.predictions, t.evaluated());
        assert!(
            stats.predictions < base.predictions,
            "gating must cut predictor load: {} vs {}",
            stats.predictions,
            base.predictions
        );
        assert_eq!(on.database().predictions().len() as u64, stats.predictions);
    }

    #[test]
    fn prefilter_shadow_is_invisible_to_the_predictor() {
        let reports: Vec<TelemetryReport> = capture(100).into_iter().map(|(r, _)| r).collect();
        let n = reports.len() as u64;
        let pipe = ThreadedPipeline::new(bundle())
            .with_shards(2)
            .with_prefilter(PrefilterMode::Shadow)
            .with_triage_config(quiet_triage());
        let stats = pipe.run(reports).expect("no module panicked");
        let t = stats.triage;
        assert_eq!(stats.predictions, n - 8, "shadow gates nothing");
        assert_eq!(t.mode, PrefilterMode::Shadow);
        assert_eq!((t.deferred, t.dropped, t.shed), (0, 0, 0));
        assert_eq!(t.forwarded, stats.predictions);
        assert!(t.would.drop > 0, "the scorer still reports would-be drops");
        assert_eq!(t.would.scored, n - 8);
    }

    #[test]
    fn stop_ends_collection_early() {
        let pipe = ThreadedPipeline::new(bundle());
        let (tx, source) = ChannelSource::bounded(64);
        let handle = pipe.start(source);
        for r in capture(10).into_iter().map(|(r, _)| r) {
            tx.send(r.into()).expect("pipeline is live");
        }
        handle.drain();
        handle.stop();
        // Sender still alive: only stop() can end this run.
        let stats = handle.join().expect("no module panicked");
        assert_eq!(stats.events_in, 20);
        drop(tx);
    }
}
