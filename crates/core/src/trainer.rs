//! Offline training: from labeled telemetry to a deployable model bundle.
//!
//! The paper pre-trains its models offline on a replayed capture
//! (§IV-C.2) and ships them, plus the fitted scaler, to the Prediction
//! module. [`train_bundle`] reproduces that step; the dataset builders
//! are also used directly by the Table III/IV experiment binaries.

use crate::event::{LabeledEvent, Telemetry};
use amlight_features::{
    FeatureId, FeatureSet, FlowTable, FlowTableConfig, TriageConfig, TriageStage,
};
use amlight_ml::model::BinaryClassifier;
use amlight_ml::{
    BundleMeta, Dataset, GaussianNb, MajorityEnsemble, MetaError, Mlp, MlpConfig, RandomForest,
    RandomForestConfig, StandardScaler, BUNDLE_SCHEMA_VERSION,
};
use amlight_net::TrafficClass;
use serde::{Deserialize, Serialize};

/// Build a labeled dataset from any telemetry backend's events: one row
/// per packet, the feature snapshot *after* that packet's flow-table
/// update (exactly what the live pipeline would feed the models).
///
/// Backend-blind by construction: every event lowers itself into a
/// normalized [`amlight_features::FlowUpdate`] via [`Telemetry`], so the
/// same code path trains on INT reports, sFlow samples, or PINT digests.
///
/// When `set` includes the [`FeatureId::SketchScore`] extension column a
/// shadow [`TriageStage`] (default knobs) scores every update exactly as
/// the live Processor would, so the trained models see the same column
/// distribution they will get at detection time.
pub fn dataset_from_events<E: Telemetry>(
    labeled: &[(E, TrafficClass)],
    set: FeatureSet,
) -> Dataset {
    let mut table = FlowTable::new(FlowTableConfig::default());
    let mut triage = sketch_stage_for(set);
    let mut data = Dataset::with_capacity(set.dim(), labeled.len());
    let mut buf = Vec::with_capacity(set.dim());
    for (event, class) in labeled {
        let update = event.flow_update();
        let (_, rec) = table.apply(&update);
        let mut features = rec.features();
        if let Some(stage) = triage.as_mut() {
            features.set(FeatureId::SketchScore, stage.assess(&update, rec).score);
        }
        buf.clear();
        features.project_into(set, &mut buf);
        data.push(&buf, class.label());
    }
    data
}

/// Same, over already-erased [`LabeledEvent`]s (what
/// [`crate::event::TelemetryBackend::derive_view`] produces).
pub fn dataset_from_labeled(labeled: &[LabeledEvent], set: FeatureSet) -> Dataset {
    let mut table = FlowTable::new(FlowTableConfig::default());
    let mut triage = sketch_stage_for(set);
    let mut data = Dataset::with_capacity(set.dim(), labeled.len());
    let mut buf = Vec::with_capacity(set.dim());
    for ev in labeled {
        let update = ev.event.flow_update();
        let (_, rec) = table.apply(&update);
        let mut features = rec.features();
        if let Some(stage) = triage.as_mut() {
            features.set(FeatureId::SketchScore, stage.assess(&update, rec).score);
        }
        buf.clear();
        features.project_into(set, &mut buf);
        // amlint: cold -- offline training; unlabeled events are a usage error
        let class = ev.truth.expect("training requires ground-truth labels");
        data.push(&buf, class.label());
    }
    data
}

/// A shadow triage scorer when (and only when) the feature set asks for
/// the sketch-score extension column.
fn sketch_stage_for(set: FeatureSet) -> Option<TriageStage> {
    set.contains(FeatureId::SketchScore)
        .then(|| TriageStage::new(TriageConfig::default()))
}

/// Training knobs for the deployable bundle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainerConfig {
    pub forest: RandomForestConfig,
    pub mlp: MlpConfig,
    pub seed: u64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            forest: RandomForestConfig::fast(),
            // The testbed deployment uses the 64-32-16 MLPClassifier.
            mlp: MlpConfig::paper_mlp(),
            seed: 0xA317,
        }
    }
}

/// The paper's deployed artifact: scaler + MLP + RF + GNB (§IV-C.3 — KNN
/// is dropped for prediction-latency reasons), stamped with its
/// provenance ([`BundleMeta`]: schema version, publication epoch,
/// feature width, training-window bounds).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelBundle {
    pub scaler: StandardScaler,
    pub mlp: Mlp,
    pub forest: RandomForest,
    pub gnb: GaussianNb,
    pub feature_set: FeatureSet,
    pub meta: BundleMeta,
}

/// Caller-owned scratch for [`ModelBundle::votes_batch`]. Reusing it
/// across batches keeps the detection hot path allocation-free once the
/// buffers have grown to the working batch size.
#[derive(Debug, Clone, Default)]
pub struct VoteScratch {
    scaled: Vec<f64>,
    proba: Vec<f64>,
    counts: Vec<u8>,
}

impl ModelBundle {
    /// Individual model votes (MLP, RF, GNB order) for a raw (unscaled)
    /// feature row.
    pub fn votes(&self, raw_features: &[f64]) -> [bool; 3] {
        let mut row = raw_features.to_vec();
        self.scaler.transform_row(&mut row);
        [
            self.mlp.predict_one(&row),
            self.forest.predict_one(&row),
            self.gnb.predict_one(&row),
        ]
    }

    /// The 2-of-3 ensemble decision for a raw feature row.
    pub fn ensemble_vote(&self, raw_features: &[f64]) -> bool {
        let v = self.votes(raw_features);
        v.iter().filter(|&&b| b).count() >= 2
    }

    /// Batched 2-of-3 ensemble decisions over contiguous row-major raw
    /// (unscaled) features: one scaler pass, then each member scores the
    /// whole batch through its columnar `predict_proba_batch` path.
    ///
    /// `out` is cleared and refilled with one decision per row, in row
    /// order, bit-identical to calling [`ModelBundle::ensemble_vote`] on
    /// each row (member probabilities are bit-identical and vote
    /// counting is exact integer arithmetic).
    pub fn votes_batch(
        &self,
        rows: &[f64],
        n_features: usize,
        scratch: &mut VoteScratch,
        out: &mut Vec<bool>,
    ) {
        assert!(n_features > 0 || rows.is_empty(), "rows need features");
        let n_rows = rows.len().checked_div(n_features).unwrap_or(0);
        assert_eq!(
            rows.len(),
            n_rows * n_features,
            "votes_batch: {} values is not a whole number of {n_features}-wide rows",
            rows.len()
        );
        out.clear();
        out.resize(n_rows, false);
        if n_rows == 0 {
            return;
        }

        scratch.scaled.clear();
        scratch.scaled.resize(rows.len(), 0.0);
        self.scaler.transform_into(rows, &mut scratch.scaled);

        scratch.proba.clear();
        scratch.proba.resize(n_rows, 0.0);
        scratch.counts.clear();
        scratch.counts.resize(n_rows, 0);
        let members: [&dyn BinaryClassifier; 3] = [&self.mlp, &self.forest, &self.gnb];
        for m in members {
            m.predict_proba_batch(&scratch.scaled, n_features, &mut scratch.proba);
            for (c, &p) in scratch.counts.iter_mut().zip(&scratch.proba) {
                *c += u8::from(amlight_ml::decide(p));
            }
        }
        for (o, &c) in out.iter_mut().zip(&scratch.counts) {
            *o = c >= 2;
        }
    }

    /// Wrap the three members as a [`MajorityEnsemble`] over *scaled*
    /// inputs (for the generic evaluation paths).
    pub fn into_ensemble(self) -> MajorityEnsemble {
        MajorityEnsemble::new(vec![
            Box::new(self.mlp),
            Box::new(self.forest),
            Box::new(self.gnb),
        ])
    }

    /// Stamp the training-window bounds (telemetry-clock ns) into the
    /// bundle's metadata. Builder-style: used by trainers that know the
    /// capture's time range.
    pub fn with_train_window(mut self, start_ns: u64, end_ns: u64) -> Self {
        self.meta.train_window_start_ns = start_ns;
        self.meta.train_window_end_ns = end_ns;
        self
    }

    /// Reject this bundle unless it was persisted under the current
    /// schema and fit on exactly the feature rows `set` produces. This
    /// is the load-time gate that turns "stale artifact" into a usage
    /// error instead of silent mispredictions.
    pub fn validate_for(&self, set: FeatureSet) -> Result<(), MetaError> {
        self.meta.validate(set.dim())?;
        if self.feature_set != set {
            // Same width but a different projection would also
            // mispredict; the widths of Int (15) and Sflow (12) differ
            // today, so this arm is future-proofing.
            return Err(MetaError::FeatureWidth {
                found: self.feature_set.dim(),
                expected: set.dim(),
            });
        }
        Ok(())
    }

    /// Persist the bundle as JSON — the artifact the paper's Prediction
    /// module "uploads" at initialization (§III-4: "the pre-trained ML
    /// models and the coefficients of scaler transformation").
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let json = serde_json::to_string(self).map_err(std::io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Load a bundle saved with [`ModelBundle::save`]. Bundles written
    /// before metadata stamping existed (or under any other schema) fail
    /// here with an error naming the fix, not downstream with wrong
    /// verdicts.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json).map_err(|e| {
            // amlint: cold -- bundle load is CLI-startup/artifact work, never per event
            std::io::Error::other(format!(
                "not a schema-v{BUNDLE_SCHEMA_VERSION} model bundle ({e}); \
                 retrain it with `amlight train`"
            ))
        })
    }
}

/// Fit the scaler and all three models on a raw (unscaled) dataset.
/// The bundle is stamped as epoch 0 (offline training); hot-swap
/// publishes restamp the epoch, and drivers that know the capture's
/// time range add it via [`ModelBundle::with_train_window`].
pub fn train_bundle(raw: &Dataset, set: FeatureSet, cfg: &TrainerConfig) -> ModelBundle {
    assert!(!raw.is_empty(), "cannot train on an empty capture");
    let mut scaled = raw.clone();
    let scaler = StandardScaler::fit_transform(&mut scaled);
    let mlp = Mlp::fit(&scaled, &cfg.mlp, cfg.seed);
    let forest = RandomForest::fit(&scaled, &cfg.forest, cfg.seed ^ 0x51);
    let gnb = GaussianNb::fit(&scaled);
    ModelBundle {
        scaler,
        mlp,
        forest,
        gnb,
        feature_set: set,
        meta: BundleMeta::offline(set.dim(), raw.len(), (0, 0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amlight_int::{HopMetadata, InstructionSet, TelemetryReport};
    use amlight_net::{FlowKey, Protocol};
    use amlight_sflow::FlowSample;
    use std::net::Ipv4Addr;

    /// The queue-blind projection sFlow populates (12 of 15 columns).
    fn sflow_set() -> FeatureSet {
        FeatureSet::full().without(&amlight_features::FeatureId::QUEUE_COLUMNS)
    }

    fn report(port: u16, seqno: u32, len: u16, qocc: u32) -> TelemetryReport {
        TelemetryReport {
            flow: FlowKey::new(
                Ipv4Addr::new(9, 9, 9, 9),
                Ipv4Addr::new(10, 0, 0, 2),
                port,
                80,
                Protocol::Tcp,
            ),
            ip_len: len,
            tcp_flags: Some(0x02),
            instructions: InstructionSet::amlight(),
            hops: vec![HopMetadata {
                switch_id: 0,
                ingress_tstamp: seqno * 1_000,
                egress_tstamp: seqno * 1_000 + 500,
                hop_latency: 0,
                queue_occupancy: qocc,
            }]
            .into(),
            export_ns: u64::from(seqno) * 1_000,
        }
    }

    /// Flood-ish attack reports (tiny, fast, queue-building) vs benign
    /// (bigger, slower) — enough contrast to train on.
    fn labeled_reports(n: usize) -> Vec<(TelemetryReport, TrafficClass)> {
        let mut v = Vec::new();
        for i in 0..n as u32 {
            // Benign flows on ports 1000..1010, one packet per ms.
            v.push((
                report(1000 + (i % 10) as u16, i * 1000, 800, 0),
                TrafficClass::Benign,
            ));
            // Attack flows on ports 2000..2004, packets 2 µs apart, queue
            // pressure visible.
            v.push((
                report(2000 + (i % 4) as u16, i * 2, 40, 30 + (i % 8)),
                TrafficClass::SynFlood,
            ));
        }
        v
    }

    #[test]
    fn int_dataset_has_row_per_report() {
        let labeled = labeled_reports(50);
        let d = dataset_from_events(&labeled, FeatureSet::full());
        assert_eq!(d.len(), 100);
        assert_eq!(d.n_features(), 15);
        assert_eq!(d.class_counts(), (50, 50));
    }

    #[test]
    fn sflow_dataset_is_twelve_wide() {
        let labeled: Vec<(FlowSample, TrafficClass)> = (0..20)
            .map(|i| {
                (
                    FlowSample {
                        flow: FlowKey::new(
                            Ipv4Addr::new(9, 9, 9, 9),
                            Ipv4Addr::new(10, 0, 0, 2),
                            1000 + (i % 5) as u16,
                            80,
                            Protocol::Tcp,
                        ),
                        ip_len: 500,
                        tcp_flags: Some(0x10),
                        observed_ns: i as u64 * 1_000_000,
                        sampling_period: 4096,
                    },
                    TrafficClass::Benign,
                )
            })
            .collect();
        let d = dataset_from_events(&labeled, sflow_set());
        assert_eq!(d.n_features(), 12);
        assert_eq!(d.len(), 20);
    }

    #[test]
    fn sketch_score_column_is_populated_when_requested() {
        let labeled = labeled_reports(60);
        let ext = FeatureSet::full().with(&[FeatureId::SketchScore]);
        let d = dataset_from_events(&labeled, ext);
        assert_eq!(d.n_features(), 16);
        // Attack rows (tiny packets, µs inter-arrivals, heavy-hitter
        // counts) sit far outside the benign envelope: their sketch
        // scores must dominate the benign ones on average.
        let (mut attack, mut benign) = ((0.0, 0u32), (0.0, 0u32));
        for (i, (_, class)) in labeled.iter().enumerate() {
            let score = d.row(i)[15];
            let side = if class.label() {
                &mut attack
            } else {
                &mut benign
            };
            side.0 += score;
            side.1 += 1;
        }
        let (attack_mean, benign_mean) = (
            attack.0 / f64::from(attack.1),
            benign.0 / f64::from(benign.1),
        );
        assert!(
            attack_mean > benign_mean,
            "attack mean {attack_mean} vs benign mean {benign_mean}"
        );
        // And without the extension the canonical 15 stay untouched.
        let plain = dataset_from_events(&labeled, FeatureSet::full());
        assert_eq!(plain.n_features(), 15);
        for i in 0..plain.len() {
            assert_eq!(plain.row(i), &d.row(i)[..15], "row {i}");
        }
    }

    #[test]
    fn bundle_learns_the_contrast() {
        let labeled = labeled_reports(300);
        let raw = dataset_from_events(&labeled, FeatureSet::full());
        let cfg = TrainerConfig {
            mlp: MlpConfig {
                epochs: 15,
                ..MlpConfig::paper_mlp()
            },
            ..Default::default()
        };
        let bundle = train_bundle(&raw, FeatureSet::full(), &cfg);

        // Evaluate ensemble votes against truth on the training rows.
        let mut correct = 0;
        for (i, (_, class)) in labeled.iter().enumerate() {
            if bundle.ensemble_vote(raw.row(i)) == class.label() {
                correct += 1;
            }
        }
        let acc = correct as f64 / raw.len() as f64;
        assert!(acc > 0.95, "ensemble training accuracy {acc}");
    }

    #[test]
    fn votes_are_three_and_ordered() {
        let labeled = labeled_reports(100);
        let raw = dataset_from_events(&labeled, FeatureSet::full());
        let cfg = TrainerConfig {
            mlp: MlpConfig {
                epochs: 5,
                ..MlpConfig::paper_mlp()
            },
            ..Default::default()
        };
        let bundle = train_bundle(&raw, FeatureSet::full(), &cfg);
        let v = bundle.votes(raw.row(0));
        assert_eq!(v.len(), 3);
        // 2-of-3 semantics.
        let expected = v.iter().filter(|&&b| b).count() >= 2;
        assert_eq!(bundle.ensemble_vote(raw.row(0)), expected);
    }

    #[test]
    #[should_panic(expected = "empty capture")]
    fn empty_training_rejected() {
        let d = Dataset::new(15);
        train_bundle(&d, FeatureSet::full(), &TrainerConfig::default());
    }

    #[test]
    fn votes_batch_matches_per_row_ensemble() {
        let labeled = labeled_reports(120);
        let raw = dataset_from_events(&labeled, FeatureSet::full());
        let cfg = TrainerConfig {
            mlp: MlpConfig {
                epochs: 5,
                ..MlpConfig::paper_mlp()
            },
            ..Default::default()
        };
        let bundle = train_bundle(&raw, FeatureSet::full(), &cfg);

        let mut scratch = VoteScratch::default();
        let mut batched = Vec::new();
        bundle.votes_batch(raw.raw(), raw.n_features(), &mut scratch, &mut batched);
        assert_eq!(batched.len(), raw.len());
        for (i, &got) in batched.iter().enumerate() {
            assert_eq!(got, bundle.ensemble_vote(raw.row(i)), "row {i}");
        }

        // Empty batch is a no-op; scratch reuse gives identical output.
        bundle.votes_batch(&[], raw.n_features(), &mut scratch, &mut batched);
        assert!(batched.is_empty());
        bundle.votes_batch(raw.raw(), raw.n_features(), &mut scratch, &mut batched);
        for (i, &got) in batched.iter().enumerate() {
            assert_eq!(got, bundle.ensemble_vote(raw.row(i)));
        }
    }

    #[test]
    fn bundle_save_load_roundtrip() {
        let labeled = labeled_reports(80);
        let raw = dataset_from_events(&labeled, FeatureSet::full());
        let cfg = TrainerConfig {
            mlp: MlpConfig {
                epochs: 3,
                ..MlpConfig::paper_mlp()
            },
            ..Default::default()
        };
        let bundle = train_bundle(&raw, FeatureSet::full(), &cfg);
        let path =
            std::env::temp_dir().join(format!("amlight-bundle-test-{}.json", std::process::id()));
        bundle.save(&path).expect("save");
        let back = ModelBundle::load(&path).expect("load");
        std::fs::remove_file(&path).ok();
        // Identical votes on every training row.
        for i in 0..raw.len() {
            assert_eq!(bundle.votes(raw.row(i)), back.votes(raw.row(i)));
        }
        assert_eq!(back.feature_set, FeatureSet::full());
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(ModelBundle::load("/nonexistent/amlight-bundle.json").is_err());
    }

    #[test]
    fn offline_training_stamps_metadata() {
        let labeled = labeled_reports(40);
        let raw = dataset_from_events(&labeled, FeatureSet::full());
        let bundle = train_bundle(&raw, FeatureSet::full(), &TrainerConfig::default());
        assert_eq!(bundle.meta.schema_version, BUNDLE_SCHEMA_VERSION);
        assert_eq!(bundle.meta.epoch, 0, "offline bundles are epoch 0");
        assert_eq!(bundle.meta.n_features, FeatureSet::full().dim());
        assert_eq!(bundle.meta.n_rows, raw.len());
    }

    #[test]
    fn metadata_survives_persistence() {
        let labeled = labeled_reports(40);
        let raw = dataset_from_events(&labeled, FeatureSet::full());
        let bundle = train_bundle(&raw, FeatureSet::full(), &TrainerConfig::default())
            .with_train_window(5_000, 125_000);
        let path = std::env::temp_dir().join(format!(
            "amlight-bundle-meta-test-{}.json",
            std::process::id()
        ));
        bundle.save(&path).expect("save");
        let back = ModelBundle::load(&path).expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(back.meta, bundle.meta);
        assert_eq!(back.meta.train_window_ns(), 120_000);
    }

    #[test]
    fn validate_for_accepts_matching_set_and_rejects_the_other() {
        let labeled = labeled_reports(40);
        let raw = dataset_from_events(&labeled, FeatureSet::full());
        let bundle = train_bundle(&raw, FeatureSet::full(), &TrainerConfig::default());
        assert!(bundle.validate_for(FeatureSet::full()).is_ok());
        let err = bundle.validate_for(sflow_set()).unwrap_err();
        assert!(
            matches!(
                err,
                MetaError::FeatureWidth {
                    found: 15,
                    expected: 12
                }
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn legacy_bundle_without_metadata_fails_with_a_retrain_hint() {
        // A pre-metadata artifact: valid JSON, but no `meta` object.
        let path = std::env::temp_dir().join(format!(
            "amlight-bundle-legacy-test-{}.json",
            std::process::id()
        ));
        std::fs::write(&path, "{\"feature_set\":\"Int\"}").expect("write");
        let err = ModelBundle::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        let msg = err.to_string();
        assert!(
            msg.contains("retrain") && msg.contains("schema-v3"),
            "error must name the fix: {msg}"
        );
    }
}
