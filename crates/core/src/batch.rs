//! The production-scale detector: sharded, data-parallel detection.
//!
//! [`crate::pipeline::DetectionPipeline`] mirrors the paper's prototype —
//! one flow table, one prediction server — because that is what Table VI
//! measures. This module is the §V answer ("faster processing
//! capabilities" for production volumes): the same detection semantics,
//! restructured for parallelism.
//!
//! Everything in the per-flow path — table update, feature extraction,
//! scaling, the three-model ensemble vote, and the smoothing window — is
//! keyed by the five-tuple, so the whole pipeline shards by flow hash.
//! A batch of telemetry reports is routed to shards once; each shard
//! then runs the complete detect path sequentially over its own flows
//! while shards proceed in parallel. No locks, no cross-shard traffic,
//! per-flow ordering preserved by construction.

use crate::epoch::EpochHandle;
use crate::event::Telemetry;
use crate::trainer::{ModelBundle, VoteScratch};
use crate::verdict::{SmoothingWindow, Verdict};
use amlight_features::{FlowTable, FlowTableConfig, ShardRouter, UpdateKind};
use amlight_net::flow::FnvHashMap;
use amlight_net::FlowKey;
use rayon::prelude::*;

/// Per-report outcome, in input order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchOutcome {
    /// First packet of a flow: no prediction (§III-3).
    Created,
    /// An update that produced a (possibly still pending) verdict.
    Judged(Verdict),
}

impl BatchOutcome {
    pub fn verdict(self) -> Option<Verdict> {
        match self {
            BatchOutcome::Created => None,
            BatchOutcome::Judged(v) => Some(v),
        }
    }
}

/// One shard's full detection state, plus the scratch buffers its
/// columnar ensemble call reuses across batches.
#[derive(Debug)]
struct Shard {
    table: FlowTable,
    windows: FnvHashMap<FlowKey, SmoothingWindow>,
    rows: Vec<f64>,
    decisions: Vec<bool>,
    scratch: VoteScratch,
}

/// The sharded detector. Holds no model copy of its own: like every
/// other driver it reads a swappable [`EpochHandle`], loading the
/// current epoch once per `detect_batch` call.
pub struct BatchDetector {
    handle: EpochHandle,
    shards: Vec<Shard>,
    router: ShardRouter,
    smoothing_window: usize,
}

impl BatchDetector {
    /// `shards` is rounded up to a power of two (see [`ShardRouter`]) so
    /// routing is a bitmask, matching [`amlight_features::ShardedFlowTable`].
    pub fn new(bundle: ModelBundle, table: FlowTableConfig, shards: usize) -> Self {
        Self::shared(EpochHandle::new(bundle), table, shards)
    }

    /// Build the detector over an existing epoch handle, so a publish
    /// through any clone of it takes effect on the next batch.
    pub fn shared(handle: EpochHandle, table: FlowTableConfig, shards: usize) -> Self {
        let router = ShardRouter::new(shards);
        let shards = router.shard_count();
        let per_shard = FlowTableConfig {
            max_flows: (table.max_flows / shards).max(16),
            ..table
        };
        Self {
            handle,
            shards: (0..shards)
                .map(|_| Shard {
                    table: FlowTable::new(per_shard),
                    windows: FnvHashMap::default(),
                    rows: Vec::new(),
                    decisions: Vec::new(),
                    scratch: VoteScratch::default(),
                })
                .collect(),
            router,
            smoothing_window: 3,
        }
    }

    pub fn with_smoothing_window(mut self, window: usize) -> Self {
        self.smoothing_window = window;
        self
    }

    /// The swappable model handle this detector reads.
    pub fn model_handle(&self) -> EpochHandle {
        self.handle.clone()
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    pub fn flow_count(&self) -> usize {
        self.shards.iter().map(|s| s.table.len()).sum()
    }

    /// Detect over a batch of telemetry events from any backend. Returns
    /// one outcome per event, in input order.
    ///
    /// Each shard makes **one** columnar ensemble call for all the rows
    /// it judges this batch, instead of a per-report model invocation:
    /// pass one lowers each event to its normalized
    /// [`amlight_features::FlowUpdate`] and applies it, gathering judged
    /// rows contiguously, then [`ModelBundle::votes_batch`] scores them,
    /// then pass two feeds the smoothing windows in input order. Per-flow
    /// prediction order is unchanged because a flow's reports all land in
    /// one shard and both passes walk them in input order.
    pub fn detect_batch<E: Telemetry + Sync>(&mut self, reports: &[E]) -> Vec<BatchOutcome> {
        let n_shards = self.shards.len();
        let mut routes: Vec<Vec<u32>> = vec![Vec::new(); n_shards];
        for (i, r) in reports.iter().enumerate() {
            routes[self.router.route(r.flow())].push(i as u32);
        }

        // One epoch load for the whole batch: every shard scores against
        // the same immutable bundle, no matter what is published while
        // the batch is in flight.
        let current = self.handle.load_full();
        let bundle = current.bundle();
        let window_size = self.smoothing_window;
        let feature_set = bundle.feature_set;

        let shard_results: Vec<Vec<(u32, BatchOutcome)>> = self
            .shards
            .par_iter_mut()
            .zip(routes.par_iter())
            .map(|(shard, idxs)| {
                let mut out = Vec::with_capacity(idxs.len());
                let mut judged = Vec::with_capacity(idxs.len());
                shard.rows.clear();
                for &i in idxs {
                    let report = &reports[i as usize];
                    let (kind, rec) = shard.table.apply(&report.flow_update());
                    match kind {
                        UpdateKind::Created => out.push((i, BatchOutcome::Created)),
                        UpdateKind::Updated => {
                            rec.features().project_into(feature_set, &mut shard.rows);
                            judged.push(i);
                        }
                    }
                }
                bundle.votes_batch(
                    &shard.rows,
                    feature_set.dim(),
                    &mut shard.scratch,
                    &mut shard.decisions,
                );
                for (&i, &attack) in judged.iter().zip(&shard.decisions) {
                    let w = shard
                        .windows
                        .entry(reports[i as usize].flow())
                        .or_insert_with(|| SmoothingWindow::new(window_size));
                    out.push((i, BatchOutcome::Judged(w.push(attack))));
                }
                out
            })
            .collect();

        let mut results = vec![BatchOutcome::Created; reports.len()];
        for shard in shard_results {
            for (i, o) in shard {
                results[i as usize] = o;
            }
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::{Testbed, TestbedConfig};
    use crate::trainer::{dataset_from_events, train_bundle, TrainerConfig};
    use amlight_features::FeatureSet;
    use amlight_int::TelemetryReport;
    use amlight_ml::MlpConfig;
    use amlight_net::TrafficClass;
    use amlight_traffic::ReplayLibrary;

    fn bundle_and_reports() -> (ModelBundle, Vec<(TelemetryReport, TrafficClass)>) {
        let lab = Testbed::new(TestbedConfig::default());
        let lib = ReplayLibrary::build(400, 3);
        let mut training = Vec::new();
        for class in TrafficClass::ALL {
            if class != TrafficClass::SlowLoris {
                training.extend(lab.replay_class(&lib, class));
            }
        }
        let raw = dataset_from_events(&training, FeatureSet::full());
        let bundle = train_bundle(
            &raw,
            FeatureSet::full(),
            &TrainerConfig {
                mlp: MlpConfig {
                    epochs: 4,
                    ..MlpConfig::paper_mlp()
                },
                ..Default::default()
            },
        );
        let test = lab.replay_class(&ReplayLibrary::build(400, 4), TrafficClass::SynFlood);
        (bundle, test)
    }

    #[test]
    fn sharded_detection_matches_single_shard() {
        let (bundle, labeled) = bundle_and_reports();
        let reports: Vec<TelemetryReport> = labeled.iter().map(|(r, _)| r.clone()).collect();

        let mut one = BatchDetector::new(bundle.clone(), FlowTableConfig::default(), 1);
        let mut eight = BatchDetector::new(bundle, FlowTableConfig::default(), 8);

        let a = one.detect_batch(&reports);
        let b = eight.detect_batch(&reports);
        assert_eq!(a, b, "shard count must not change detection semantics");
        assert_eq!(one.flow_count(), eight.flow_count());
    }

    #[test]
    fn detects_the_flood() {
        let (bundle, labeled) = bundle_and_reports();
        let reports: Vec<TelemetryReport> = labeled.iter().map(|(r, _)| r.clone()).collect();
        let mut det = BatchDetector::new(bundle, FlowTableConfig::default(), 4);
        let out = det.detect_batch(&reports);
        let attacks = out
            .iter()
            .filter(|o| o.verdict() == Some(Verdict::Attack))
            .count();
        let normals = out
            .iter()
            .filter(|o| o.verdict() == Some(Verdict::Normal))
            .count();
        assert!(
            attacks > normals * 10,
            "flood: {attacks} attack vs {normals} normal"
        );
    }

    #[test]
    fn state_spans_batches() {
        let (bundle, labeled) = bundle_and_reports();
        let reports: Vec<TelemetryReport> = labeled.iter().map(|(r, _)| r.clone()).collect();
        let mid = reports.len() / 2;

        let mut whole = BatchDetector::new(bundle.clone(), FlowTableConfig::default(), 4);
        let full = whole.detect_batch(&reports);

        let mut split = BatchDetector::new(bundle, FlowTableConfig::default(), 4);
        let mut halves = split.detect_batch(&reports[..mid]);
        halves.extend(split.detect_batch(&reports[mid..]));

        assert_eq!(full, halves, "batch boundaries must be invisible");
    }

    #[test]
    fn first_packets_are_created_not_judged() {
        let (bundle, labeled) = bundle_and_reports();
        let reports: Vec<TelemetryReport> = labeled.iter().map(|(r, _)| r.clone()).collect();
        let mut det = BatchDetector::new(bundle, FlowTableConfig::default(), 2);
        let out = det.detect_batch(&reports);
        let mut seen = std::collections::HashSet::new();
        for (r, o) in reports.iter().zip(&out) {
            if seen.insert(r.flow) {
                assert_eq!(*o, BatchOutcome::Created);
            } else {
                assert!(matches!(o, BatchOutcome::Judged(_)));
            }
        }
    }
}
