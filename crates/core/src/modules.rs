//! The shared Fig. 2 stage layer: one implementation of the paper's
//! module logic, used by every driver.
//!
//! Before this layer existed the dataflow was implemented twice — once
//! in the virtual-time [`crate::pipeline::DetectionPipeline`] and again,
//! with subtly diverging logic, in the wall-clock
//! [`crate::runtime::ThreadedPipeline`]. The three structs here are the
//! single source of truth for the module semantics:
//!
//! * [`Processor`] — Fig. 2's *Data Processor* ingest half plus the
//!   *CentralServer*'s update-forwarding rule: flow-table update, one
//!   record per flow in the [`FlowDatabase`], and feature-row projection
//!   for **updated** flows only (brand-new flows are never forwarded to
//!   Prediction, §III-3).
//! * [`Predictor`] — Fig. 2's *Prediction* module: pre-fitted scaler +
//!   pre-trained ensemble, one columnar [`ModelBundle::votes_batch`]
//!   call per micro-batch.
//! * [`Aggregator`] — the Data Processor's aggregation half: per-flow
//!   smoothing windows, verdict counting, and the stored
//!   [`PredictionRecord`] with its prediction-latency stamp.
//!
//! Time is abstracted behind [`Clock`] so the same stages serve both
//! drivers: [`VirtualClock`] stamps events with modeled collector time
//! (native event time plus a fixed processing delay), [`WallClock`]
//! with monotonic nanoseconds since the pipeline epoch. The telemetry
//! backend is abstracted behind [`crate::event::Telemetry`], so the
//! same [`Processor`] ingests INT reports and sFlow samples — the only
//! backend-specific step is the flow-table update dispatch.

use crate::db::{FlowDatabase, PredictionRecord};
use crate::epoch::EpochHandle;
use crate::event::Telemetry;
use crate::trainer::{ModelBundle, VoteScratch};
use crate::verdict::{SmoothingWindow, Verdict, VerdictCounts};
use amlight_features::UpdateKind;
use amlight_features::{
    FeatureId, FeatureSet, FlowTable, FlowTableConfig, PrefilterMode, TriageConfig, TriageCounters,
    TriageDecision, TriageStage, TriageVerdict,
};
use amlight_net::flow::FnvHashMap;
use amlight_net::FlowKey;
use std::time::Instant;

/// The time base a [`Processor`] stamps registrations with.
///
/// Implementations must be cheap: `register_ns` sits in the per-event
/// hot path. The argument is the event's *native* timestamp
/// ([`Telemetry::event_ns`]: INT export time, sFlow observation time),
/// which is what makes the clock telemetry-generic.
pub trait Clock: Send {
    /// Registration timestamp (collector-clock ns) for an event with
    /// native timestamp `event_ns` entering the Data Processor.
    fn register_ns(&self, event_ns: u64) -> u64;
}

/// Deterministic virtual time: an event is registered a fixed processing
/// delay after its native timestamp. This is the [`DetectionPipeline`]'s
/// time base (latency then comes from its explicit queueing model).
///
/// [`DetectionPipeline`]: crate::pipeline::DetectionPipeline
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtualClock {
    /// Data Processor handling cost per event, ns.
    pub processing_delay_ns: u64,
}

impl Clock for VirtualClock {
    #[inline]
    fn register_ns(&self, event_ns: u64) -> u64 {
        event_ns + self.processing_delay_ns
    }
}

/// Monotonic wall time, as nanoseconds since a shared pipeline epoch.
///
/// Every module of a [`crate::runtime::ThreadedPipeline`] run clones the
/// same epoch, so registration stamps from the processor shards and
/// prediction stamps from the aggregator are directly comparable — this
/// is what lets wall-clock [`PredictionRecord`]s carry a real
/// `predicted_ns` instead of a placeholder.
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// A fresh epoch; clone it into every stage of one run.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
        }
    }

    /// Monotonic ns elapsed since the epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    #[inline]
    fn register_ns(&self, _event_ns: u64) -> u64 {
        self.now_ns()
    }
}

/// A flow update the CentralServer forwards to Prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JudgedUpdate {
    pub key: FlowKey,
    /// Collector-clock registration stamp from the driver's [`Clock`].
    pub registered_ns: u64,
    /// Live flow count in this processor's table when the update was
    /// handled — the queueing model's record-scan term must use the size
    /// the CentralServer would have observed *then*.
    pub table_len: u64,
    /// Which prediction lane triage graded this update onto. Always
    /// [`TriageVerdict::Forward`] when the pre-filter is off or in
    /// shadow mode.
    pub lane: TriageVerdict,
}

/// Outcome of one report's ingest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ingest {
    /// First packet of a flow: recorded, never forwarded (§III-3).
    Created { key: FlowKey, registered_ns: u64 },
    /// An existing flow's update, forwarded for prediction; its feature
    /// row was appended to the caller's row buffer.
    Judged(JudgedUpdate),
    /// An existing flow's update the triage pre-filter dropped: recorded
    /// in the database, never predicted. No feature row was appended.
    Dropped { key: FlowKey, registered_ns: u64 },
}

/// Actual lane tallies — what the Processor really did with updates
/// (contrast [`TriageCounters`], which tallies what the scorer *would*
/// do, mode notwithstanding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LaneCounts {
    pub forwarded: u64,
    pub deferred: u64,
    pub dropped: u64,
}

impl LaneCounts {
    /// Fold another processor's tallies in (shard aggregation).
    pub fn merge(&mut self, other: &LaneCounts) {
        self.forwarded += other.forwarded;
        self.deferred += other.deferred;
        self.dropped += other.dropped;
    }
}

/// Fig. 2 Data Processor (ingest half) + CentralServer forwarding rule,
/// with the optional triage pre-filter between the two.
#[derive(Debug)]
pub struct Processor<C: Clock> {
    table: FlowTable,
    db: FlowDatabase,
    clock: C,
    feature_set: FeatureSet,
    created: u64,
    prefilter: PrefilterMode,
    triage: Option<TriageStage>,
    lanes: LaneCounts,
}

impl<C: Clock> Processor<C> {
    pub fn new(
        table: FlowTableConfig,
        db: FlowDatabase,
        clock: C,
        feature_set: FeatureSet,
    ) -> Self {
        Self {
            table: FlowTable::new(table),
            db,
            clock,
            feature_set,
            created: 0,
            prefilter: PrefilterMode::Off,
            triage: None,
            lanes: LaneCounts::default(),
        }
    }

    /// Enable the triage pre-filter (`features::triage`): every ingested
    /// event feeds the sketch state; in [`PrefilterMode::On`] the verdict
    /// actually gates, in [`PrefilterMode::Shadow`] it is only counted.
    pub fn with_prefilter(mut self, mode: PrefilterMode, cfg: TriageConfig) -> Self {
        self.prefilter = mode;
        self.triage = match mode {
            PrefilterMode::Off => None,
            _ => Some(TriageStage::new(cfg)),
        };
        self
    }

    /// Ingest one telemetry event — INT report, sFlow sample, or the
    /// unified [`crate::event::TelemetryEvent`]: lower it to the
    /// normalized [`amlight_features::FlowUpdate`] ([`Telemetry::flow_update`]),
    /// apply it to the flow table, write the database record, grade the
    /// update through the optional triage stage, and — for updates that
    /// survive gating — append the projected feature row to `rows` and
    /// return the judged update (tagged with its prediction lane).
    /// This is the one place the created-vs-updated forwarding decision
    /// lives, and it is identical for every telemetry backend.
    // amlint: hot
    pub fn ingest<E: Telemetry>(&mut self, event: &E, rows: &mut Vec<f64>) -> Ingest {
        let key = event.flow();
        let registered_ns = self.clock.register_ns(event.event_ns());
        let update = event.flow_update();
        let (kind, rec) = self.table.apply(&update);
        let mut features = rec.features();
        match kind {
            UpdateKind::Created => {
                // Creations still feed the sketches: the aggregate alarm
                // must see a spoofed flood's creation firehose even
                // though §III-3 never forwards first packets.
                if let Some(stage) = self.triage.as_mut() {
                    let _ = stage.assess(&update, rec);
                }
                self.created += 1;
                self.db.record_created(key, features, registered_ns);
                Ingest::Created { key, registered_ns }
            }
            UpdateKind::Updated => {
                self.db
                    .record_updated(key, rec.update_seq, features, registered_ns);
                let decision = match self.triage.as_mut() {
                    Some(stage) => stage.assess(&update, rec),
                    None => TriageDecision::forward(),
                };
                let lane = match self.prefilter {
                    // Shadow scores and counts but never gates.
                    PrefilterMode::On => decision.verdict,
                    _ => TriageVerdict::Forward,
                };
                if matches!(lane, TriageVerdict::Drop) {
                    self.lanes.dropped += 1;
                    return Ingest::Dropped { key, registered_ns };
                }
                if self.feature_set.contains(FeatureId::SketchScore) {
                    features.set(FeatureId::SketchScore, decision.score);
                }
                features.project_into(self.feature_set, rows);
                match lane {
                    TriageVerdict::Defer => self.lanes.deferred += 1,
                    _ => self.lanes.forwarded += 1,
                }
                Ingest::Judged(JudgedUpdate {
                    key,
                    registered_ns,
                    table_len: self.table.len() as u64,
                    lane,
                })
            }
        }
    }

    /// Flows created by this processor so far.
    pub fn created(&self) -> u64 {
        self.created
    }

    /// Live flows in this processor's table.
    pub fn flow_count(&self) -> usize {
        self.table.len()
    }

    /// Actual lane tallies (forward/defer/drop as applied).
    pub fn lane_counts(&self) -> LaneCounts {
        self.lanes
    }

    /// The triage scorer's would-be tallies (all-zero when the stage is
    /// off).
    pub fn triage_counters(&self) -> TriageCounters {
        self.triage
            .as_ref()
            .map(TriageStage::counters)
            .unwrap_or_default()
    }

    /// The configured pre-filter mode.
    pub fn prefilter(&self) -> PrefilterMode {
        self.prefilter
    }
}

/// Fig. 2 Prediction: scaler + MLP/RF/GNB ensemble, batched.
///
/// The predictor does not own a model copy — it reads the shared
/// [`EpochHandle`] once per batch (one wait-free atomic load), so a
/// bundle published mid-run takes effect on the next batch without the
/// predictor being rebuilt, and every batch is scored against exactly
/// one epoch.
#[derive(Debug)]
pub struct Predictor {
    handle: EpochHandle,
    scratch: VoteScratch,
}

impl Predictor {
    /// A predictor over a private, freshly wrapped bundle — for drivers
    /// that never hot-swap. Hot-swapping drivers share a handle via
    /// [`Predictor::shared`].
    pub fn new(bundle: ModelBundle) -> Self {
        Self::shared(EpochHandle::new(bundle))
    }

    /// A predictor reading (a clone of) a shared epoch handle: publishes
    /// through any clone of `handle` become visible on the next batch.
    pub fn shared(handle: EpochHandle) -> Self {
        Self {
            handle,
            scratch: VoteScratch::default(),
        }
    }

    /// The swappable model handle this predictor reads.
    pub fn handle(&self) -> &EpochHandle {
        &self.handle
    }

    pub fn feature_set(&self) -> FeatureSet {
        self.handle.feature_set()
    }

    /// One columnar 2-of-3 ensemble pass over contiguous row-major raw
    /// feature rows; `decisions` is cleared and refilled in row order.
    /// Returns the model epoch the whole batch was scored against.
    pub fn predict(&mut self, rows: &[f64], decisions: &mut Vec<bool>) -> u64 {
        let current = self.handle.load();
        let bundle = current.bundle();
        bundle.votes_batch(rows, bundle.feature_set.dim(), &mut self.scratch, decisions);
        current.epoch()
    }
}

/// Fig. 2 Data Processor (aggregation half): smoothing + stored verdicts.
#[derive(Debug)]
pub struct Aggregator {
    db: FlowDatabase,
    windows: FnvHashMap<FlowKey, SmoothingWindow>,
    window_size: usize,
    counts: VerdictCounts,
    latency_sum_us: f64,
    latency_max_us: f64,
}

impl Aggregator {
    pub fn new(db: FlowDatabase, window_size: usize) -> Self {
        Self {
            db,
            windows: FnvHashMap::default(),
            window_size,
            counts: VerdictCounts::default(),
            latency_sum_us: 0.0,
            latency_max_us: 0.0,
        }
    }

    /// Fold one ensemble decision into the flow's smoothing window,
    /// store the [`PredictionRecord`] (with `predicted_ns`, the latency
    /// against `registered_ns`, and the model `epoch` that voted), and
    /// return the smoothed verdict.
    pub fn aggregate(
        &mut self,
        key: FlowKey,
        attack: bool,
        registered_ns: u64,
        predicted_ns: u64,
        epoch: u64,
    ) -> Verdict {
        let window = self
            .windows
            .entry(key)
            .or_insert_with(|| SmoothingWindow::new(self.window_size));
        let verdict = window.push(attack);
        self.counts.observe(verdict);
        let latency_ns = predicted_ns.saturating_sub(registered_ns);
        let lat_us = latency_ns as f64 / 1e3;
        self.latency_sum_us += lat_us;
        self.latency_max_us = self.latency_max_us.max(lat_us);
        self.db.store_prediction(PredictionRecord {
            key,
            label: verdict.label(),
            epoch,
            predicted_ns,
            latency_ns,
        });
        verdict
    }

    /// Verdict tallies so far.
    pub fn counts(&self) -> VerdictCounts {
        self.counts
    }

    pub fn mean_latency_us(&self) -> f64 {
        if self.counts.predictions == 0 {
            0.0
        } else {
            self.latency_sum_us / self.counts.predictions as f64
        }
    }

    pub fn max_latency_us(&self) -> f64 {
        self.latency_max_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TelemetryEvent;
    use amlight_int::{HopMetadata, InstructionSet, TelemetryReport};
    use amlight_net::Protocol;
    use amlight_sflow::FlowSample;
    use std::net::Ipv4Addr;

    fn report(port: u16, t_ns: u64) -> TelemetryReport {
        TelemetryReport {
            flow: FlowKey::new(
                Ipv4Addr::new(9, 9, 9, 9),
                Ipv4Addr::new(10, 0, 0, 2),
                port,
                80,
                Protocol::Tcp,
            ),
            ip_len: 120,
            tcp_flags: Some(0x02),
            instructions: InstructionSet::amlight(),
            hops: vec![HopMetadata {
                switch_id: 0,
                ingress_tstamp: t_ns as u32,
                egress_tstamp: (t_ns as u32).wrapping_add(300),
                hop_latency: 0,
                queue_occupancy: 0,
            }]
            .into(),
            export_ns: t_ns,
        }
    }

    #[test]
    fn processor_forwards_updates_only() {
        let db = FlowDatabase::new();
        let mut p = Processor::new(
            FlowTableConfig::default(),
            db.clone(),
            VirtualClock {
                processing_delay_ns: 10,
            },
            FeatureSet::full(),
        );
        let mut rows = Vec::new();

        let first = p.ingest(&report(1, 100), &mut rows);
        assert_eq!(
            first,
            Ingest::Created {
                key: report(1, 100).flow,
                registered_ns: 110,
            }
        );
        assert!(rows.is_empty(), "created flows are never forwarded");
        assert_eq!(db.update_count(), 0);

        let second = p.ingest(&report(1, 200), &mut rows);
        match second {
            Ingest::Judged(j) => {
                assert_eq!(j.registered_ns, 210);
                assert_eq!(j.table_len, 1);
            }
            other => panic!("expected judged update, got {other:?}"),
        }
        assert_eq!(rows.len(), FeatureSet::full().dim());
        assert_eq!(db.update_count(), 1);
        assert_eq!(p.created(), 1);
        assert_eq!(p.flow_count(), 1);
    }

    /// A flood-shaped report stream: 40-byte packets at 20 µs on one
    /// flow — far outside the triage benign envelope.
    fn floody(seq: u64) -> TelemetryReport {
        let mut r = report(9, seq * 20_000);
        r.ip_len = 40;
        r
    }

    #[test]
    fn prefilter_on_decimates_suspicious_flows() {
        let db = FlowDatabase::new();
        let mut p = Processor::new(
            FlowTableConfig::default(),
            db.clone(),
            VirtualClock {
                processing_delay_ns: 0,
            },
            FeatureSet::full(),
        )
        .with_prefilter(
            PrefilterMode::On,
            TriageConfig {
                alarm_min_events: u64::MAX,
                ..TriageConfig::default()
            },
        );
        let mut rows = Vec::new();
        let n = 100u64;
        let mut forwarded = 0u64;
        let mut dropped = 0u64;
        for i in 0..n {
            match p.ingest(&floody(i), &mut rows) {
                Ingest::Created { .. } => {}
                Ingest::Judged(j) => {
                    assert_eq!(j.lane, TriageVerdict::Forward);
                    forwarded += 1;
                }
                Ingest::Dropped { .. } => dropped += 1,
            }
        }
        assert!(forwarded > 0 && dropped > 0, "decimation forwards a sample");
        assert!(dropped > forwarded, "most of the firehose is dropped");
        // Dropped updates appended no rows …
        assert_eq!(rows.len() as u64 / 15, forwarded);
        // … but every update (dropped included) hit the database.
        assert_eq!(db.update_count() as u64, n - 1);
        let lanes = p.lane_counts();
        assert_eq!(lanes.forwarded, forwarded);
        assert_eq!(lanes.dropped, dropped);
        assert_eq!(p.triage_counters().scored, n - 1);
    }

    #[test]
    fn prefilter_shadow_counts_but_never_gates() {
        let db = FlowDatabase::new();
        let mk = |mode| {
            Processor::new(
                FlowTableConfig::default(),
                db.clone(),
                VirtualClock {
                    processing_delay_ns: 0,
                },
                FeatureSet::full(),
            )
            .with_prefilter(mode, TriageConfig::default())
        };
        let mut off = mk(PrefilterMode::Off);
        let mut shadow = mk(PrefilterMode::Shadow);
        let mut rows_off = Vec::new();
        let mut rows_shadow = Vec::new();
        for i in 0..50u64 {
            let a = off.ingest(&floody(i), &mut rows_off);
            let b = shadow.ingest(&floody(i), &mut rows_shadow);
            assert_eq!(a, b, "shadow must be bit-identical to off");
        }
        assert_eq!(rows_off, rows_shadow);
        assert_eq!(shadow.lane_counts().dropped, 0);
        assert_eq!(shadow.lane_counts().deferred, 0);
        let would = shadow.triage_counters();
        assert!(would.drop > 0, "shadow still counts would-be drops");
        assert_eq!(off.triage_counters(), TriageCounters::default());
    }

    #[test]
    fn wall_clock_is_monotone_and_shared() {
        let clock = WallClock::new();
        let sibling = clock; // Copy: same epoch
        let a = clock.register_ns(0);
        let b = sibling.now_ns();
        assert!(b >= a, "clones share the epoch: {b} < {a}");
    }

    #[test]
    fn processor_ingests_sflow_through_the_same_path() {
        let db = FlowDatabase::new();
        let mut p = Processor::new(
            FlowTableConfig::default(),
            db.clone(),
            VirtualClock {
                processing_delay_ns: 10,
            },
            FeatureSet::full().without(&amlight_features::FeatureId::QUEUE_COLUMNS),
        );
        let sample = |t_ns: u64| FlowSample {
            flow: report(5, 0).flow,
            ip_len: 40,
            tcp_flags: Some(0x02),
            observed_ns: t_ns,
            sampling_period: 4096,
        };
        let mut rows = Vec::new();

        // Same created-vs-updated forwarding rule, registration stamped
        // off the sample's observation time.
        match p.ingest(&sample(100), &mut rows) {
            Ingest::Created { registered_ns, .. } => assert_eq!(registered_ns, 110),
            other => panic!("expected created, got {other:?}"),
        }
        assert!(rows.is_empty());
        match p.ingest(&TelemetryEvent::from(sample(200)), &mut rows) {
            Ingest::Judged(j) => assert_eq!(j.registered_ns, 210),
            other => panic!("expected judged update, got {other:?}"),
        }
        assert_eq!(
            rows.len(),
            FeatureSet::full()
                .without(&amlight_features::FeatureId::QUEUE_COLUMNS)
                .dim()
        );
        assert_eq!(db.update_count(), 1);
    }

    #[test]
    fn aggregator_counts_and_stamps() {
        let db = FlowDatabase::new();
        let mut agg = Aggregator::new(db.clone(), 3);
        let key = report(7, 0).flow;
        assert_eq!(agg.aggregate(key, true, 100, 400, 0), Verdict::Pending);
        assert_eq!(agg.aggregate(key, true, 200, 600, 0), Verdict::Pending);
        assert_eq!(agg.aggregate(key, true, 300, 800, 1), Verdict::Attack);
        let c = agg.counts();
        assert_eq!(c.predictions, 3);
        assert_eq!(c.attacks, 1);
        assert_eq!(c.pendings, 2);
        let preds = db.predictions();
        assert_eq!(preds.len(), 3);
        assert_eq!(preds[0].predicted_ns, 400);
        assert_eq!(preds[0].latency_ns, 300);
        assert_eq!(preds[2].label, Some(true));
        assert_eq!(preds[2].epoch, 1, "verdicts carry the voting epoch");
        assert_eq!(db.epochs_used(), vec![0, 1]);
        assert!(agg.max_latency_us() >= agg.mean_latency_us());
    }
}
