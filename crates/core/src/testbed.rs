//! The end-to-end lab: topology + traffic + simulation + INT telemetry
//! in one object — the software analogue of the paper's Fig. 6 testbed.

use amlight_int::{IntInstrumenter, TelemetryReport};
use amlight_net::{Trace, TrafficClass};
use amlight_sim::topology::LinkParams;
use amlight_sim::{NetworkSim, SimReport, Topology};
use amlight_traffic::{ReplayLibrary, TrafficMix, TrafficMixConfig};
use serde::{Deserialize, Serialize};

/// Testbed shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestbedConfig {
    /// Switches in the path: 1 = the Fig. 6 testbed, >1 = a Fig. 1-style
    /// INT chain.
    pub hops: usize,
    pub link: LinkParams,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        Self {
            hops: 1,
            link: LinkParams::default(),
        }
    }
}

/// The assembled lab.
pub struct Testbed {
    config: TestbedConfig,
    instrumenter: IntInstrumenter,
}

impl Testbed {
    pub fn new(config: TestbedConfig) -> Self {
        Self {
            config,
            instrumenter: IntInstrumenter::amlight(),
        }
    }

    pub fn config(&self) -> &TestbedConfig {
        &self.config
    }

    fn build_sim(&self) -> NetworkSim {
        let topo = if self.config.hops == 1 {
            // Fig. 6 testbed shape, with this config's link parameters
            // (the congestion ablation narrows the target-side port).
            let mut t = Topology::new();
            let sw = t.add_switch("wedge-dcs800", Default::default());
            let source = t.add_host("source-agent", std::net::Ipv4Addr::new(10, 0, 0, 1));
            let target = t.add_host("target-agent", std::net::Ipv4Addr::new(10, 0, 0, 2));
            t.attach_host(source, sw, self.config.link);
            t.attach_host(target, sw, self.config.link);
            t.compute_routes();
            t
        } else {
            Topology::linear_chain(self.config.hops, self.config.link).0
        };
        NetworkSim::new(topo)
    }

    /// Push a trace through the dataplane; returns the raw sim report.
    pub fn simulate(&self, trace: &Trace) -> SimReport {
        self.build_sim().run(trace)
    }

    /// Push a trace through the dataplane and extract INT telemetry with
    /// ground-truth labels.
    pub fn run_labeled(&self, trace: &Trace) -> Vec<(TelemetryReport, TrafficClass)> {
        let sim = self.simulate(trace);
        self.instrumenter.instrument_labeled(trace, &sim)
    }

    /// Unlabeled telemetry (deployment view).
    pub fn run(&self, trace: &Trace) -> Vec<TelemetryReport> {
        let sim = self.simulate(trace);
        self.instrumenter.instrument(trace, &sim)
    }

    /// Replay the paper's Table I capture (compressed to `day_len_s`-
    /// second days) and return labeled telemetry.
    pub fn replay_capture(
        &self,
        day_len_s: u64,
        seed: u64,
    ) -> Vec<(TelemetryReport, TrafficClass)> {
        let mix = TrafficMix::new(TrafficMixConfig::paper_capture(day_len_s, seed));
        self.run_labeled(&mix.generate())
    }

    /// Replay one per-class trace from a [`ReplayLibrary`] (the Table VI
    /// procedure: `tcpreplay` of ~2,500 packets per flow type).
    pub fn replay_class(
        &self,
        library: &ReplayLibrary,
        class: TrafficClass,
    ) -> Vec<(TelemetryReport, TrafficClass)> {
        self.run_labeled(library.by_class(class))
    }

    /// A small smoke-test run: a short mixed capture. Used by the facade
    /// crate's doc example.
    pub fn replay_quick(&mut self, seed: u64) -> Vec<TelemetryReport> {
        let mix = TrafficMix::new(TrafficMixConfig::paper_capture(2, seed));
        self.run(&mix.generate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_replay_produces_telemetry() {
        let mut lab = Testbed::new(TestbedConfig::default());
        let reports = lab.replay_quick(42);
        assert!(!reports.is_empty());
        // Every report has exactly one hop on the single-switch testbed.
        assert!(reports.iter().all(|r| r.hops.len() == 1));
    }

    #[test]
    fn labeled_replay_carries_all_classes() {
        let lab = Testbed::new(TestbedConfig::default());
        let labeled = lab.replay_capture(3, 7);
        for class in TrafficClass::ALL {
            assert!(
                labeled.iter().any(|(_, c)| *c == class),
                "missing {class:?}"
            );
        }
    }

    #[test]
    fn chain_testbed_stacks_hops() {
        let lab = Testbed::new(TestbedConfig {
            hops: 3,
            ..Default::default()
        });
        let labeled = lab.replay_capture(1, 9);
        assert!(labeled.iter().all(|(r, _)| r.hops.len() == 3));
    }

    #[test]
    fn class_replay_is_single_class() {
        let lab = Testbed::new(TestbedConfig::default());
        let lib = ReplayLibrary::build(200, 3);
        let labeled = lab.replay_class(&lib, TrafficClass::SlowLoris);
        assert!(!labeled.is_empty());
        assert!(labeled.iter().all(|(_, c)| *c == TrafficClass::SlowLoris));
    }

    #[test]
    fn flood_builds_queue_occupancy_on_testbed() {
        let lab = Testbed::new(TestbedConfig::default());
        let lib = ReplayLibrary::build(1500, 11);
        let flood = lab.replay_class(&lib, TrafficClass::SynFlood);
        let benign = lab.replay_class(&lib, TrafficClass::Benign);
        let max_q = |reports: &[(TelemetryReport, TrafficClass)]| {
            reports
                .iter()
                .map(|(r, _)| r.max_queue_occupancy())
                .max()
                .unwrap_or(0)
        };
        // 100 Gb/s links swallow a 50 kpps flood easily; what matters is
        // the *relative* queue pressure signature.
        assert!(
            max_q(&flood) >= max_q(&benign),
            "flood should not be gentler on queues than benign"
        );
    }
}
