//! The new-flow-rate guard: catching what per-update prediction cannot.
//!
//! Ablation 4 (`repro_ablations`) shows a structural blind spot of the
//! paper's mechanism: a fully spoofed SYN flood makes every packet its
//! own flow, the CentralServer skips brand-new flows, and the ML path
//! produces **zero** predictions. The telemetry still screams, though —
//! as a *flow-creation rate* anomaly at the victim address.
//!
//! This module adds that complementary detector: a count-min sketch
//! tallies flow creations per destination per epoch; an EWMA baseline
//! per alerting destination turns "this epoch created 400× the usual
//! number of flows toward 10.0.0.2" into an alert. Sketching keeps the
//! state O(width × depth) regardless of how many addresses a spoofed
//! flood touches — the same reason production scrubbers sketch.

use amlight_net::flow::FnvHashMap;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// A count-min sketch over `u64`-hashable keys.
///
/// Estimates are biased upward (never under), bounded by
/// `true + ε·total` with ε = e/width at confidence 1 − e^−depth.
///
/// ```
/// use amlight_core::guard::CountMinSketch;
///
/// let mut sketch = CountMinSketch::new(256, 4);
/// for _ in 0..42 {
///     sketch.increment(0xDD05_u64, 1);
/// }
/// assert!(sketch.estimate(0xDD05_u64) >= 42); // never underestimates
/// assert_eq!(sketch.estimate(0x1234), 0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CountMinSketch {
    width: usize,
    depth: usize,
    counters: Vec<u32>,
    total: u64,
}

impl CountMinSketch {
    pub fn new(width: usize, depth: usize) -> Self {
        assert!(width >= 2 && depth >= 1, "degenerate sketch dimensions");
        Self {
            width,
            depth,
            counters: vec![0; width * depth],
            total: 0,
        }
    }

    /// ~1% overestimate at 99.9% confidence for typical epoch volumes.
    pub fn for_flow_counting() -> Self {
        Self::new(2048, 4)
    }

    // amlint: allow(R8) -- SEEDS indexed mod its length
    #[inline]
    fn cell(&self, row: usize, key: u64) -> usize {
        // Row-seeded multiply-shift hashing; odd multipliers.
        const SEEDS: [u64; 8] = [
            0x9e37_79b9_7f4a_7c15,
            0xc2b2_ae3d_27d4_eb4f,
            0x1656_67b1_9e37_79f9,
            0x27d4_eb2f_1656_67c5,
            0x1234_5678_9abc_def1,
            0xdead_beef_cafe_4321,
            0x0fed_cba9_8765_4321,
            0x9876_5432_1fed_cba9,
        ];
        let h = key
            .wrapping_mul(SEEDS[row % SEEDS.len()])
            .rotate_left(17)
            .wrapping_mul(SEEDS[(row + 3) % SEEDS.len()]);
        row * self.width + (h % self.width as u64) as usize
    }

    /// Add `count` to `key`; returns the new (over-)estimate.
    // amlint: allow(R8) -- cell() = row*width + h%width < depth*width = counters.len()
    pub fn increment(&mut self, key: u64, count: u32) -> u32 {
        self.total += u64::from(count);
        let mut est = u32::MAX;
        for row in 0..self.depth {
            let c = self.cell(row, key);
            self.counters[c] = self.counters[c].saturating_add(count);
            est = est.min(self.counters[c]);
        }
        est
    }

    /// Point estimate (minimum over rows).
    // amlint: allow(R8) -- cell() = row*width + h%width < depth*width = counters.len()
    pub fn estimate(&self, key: u64) -> u32 {
        (0..self.depth)
            .map(|row| self.counters[self.cell(row, key)])
            .min()
            .unwrap_or(0)
    }

    /// Total increments since the last clear.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Reset all counters (start of a new epoch).
    pub fn clear(&mut self) {
        self.counters.fill(0);
        self.total = 0;
    }
}

/// One flood alert.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FloodAlert {
    pub dst: Ipv4Addr,
    pub epoch_start_ns: u64,
    /// New flows created toward `dst` this epoch (sketch estimate).
    pub new_flows: u32,
    /// EWMA baseline at alert time.
    pub baseline: f64,
}

/// Guard tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GuardConfig {
    /// Epoch length, ns.
    pub epoch_ns: u64,
    /// EWMA weight for the per-destination baseline.
    pub alpha: f64,
    /// Alert when epoch count > factor × baseline …
    pub factor: f64,
    /// … and also above this absolute floor (spares tiny services).
    pub min_flows: u32,
}

impl Default for GuardConfig {
    fn default() -> Self {
        Self {
            epoch_ns: 1_000_000_000, // 1 s epochs
            alpha: 0.2,
            factor: 8.0,
            min_flows: 50,
        }
    }
}

/// Epoch-based new-flow-rate anomaly detector.
#[derive(Debug)]
pub struct NewFlowGuard {
    cfg: GuardConfig,
    sketch: CountMinSketch,
    epoch_start_ns: u64,
    /// Destinations that created flows this epoch (bounded: one entry per
    /// *victim*, not per spoofed source).
    active_dsts: FnvHashMap<Ipv4Addr, ()>,
    baselines: FnvHashMap<Ipv4Addr, f64>,
    alerts: Vec<FloodAlert>,
}

impl NewFlowGuard {
    pub fn new(cfg: GuardConfig) -> Self {
        Self {
            cfg,
            sketch: CountMinSketch::for_flow_counting(),
            epoch_start_ns: 0,
            active_dsts: FnvHashMap::default(),
            baselines: FnvHashMap::default(),
            alerts: Vec::new(),
        }
    }

    fn key(dst: Ipv4Addr) -> u64 {
        u64::from(u32::from(dst))
    }

    /// Record one flow creation toward `dst` at time `now_ns`.
    pub fn record_created(&mut self, dst: Ipv4Addr, now_ns: u64) {
        // Roll epochs forward (possibly through empty ones).
        while now_ns >= self.epoch_start_ns + self.cfg.epoch_ns {
            self.close_epoch();
            self.epoch_start_ns += self.cfg.epoch_ns;
        }
        self.sketch.increment(Self::key(dst), 1);
        // amlint: cold -- bounded: one entry per victim destination, cleared each epoch
        self.active_dsts.entry(dst).or_insert(());
    }

    // amlint: cold -- per-epoch (1 s) close-out, not the per-event path
    fn close_epoch(&mut self) {
        let dsts: Vec<Ipv4Addr> = self.active_dsts.keys().copied().collect();
        for dst in dsts {
            let count = self.sketch.estimate(Self::key(dst));
            let baseline = self.baselines.entry(dst).or_insert(0.0);
            let threshold = (*baseline * self.cfg.factor).max(f64::from(self.cfg.min_flows));
            if f64::from(count) > threshold {
                self.alerts.push(FloodAlert {
                    dst,
                    epoch_start_ns: self.epoch_start_ns,
                    new_flows: count,
                    baseline: *baseline,
                });
                // Alerted epochs feed the baseline at strongly reduced
                // weight: an attacker must sustain a flood for minutes
                // before it becomes the "new normal".
                *baseline += self.cfg.alpha * 0.02 * (f64::from(count) - *baseline);
            } else {
                *baseline += self.cfg.alpha * (f64::from(count) - *baseline);
            }
        }
        self.sketch.clear();
        self.active_dsts.clear();
    }

    /// Flush the current partial epoch and return all alerts.
    pub fn finish(mut self) -> Vec<FloodAlert> {
        self.close_epoch();
        self.alerts
    }

    pub fn alerts(&self) -> &[FloodAlert] {
        &self.alerts
    }

    pub fn baseline(&self, dst: Ipv4Addr) -> f64 {
        self.baselines.get(&dst).copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sketch_never_underestimates() {
        let mut s = CountMinSketch::new(64, 4);
        for k in 0..1000u64 {
            s.increment(k, (k % 5) as u32 + 1);
        }
        for k in 0..1000u64 {
            assert!(s.estimate(k) > (k % 5) as u32, "key {k}");
        }
    }

    #[test]
    fn sketch_is_accurate_when_roomy() {
        let mut s = CountMinSketch::for_flow_counting();
        for k in 0..100u64 {
            for _ in 0..(k + 1) {
                s.increment(k, 1);
            }
        }
        for k in 0..100u64 {
            let est = s.estimate(k);
            assert!(est as u64 <= k + 1 + 3, "key {k} est {est}");
        }
        assert_eq!(s.total(), (1..=100).sum::<u64>());
    }

    #[test]
    fn sketch_clear_resets() {
        let mut s = CountMinSketch::new(16, 2);
        s.increment(7, 100);
        s.clear();
        assert_eq!(s.estimate(7), 0);
        assert_eq!(s.total(), 0);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_sketch_rejected() {
        CountMinSketch::new(1, 0);
    }

    fn dst() -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, 2)
    }

    #[test]
    fn steady_rate_never_alerts() {
        let mut g = NewFlowGuard::new(GuardConfig::default());
        // 20 new flows/s for 30 s — under the 50-flow floor.
        for s in 0..30u64 {
            for i in 0..20u64 {
                g.record_created(dst(), s * 1_000_000_000 + i * 1_000_000);
            }
        }
        assert!(g.finish().is_empty());
    }

    #[test]
    fn flood_epoch_alerts_with_baseline_context() {
        let mut g = NewFlowGuard::new(GuardConfig::default());
        // 5 s of calm (20 flows/s), then a 5,000-flow second.
        for s in 0..5u64 {
            for i in 0..20u64 {
                g.record_created(dst(), s * 1_000_000_000 + i * 1_000_000);
            }
        }
        for i in 0..5_000u64 {
            g.record_created(dst(), 5_000_000_000 + i * 100_000);
        }
        let alerts = g.finish();
        assert_eq!(alerts.len(), 1, "exactly the flood epoch");
        let a = alerts[0];
        assert_eq!(a.dst, dst());
        assert!(a.new_flows >= 5_000);
        assert!(
            a.baseline > 10.0 && a.baseline < 30.0,
            "baseline {}",
            a.baseline
        );
        assert_eq!(a.epoch_start_ns, 5_000_000_000);
    }

    #[test]
    fn burst_to_unpopular_dst_still_needs_floor() {
        let mut g = NewFlowGuard::new(GuardConfig {
            min_flows: 100,
            ..Default::default()
        });
        // 60 flows in one epoch to a never-seen dst: over 8× baseline(0)
        // but under the floor.
        for i in 0..60u64 {
            g.record_created(dst(), i * 1_000_000);
        }
        assert!(g.finish().is_empty());
    }

    #[test]
    fn per_destination_isolation() {
        let mut g = NewFlowGuard::new(GuardConfig::default());
        let quiet = Ipv4Addr::new(10, 0, 0, 3);
        for s in 0..3u64 {
            for i in 0..10u64 {
                g.record_created(quiet, s * 1_000_000_000 + i * 1_000_000);
            }
        }
        // Flood a different address.
        for i in 0..2_000u64 {
            g.record_created(dst(), 3_000_000_000 + i * 100_000);
        }
        let alerts = g.finish();
        assert!(alerts.iter().all(|a| a.dst == dst()));
        assert_eq!(alerts.len(), 1);
    }

    #[test]
    fn sustained_flood_keeps_alerting() {
        let mut g = NewFlowGuard::new(GuardConfig::default());
        for s in 0..2u64 {
            for i in 0..20u64 {
                g.record_created(dst(), s * 1_000_000_000 + i * 1_000_000);
            }
        }
        // Ten straight flood seconds.
        for s in 2..12u64 {
            for i in 0..3_000u64 {
                g.record_created(dst(), s * 1_000_000_000 + i * 300_000);
            }
        }
        let alerts = g.finish();
        assert!(
            alerts.len() >= 8,
            "the slow-adapting baseline must keep the alarm up, got {}",
            alerts.len()
        );
    }

    #[test]
    fn empty_epochs_roll_silently() {
        let mut g = NewFlowGuard::new(GuardConfig::default());
        g.record_created(dst(), 100);
        // Next event 1000 epochs later.
        g.record_created(dst(), 1_000 * 1_000_000_000 + 5);
        assert!(g.finish().is_empty());
    }
}
