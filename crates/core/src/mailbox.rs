//! Bounded event mailboxes: the backpressure boundary between network
//! listener threads and the pipeline's collection stage.
//!
//! A live collector cannot block its listener threads on a slow
//! consumer — a stalled `recvmmsg` loop turns into kernel-side socket
//! buffer overflow, which drops datagrams invisibly. Instead each
//! listener publishes [`LabeledEvent`] *batches* into an
//! [`EventMailbox`] with a hard capacity and an explicit
//! [`OverflowPolicy`]; when the consumer falls behind, the mailbox
//! sheds load measurably (per-mailbox drop counters) instead of
//! unboundedly (heap growth) or invisibly (kernel drops).
//!
//! Batches, not events, are the unit of transfer: one mutex
//! acquisition moves up to a whole receive batch across the thread
//! boundary, and drained batch shells recycle through a free list so
//! the steady-state listener hot loop allocates nothing.

use crate::event::LabeledEvent;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// What a full mailbox does with the overflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Evict the oldest queued batch to make room for the new one —
    /// the consumer sees the freshest traffic, which is what a
    /// detector wants (stale telemetry ages out of the flow windows
    /// anyway).
    DropOldest,
    /// Refuse the incoming batch — the consumer sees a contiguous
    /// prefix of the stream, which is what replay-style analysis
    /// wants.
    DropNewest,
}

impl OverflowPolicy {
    pub fn name(self) -> &'static str {
        match self {
            OverflowPolicy::DropOldest => "drop-oldest",
            OverflowPolicy::DropNewest => "drop-newest",
        }
    }

    /// Parse a CLI `--overflow` value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "drop-oldest" => Some(OverflowPolicy::DropOldest),
            "drop-newest" => Some(OverflowPolicy::DropNewest),
            _ => None,
        }
    }
}

/// Queue + free list, behind one mutex. Shells move between the two
/// sides but are never freed in steady state.
struct Inner {
    ready: VecDeque<Vec<LabeledEvent>>,
    free: Vec<Vec<LabeledEvent>>,
}

/// A bounded, policy-governed queue of event batches. One producer
/// (a listener thread) and one consumer (the collection stage's
/// [`crate::source::SocketSource`]) in the intended topology, though
/// nothing breaks with more of either.
pub struct EventMailbox {
    inner: Mutex<Inner>,
    /// Most `ready` batches held at once.
    capacity: usize,
    policy: OverflowPolicy,
    closed: AtomicBool,
    published_batches: AtomicU64,
    published_events: AtomicU64,
    dropped_batches: AtomicU64,
    dropped_events: AtomicU64,
}

impl EventMailbox {
    /// A mailbox holding at most `capacity` pending batches (minimum 1).
    pub fn new(capacity: usize, policy: OverflowPolicy) -> Self {
        Self {
            inner: Mutex::new(Inner {
                ready: VecDeque::new(),
                free: Vec::new(),
            }),
            capacity: capacity.max(1),
            policy,
            closed: AtomicBool::new(false),
            published_batches: AtomicU64::new(0),
            published_events: AtomicU64::new(0),
            dropped_batches: AtomicU64::new(0),
            dropped_events: AtomicU64::new(0),
        }
    }

    /// Take an empty batch shell to fill — recycled when available,
    /// fresh otherwise. The steady state never allocates: every shell
    /// the consumer recycles comes back through here.
    // amlint: hot
    pub fn acquire(&self) -> Vec<LabeledEvent> {
        self.inner.lock().free.pop().unwrap_or_default()
    }

    /// Publish a filled batch. Returns how many *events* the policy had
    /// to shed to honor the capacity bound (0 = stored cleanly). Empty
    /// batches are recycled without occupying a slot.
    // amlint: hot
    pub fn publish(&self, batch: Vec<LabeledEvent>) -> usize {
        if batch.is_empty() {
            self.recycle(batch);
            return 0;
        }
        let incoming = batch.len();
        let mut shed = 0usize;
        let mut guard = self.inner.lock();
        if guard.ready.len() < self.capacity {
            // amlint: cold -- ready queue bounded by `capacity`, checked above
            guard.ready.push_back(batch);
        } else {
            match self.policy {
                OverflowPolicy::DropOldest => {
                    if let Some(mut oldest) = guard.ready.pop_front() {
                        shed = oldest.len();
                        oldest.clear();
                        if guard.free.len() <= self.capacity {
                            // amlint: cold -- capacity-bounded free list of recycled shells
                            guard.free.push(oldest);
                        }
                    }
                    // amlint: cold -- slot just vacated by pop_front: stays within capacity
                    guard.ready.push_back(batch);
                }
                OverflowPolicy::DropNewest => {
                    shed = incoming;
                    let mut batch = batch;
                    batch.clear();
                    if guard.free.len() <= self.capacity {
                        // amlint: cold -- capacity-bounded free list of recycled shells
                        guard.free.push(batch);
                    }
                }
            }
        }
        drop(guard);
        if shed > 0 {
            self.dropped_batches.fetch_add(1, Ordering::Relaxed);
            self.dropped_events
                .fetch_add(shed as u64, Ordering::Relaxed);
        }
        // A drop-newest rejection never entered the queue; everything
        // else did (drop-oldest sheds a previously published batch).
        if shed == 0 || self.policy == OverflowPolicy::DropOldest {
            self.published_batches.fetch_add(1, Ordering::Relaxed);
            self.published_events
                .fetch_add(incoming as u64, Ordering::Relaxed);
        }
        shed
    }

    /// Take the oldest pending batch, if any.
    // amlint: hot
    pub fn pop(&self) -> Option<Vec<LabeledEvent>> {
        self.inner.lock().ready.pop_front()
    }

    /// Return a drained shell to the free list (capacity-bounded so a
    /// burst can't permanently hoard memory).
    // amlint: hot
    pub fn recycle(&self, mut batch: Vec<LabeledEvent>) {
        batch.clear();
        let mut guard = self.inner.lock();
        if guard.free.len() <= self.capacity {
            // amlint: cold -- capacity-bounded free list of recycled shells
            guard.free.push(batch);
        }
    }

    /// Mark the producer gone. Pending batches stay poppable; a closed
    /// *and* empty mailbox is end-of-stream.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }

    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Closed and nothing left to pop: this mailbox will never yield
    /// another event.
    pub fn is_finished(&self) -> bool {
        self.is_closed() && self.inner.lock().ready.is_empty()
    }

    /// Pending (published, not yet popped) batches.
    pub fn pending_batches(&self) -> usize {
        self.inner.lock().ready.len()
    }

    /// Batches accepted into the queue so far.
    pub fn published_batches(&self) -> u64 {
        self.published_batches.load(Ordering::Relaxed)
    }

    /// Events accepted into the queue so far.
    pub fn published_events(&self) -> u64 {
        self.published_events.load(Ordering::Relaxed)
    }

    /// Batches shed by the overflow policy.
    pub fn dropped_batches(&self) -> u64 {
        self.dropped_batches.load(Ordering::Relaxed)
    }

    /// Events shed by the overflow policy. Together with the consumer's
    /// tally this accounts for every published event:
    /// `published_events == consumed + dropped_events + pending`.
    pub fn dropped_events(&self) -> u64 {
        self.dropped_events.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for EventMailbox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventMailbox")
            .field("capacity", &self.capacity)
            .field("policy", &self.policy.name())
            .field("pending", &self.pending_batches())
            .field("closed", &self.is_closed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amlight_int::{HopMetadata, InstructionSet, TelemetryReport};
    use amlight_net::{FlowKey, Protocol};
    use std::net::Ipv4Addr;

    fn event(tag: u32) -> LabeledEvent {
        TelemetryReport {
            flow: FlowKey::new(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 0, 2),
                (1000 + tag) as u16,
                80,
                Protocol::Tcp,
            ),
            ip_len: 60,
            tcp_flags: Some(0x02),
            instructions: InstructionSet::amlight(),
            hops: vec![HopMetadata {
                switch_id: tag,
                ..Default::default()
            }]
            .into(),
            export_ns: u64::from(tag),
        }
        .into()
    }

    fn batch(tags: std::ops::Range<u32>) -> Vec<LabeledEvent> {
        tags.map(event).collect()
    }

    #[test]
    fn publish_pop_roundtrip_in_order() {
        let mb = EventMailbox::new(4, OverflowPolicy::DropOldest);
        assert_eq!(mb.publish(batch(0..3)), 0);
        assert_eq!(mb.publish(batch(3..5)), 0);
        assert_eq!(mb.pop().map(|b| b.len()), Some(3));
        assert_eq!(mb.pop().map(|b| b.len()), Some(2));
        assert!(mb.pop().is_none());
        assert_eq!(mb.published_events(), 5);
        assert_eq!(mb.dropped_events(), 0);
    }

    #[test]
    fn drop_oldest_sheds_the_front() {
        let mb = EventMailbox::new(2, OverflowPolicy::DropOldest);
        mb.publish(batch(0..1)); // oldest
        mb.publish(batch(1..3));
        assert_eq!(mb.publish(batch(3..6)), 1, "one event shed from front");
        // The survivor queue is the two newest batches.
        assert_eq!(mb.pop().map(|b| b.len()), Some(2));
        assert_eq!(mb.pop().map(|b| b.len()), Some(3));
        assert_eq!(mb.dropped_batches(), 1);
        assert_eq!(mb.dropped_events(), 1);
        // All three published batches counted; accounting stays exact:
        // published == consumed + dropped.
        assert_eq!(mb.published_events(), 6);
        assert_eq!(mb.published_events(), 5 + mb.dropped_events());
    }

    #[test]
    fn drop_newest_refuses_the_incoming() {
        let mb = EventMailbox::new(1, OverflowPolicy::DropNewest);
        mb.publish(batch(0..2));
        assert_eq!(mb.publish(batch(2..7)), 5);
        assert_eq!(mb.pop().map(|b| b.len()), Some(2));
        assert!(mb.pop().is_none());
        assert_eq!(mb.dropped_events(), 5);
        assert_eq!(mb.published_events(), 2, "rejected batch never published");
    }

    #[test]
    fn shells_recycle_through_the_free_list() {
        let mb = EventMailbox::new(4, OverflowPolicy::DropOldest);
        let mut shell = mb.acquire();
        let baseline_ptr = {
            shell.extend(batch(0..4));
            shell.as_ptr() as usize
        };
        mb.publish(shell);
        let popped = mb.pop().expect("one pending batch");
        mb.recycle(popped);
        let again = mb.acquire();
        assert!(again.capacity() >= 4, "capacity survives recycling");
        assert_eq!(again.as_ptr() as usize, baseline_ptr, "same allocation");
        assert!(again.is_empty());
    }

    #[test]
    fn close_then_drain_then_finished() {
        let mb = EventMailbox::new(4, OverflowPolicy::DropOldest);
        mb.publish(batch(0..2));
        mb.close();
        assert!(mb.is_closed());
        assert!(!mb.is_finished(), "pending batches still poppable");
        assert_eq!(mb.pop().map(|b| b.len()), Some(2));
        assert!(mb.is_finished());
    }

    #[test]
    fn empty_batches_do_not_occupy_slots() {
        let mb = EventMailbox::new(1, OverflowPolicy::DropNewest);
        mb.publish(Vec::new());
        assert_eq!(mb.pending_batches(), 0);
        assert_eq!(mb.publish(batch(0..1)), 0, "slot still free");
    }
}
