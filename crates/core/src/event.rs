//! The telemetry-generic event layer: one abstraction over both
//! telemetry backends the paper compares.
//!
//! The paper's headline result is *comparative* — INT's per-packet
//! reports against sFlow's 1-in-4,096 sampling (Fig. 5) — so the
//! pipeline must be able to run either backend through the *same*
//! Fig. 2 stages. [`TelemetryEvent`] is the unified currency: an INT
//! [`TelemetryReport`] or an sFlow [`FlowSample`], each implying its
//! [`FeatureSet`] (INT sees queue occupancy, sFlow does not — 15-wide
//! vs 12-wide rows). The [`Telemetry`] trait is the zero-cost static
//! face of the same dispatch: the virtual-time driver stays monomorphic
//! over `TelemetryReport` (bit-identical to the pre-refactor path)
//! while the streaming runtime moves owned [`TelemetryEvent`]s through
//! its channels.
//!
//! Both event kinds carry the same [`FlowKey`] 5-tuple, so shard
//! routing ([`amlight_features::ShardRouter`]) hashes identically for
//! both backends — a flow lands on the same shard no matter which
//! telemetry system observed it.

use amlight_features::{FeatureSet, FlowRecord, FlowTable, UpdateKind};
use amlight_int::TelemetryReport;
use amlight_net::{FlowKey, TrafficClass};
use amlight_sflow::{FlowSample, SflowAgent};
use serde::{Deserialize, Serialize};

/// Which telemetry system produced a stream — the CLI/bench selector.
/// (JSON outputs use [`TelemetryBackend::name`] for the lowercase form;
/// the serde shim has no field-attribute support.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TelemetryBackend {
    /// Per-packet in-band telemetry reports.
    Int,
    /// Sampled sFlow observation.
    Sflow,
}

impl TelemetryBackend {
    pub fn name(self) -> &'static str {
        match self {
            TelemetryBackend::Int => "int",
            TelemetryBackend::Sflow => "sflow",
        }
    }

    /// The feature projection this backend's events can populate.
    pub fn feature_set(self) -> FeatureSet {
        match self {
            TelemetryBackend::Int => FeatureSet::Int,
            TelemetryBackend::Sflow => FeatureSet::Sflow,
        }
    }

    /// Parse a `--telemetry` value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "int" => Some(TelemetryBackend::Int),
            "sflow" => Some(TelemetryBackend::Sflow),
            _ => None,
        }
    }
}

/// One telemetry observation from either backend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TelemetryEvent {
    Int(TelemetryReport),
    Sflow(FlowSample),
}

impl TelemetryEvent {
    pub fn backend(&self) -> TelemetryBackend {
        match self {
            TelemetryEvent::Int(_) => TelemetryBackend::Int,
            TelemetryEvent::Sflow(_) => TelemetryBackend::Sflow,
        }
    }
}

impl From<TelemetryReport> for TelemetryEvent {
    fn from(r: TelemetryReport) -> Self {
        TelemetryEvent::Int(r)
    }
}

impl From<FlowSample> for TelemetryEvent {
    fn from(s: FlowSample) -> Self {
        TelemetryEvent::Sflow(s)
    }
}

/// What the shared Fig. 2 stages need from a telemetry observation:
/// a flow identity for routing, a native timestamp for the clock, and
/// the right [`FlowTable`] update.
///
/// Implemented for [`TelemetryReport`], [`FlowSample`], and the dynamic
/// [`TelemetryEvent`], so drivers can stay monomorphic over one backend
/// (the virtual-time replay) or mix both behind the enum (the streaming
/// runtime).
pub trait Telemetry {
    /// The 5-tuple the event belongs to — both backends carry the full
    /// key, which is what makes shard routing backend-agnostic.
    fn flow(&self) -> FlowKey;

    /// The event's native clock: INT export time, sFlow observation
    /// time (both ns). Feeds [`crate::modules::Clock::register_ns`].
    fn event_ns(&self) -> u64;

    /// The feature projection this event's table update can populate.
    fn feature_set(&self) -> FeatureSet;

    /// Apply the backend-specific flow-table update.
    fn update<'t>(&self, table: &'t mut FlowTable) -> (UpdateKind, &'t FlowRecord);
}

impl Telemetry for TelemetryReport {
    #[inline]
    fn flow(&self) -> FlowKey {
        self.flow
    }

    #[inline]
    fn event_ns(&self) -> u64 {
        self.export_ns
    }

    #[inline]
    fn feature_set(&self) -> FeatureSet {
        FeatureSet::Int
    }

    #[inline]
    fn update<'t>(&self, table: &'t mut FlowTable) -> (UpdateKind, &'t FlowRecord) {
        table.update_int(self)
    }
}

impl Telemetry for FlowSample {
    #[inline]
    fn flow(&self) -> FlowKey {
        self.flow
    }

    #[inline]
    fn event_ns(&self) -> u64 {
        self.observed_ns
    }

    #[inline]
    fn feature_set(&self) -> FeatureSet {
        FeatureSet::Sflow
    }

    #[inline]
    fn update<'t>(&self, table: &'t mut FlowTable) -> (UpdateKind, &'t FlowRecord) {
        table.update_sflow(self)
    }
}

impl Telemetry for TelemetryEvent {
    #[inline]
    fn flow(&self) -> FlowKey {
        match self {
            TelemetryEvent::Int(r) => r.flow,
            TelemetryEvent::Sflow(s) => s.flow,
        }
    }

    #[inline]
    fn event_ns(&self) -> u64 {
        match self {
            TelemetryEvent::Int(r) => r.export_ns,
            TelemetryEvent::Sflow(s) => s.observed_ns,
        }
    }

    #[inline]
    fn feature_set(&self) -> FeatureSet {
        self.backend().feature_set()
    }

    #[inline]
    fn update<'t>(&self, table: &'t mut FlowTable) -> (UpdateKind, &'t FlowRecord) {
        match self {
            TelemetryEvent::Int(r) => table.update_int(r),
            TelemetryEvent::Sflow(s) => table.update_sflow(s),
        }
    }
}

/// A [`TelemetryEvent`] with optional ground truth riding along.
///
/// This is what streaming sources hand the runtime: labels from a
/// replayed capture flow through collection → shard → prediction →
/// aggregation so a run can report recall directly
/// ([`crate::verdict::RecallCounts`]) instead of reconstructing it from
/// a side-channel lookup table. Live sources leave `truth` as `None`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledEvent {
    pub event: TelemetryEvent,
    pub truth: Option<TrafficClass>,
}

impl LabeledEvent {
    pub fn new(event: TelemetryEvent) -> Self {
        Self { event, truth: None }
    }

    pub fn with_truth(event: TelemetryEvent, truth: TrafficClass) -> Self {
        Self {
            event,
            truth: Some(truth),
        }
    }
}

impl From<TelemetryEvent> for LabeledEvent {
    fn from(event: TelemetryEvent) -> Self {
        Self::new(event)
    }
}

impl From<TelemetryReport> for LabeledEvent {
    fn from(report: TelemetryReport) -> Self {
        Self::new(report.into())
    }
}

impl From<FlowSample> for LabeledEvent {
    fn from(sample: FlowSample) -> Self {
        Self::new(sample.into())
    }
}

/// Re-observe an INT capture through an sFlow agent: each report is one
/// packet through the switch, so running the sampling state machine
/// over the report stream yields exactly the [`FlowSample`]s a
/// co-located sFlow agent would have exported for the same traffic.
/// Labels ride along. This is how the CLI derives the sFlow view of an
/// on-disk capture (whose packets are long gone).
pub fn sample_reports(
    labeled: &[(TelemetryReport, TrafficClass)],
    agent: &mut SflowAgent,
) -> Vec<(FlowSample, TrafficClass)> {
    let mut out = Vec::new();
    for (report, class) in labeled {
        if let Some(sample) = agent.observe_headers(
            report.export_ns,
            report.flow,
            report.ip_len,
            report.tcp_flags,
        ) {
            out.push((sample, *class));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use amlight_features::FlowTableConfig;
    use amlight_int::{HopMetadata, InstructionSet};
    use amlight_net::Protocol;
    use amlight_sflow::SamplingMode;
    use std::net::Ipv4Addr;

    fn key(port: u16) -> FlowKey {
        FlowKey::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            port,
            80,
            Protocol::Tcp,
        )
    }

    fn report(port: u16, t_ns: u64) -> TelemetryReport {
        TelemetryReport {
            flow: key(port),
            ip_len: 200,
            tcp_flags: Some(0x02),
            instructions: InstructionSet::amlight(),
            hops: vec![HopMetadata {
                switch_id: 0,
                ingress_tstamp: t_ns as u32,
                egress_tstamp: (t_ns as u32).wrapping_add(250),
                hop_latency: 0,
                queue_occupancy: 3,
            }]
            .into(),
            export_ns: t_ns,
        }
    }

    fn sample(port: u16, t_ns: u64) -> FlowSample {
        FlowSample {
            flow: key(port),
            ip_len: 200,
            tcp_flags: Some(0x02),
            observed_ns: t_ns,
            sampling_period: 64,
        }
    }

    #[test]
    fn event_accessors_cover_both_backends() {
        let int: TelemetryEvent = report(1, 500).into();
        let sf: TelemetryEvent = sample(2, 900).into();
        assert_eq!(int.flow(), key(1));
        assert_eq!(sf.flow(), key(2));
        assert_eq!(int.event_ns(), 500);
        assert_eq!(sf.event_ns(), 900);
        assert_eq!(int.feature_set(), FeatureSet::Int);
        assert_eq!(sf.feature_set(), FeatureSet::Sflow);
        assert_eq!(int.backend().name(), "int");
        assert_eq!(sf.backend().name(), "sflow");
    }

    #[test]
    fn enum_update_matches_direct_table_calls() {
        let mut direct = FlowTable::new(FlowTableConfig::default());
        let mut via_event = FlowTable::new(FlowTableConfig::default());

        let r = report(1, 100);
        let s = sample(1, 300);
        let (k1, rec1) = direct.update_int(&r);
        let f1 = rec1.features();
        let (k2, rec2) = TelemetryEvent::from(r).update(&mut via_event);
        assert_eq!(k1, k2);
        assert_eq!(f1, rec2.features());

        let (k1, rec1) = direct.update_sflow(&s);
        let f1 = rec1.features();
        let (k2, rec2) = TelemetryEvent::from(s).update(&mut via_event);
        assert_eq!(k1, k2);
        assert_eq!(f1, rec2.features());
    }

    #[test]
    fn backend_parse_roundtrips() {
        for b in [TelemetryBackend::Int, TelemetryBackend::Sflow] {
            assert_eq!(TelemetryBackend::parse(b.name()), Some(b));
        }
        assert_eq!(TelemetryBackend::parse("netflow"), None);
        assert_eq!(TelemetryBackend::Sflow.feature_set(), FeatureSet::Sflow);
    }

    #[test]
    fn labeled_event_from_either_backend() {
        let le: LabeledEvent = report(4, 0).into();
        assert_eq!(le.truth, None);
        let le = LabeledEvent::with_truth(sample(4, 0).into(), TrafficClass::SlowLoris);
        assert_eq!(le.truth, Some(TrafficClass::SlowLoris));
    }

    #[test]
    fn sample_reports_mirrors_agent_over_packets() {
        // 1-in-4 deterministic sampling over 40 reports → 10 samples,
        // each carrying the report's header fields and label.
        let labeled: Vec<(TelemetryReport, TrafficClass)> = (0..40u64)
            .map(|i| (report((i % 4) as u16, i * 10), TrafficClass::SynFlood))
            .collect();
        let mut agent = SflowAgent::new(
            SamplingMode::Deterministic {
                period: 4,
                phase: 0,
            },
            0,
        );
        let sampled = sample_reports(&labeled, &mut agent);
        assert_eq!(sampled.len(), 10);
        assert_eq!(agent.observed(), 40);
        for (s, class) in &sampled {
            assert_eq!(*class, TrafficClass::SynFlood);
            assert_eq!(s.ip_len, 200);
            assert_eq!(s.tcp_flags, Some(0x02));
        }
        assert_eq!(sampled[0].0.observed_ns, 0);
        assert_eq!(sampled[1].0.observed_ns, 40);
    }
}
