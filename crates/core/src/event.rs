//! The telemetry registry: N backends behind one event layer.
//!
//! The paper's headline result is *comparative* — INT's per-packet
//! reports against sFlow's 1-in-4,096 sampling (Fig. 5) — and the PINT
//! backend fills in the frontier between those endpoints. So the
//! pipeline must run **any** backend through the *same* Fig. 2 stages.
//! [`TelemetryEvent`] is the unified currency; [`TelemetryBackend`] is
//! the registry that maps each backend to its name, feature descriptor,
//! wire protocol, and capture-derived view. The [`Telemetry`] trait is
//! the zero-cost static face of the same dispatch: every event kind
//! lowers itself into a normalized [`FlowUpdate`] and the flow table has
//! exactly one ingest path, so drivers stay monomorphic over one
//! backend (the virtual-time replay) or mix them behind the enum (the
//! streaming runtime).
//!
//! **This module is the only place backend-specific dispatch lives.**
//! Adding backend N+2 means: a variant here, a [`Telemetry`] impl here,
//! and a row in each registry method — features, ml, cli, and bench all
//! consume the registry and never match on a backend again.
//!
//! All event kinds carry the same [`FlowKey`] 5-tuple, so shard routing
//! ([`amlight_features::ShardRouter`]) hashes identically for every
//! backend — a flow lands on the same shard no matter which telemetry
//! system observed it.

use amlight_features::{FeatureId, FeatureSet, FlowRecord, FlowTable, FlowUpdate, UpdateKind};
use amlight_int::TelemetryReport;
use amlight_net::{FlowKey, TrafficClass};
use amlight_pint::{PintEncoder, PintReport, PintSketch, SketchConfig};
use amlight_sflow::{FlowSample, SamplingMode, SflowAgent};
use serde::{Deserialize, Serialize};

/// Which telemetry system produced a stream — the CLI/bench selector.
/// (JSON outputs use [`TelemetryBackend::name`] for the lowercase form;
/// the serde shim has no field-attribute support.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TelemetryBackend {
    /// Per-packet in-band telemetry reports.
    Int,
    /// Sampled sFlow observation.
    Sflow,
    /// Probabilistic k-bit digests (PINT).
    Pint,
}

impl TelemetryBackend {
    /// Every registered backend, in overhead order (heaviest first).
    pub const ALL: [TelemetryBackend; 3] = [
        TelemetryBackend::Int,
        TelemetryBackend::Pint,
        TelemetryBackend::Sflow,
    ];

    pub fn name(self) -> &'static str {
        match self {
            TelemetryBackend::Int => "int",
            TelemetryBackend::Sflow => "sflow",
            TelemetryBackend::Pint => "pint",
        }
    }

    /// The feature projection this backend's events can populate.
    ///
    /// sFlow never sees queue state, so its descriptor drops the three
    /// queue columns (paper Table II); PINT reconstructs queue depth
    /// from digests, so it keeps the full width — the *fidelity* of
    /// those columns, not their presence, is what the bit budget buys.
    pub fn feature_set(self) -> FeatureSet {
        match self {
            TelemetryBackend::Int | TelemetryBackend::Pint => FeatureSet::full(),
            TelemetryBackend::Sflow => FeatureSet::full().without(&FeatureId::QUEUE_COLUMNS),
        }
    }

    /// Parse a `--telemetry` value.
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|b| b.name() == s)
    }

    /// The ingest wire-protocol name for this backend over the given
    /// transport, if the backend speaks it (`amlight-ingest` parses the
    /// same names).
    pub fn wire_name(self, tcp: bool) -> Option<&'static str> {
        match (self, tcp) {
            (TelemetryBackend::Int, false) => Some("int-udp"),
            (TelemetryBackend::Int, true) => Some("int-tcp"),
            (TelemetryBackend::Sflow, false) => Some("sflow-udp"),
            (TelemetryBackend::Pint, false) => Some("pint-udp"),
            _ => None,
        }
    }

    /// Derive this backend's view of an INT capture, labels riding
    /// along. INT is the identity view; sFlow re-observes the reports
    /// through a seeded sampling agent; PINT digests every report down
    /// to `opts.pint_bits` and reconstructs through the sketch — each
    /// deterministic given `opts`, so captures replay bit-identically.
    pub fn derive_view(
        self,
        labeled: &[(TelemetryReport, TrafficClass)],
        opts: &ViewOptions,
    ) -> Vec<LabeledEvent> {
        match self {
            TelemetryBackend::Int => labeled
                .iter()
                .map(|(r, c)| LabeledEvent::with_truth(r.clone().into(), *c))
                .collect(),
            TelemetryBackend::Sflow => {
                let mut agent = SflowAgent::new(
                    SamplingMode::RandomSkip {
                        period: opts.sample_period.max(1),
                    },
                    opts.seed,
                );
                sample_reports(labeled, &mut agent)
                    .into_iter()
                    .map(|(s, c)| LabeledEvent::with_truth(s.into(), c))
                    .collect()
            }
            TelemetryBackend::Pint => pint_view(labeled, opts.pint_bits)
                .into_iter()
                .map(|(r, c)| LabeledEvent::with_truth(r.into(), c))
                .collect(),
        }
    }

    /// Average telemetry overhead in bits per forwarded packet, for a
    /// path of `hops` switches — the x-axis of the overhead-recall
    /// frontier. INT pays the full per-hop stack on every packet; sFlow
    /// amortizes a full sampled header over its period; PINT pays its
    /// fixed digest budget on every packet.
    pub fn bits_per_packet(self, hops: usize, opts: &ViewOptions) -> f64 {
        match self {
            TelemetryBackend::Int => {
                // 5 × u32 per hop metadata entry (the AmLight bitmap).
                (hops.max(1) * 20 * 8) as f64
            }
            TelemetryBackend::Sflow => {
                (FlowSample::WIRE_LEN * 8) as f64 / f64::from(opts.sample_period.max(1))
            }
            TelemetryBackend::Pint => f64::from(opts.pint_bits),
        }
    }
}

/// Knobs for deriving a backend view from an INT capture — one struct
/// so registry consumers never match on a backend to know which knob
/// applies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ViewOptions {
    /// sFlow 1-in-N sampling period.
    pub sample_period: u32,
    /// PINT per-packet digest budget, bits.
    pub pint_bits: u8,
    /// Seed for the sFlow agent's skip schedule.
    pub seed: u64,
}

impl Default for ViewOptions {
    fn default() -> Self {
        Self {
            sample_period: 256,
            pint_bits: 8,
            seed: 0,
        }
    }
}

/// One telemetry observation from any registered backend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TelemetryEvent {
    Int(TelemetryReport),
    Sflow(FlowSample),
    Pint(PintReport),
}

// PR 6 boxed `SourcePoll::Event` because the INT hop stack dominates the
// enum's size; the PINT variant must not regress channel payloads past
// that established bound. (The INT variant is the biggest by far — a
// PINT digest report is a few dozen bytes.)
const _: () = assert!(
    std::mem::size_of::<PintReport>() <= std::mem::size_of::<TelemetryReport>(),
    "PINT variant may not grow TelemetryEvent beyond the INT variant"
);

impl TelemetryEvent {
    pub fn backend(&self) -> TelemetryBackend {
        match self {
            TelemetryEvent::Int(_) => TelemetryBackend::Int,
            TelemetryEvent::Sflow(_) => TelemetryBackend::Sflow,
            TelemetryEvent::Pint(_) => TelemetryBackend::Pint,
        }
    }
}

impl From<TelemetryReport> for TelemetryEvent {
    fn from(r: TelemetryReport) -> Self {
        TelemetryEvent::Int(r)
    }
}

impl From<FlowSample> for TelemetryEvent {
    fn from(s: FlowSample) -> Self {
        TelemetryEvent::Sflow(s)
    }
}

impl From<PintReport> for TelemetryEvent {
    fn from(r: PintReport) -> Self {
        TelemetryEvent::Pint(r)
    }
}

/// What the shared Fig. 2 stages need from a telemetry observation:
/// a flow identity for routing, a native timestamp for the clock, and
/// the normalized [`FlowUpdate`] its table ingest lowers into.
///
/// Implemented for every backend's event type and for the dynamic
/// [`TelemetryEvent`], so drivers can stay monomorphic over one backend
/// (the virtual-time replay) or mix them behind the enum (the streaming
/// runtime). `update` is provided: with the lowering in place, there is
/// nothing backend-specific left to do against the table.
pub trait Telemetry {
    /// The 5-tuple the event belongs to — every backend carries the
    /// full key, which is what makes shard routing backend-agnostic.
    fn flow(&self) -> FlowKey;

    /// The event's native clock, ns (INT/PINT export time, sFlow
    /// observation time). Feeds [`crate::modules::Clock::register_ns`].
    fn event_ns(&self) -> u64;

    /// The feature projection this event's table update can populate.
    fn feature_set(&self) -> FeatureSet;

    /// Lower this event into the normalized flow-table update — the
    /// single place a backend's semantics (which clock, which optional
    /// columns) are encoded.
    fn flow_update(&self) -> FlowUpdate;

    /// Apply this event to a flow table via the shared ingest path.
    #[inline]
    fn update<'t>(&self, table: &'t mut FlowTable) -> (UpdateKind, &'t FlowRecord) {
        table.apply(&self.flow_update())
    }
}

impl Telemetry for TelemetryReport {
    #[inline]
    fn flow(&self) -> FlowKey {
        self.flow
    }

    #[inline]
    fn event_ns(&self) -> u64 {
        self.export_ns
    }

    #[inline]
    fn feature_set(&self) -> FeatureSet {
        TelemetryBackend::Int.feature_set()
    }

    /// INT: wrapped 32-bit sink egress stamp (inherits the paper's §V
    /// aliasing artifact) plus the sink hop's queue depth.
    #[inline]
    fn flow_update(&self) -> FlowUpdate {
        FlowUpdate {
            flow: self.flow,
            now_ns: self.export_ns,
            len: self.ip_len,
            stamp32: self.sink_hop().map(|h| h.egress_tstamp),
            observed_ns: None,
            queue_occupancy: self.sink_hop().map(|h| h.queue_occupancy),
        }
    }
}

impl Telemetry for FlowSample {
    #[inline]
    fn flow(&self) -> FlowKey {
        self.flow
    }

    #[inline]
    fn event_ns(&self) -> u64 {
        self.observed_ns
    }

    #[inline]
    fn feature_set(&self) -> FeatureSet {
        TelemetryBackend::Sflow.feature_set()
    }

    /// sFlow: full-width agent clock (saturating IAT — samples reorder
    /// over UDP), no queue telemetry at all.
    #[inline]
    fn flow_update(&self) -> FlowUpdate {
        FlowUpdate {
            flow: self.flow,
            now_ns: self.observed_ns,
            len: self.ip_len,
            stamp32: None,
            observed_ns: Some(self.observed_ns),
            queue_occupancy: None,
        }
    }
}

impl Telemetry for PintReport {
    #[inline]
    fn flow(&self) -> FlowKey {
        self.flow
    }

    #[inline]
    fn event_ns(&self) -> u64 {
        self.export_ns
    }

    #[inline]
    fn feature_set(&self) -> FeatureSet {
        TelemetryBackend::Pint.feature_set()
    }

    /// PINT: full-width collector clock plus whatever queue
    /// reconstruction the sketch attached — `None` rows impute exactly
    /// like sFlow until a queue digest lands for the flow.
    #[inline]
    fn flow_update(&self) -> FlowUpdate {
        FlowUpdate {
            flow: self.flow,
            now_ns: self.export_ns,
            len: self.ip_len,
            stamp32: None,
            observed_ns: Some(self.export_ns),
            queue_occupancy: self.queue_occupancy,
        }
    }
}

impl Telemetry for TelemetryEvent {
    #[inline]
    fn flow(&self) -> FlowKey {
        match self {
            TelemetryEvent::Int(r) => r.flow,
            TelemetryEvent::Sflow(s) => s.flow,
            TelemetryEvent::Pint(p) => p.flow,
        }
    }

    #[inline]
    fn event_ns(&self) -> u64 {
        match self {
            TelemetryEvent::Int(r) => r.event_ns(),
            TelemetryEvent::Sflow(s) => s.event_ns(),
            TelemetryEvent::Pint(p) => p.event_ns(),
        }
    }

    #[inline]
    fn feature_set(&self) -> FeatureSet {
        self.backend().feature_set()
    }

    #[inline]
    fn flow_update(&self) -> FlowUpdate {
        match self {
            TelemetryEvent::Int(r) => r.flow_update(),
            TelemetryEvent::Sflow(s) => s.flow_update(),
            TelemetryEvent::Pint(p) => p.flow_update(),
        }
    }
}

/// A [`TelemetryEvent`] with optional ground truth riding along.
///
/// This is what streaming sources hand the runtime: labels from a
/// replayed capture flow through collection → shard → prediction →
/// aggregation so a run can report recall directly
/// ([`crate::verdict::RecallCounts`]) instead of reconstructing it from
/// a side-channel lookup table. Live sources leave `truth` as `None`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledEvent {
    pub event: TelemetryEvent,
    pub truth: Option<TrafficClass>,
}

impl LabeledEvent {
    pub fn new(event: TelemetryEvent) -> Self {
        Self { event, truth: None }
    }

    pub fn with_truth(event: TelemetryEvent, truth: TrafficClass) -> Self {
        Self {
            event,
            truth: Some(truth),
        }
    }
}

impl From<TelemetryEvent> for LabeledEvent {
    fn from(event: TelemetryEvent) -> Self {
        Self::new(event)
    }
}

impl From<TelemetryReport> for LabeledEvent {
    fn from(report: TelemetryReport) -> Self {
        Self::new(report.into())
    }
}

impl From<FlowSample> for LabeledEvent {
    fn from(sample: FlowSample) -> Self {
        Self::new(sample.into())
    }
}

impl From<PintReport> for LabeledEvent {
    fn from(report: PintReport) -> Self {
        Self::new(report.into())
    }
}

/// Re-observe an INT capture through an sFlow agent: each report is one
/// packet through the switch, so running the sampling state machine
/// over the report stream yields exactly the [`FlowSample`]s a
/// co-located sFlow agent would have exported for the same traffic.
/// Labels ride along. This is how the CLI derives the sFlow view of an
/// on-disk capture (whose packets are long gone).
pub fn sample_reports(
    labeled: &[(TelemetryReport, TrafficClass)],
    agent: &mut SflowAgent,
) -> Vec<(FlowSample, TrafficClass)> {
    let mut out = Vec::new();
    for (report, class) in labeled {
        if let Some(sample) = agent.observe_headers(
            report.export_ns,
            report.flow,
            report.ip_len,
            report.tcp_flags,
        ) {
            out.push((sample, *class));
        }
    }
    out
}

/// Re-observe an INT capture through a PINT encoder + sketch: every
/// report is one packet, digested down to `bits` and reconstructed in
/// arrival order — exactly what a PINT-instrumented path plus collector
/// would have produced for the same traffic. The PINT sibling of
/// [`sample_reports`], feeding `PintReplaySource` and the CLI.
pub fn pint_view(
    labeled: &[(TelemetryReport, TrafficClass)],
    bits: u8,
) -> Vec<(PintReport, TrafficClass)> {
    let encoder = PintEncoder::new(bits);
    let mut sketch = PintSketch::new(SketchConfig::default());
    let mut hops: Vec<(u32, u32)> = Vec::new();
    labeled
        .iter()
        .map(|(report, class)| {
            hops.clear();
            hops.extend(
                report
                    .hops
                    .iter()
                    .map(|h| (h.queue_occupancy, h.derived_latency_ns())),
            );
            let mut digest = encoder.encode(
                report.flow,
                report.ip_len,
                report.tcp_flags,
                report.export_ns,
                &hops,
            );
            sketch.annotate(&mut digest);
            (digest, *class)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use amlight_features::FlowTableConfig;
    use amlight_int::{HopMetadata, InstructionSet};
    use amlight_net::Protocol;
    use amlight_sflow::SamplingMode;
    use std::net::Ipv4Addr;

    fn key(port: u16) -> FlowKey {
        FlowKey::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            port,
            80,
            Protocol::Tcp,
        )
    }

    fn report(port: u16, t_ns: u64) -> TelemetryReport {
        TelemetryReport {
            flow: key(port),
            ip_len: 200,
            tcp_flags: Some(0x02),
            instructions: InstructionSet::amlight(),
            hops: vec![HopMetadata {
                switch_id: 0,
                ingress_tstamp: t_ns as u32,
                egress_tstamp: (t_ns as u32).wrapping_add(250),
                hop_latency: 0,
                queue_occupancy: 3,
            }]
            .into(),
            export_ns: t_ns,
        }
    }

    fn sample(port: u16, t_ns: u64) -> FlowSample {
        FlowSample {
            flow: key(port),
            ip_len: 200,
            tcp_flags: Some(0x02),
            observed_ns: t_ns,
            sampling_period: 64,
        }
    }

    fn pint(port: u16, t_ns: u64) -> PintReport {
        pint_view(&[(report(port, t_ns), TrafficClass::Benign)], 8)[0].0
    }

    #[test]
    fn event_accessors_cover_every_backend() {
        let int: TelemetryEvent = report(1, 500).into();
        let sf: TelemetryEvent = sample(2, 900).into();
        let pi: TelemetryEvent = pint(3, 700).into();
        assert_eq!(int.flow(), key(1));
        assert_eq!(sf.flow(), key(2));
        assert_eq!(pi.flow(), key(3));
        assert_eq!(int.event_ns(), 500);
        assert_eq!(sf.event_ns(), 900);
        assert_eq!(pi.event_ns(), 700);
        assert_eq!(int.feature_set(), FeatureSet::full());
        assert!(pi.feature_set().is_full());
        assert!(!sf.feature_set().is_full());
        assert_eq!(int.backend().name(), "int");
        assert_eq!(sf.backend().name(), "sflow");
        assert_eq!(pi.backend().name(), "pint");
    }

    #[test]
    fn enum_update_matches_direct_table_calls() {
        let mut direct = FlowTable::new(FlowTableConfig::default());
        let mut via_event = FlowTable::new(FlowTableConfig::default());

        for event in [
            TelemetryEvent::from(report(1, 100)),
            TelemetryEvent::from(sample(1, 300)),
            TelemetryEvent::from(pint(1, 500)),
        ] {
            let (k1, rec1) = direct.apply(&event.flow_update());
            let f1 = rec1.features();
            let (k2, rec2) = event.update(&mut via_event);
            assert_eq!(k1, k2);
            assert_eq!(f1, rec2.features());
        }
    }

    #[test]
    fn backend_registry_roundtrips() {
        for b in TelemetryBackend::ALL {
            assert_eq!(TelemetryBackend::parse(b.name()), Some(b));
            assert!(b.feature_set().dim() >= 12);
        }
        assert_eq!(TelemetryBackend::parse("netflow"), None);
        assert_eq!(TelemetryBackend::Sflow.feature_set().dim(), 12);
        assert_eq!(TelemetryBackend::Pint.feature_set(), FeatureSet::full());
        assert_eq!(TelemetryBackend::Int.wire_name(true), Some("int-tcp"));
        assert_eq!(TelemetryBackend::Pint.wire_name(false), Some("pint-udp"));
        assert_eq!(TelemetryBackend::Pint.wire_name(true), None);
    }

    #[test]
    fn overhead_ordering_matches_the_frontier() {
        let opts = ViewOptions::default();
        let int = TelemetryBackend::Int.bits_per_packet(5, &opts);
        let pint = TelemetryBackend::Pint.bits_per_packet(5, &opts);
        let sflow = TelemetryBackend::Sflow.bits_per_packet(5, &opts);
        assert!(int > pint, "INT pays the full stack");
        assert!(pint > sflow, "PINT pays k bits; sFlow amortizes 1-in-N");
    }

    #[test]
    fn labeled_event_from_any_backend() {
        let le: LabeledEvent = report(4, 0).into();
        assert_eq!(le.truth, None);
        let le = LabeledEvent::with_truth(sample(4, 0).into(), TrafficClass::SlowLoris);
        assert_eq!(le.truth, Some(TrafficClass::SlowLoris));
        let le: LabeledEvent = pint(4, 0).into();
        assert_eq!(le.event.backend(), TelemetryBackend::Pint);
    }

    #[test]
    fn sample_reports_mirrors_agent_over_packets() {
        // 1-in-4 deterministic sampling over 40 reports → 10 samples,
        // each carrying the report's header fields and label.
        let labeled: Vec<(TelemetryReport, TrafficClass)> = (0..40u64)
            .map(|i| (report((i % 4) as u16, i * 10), TrafficClass::SynFlood))
            .collect();
        let mut agent = SflowAgent::new(
            SamplingMode::Deterministic {
                period: 4,
                phase: 0,
            },
            0,
        );
        let sampled = sample_reports(&labeled, &mut agent);
        assert_eq!(sampled.len(), 10);
        assert_eq!(agent.observed(), 40);
        for (s, class) in &sampled {
            assert_eq!(*class, TrafficClass::SynFlood);
            assert_eq!(s.ip_len, 200);
            assert_eq!(s.tcp_flags, Some(0x02));
        }
        assert_eq!(sampled[0].0.observed_ns, 0);
        assert_eq!(sampled[1].0.observed_ns, 40);
    }

    #[test]
    fn pint_view_is_per_packet_and_deterministic() {
        let labeled: Vec<(TelemetryReport, TrafficClass)> = (0..40u64)
            .map(|i| (report((i % 4) as u16, i * 10), TrafficClass::SynFlood))
            .collect();
        let a = pint_view(&labeled, 8);
        let b = pint_view(&labeled, 8);
        assert_eq!(a, b, "same capture, same digests");
        assert_eq!(a.len(), labeled.len(), "every packet carries a digest");
        // The sketch eventually reconstructs queue state for each flow.
        assert!(a.iter().any(|(r, _)| r.queue_occupancy.is_some()));
        // Reconstructions never overestimate the true depth (3).
        for (r, _) in &a {
            if let Some(q) = r.queue_occupancy {
                assert!(q <= 3);
            }
        }
    }

    #[test]
    fn derive_view_covers_every_backend() {
        let labeled: Vec<(TelemetryReport, TrafficClass)> = (0..64u64)
            .map(|i| (report((i % 4) as u16, i * 10), TrafficClass::Benign))
            .collect();
        let opts = ViewOptions {
            sample_period: 4,
            pint_bits: 8,
            seed: 7,
        };
        let int = TelemetryBackend::Int.derive_view(&labeled, &opts);
        assert_eq!(int.len(), 64, "INT view is the identity");
        let pint = TelemetryBackend::Pint.derive_view(&labeled, &opts);
        assert_eq!(pint.len(), 64, "PINT digests every packet");
        let sflow = TelemetryBackend::Sflow.derive_view(&labeled, &opts);
        assert!(
            !sflow.is_empty() && sflow.len() < 64,
            "sFlow samples a strict subset"
        );
        for view in [&int, &pint, &sflow] {
            for e in view.iter() {
                assert_eq!(e.truth, Some(TrafficClass::Benign));
            }
        }
        assert_eq!(int[0].event.backend(), TelemetryBackend::Int);
        assert_eq!(pint[0].event.backend(), TelemetryBackend::Pint);
        assert_eq!(sflow[0].event.backend(), TelemetryBackend::Sflow);
    }

    #[test]
    fn pint_event_variant_stays_small() {
        // Satellite of the PR-6 size audit: the new variant must not be
        // the one that grows channel payloads.
        assert!(
            std::mem::size_of::<PintReport>() <= std::mem::size_of::<TelemetryEvent>(),
            "enum must fit its variants"
        );
        assert!(
            std::mem::size_of::<PintReport>() <= 64,
            "a digest report is a few dozen bytes, not a hop stack"
        );
    }
}
