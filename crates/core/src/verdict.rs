//! Verdict smoothing (paper §IV-C.4).
//!
//! Raw per-update ensemble votes are noisy, and anomaly-based detection
//! is "prone to false alarms". The paper therefore waits for three
//! predictions per flow and classifies by majority of the last three —
//! e.g. votes `[1, 0, 1]` yield verdict 1 (attack).

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Final flow classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Verdict {
    /// Fewer than `window` predictions so far.
    Pending,
    Normal,
    Attack,
}

impl Verdict {
    /// The paper's binary coding (attack = 1); `None` while pending.
    pub fn label(self) -> Option<bool> {
        match self {
            Verdict::Pending => None,
            Verdict::Normal => Some(false),
            Verdict::Attack => Some(true),
        }
    }
}

/// Running tallies of smoothed verdicts, one `observe` per prediction.
///
/// Shared by the [`crate::modules::Aggregator`] stage and the threaded
/// runtime's run statistics so every driver counts identically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerdictCounts {
    pub predictions: u64,
    pub attacks: u64,
    pub normals: u64,
    pub pendings: u64,
}

impl VerdictCounts {
    /// Tally one smoothed verdict.
    pub fn observe(&mut self, verdict: Verdict) {
        self.predictions += 1;
        match verdict {
            Verdict::Pending => self.pendings += 1,
            Verdict::Normal => self.normals += 1,
            Verdict::Attack => self.attacks += 1,
        }
    }

    /// Fold another tally in (e.g. across processor shards).
    pub fn merge(&mut self, other: VerdictCounts) {
        self.predictions += other.predictions;
        self.attacks += other.attacks;
        self.normals += other.normals;
        self.pendings += other.pendings;
    }
}

/// Ground-truth-aware verdict tallies for labeled runs.
///
/// When a replayed capture threads its labels through the streaming
/// path ([`crate::event::LabeledEvent`]), the aggregation stage can
/// score every smoothed verdict against the truth as it lands — no
/// side-channel lookup table after the run. Pending verdicts count
/// against recall: a flow that never leaves the smoothing warm-up
/// (sFlow's sparse-sample failure mode) was *not* detected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecallCounts {
    /// Judged updates whose ground truth was an attack class.
    pub attack_updates: u64,
    /// … of those, final `Attack` verdicts (true positives).
    pub attack_hits: u64,
    /// … of those, still inside the smoothing warm-up.
    pub attack_pending: u64,
    /// Judged updates whose ground truth was benign.
    pub benign_updates: u64,
    /// … of those, wrongly given a final `Attack` verdict.
    pub benign_false_alarms: u64,
    /// … of those, still inside the smoothing warm-up.
    pub benign_pending: u64,
}

impl RecallCounts {
    /// Tally one smoothed verdict against its ground truth
    /// (`attack_truth` is the paper's binary coding: attack = true).
    pub fn observe(&mut self, attack_truth: bool, verdict: Verdict) {
        if attack_truth {
            self.attack_updates += 1;
            match verdict {
                Verdict::Attack => self.attack_hits += 1,
                Verdict::Pending => self.attack_pending += 1,
                Verdict::Normal => {}
            }
        } else {
            self.benign_updates += 1;
            match verdict {
                Verdict::Attack => self.benign_false_alarms += 1,
                Verdict::Pending => self.benign_pending += 1,
                Verdict::Normal => {}
            }
        }
    }

    /// Labeled updates seen in total.
    pub fn labeled_updates(&self) -> u64 {
        self.attack_updates + self.benign_updates
    }

    /// Attack updates flagged as attacks — pending ones count against
    /// recall (undetected is undetected, however it happened).
    pub fn recall(&self) -> f64 {
        if self.attack_updates == 0 {
            0.0
        } else {
            self.attack_hits as f64 / self.attack_updates as f64
        }
    }

    /// Benign updates wrongly flagged as attacks.
    pub fn false_alarm_rate(&self) -> f64 {
        if self.benign_updates == 0 {
            0.0
        } else {
            self.benign_false_alarms as f64 / self.benign_updates as f64
        }
    }

    /// Fold another tally in (e.g. across processor shards).
    pub fn merge(&mut self, other: RecallCounts) {
        self.attack_updates += other.attack_updates;
        self.attack_hits += other.attack_hits;
        self.attack_pending += other.attack_pending;
        self.benign_updates += other.benign_updates;
        self.benign_false_alarms += other.benign_false_alarms;
        self.benign_pending += other.benign_pending;
    }
}

/// Majority over a sliding window of the most recent predictions.
///
/// ```
/// use amlight_core::verdict::{SmoothingWindow, Verdict};
///
/// let mut w = SmoothingWindow::default(); // window of 3, as in the paper
/// assert_eq!(w.push(true), Verdict::Pending);
/// assert_eq!(w.push(false), Verdict::Pending);
/// // The paper's own example: votes [1, 0, 1] → attack.
/// assert_eq!(w.push(true), Verdict::Attack);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SmoothingWindow {
    window: usize,
    votes: VecDeque<bool>,
}

impl Default for SmoothingWindow {
    /// The paper's window of three.
    fn default() -> Self {
        Self::new(3)
    }
}

impl SmoothingWindow {
    pub fn new(window: usize) -> Self {
        assert!(window >= 1, "window must be at least 1");
        Self {
            window,
            votes: VecDeque::with_capacity(window),
        }
    }

    pub fn window(&self) -> usize {
        self.window
    }

    pub fn len(&self) -> usize {
        self.votes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.votes.is_empty()
    }

    /// Record one prediction and return the current verdict.
    pub fn push(&mut self, attack: bool) -> Verdict {
        if self.votes.len() == self.window {
            self.votes.pop_front();
        }
        self.votes.push_back(attack);
        self.verdict()
    }

    /// Verdict over the current window contents.
    pub fn verdict(&self) -> Verdict {
        if self.votes.len() < self.window {
            return Verdict::Pending;
        }
        let ones = self.votes.iter().filter(|&&v| v).count();
        if ones * 2 > self.window {
            Verdict::Attack
        } else {
            Verdict::Normal
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pending_until_window_fills() {
        let mut w = SmoothingWindow::default();
        assert_eq!(w.push(true), Verdict::Pending);
        assert_eq!(w.push(true), Verdict::Pending);
        assert_eq!(w.push(true), Verdict::Attack);
    }

    #[test]
    fn paper_example_one_zero_one_is_attack() {
        let mut w = SmoothingWindow::default();
        w.push(true);
        w.push(false);
        assert_eq!(w.push(true), Verdict::Attack);
    }

    #[test]
    fn majority_normal() {
        let mut w = SmoothingWindow::default();
        w.push(false);
        w.push(true);
        assert_eq!(w.push(false), Verdict::Normal);
    }

    #[test]
    fn window_slides() {
        let mut w = SmoothingWindow::default();
        w.push(true);
        w.push(true);
        assert_eq!(w.push(true), Verdict::Attack);
        // Three normals in a row flip it.
        w.push(false);
        assert_eq!(w.verdict(), Verdict::Attack); // [1,1,0]
        w.push(false);
        assert_eq!(w.verdict(), Verdict::Normal); // [1,0,0]
        w.push(false);
        assert_eq!(w.verdict(), Verdict::Normal);
    }

    #[test]
    fn window_of_one_is_passthrough() {
        let mut w = SmoothingWindow::new(1);
        assert_eq!(w.push(true), Verdict::Attack);
        assert_eq!(w.push(false), Verdict::Normal);
    }

    #[test]
    fn even_window_requires_strict_majority() {
        let mut w = SmoothingWindow::new(4);
        for v in [true, true, false, false] {
            w.push(v);
        }
        assert_eq!(w.verdict(), Verdict::Normal, "2 of 4 is not a majority");
        w.push(true); // [1,0,0,1]
        assert_eq!(w.verdict(), Verdict::Normal);
        w.push(true); // [0,0,1,1] → still 2... push again
        w.push(true); // [0,1,1,1]
        assert_eq!(w.verdict(), Verdict::Attack);
    }

    #[test]
    fn verdict_labels_match_paper_coding() {
        assert_eq!(Verdict::Attack.label(), Some(true));
        assert_eq!(Verdict::Normal.label(), Some(false));
        assert_eq!(Verdict::Pending.label(), None);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_window_rejected() {
        SmoothingWindow::new(0);
    }

    #[test]
    fn recall_counts_score_against_truth() {
        let mut r = RecallCounts::default();
        r.observe(true, Verdict::Pending);
        r.observe(true, Verdict::Attack);
        r.observe(true, Verdict::Attack);
        r.observe(true, Verdict::Normal); // missed attack update
        r.observe(false, Verdict::Normal);
        r.observe(false, Verdict::Attack); // false alarm
        assert_eq!(r.attack_updates, 4);
        assert_eq!(r.attack_hits, 2);
        assert_eq!(r.attack_pending, 1);
        assert_eq!(r.benign_updates, 2);
        assert_eq!(r.benign_false_alarms, 1);
        assert_eq!(r.labeled_updates(), 6);
        assert!((r.recall() - 0.5).abs() < 1e-12);
        assert!((r.false_alarm_rate() - 0.5).abs() < 1e-12);

        let mut other = RecallCounts::default();
        other.observe(true, Verdict::Attack);
        r.merge(other);
        assert_eq!(r.attack_updates, 5);
        assert_eq!(r.attack_hits, 3);
    }

    #[test]
    fn empty_recall_counts_are_zero_not_nan() {
        let r = RecallCounts::default();
        assert_eq!(r.recall(), 0.0);
        assert_eq!(r.false_alarm_rate(), 0.0);
    }

    #[test]
    fn verdict_counts_observe_and_merge() {
        let mut a = VerdictCounts::default();
        a.observe(Verdict::Pending);
        a.observe(Verdict::Attack);
        let mut b = VerdictCounts::default();
        b.observe(Verdict::Normal);
        a.merge(b);
        assert_eq!(a.predictions, 3);
        assert_eq!(a.attacks, 1);
        assert_eq!(a.normals, 1);
        assert_eq!(a.pendings, 1);
    }
}
