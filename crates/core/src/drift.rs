//! Streaming drift detection over the benign flow distribution.
//!
//! The paper's benign model is explicitly diurnal (§IV-A), so a bundle
//! trained on one window of benign traffic goes stale as the
//! distribution moves. [`DriftDetector`] watches per-feature streaming
//! moments of the benign feature rows the live pipeline already
//! produces and raises a flag when any feature's location shifts —
//! the signal the shadow retrainer (see [`crate::runtime`]) turns into
//! a fresh bundle and an atomic epoch publish.
//!
//! The test is a two-sided **Page–Hinkley** cumulative-sum per feature,
//! run on *standardized* residuals so one `lambda` threshold is
//! meaningful across features with wildly different scales (packet
//! sizes vs inter-arrival nanoseconds):
//!
//! * Welford-updated running mean/variance give the residual
//!   `r = (x − mean) / std`;
//! * upward side: `m⁺ += r − delta`, trip when `m⁺ − min(m⁺) > lambda`;
//! * downward side: `m⁻ += r + delta`, trip when `max(m⁻) − m⁻ > lambda`.
//!
//! Edge cases are first-class: non-finite inputs are skipped feature-
//! wise (amlint R3 — no raw f64 equality anywhere, NaN cannot poison
//! the moments), a constant feature has zero variance so its residuals
//! are zero and the `delta` tolerance drains both cumulative sums
//! (never triggers), and a stationary distribution random-walks well
//! below `lambda`. After a published swap the detector is [`reset`] in
//! full — the retrained bundle's distribution is the new baseline, so
//! stale moments must not immediately re-trigger.
//!
//! [`reset`]: DriftDetector::reset

use serde::{Deserialize, Serialize};

/// Below this, a feature's standard deviation is treated as zero and
/// its residuals contribute nothing (constant features never trigger).
const STD_FLOOR: f64 = 1e-9;

/// Page–Hinkley tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Tolerated per-sample magnitude of drift, in standard deviations.
    /// Larger values ignore slower shifts.
    pub delta: f64,
    /// Decision threshold on the cumulative statistic, in standard
    /// deviations. Larger values trade detection delay for fewer false
    /// alarms.
    pub lambda: f64,
    /// Rows the detector folds into the moments before the cumulative
    /// sums start accumulating (and before it may trigger) — the
    /// Welford moments are noise until then, and residuals standardized
    /// by a noisy early std estimate would poison the sums.
    pub min_samples: u64,
}

impl Default for DriftConfig {
    /// A side's false-alarm rate is ~`exp(−2·delta·lambda)` per
    /// excursion of the cumulative walk; 0.1 × 50 puts that at ~4.5e-5,
    /// so a stationary benign stream of millions of rows stays quiet
    /// while a sustained 1σ shift still trips in ~60 rows.
    fn default() -> Self {
        Self {
            delta: 0.1,
            lambda: 50.0,
            min_samples: 512,
        }
    }
}

/// One feature's running moments and both Page–Hinkley sides.
#[derive(Debug, Clone, Copy, Default)]
struct FeatureState {
    count: u64,
    mean: f64,
    m2: f64,
    up_sum: f64,
    up_min: f64,
    down_sum: f64,
    down_max: f64,
}

impl FeatureState {
    /// Fold one finite value in; returns the larger Page–Hinkley
    /// statistic of the two sides after the update. During warm-up
    /// (`accumulate == false`) only the moments move — residuals
    /// standardized by a half-baked std estimate must not seed the
    /// cumulative sums.
    fn observe(&mut self, x: f64, delta: f64, accumulate: bool) -> f64 {
        self.count += 1;
        let d1 = x - self.mean;
        self.mean += d1 / self.count as f64;
        self.m2 += d1 * (x - self.mean);
        if !accumulate {
            return 0.0;
        }
        let std = if self.count > 1 {
            (self.m2 / (self.count - 1) as f64).sqrt()
        } else {
            0.0
        };
        let residual = if std > STD_FLOOR { d1 / std } else { 0.0 };
        self.up_sum += residual - delta;
        self.up_min = self.up_min.min(self.up_sum);
        self.down_sum += residual + delta;
        self.down_max = self.down_max.max(self.down_sum);
        let up = self.up_sum - self.up_min;
        let down = self.down_max - self.down_sum;
        up.max(down)
    }
}

/// Streaming per-feature drift detector (two-sided Page–Hinkley on
/// standardized residuals).
#[derive(Debug, Clone)]
pub struct DriftDetector {
    config: DriftConfig,
    features: Vec<FeatureState>,
    rows_seen: u64,
    /// Index of the first feature whose statistic crossed `lambda`.
    drifted_at: Option<usize>,
}

impl DriftDetector {
    /// A detector over `dim`-wide feature rows.
    pub fn new(dim: usize, config: DriftConfig) -> Self {
        Self {
            config,
            features: vec![FeatureState::default(); dim],
            rows_seen: 0,
            drifted_at: None,
        }
    }

    /// Fold one (benign) feature row in. Returns `true` exactly once —
    /// on the call where the detector first trips; it stays latched
    /// (reporting via [`DriftDetector::drifted`]) until [`reset`].
    ///
    /// Non-finite entries are skipped feature-wise; rows narrower than
    /// the detector update only the leading features, wider rows ignore
    /// the tail.
    ///
    /// [`reset`]: DriftDetector::reset
    // amlint: hot
    pub fn observe_row(&mut self, row: &[f64]) -> bool {
        self.rows_seen += 1;
        let already = self.drifted_at.is_some();
        let delta = self.config.delta;
        let armed = self.rows_seen >= self.config.min_samples;
        let mut tripped = None;
        for (idx, (state, &x)) in self.features.iter_mut().zip(row).enumerate() {
            if !x.is_finite() {
                continue;
            }
            let stat = state.observe(x, delta, armed);
            if armed && stat > self.config.lambda && tripped.is_none() {
                tripped = Some(idx);
            }
        }
        if already {
            return false;
        }
        self.drifted_at = tripped;
        tripped.is_some()
    }

    /// Has any feature drifted since the last reset?
    pub fn drifted(&self) -> bool {
        self.drifted_at.is_some()
    }

    /// Which feature tripped first (index into the feature row).
    pub fn drifted_feature(&self) -> Option<usize> {
        self.drifted_at
    }

    /// Rows folded in since the last reset.
    pub fn rows_seen(&self) -> u64 {
        self.rows_seen
    }

    /// Feature-row width this detector expects.
    pub fn dim(&self) -> usize {
        self.features.len()
    }

    /// Forget everything: moments, cumulative sums, and the latched
    /// flag. Called after a published swap — the retrained bundle's
    /// distribution is the new baseline, and judging it against the
    /// pre-swap moments would re-trigger immediately.
    pub fn reset(&mut self) {
        for state in &mut self.features {
            *state = FeatureState::default();
        }
        self.rows_seen = 0;
        self.drifted_at = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 1-CPU-test-sized operating point. The false-alarm rate of a
    /// Page–Hinkley side is ~exp(−2·delta·lambda) per excursion of the
    /// cumulative walk: delta 0.1 × lambda 40 puts that at ~3e-4, safe
    /// for tens of thousands of stationary rows, while a 3σ shift still
    /// accumulates ~2.9/row and trips within ~15 rows.
    fn cfg() -> DriftConfig {
        DriftConfig {
            delta: 0.1,
            lambda: 40.0,
            min_samples: 64,
        }
    }

    /// Deterministic pseudo-noise in [-0.5, 0.5): a SplitMix64-style
    /// finalizer, so consecutive indices decorrelate (a weaker mix
    /// produces sawtooth ramps that Page–Hinkley correctly flags as
    /// drift) without pulling in an RNG.
    fn noise(i: u64) -> f64 {
        let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z % 10_000) as f64 / 10_000.0 - 0.5
    }

    #[test]
    fn stationary_stream_never_triggers() {
        let mut det = DriftDetector::new(3, cfg());
        for i in 0..20_000u64 {
            let row = [10.0 + noise(i), -4.0 + noise(i * 7 + 3), noise(i * 13)];
            assert!(!det.observe_row(&row), "false trigger at row {i}");
        }
        assert!(!det.drifted());
        assert_eq!(det.rows_seen(), 20_000);
    }

    #[test]
    fn constant_features_have_zero_variance_and_never_trigger() {
        let mut det = DriftDetector::new(2, cfg());
        for _ in 0..50_000 {
            assert!(!det.observe_row(&[42.0, 0.0]));
        }
        assert!(!det.drifted());
    }

    #[test]
    fn upward_mean_shift_is_caught() {
        let mut det = DriftDetector::new(2, cfg());
        for i in 0..2_000u64 {
            det.observe_row(&[5.0 + noise(i), 1.0 + noise(i + 9)]);
        }
        assert!(!det.drifted(), "no drift during the stationary prefix");
        let mut caught = false;
        for i in 0..2_000u64 {
            // Feature 1 shifts by ~3 sigma; feature 0 stays put.
            if det.observe_row(&[5.0 + noise(i), 2.0 + noise(i * 3)]) {
                caught = true;
                break;
            }
        }
        assert!(caught, "3-sigma shift must trip");
        assert_eq!(det.drifted_feature(), Some(1));
    }

    #[test]
    fn downward_shift_is_caught_too() {
        let mut det = DriftDetector::new(1, cfg());
        for i in 0..2_000u64 {
            det.observe_row(&[5.0 + noise(i)]);
        }
        let mut caught = false;
        for i in 0..2_000u64 {
            if det.observe_row(&[4.0 + noise(i * 5)]) {
                caught = true;
                break;
            }
        }
        assert!(caught, "two-sided test must see downward drift");
    }

    #[test]
    fn nan_and_infinity_are_skipped_not_poisonous() {
        let mut det = DriftDetector::new(2, cfg());
        for i in 0..3_000u64 {
            let bad = match i % 3 {
                0 => f64::NAN,
                1 => f64::INFINITY,
                _ => f64::NEG_INFINITY,
            };
            det.observe_row(&[7.0 + noise(i), bad]);
        }
        assert!(!det.drifted(), "non-finite inputs must not trigger");
        // The finite feature's moments stayed finite and usable: a real
        // shift on it is still caught afterwards.
        let mut caught = false;
        for i in 0..3_000u64 {
            if det.observe_row(&[9.0 + noise(i), f64::NAN]) {
                caught = true;
                break;
            }
        }
        assert!(caught, "detector still live after NaN storm");
        assert_eq!(det.drifted_feature(), Some(0));
    }

    #[test]
    fn trigger_reports_once_then_latches() {
        let mut det = DriftDetector::new(1, cfg());
        for i in 0..1_000u64 {
            det.observe_row(&[1.0 + noise(i)]);
        }
        let mut first_trip = None;
        for i in 0..5_000u64 {
            if det.observe_row(&[3.0 + noise(i)]) {
                assert!(first_trip.is_none(), "observe_row reported twice");
                first_trip = Some(i);
            }
        }
        assert!(first_trip.is_some());
        assert!(det.drifted(), "flag stays latched");
    }

    #[test]
    fn reset_clears_the_flag_and_relearn_the_baseline() {
        let mut det = DriftDetector::new(1, cfg());
        for i in 0..1_000u64 {
            det.observe_row(&[1.0 + noise(i)]);
        }
        for i in 0..5_000u64 {
            det.observe_row(&[3.0 + noise(i)]);
        }
        assert!(det.drifted());
        det.reset();
        assert!(!det.drifted());
        assert_eq!(det.rows_seen(), 0);
        // Post-swap distribution (the one that caused the drift) is the
        // new baseline — it must NOT re-trigger.
        for i in 0..10_000u64 {
            assert!(
                !det.observe_row(&[3.0 + noise(i * 11)]),
                "stale moments survived reset (row {i})"
            );
        }
    }

    #[test]
    fn warmup_suppresses_early_noise_triggers() {
        let aggressive = DriftConfig {
            delta: 0.0,
            lambda: 0.5,
            min_samples: 1_000,
        };
        let mut det = DriftDetector::new(1, aggressive);
        // With no warm-up this hair-trigger config would trip in the
        // first handful of rows; min_samples holds it back.
        for i in 0..999u64 {
            assert!(!det.observe_row(&[noise(i)]));
        }
    }
}
