//! The automated INT-based DDoS detection mechanism — the paper's
//! primary contribution (§III, Fig. 2).
//!
//! Four modules cooperate around a flow database:
//!
//! ```text
//!  INT sink ──(1)──▶ [INT Data Collection] ──(2)──▶ [Data Processor]
//!                                                      │  ▲ (7,8)
//!                                                 (3)  ▼  │
//!                                                  [ Database ]
//!                                                      │  ▲ (6)
//!                                                 (4)  ▼  │
//!                                                  [CentralServer] ⇄ [Prediction]
//!                                                              (5)
//! ```
//!
//! * **INT Data Collection** reads telemetry reports from the collector.
//! * **Data Processor** maintains the flow table, writes one record per
//!   flow to the database, and aggregates returned model votes into a
//!   final verdict with a *prediction latency* stamp.
//! * **CentralServer** polls the database for **updated** records (new
//!   flows are skipped until their first update) and shuttles feature
//!   vectors to Prediction and votes back.
//! * **Prediction** standardizes features with the pre-fitted scaler and
//!   runs the pre-trained models (MLP + RF + GNB on the testbed).
//!
//! Robustness mechanisms from §IV-C.4 are faithfully implemented:
//! 2-of-3 **ensemble voting** across models, then a **3-prediction
//! smoothing window** (2 of the last 3) per flow.
//!
//! Two drivers are provided: [`pipeline::DetectionPipeline::run_sync`]
//! is a deterministic virtual-time driver with an explicit queueing model
//! of prediction service (so the paper's Table VI latency *shape* is
//! reproducible), and [`runtime::ThreadedPipeline`] runs the four modules
//! as real threads over crossbeam channels.

// Compiler-enforced arm of amlint rule R5: unsafe stays in shims/.
#![forbid(unsafe_code)]

pub mod batch;
pub mod db;
pub mod drift;
pub mod epoch;
pub mod event;
pub mod guard;
pub mod mailbox;
pub mod modules;
pub mod pipeline;
pub mod runtime;
pub mod source;
pub mod testbed;
pub mod trainer;
pub mod verdict;

pub use amlight_ml::{BundleMeta, MetaError, BUNDLE_SCHEMA_VERSION};
pub use batch::{BatchDetector, BatchOutcome};
pub use db::{FlowDatabase, PredictionRecord, UpdateEvent};
pub use drift::{DriftConfig, DriftDetector};
pub use epoch::{EpochHandle, PublishError, VersionedBundle};
pub use event::{
    pint_view, sample_reports, LabeledEvent, Telemetry, TelemetryBackend, TelemetryEvent,
    ViewOptions,
};
pub use guard::{CountMinSketch, FloodAlert, GuardConfig, NewFlowGuard};
pub use mailbox::{EventMailbox, OverflowPolicy};
pub use modules::{
    Aggregator, Clock, Ingest, JudgedUpdate, Predictor, Processor, VirtualClock, WallClock,
};
pub use pipeline::{DetectionPipeline, PipelineConfig, PipelineReport};
pub use runtime::{AdaptConfig, AdaptStats, RunHandle, RuntimeError, ThreadedPipeline};
pub use source::{
    ChannelSource, CollectorSource, EventReplaySource, EventSource, IterSource, PintReplaySource,
    ReplaySource, SflowAgentSource, SflowReplaySource, SocketSource, SourcePoll,
};
pub use testbed::{Testbed, TestbedConfig};
pub use trainer::{train_bundle, ModelBundle, TrainerConfig, VoteScratch};
pub use verdict::{RecallCounts, SmoothingWindow, Verdict, VerdictCounts};
