//! Epoch-published model state: the one swappable handle every driver
//! reads.
//!
//! Before this layer, model ownership was inconsistent across the three
//! drivers — [`crate::modules::Predictor`] owned a [`ModelBundle`] by
//! value, the threaded runtime cloned one per run, and the batch engine
//! held an `Arc` — and all three were frozen for the life of the
//! process. This module replaces every copy with a single publication
//! protocol:
//!
//! * **Readers** (the prediction stages) call [`EpochHandle::load`]
//!   once per micro-batch: one wait-free atomic pointer load (the
//!   `arcswap` shim), no lock, no allocation. Every row of a batch is
//!   scored against the *same* [`VersionedBundle`] — a batch can never
//!   straddle two epochs, and a swap can never tear a bundle mid-batch
//!   because published bundles are immutable.
//! * **The writer** (a retrainer, the CLI, a test) calls
//!   [`EpochHandle::publish`] with a freshly trained bundle. The handle
//!   validates the feature set against the live one (a mismatched
//!   publish is an error, not a mispredicting pipeline), stamps the
//!   bundle's metadata with the next epoch number, and swaps it in
//!   atomically. Readers observe the new epoch on their next batch;
//!   in-flight batches complete against the old one. No event is
//!   dropped or re-queued by a swap.
//!
//! Superseded bundles are retired inside the `arcswap` cell (kept alive
//! until the handle drops), so the memory cost of adaptation is
//! O(epochs published) bundles — bounded by retrain count, which is a
//! handful per day, not per packet.

use crate::trainer::ModelBundle;
use amlight_features::FeatureSet;
use arcswap::{ArcSwap, Guard};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An immutable published model bundle plus the epoch it was published
/// under. The epoch here is authoritative (it always equals
/// `bundle.meta.epoch`; [`EpochHandle::publish`] stamps both).
#[derive(Debug)]
pub struct VersionedBundle {
    epoch: u64,
    bundle: ModelBundle,
}

impl VersionedBundle {
    /// Publication epoch: every verdict produced against this bundle is
    /// stamped with it.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub fn bundle(&self) -> &ModelBundle {
        &self.bundle
    }

    pub fn feature_set(&self) -> FeatureSet {
        self.bundle.feature_set
    }
}

/// Publishing a bundle the live pipeline could not correctly consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PublishError {
    /// The new bundle was trained on a different feature set than the
    /// one the pipeline's processors project.
    FeatureSetMismatch {
        expected: FeatureSet,
        got: FeatureSet,
    },
}

impl std::fmt::Display for PublishError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PublishError::FeatureSetMismatch { expected, got } => write!(
                f,
                "cannot publish a {}-column bundle (mask {:#06x}) into a \
                 {}-column pipeline (mask {:#06x})",
                got.dim(),
                got.mask(),
                expected.dim(),
                expected.mask()
            ),
        }
    }
}

impl std::error::Error for PublishError {}

/// Shared inner state: the swappable cell plus the monotone epoch
/// allocator (separate from the cell so concurrent publishers can never
/// double-allocate an epoch number).
#[derive(Debug)]
struct Shared {
    cell: ArcSwap<VersionedBundle>,
    next_epoch: AtomicU64,
    published: AtomicU64,
}

/// The swappable model handle shared by every pipeline stage.
///
/// Cloning is cheap (one `Arc`) and every clone sees every publish —
/// this is the mechanism that unifies the drivers: `Predictor`, the
/// threaded runtime's prediction thread, the batch engine, and the
/// shadow trainer all hold clones of one handle.
#[derive(Debug, Clone)]
pub struct EpochHandle {
    shared: Arc<Shared>,
}

impl EpochHandle {
    /// Wrap an initial bundle. Its first published epoch is whatever
    /// its metadata already carries (0 for an offline-trained bundle).
    pub fn new(bundle: ModelBundle) -> Self {
        let epoch = bundle.meta.epoch;
        Self {
            shared: Arc::new(Shared {
                cell: ArcSwap::new(Arc::new(VersionedBundle { epoch, bundle })),
                next_epoch: AtomicU64::new(epoch + 1),
                published: AtomicU64::new(0),
            }),
        }
    }

    /// Wait-free borrow of the current epoch's bundle: one atomic
    /// pointer load. Call once per micro-batch and score the whole
    /// batch against the guard — that is what makes "no batch straddles
    /// a swap" true by construction.
    // amlint: hot
    #[inline]
    pub fn load(&self) -> Guard<'_, VersionedBundle> {
        self.shared.cell.load()
    }

    /// Owned handle to the current epoch's bundle, for readers that
    /// outlive the borrow (or cross `rayon` task boundaries). Briefly
    /// takes the writer mutex — per batch, not per event.
    pub fn load_full(&self) -> Arc<VersionedBundle> {
        self.shared.cell.load_full()
    }

    /// Epoch of the currently published bundle.
    pub fn current_epoch(&self) -> u64 {
        self.load().epoch()
    }

    /// Feature set of the live pipeline. Invariant across publishes —
    /// [`EpochHandle::publish`] enforces it.
    pub fn feature_set(&self) -> FeatureSet {
        self.load().feature_set()
    }

    /// Publishes this handle has performed (excludes the initial
    /// bundle).
    pub fn epochs_published(&self) -> u64 {
        self.shared.published.load(Ordering::Acquire)
    }

    /// Atomically publish a freshly trained bundle as the next epoch.
    ///
    /// The bundle's metadata is restamped with the allocated epoch
    /// number, so persisted copies of a hot-swapped bundle carry their
    /// publication history. Returns the new epoch. Readers see it on
    /// their next `load`; batches already scored against the previous
    /// epoch keep that epoch's stamp.
    // amlint: cold -- writer side: runs once per retrain, never per event
    pub fn publish(&self, mut bundle: ModelBundle) -> Result<u64, PublishError> {
        let expected = self.feature_set();
        if bundle.feature_set != expected {
            return Err(PublishError::FeatureSetMismatch {
                expected,
                got: bundle.feature_set,
            });
        }
        let epoch = self.shared.next_epoch.fetch_add(1, Ordering::AcqRel);
        bundle.meta.epoch = epoch;
        self.shared
            .cell
            .store(Arc::new(VersionedBundle { epoch, bundle }));
        self.shared.published.fetch_add(1, Ordering::AcqRel);
        Ok(epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{dataset_from_events, train_bundle, TrainerConfig};
    use amlight_int::{HopMetadata, InstructionSet, TelemetryReport};
    use amlight_net::{FlowKey, Protocol, TrafficClass};
    use amlight_sflow::FlowSample;
    use std::net::Ipv4Addr;

    /// The queue-blind projection sFlow populates (12 of 15 columns).
    fn sflow_set() -> FeatureSet {
        FeatureSet::full().without(&amlight_features::FeatureId::QUEUE_COLUMNS)
    }

    fn tiny_bundle(set: FeatureSet) -> ModelBundle {
        let cfg = TrainerConfig {
            mlp: amlight_ml::MlpConfig {
                epochs: 2,
                ..amlight_ml::MlpConfig::paper_mlp()
            },
            ..Default::default()
        };
        if set.is_full() {
            let labeled: Vec<(TelemetryReport, TrafficClass)> = (0..40u32)
                .map(|i| {
                    (
                        TelemetryReport {
                            flow: FlowKey::new(
                                Ipv4Addr::new(9, 9, 9, 9),
                                Ipv4Addr::new(10, 0, 0, 2),
                                1000 + (i % 4) as u16,
                                80,
                                Protocol::Tcp,
                            ),
                            ip_len: if i % 2 == 0 { 800 } else { 40 },
                            tcp_flags: Some(0x02),
                            instructions: InstructionSet::amlight(),
                            hops: vec![HopMetadata {
                                switch_id: 0,
                                ingress_tstamp: i * 1000,
                                egress_tstamp: i * 1000 + 500,
                                hop_latency: 0,
                                queue_occupancy: i % 8,
                            }]
                            .into(),
                            export_ns: u64::from(i) * 1_000,
                        },
                        if i % 2 == 0 {
                            TrafficClass::Benign
                        } else {
                            TrafficClass::SynFlood
                        },
                    )
                })
                .collect();
            let raw = dataset_from_events(&labeled, set);
            train_bundle(&raw, set, &cfg)
        } else {
            let labeled: Vec<(FlowSample, TrafficClass)> = (0..40u32)
                .map(|i| {
                    (
                        FlowSample {
                            flow: FlowKey::new(
                                Ipv4Addr::new(9, 9, 9, 9),
                                Ipv4Addr::new(10, 0, 0, 2),
                                1000 + (i % 4) as u16,
                                80,
                                Protocol::Tcp,
                            ),
                            ip_len: if i % 2 == 0 { 900 } else { 60 },
                            tcp_flags: Some(0x02),
                            observed_ns: u64::from(i) * 1_000,
                            sampling_period: 256,
                        },
                        if i % 2 == 0 {
                            TrafficClass::Benign
                        } else {
                            TrafficClass::SynFlood
                        },
                    )
                })
                .collect();
            let raw = dataset_from_events(&labeled, set);
            train_bundle(&raw, set, &cfg)
        }
    }

    #[test]
    fn initial_epoch_comes_from_the_bundle_meta() {
        let handle = EpochHandle::new(tiny_bundle(FeatureSet::full()));
        assert_eq!(handle.current_epoch(), 0);
        assert_eq!(handle.epochs_published(), 0);
        assert_eq!(handle.feature_set(), FeatureSet::full());
    }

    #[test]
    fn publish_increments_epoch_and_restamps_meta() {
        let handle = EpochHandle::new(tiny_bundle(FeatureSet::full()));
        let fresh = tiny_bundle(FeatureSet::full());
        assert_eq!(fresh.meta.epoch, 0, "offline bundles start at epoch 0");
        let epoch = handle.publish(fresh).expect("same feature set");
        assert_eq!(epoch, 1);
        assert_eq!(handle.current_epoch(), 1);
        assert_eq!(handle.epochs_published(), 1);
        let live = handle.load_full();
        assert_eq!(live.bundle().meta.epoch, 1, "meta restamped at publish");
    }

    #[test]
    fn feature_set_mismatch_is_rejected_and_leaves_the_old_epoch_live() {
        let handle = EpochHandle::new(tiny_bundle(FeatureSet::full()));
        let err = handle.publish(tiny_bundle(sflow_set())).unwrap_err();
        assert_eq!(
            err,
            PublishError::FeatureSetMismatch {
                expected: FeatureSet::full(),
                got: sflow_set(),
            }
        );
        assert!(err.to_string().contains("12-column"), "{err}");
        assert_eq!(handle.current_epoch(), 0);
        assert_eq!(handle.epochs_published(), 0);
    }

    #[test]
    fn clones_share_publishes() {
        let handle = EpochHandle::new(tiny_bundle(FeatureSet::full()));
        let reader = handle.clone();
        handle.publish(tiny_bundle(FeatureSet::full())).unwrap();
        assert_eq!(reader.current_epoch(), 1);
        assert_eq!(reader.epochs_published(), 1);
    }

    #[test]
    fn guard_pins_one_epoch_across_a_publish() {
        let handle = EpochHandle::new(tiny_bundle(FeatureSet::full()));
        let batch_view = handle.load();
        handle.publish(tiny_bundle(FeatureSet::full())).unwrap();
        // The in-flight "batch" still scores against its own epoch...
        assert_eq!(batch_view.epoch(), 0);
        assert_eq!(batch_view.bundle().meta.epoch, 0);
        // ...while the next batch sees the new one.
        assert_eq!(handle.load().epoch(), 1);
    }

    #[test]
    fn concurrent_publishers_never_reuse_an_epoch() {
        let handle = EpochHandle::new(tiny_bundle(FeatureSet::full()));
        let template = handle.load_full().bundle().clone();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let handle = handle.clone();
                let bundle = template.clone();
                std::thread::spawn(move || {
                    (0..8u64)
                        .map(|_| handle.publish(bundle.clone()).unwrap())
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        let mut epochs: Vec<u64> = threads
            .into_iter()
            .flat_map(|t| t.join().unwrap())
            .collect();
        epochs.sort_unstable();
        let expected: Vec<u64> = (1..=32).collect();
        assert_eq!(epochs, expected, "epochs are allocated exactly once");
        // With racing publishers the last *store* wins, which need not
        // be the highest epoch — the guarantee is uniqueness, and that
        // the live bundle is one that was actually published.
        assert!((1..=32).contains(&handle.current_epoch()));
        assert_eq!(handle.epochs_published(), 32);
    }
}
