//! Flow table and streaming feature extraction — the paper's *Data
//! Processor* module (§III-2).
//!
//! Per incoming telemetry record the processor:
//!
//! 1. looks the five-tuple *Flow ID* up in the flow table;
//! 2. creates a fresh record (defaults ≈ 0) or updates the existing one:
//!    packet-level fields are **replaced**, flow-level aggregates
//!    (counters, cumulative sums, streaming mean/std) are **updated**;
//! 3. emits the feature vector the ML models consume.
//!
//! The crate is backend-blind: every telemetry system lowers its events
//! into the normalized [`FlowUpdate`] and the table has exactly one
//! ingest path, [`FlowTable::apply`]. Which of the 15 canonical columns
//! (paper §IV-C.3) a backend can populate is a [`FeatureSet`] bitmask
//! descriptor — the full INT projection, the queue-blind sFlow subset
//! (paper Table II), or anything in between. Inter-arrival times derived
//! from wrapped 32-bit stamps (`FlowUpdate::stamp32`) inherit the 4.3 s
//! aliasing artifact the paper describes — on purpose.

// Compiler-enforced arm of amlint rule R5: unsafe stays in shims/.
#![forbid(unsafe_code)]

pub mod reference;
pub mod sharded;
pub mod stats;
pub mod table;
pub mod triage;
pub mod vector;

pub use sharded::{ShardRouter, ShardedFlowTable, ShardedUpdate};
pub use stats::StreamingStats;
pub use table::{FlowRecord, FlowTable, FlowTableConfig, FlowUpdate, UpdateKind};
pub use triage::{
    EntropySketch, PrefilterMode, TriageConfig, TriageCounters, TriageDecision, TriageStage,
    TriageVerdict, WindowedCountMin,
};
pub use vector::{FeatureId, FeatureSet, FeatureVector};
