//! Line-rate triage pre-filter: sketch-based flow gating in front of the
//! Predictor (ROADMAP item 4's collection-stage pre-filter).
//!
//! The paper forwards *every* flow update to the ML ensemble — exactly
//! backwards under a volumetric DDoS, which multiplies the active-flow
//! population precisely when inference capacity is scarcest. This module
//! is the O(1)-per-update, statically allocated triage stage that runs
//! inside the Processor ingest path (after [`crate::FlowTable::apply`],
//! before the CentralServer update filter) and grades each update:
//!
//! * **Forward** — evaluate now, on the normal prediction lane. Early
//!   updates of every flow (smoothing warm-up) always forward, and
//!   suspicious flows keep forwarding at a decimated 1-in-`stride` rate,
//!   so detection latency and the per-flow verdict stream survive gating.
//! * **Defer** — park on a bounded low-priority lane the Predictor
//!   drains only when the main lane is idle. Benign steady-state traffic
//!   lands here: it still gets evaluated in quiet periods, and lane
//!   overflow under load is explicit shed, not silent loss.
//! * **Drop** — do not evaluate. The decimated remainder of suspicious
//!   flows, plus baseline-conforming traffic while the aggregate alarm
//!   says a flood is in progress.
//!
//! The score is *not* self-deviation (a steady SYN flood is perfectly
//! self-consistent): each flow's EMA of packet length and inter-arrival
//! is compared in log-space against a configured benign operating
//! envelope, plus a heavy-hitter term from a window-decayed count-min
//! sketch. Src/dst entropy sketches provide the aggregate alarm — a
//! surge in update rate or source-address entropy flips the stage into
//! flood posture, where low-score updates drop instead of defer.
//!
//! Everything is allocated once in [`TriageStage::new`]; the per-update
//! path is allocation-free and panic-free (amlint R6/R1, enforced via
//! the `assess` hot root).

use crate::table::{FlowRecord, FlowUpdate};
use amlight_net::flow::FnvBuildHasher;
use serde::{Deserialize, Serialize};
use std::hash::BuildHasher;

/// How the pre-filter participates in a pipeline run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PrefilterMode {
    /// Stage disabled: no sketch state, no scoring, every update forwards.
    #[default]
    Off,
    /// Scores and sketches run (counted as would-be verdicts) but every
    /// update still forwards — the recall-parity measurement mode.
    Shadow,
    /// Verdicts gate for real: Defer routes to the low-priority lane and
    /// Drop skips prediction entirely.
    On,
}

impl PrefilterMode {
    /// Parse a `--prefilter` value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "off" => Some(Self::Off),
            "shadow" => Some(Self::Shadow),
            "on" => Some(Self::On),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Self::Off => "off",
            Self::Shadow => "shadow",
            Self::On => "on",
        }
    }
}

/// Per-update gating decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriageVerdict {
    /// Evaluate on the normal prediction lane.
    Forward,
    /// Park on the low-priority lane; evaluated when the Predictor idles.
    Defer,
    /// Skip prediction for this update.
    Drop,
}

/// A triage verdict plus the anomaly score that produced it (also the
/// optional `sketch_score` feature column).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriageDecision {
    pub verdict: TriageVerdict,
    pub score: f64,
}

impl TriageDecision {
    /// The no-op decision (stage off / flow creations).
    pub const fn forward() -> Self {
        Self {
            verdict: TriageVerdict::Forward,
            score: 0.0,
        }
    }
}

/// Triage tuning. Every sizing knob is rounded up to a power of two so
/// the hot path indexes with masks, never division.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TriageConfig {
    /// EMA weight for the per-flow length/inter-arrival baselines.
    pub ema_alpha: f64,
    /// Updates of every flow that always forward (smoothing warm-up:
    /// keep this ≥ the aggregator's window so first verdicts and
    /// detection latency are unchanged by gating).
    pub warmup_updates: u64,
    /// After warm-up, suspicious flows forward 1 update in `stride`
    /// (the rest drop) — the predictor sees a decimated sample of a
    /// flood flow instead of its entire update firehose.
    pub forward_stride: u64,
    /// Score at or above which an update is suspicious (Forward lane,
    /// decimated).
    pub forward_threshold: f64,
    /// Under an active aggregate alarm, scores below this drop instead
    /// of deferring. Keep ≤ `forward_threshold`; scores between the two
    /// defer even mid-flood.
    pub drop_threshold: f64,
    /// Benign operating envelope: typical packet length, bytes.
    pub benign_len: f64,
    /// Benign operating envelope: typical per-flow inter-arrival, s.
    pub benign_iat_s: f64,
    /// Per-flow window count above which the heavy-hitter term starts
    /// contributing meaningfully.
    pub heavy_norm: f64,
    /// Score weights: length deviation, inter-arrival deviation,
    /// heavy-hitter term.
    pub w_len: f64,
    pub w_iat: f64,
    pub w_heavy: f64,
    /// Direct-mapped per-flow baseline cells (rounded up to a power of
    /// two). Collisions evict: triage baselines are advisory, not
    /// bookkeeping.
    pub flow_cells: usize,
    /// Count-min sketch width per row (rounded up to a power of two).
    pub cm_width: usize,
    /// Count-min sketch rows.
    pub cm_depth: usize,
    /// Entropy sketch buckets (rounded up to a power of two).
    pub entropy_buckets: usize,
    /// Aggregate window length (event-native clock, ns). Each rollover
    /// evaluates the alarm and halves every sketch counter.
    pub window_ns: u64,
    /// Windows with fewer events than this never alarm (absolute floor).
    pub alarm_min_events: u64,
    /// Alarm when a window's event count exceeds this multiple of the
    /// calm-rate EMA …
    pub alarm_rate_ratio: f64,
    /// … or when src entropy jumps (or dst entropy collapses) by this
    /// many nats against its calm baseline.
    pub alarm_entropy_jump: f64,
}

impl Default for TriageConfig {
    fn default() -> Self {
        Self {
            ema_alpha: 0.3,
            warmup_updates: 3,
            forward_stride: 8,
            forward_threshold: 1.25,
            drop_threshold: 1.25,
            benign_len: 800.0,
            benign_iat_s: 1e-3,
            heavy_norm: 64.0,
            w_len: 0.5,
            w_iat: 0.5,
            w_heavy: 0.35,
            flow_cells: 4096,
            cm_width: 1024,
            cm_depth: 4,
            entropy_buckets: 256,
            window_ns: 250_000_000,
            alarm_min_events: 512,
            alarm_rate_ratio: 4.0,
            alarm_entropy_jump: 0.7,
        }
    }
}

/// EMA weight for the calm-window baselines (rate, entropies).
const ALPHA_SLOW: f64 = 0.25;

/// SplitMix64 finalizer: cheap, panic-free avalanche for sketch indexing.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A count-min sketch whose counters halve at every window rollover —
/// a cheap exponential decay that can never underflow (`u64 >> 1`).
///
/// Unlike the post-hoc guard's epoch sketch (clear-and-restart, in
/// `amlight_core::guard`), windowed halving keeps ~one window of history in
/// the estimate, so a flow that just went quiet does not instantly look
/// cold. Width is a power of two: hot-path indexing is mask-and-add.
#[derive(Debug, Clone)]
pub struct WindowedCountMin {
    width_mask: usize,
    depth: usize,
    /// `depth` rows of `width` counters, flattened row-major.
    counters: Vec<u64>,
}

/// Per-row hash seeds (mixed into the key before the row's mask).
const ROW_SEEDS: [u64; 8] = [
    0x243F_6A88_85A3_08D3,
    0x1319_8A2E_0370_7344,
    0xA409_3822_299F_31D0,
    0x082E_FA98_EC4E_6C89,
    0x4528_21E6_38D0_1377,
    0xBE54_66CF_34E9_0C6C,
    0xC0AC_29B7_C97C_50DD,
    0x3F84_D5B5_B547_0917,
];

impl WindowedCountMin {
    /// Width is rounded up to a power of two; depth is capped at
    /// [`ROW_SEEDS`]'s length.
    pub fn new(width: usize, depth: usize) -> Self {
        let width = width.max(2).next_power_of_two();
        let depth = depth.clamp(1, ROW_SEEDS.len());
        Self {
            width_mask: width - 1,
            depth,
            counters: vec![0; width * depth],
        }
    }

    /// Count one occurrence of `key`; returns the new (over-)estimate.
    // amlint: allow(R8) -- row*width + (hash & width_mask) < depth*width = counters.len()
    #[inline]
    pub fn observe(&mut self, key: u64) -> u64 {
        let mut est = u64::MAX;
        let width = self.width_mask + 1;
        for (row, seed) in ROW_SEEDS.iter().take(self.depth).enumerate() {
            let h = mix64(key ^ seed);
            let slot = row * width + (h as usize & self.width_mask);
            let c = self.counters[slot].saturating_add(1);
            self.counters[slot] = c;
            est = est.min(c);
        }
        est
    }

    /// Point estimate: minimum over rows (never under the true decayed
    /// count).
    // amlint: allow(R8) -- row*width + (hash & width_mask) < depth*width = counters.len()
    #[inline]
    pub fn estimate(&self, key: u64) -> u64 {
        let mut est = u64::MAX;
        let width = self.width_mask + 1;
        for (row, seed) in ROW_SEEDS.iter().take(self.depth).enumerate() {
            let h = mix64(key ^ seed);
            est = est.min(self.counters[row * width + (h as usize & self.width_mask)]);
        }
        if est == u64::MAX {
            0
        } else {
            est
        }
    }

    /// Halve every counter — window rollover decay. Right-shifting an
    /// unsigned counter can never underflow: 0 stays 0.
    #[inline]
    pub fn decay(&mut self) {
        for c in &mut self.counters {
            *c >>= 1;
        }
    }
}

/// A bucketed entropy estimator with the same halving decay.
///
/// Symbols hash into a fixed power-of-two bucket array; Shannon entropy
/// is computed over bucket frequencies. Colliding symbols merge buckets,
/// and merging can only lose entropy — the estimate never exceeds the
/// exact entropy of the underlying stream (grouping property), and
/// equals it when every symbol owns its own bucket.
#[derive(Debug, Clone)]
pub struct EntropySketch {
    mask: usize,
    buckets: Vec<u64>,
    total: u64,
}

impl EntropySketch {
    pub fn new(buckets: usize) -> Self {
        let n = buckets.max(2).next_power_of_two();
        Self {
            mask: n - 1,
            buckets: vec![0; n],
            total: 0,
        }
    }

    /// The bucket a symbol hash lands in (exposed so tests can build
    /// collision-free universes).
    #[inline]
    pub fn bucket_of(&self, symbol: u64) -> usize {
        mix64(symbol) as usize & self.mask
    }

    /// Count one occurrence of `symbol`.
    // amlint: allow(R8) -- bucket_of() masks into the fixed bucket array
    #[inline]
    pub fn observe(&mut self, symbol: u64) {
        let b = self.bucket_of(symbol);
        self.buckets[b] = self.buckets[b].saturating_add(1);
        self.total = self.total.saturating_add(1);
    }

    /// Shannon entropy (nats) over the bucket distribution.
    #[inline]
    pub fn entropy(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let total = self.total as f64;
        let mut acc = 0.0;
        for &b in &self.buckets {
            if b > 0 {
                let p = b as f64 / total;
                acc -= p * p.ln();
            }
        }
        acc
    }

    /// Events counted since the last full decay-to-zero.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Halve every bucket (and recompute the total from the halved
    /// buckets, so `total == Σ buckets` stays an invariant).
    #[inline]
    pub fn decay(&mut self) {
        let mut total = 0u64;
        for b in &mut self.buckets {
            *b >>= 1;
            total += *b;
        }
        self.total = total;
    }
}

/// One direct-mapped per-flow baseline cell. Tag 0 means empty; a tag
/// mismatch (hash collision or fresh flow) reinitializes the cell.
#[derive(Debug, Clone, Copy, Default)]
struct FlowCell {
    tag: u64,
    ema_len: f64,
    ema_iat_s: f64,
    /// Suspicious updates since this flow last forwarded (decimation).
    since_forward: u32,
}

/// Would-be verdict tallies — what gating *decided*, independent of
/// whether the mode actually applied it (shadow mode's measurement).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TriageCounters {
    /// Flow updates scored (creations are sketched but never gated).
    pub scored: u64,
    pub forward: u64,
    pub defer: u64,
    pub drop: u64,
    /// Aggregate windows closed.
    pub windows: u64,
    /// Windows closed in flood posture.
    pub alarm_windows: u64,
}

impl TriageCounters {
    /// Fold another stage's tallies in (shard aggregation).
    pub fn merge(&mut self, other: &TriageCounters) {
        self.scored += other.scored;
        self.forward += other.forward;
        self.defer += other.defer;
        self.drop += other.drop;
        self.windows += other.windows;
        self.alarm_windows += other.alarm_windows;
    }
}

/// The triage stage: per-flow EMA baselines + windowed aggregate
/// sketches + the alarm state machine. One per processor shard; all
/// state is allocated in [`TriageStage::new`] and the per-update
/// [`TriageStage::assess`] path is allocation- and panic-free.
#[derive(Debug)]
pub struct TriageStage {
    cfg: TriageConfig,
    hasher: FnvBuildHasher,
    cells: Vec<FlowCell>,
    cell_mask: usize,
    cm: WindowedCountMin,
    src_entropy: EntropySketch,
    dst_entropy: EntropySketch,
    /// Event-native time at which the current aggregate window closes.
    window_end_ns: u64,
    /// Events (creations + updates) seen in the current window.
    window_events: u64,
    /// Calm-window baselines (only non-alarm windows update them, so a
    /// sustained flood cannot talk its way into the "new normal").
    rate_ema: f64,
    src_h_ema: f64,
    dst_h_ema: f64,
    baseline_set: bool,
    alarm_active: bool,
    counters: TriageCounters,
}

impl TriageStage {
    pub fn new(cfg: TriageConfig) -> Self {
        let cells = cfg.flow_cells.max(2).next_power_of_two();
        Self {
            cfg,
            hasher: FnvBuildHasher::default(),
            cells: vec![FlowCell::default(); cells],
            cell_mask: cells - 1,
            cm: WindowedCountMin::new(cfg.cm_width, cfg.cm_depth),
            src_entropy: EntropySketch::new(cfg.entropy_buckets),
            dst_entropy: EntropySketch::new(cfg.entropy_buckets),
            window_end_ns: 0,
            window_events: 0,
            rate_ema: 0.0,
            src_h_ema: 0.0,
            dst_h_ema: 0.0,
            baseline_set: false,
            alarm_active: false,
            counters: TriageCounters::default(),
        }
    }

    /// Grade one applied flow update. Call for *every* event — creations
    /// feed the sketches (a spoofed flood is mostly creations) but are
    /// never gated (§III-3 skips them before triage even runs); their
    /// decision is always Forward.
    // amlint: hot
    pub fn assess(&mut self, update: &FlowUpdate, rec: &FlowRecord) -> TriageDecision {
        if update.now_ns >= self.window_end_ns {
            self.roll_window(update.now_ns);
        }
        self.window_events += 1;

        // Aggregate context: every event counts, whichever lane it ends
        // up on — the alarm must see the creation firehose of a spoofed
        // flood even though none of those packets reach prediction.
        let src = u64::from(u32::from(update.flow.src_ip));
        let dst = u64::from(u32::from(update.flow.dst_ip));
        self.src_entropy.observe(src);
        self.dst_entropy.observe(dst.wrapping_add(0x9E37_79B9));
        let flow_hash = self.hasher.hash_one(update.flow);
        let heavy_est = self.cm.observe(flow_hash);

        // Per-flow baseline cell (direct-mapped, collision-evicting).
        let tag = if flow_hash == 0 { 1 } else { flow_hash };
        let len = rec.last_packet_len as f64;
        let iat = rec.last_inter_arrival_s;
        let idx = flow_hash as usize & self.cell_mask;
        // amlint: allow(R8) -- masked power-of-two index into the fixed cell array
        let cell = &mut self.cells[idx];
        if cell.tag != tag {
            *cell = FlowCell {
                tag,
                ema_len: len.max(1.0),
                ema_iat_s: if iat > 0.0 {
                    iat
                } else {
                    self.cfg.benign_iat_s
                },
                since_forward: 0,
            };
        } else {
            let a = self.cfg.ema_alpha;
            cell.ema_len += a * (len - cell.ema_len);
            if iat > 0.0 {
                cell.ema_iat_s += a * (iat - cell.ema_iat_s);
            }
        }

        // Log-space distance from the benign envelope: symmetric, so
        // tiny/fast flood packets and huge/slow slowloris trickles both
        // score high, plus the heavy-hitter term.
        let len_dev = (cell.ema_len.max(1.0) / self.cfg.benign_len).ln().abs();
        let iat_dev = (cell.ema_iat_s.max(1e-9) / self.cfg.benign_iat_s)
            .ln()
            .abs();
        let heavy = (1.0 + heavy_est as f64 / self.cfg.heavy_norm).ln();
        let score = self.cfg.w_len * len_dev + self.cfg.w_iat * iat_dev + self.cfg.w_heavy * heavy;

        let verdict = if rec.update_seq == 0 {
            // Creation: sketched above, never forwarded downstream anyway.
            TriageVerdict::Forward
        } else if rec.update_seq <= self.cfg.warmup_updates {
            cell.since_forward = 0;
            TriageVerdict::Forward
        } else if score >= self.cfg.forward_threshold {
            // Suspicious flow: decimated forwarding. The predictor keeps
            // seeing a 1-in-stride sample, enough to hold the smoothing
            // window at Attack without evaluating the whole firehose.
            cell.since_forward += 1;
            if u64::from(cell.since_forward) >= self.cfg.forward_stride {
                cell.since_forward = 0;
                TriageVerdict::Forward
            } else {
                TriageVerdict::Drop
            }
        } else if self.alarm_active && score < self.cfg.drop_threshold {
            TriageVerdict::Drop
        } else {
            TriageVerdict::Defer
        };

        if rec.update_seq > 0 {
            self.counters.scored += 1;
            match verdict {
                TriageVerdict::Forward => self.counters.forward += 1,
                TriageVerdict::Defer => self.counters.defer += 1,
                TriageVerdict::Drop => self.counters.drop += 1,
            }
        }
        TriageDecision { verdict, score }
    }

    /// Close the current aggregate window: evaluate the alarm, update
    /// the calm baselines, and halve every sketch. Reached from the hot
    /// path once per window — must stay allocation- and panic-free.
    fn roll_window(&mut self, now_ns: u64) {
        if self.window_end_ns > 0 {
            self.counters.windows += 1;
            let count = self.window_events as f64;
            let src_h = self.src_entropy.entropy();
            let dst_h = self.dst_entropy.entropy();
            let over_floor = self.window_events >= self.cfg.alarm_min_events;
            let rate_alarm = over_floor
                && self.baseline_set
                && count > self.cfg.alarm_rate_ratio * self.rate_ema.max(1.0);
            let entropy_alarm = over_floor
                && self.baseline_set
                && (src_h - self.src_h_ema > self.cfg.alarm_entropy_jump
                    || self.dst_h_ema - dst_h > self.cfg.alarm_entropy_jump);
            self.alarm_active = rate_alarm || entropy_alarm;
            if self.alarm_active {
                self.counters.alarm_windows += 1;
            } else if self.baseline_set {
                self.rate_ema += ALPHA_SLOW * (count - self.rate_ema);
                self.src_h_ema += ALPHA_SLOW * (src_h - self.src_h_ema);
                self.dst_h_ema += ALPHA_SLOW * (dst_h - self.dst_h_ema);
            } else if self.window_events > 0 {
                self.rate_ema = count;
                self.src_h_ema = src_h;
                self.dst_h_ema = dst_h;
                self.baseline_set = true;
            }
            self.cm.decay();
            self.src_entropy.decay();
            self.dst_entropy.decay();
        }
        self.window_events = 0;
        self.window_end_ns = now_ns.saturating_add(self.cfg.window_ns);
    }

    /// Is the stage currently in flood posture?
    pub fn alarm_active(&self) -> bool {
        self.alarm_active
    }

    /// Would-be verdict tallies so far.
    pub fn counters(&self) -> TriageCounters {
        self.counters
    }

    pub fn config(&self) -> &TriageConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{FlowTable, FlowTableConfig};
    use amlight_net::{FlowKey, Protocol};
    use std::net::Ipv4Addr;

    fn key(src_last: u8, src_port: u16) -> FlowKey {
        FlowKey::new(
            Ipv4Addr::new(198, 18, 0, src_last),
            Ipv4Addr::new(10, 0, 0, 2),
            src_port,
            80,
            Protocol::Tcp,
        )
    }

    fn update(flow: FlowKey, now_ns: u64, len: u16) -> FlowUpdate {
        FlowUpdate {
            flow,
            now_ns,
            len,
            stamp32: None,
            observed_ns: Some(now_ns),
            queue_occupancy: None,
        }
    }

    /// Drive a real flow table so `assess` sees the same records the
    /// Processor would hand it.
    struct Rig {
        table: FlowTable,
        stage: TriageStage,
    }

    impl Rig {
        fn new(cfg: TriageConfig) -> Self {
            Self {
                table: FlowTable::new(FlowTableConfig::default()),
                stage: TriageStage::new(cfg),
            }
        }

        fn feed(&mut self, u: FlowUpdate) -> TriageDecision {
            let (_, rec) = self.table.apply(&u);
            self.stage.assess(&u, rec)
        }
    }

    fn quiet_cfg() -> TriageConfig {
        TriageConfig {
            // Effectively never alarms; windows still roll.
            alarm_min_events: u64::MAX,
            ..TriageConfig::default()
        }
    }

    #[test]
    fn benign_envelope_flow_defers_after_warmup() {
        let mut rig = Rig::new(quiet_cfg());
        let f = key(1, 40000);
        let mut verdicts = Vec::new();
        for i in 0..12u64 {
            // 800-byte packets at 1 ms: dead centre of the envelope.
            let d = rig.feed(update(f, i * 1_000_000, 800));
            assert!(d.score < 1.25, "benign score stays low, got {}", d.score);
            verdicts.push(d.verdict);
        }
        // Creation + warm-up forwards, then steady Defer.
        assert_eq!(verdicts[0], TriageVerdict::Forward, "creation");
        for v in &verdicts[1..4] {
            assert_eq!(*v, TriageVerdict::Forward, "warm-up");
        }
        for v in &verdicts[4..] {
            assert_eq!(*v, TriageVerdict::Defer, "steady benign defers");
        }
        let c = rig.stage.counters();
        assert_eq!(c.scored, 11);
        assert_eq!(c.forward, 3);
        assert_eq!(c.defer, 8);
        assert_eq!(c.drop, 0);
    }

    #[test]
    fn flood_flow_is_decimated_not_silenced() {
        let cfg = quiet_cfg();
        let stride = cfg.forward_stride;
        let mut rig = Rig::new(cfg);
        let f = key(2, 50000);
        let mut forwards = 0u64;
        let mut drops = 0u64;
        let n = 200u64;
        for i in 0..n {
            // 40-byte SYNs at 20 µs — far outside the envelope.
            let d = rig.feed(update(f, i * 20_000, 40));
            if i == 0 {
                continue; // creation
            }
            assert!(d.score >= 1.25, "flood must look suspicious: {}", d.score);
            match d.verdict {
                TriageVerdict::Forward => forwards += 1,
                TriageVerdict::Drop => drops += 1,
                TriageVerdict::Defer => panic!("suspicious flows never defer"),
            }
        }
        // Warm-up plus roughly 1-in-stride afterwards.
        let after_warmup = n - 1 - cfg.warmup_updates;
        assert_eq!(forwards, cfg.warmup_updates + after_warmup / stride);
        assert_eq!(drops, after_warmup - after_warmup / stride);
    }

    #[test]
    fn rate_surge_trips_the_alarm_and_quiet_flows_drop() {
        let cfg = TriageConfig {
            window_ns: 1_000_000,
            alarm_min_events: 64,
            alarm_rate_ratio: 4.0,
            ..TriageConfig::default()
        };
        let mut rig = Rig::new(cfg);
        // Calm baseline: ~10 events per window from one benign flow.
        let benign = key(3, 41000);
        let mut t = 0u64;
        for _ in 0..50 {
            rig.feed(update(benign, t, 800));
            t += 100_000; // 10 per 1 ms window
        }
        assert!(!rig.stage.alarm_active());
        // Surge: hundreds of creations per window (spoofed flood shape).
        for i in 0..600u32 {
            let f = key((10 + (i % 200)) as u8, 42000 + (i / 200) as u16);
            rig.feed(update(f, t, 40));
            t += 2_000; // 500 per window
        }
        assert!(rig.stage.alarm_active(), "surge must flip flood posture");
        // The benign flow's in-envelope updates now drop, not defer.
        let d = rig.feed(update(benign, t, 800));
        assert_eq!(d.verdict, TriageVerdict::Drop);
        assert!(rig.stage.counters().alarm_windows > 0);
    }

    #[test]
    fn alarm_clears_when_the_surge_ends() {
        let cfg = TriageConfig {
            window_ns: 1_000_000,
            alarm_min_events: 64,
            ..TriageConfig::default()
        };
        let mut rig = Rig::new(cfg);
        let benign = key(4, 43000);
        let mut t = 0u64;
        for _ in 0..50 {
            rig.feed(update(benign, t, 800));
            t += 100_000;
        }
        for i in 0..600u32 {
            let f = key((10 + (i % 200)) as u8, 44000);
            rig.feed(update(f, t, 40));
            t += 2_000;
        }
        assert!(rig.stage.alarm_active());
        // Back to the calm cadence for several windows.
        for _ in 0..50 {
            rig.feed(update(benign, t, 800));
            t += 100_000;
        }
        assert!(!rig.stage.alarm_active(), "alarm must clear after surge");
    }

    #[test]
    fn creations_are_sketched_but_never_gated() {
        let mut rig = Rig::new(quiet_cfg());
        for i in 0..20u16 {
            let d = rig.feed(update(key(5, 45000 + i), i as u64 * 1_000, 40));
            assert_eq!(d.verdict, TriageVerdict::Forward);
        }
        let c = rig.stage.counters();
        assert_eq!(c.scored, 0, "creations are not verdict-counted");
        // But they did feed the aggregate sketches.
        assert!(rig.stage.src_entropy.total() == 20);
    }

    #[test]
    fn cell_collision_evicts_and_reseeds() {
        let cfg = TriageConfig {
            flow_cells: 2, // force collisions
            ..quiet_cfg()
        };
        let mut rig = Rig::new(cfg);
        // Interleave many distinct flows: every assess may hit a stale
        // cell; the stage must keep working (scores finite, no panic).
        for i in 0..200u16 {
            let d = rig.feed(update(
                key((i % 50) as u8, 46000 + i),
                i as u64 * 1_000,
                800,
            ));
            assert!(d.score.is_finite());
        }
    }

    #[test]
    fn count_min_estimate_never_underestimates() {
        let mut cm = WindowedCountMin::new(64, 4);
        for k in 0..500u64 {
            for _ in 0..(k % 7) + 1 {
                cm.observe(k);
            }
        }
        for k in 0..500u64 {
            assert!(cm.estimate(k) > k % 7, "key {k}");
        }
    }

    #[test]
    fn count_min_decay_halves_and_never_underflows() {
        let mut cm = WindowedCountMin::new(128, 4);
        for _ in 0..100 {
            cm.observe(42);
        }
        let before = cm.estimate(42);
        cm.decay();
        let after = cm.estimate(42);
        assert!(after <= before);
        assert!(after >= before / 2, "halving, not clearing");
        for _ in 0..200 {
            cm.decay(); // decaying an empty/near-empty sketch is safe
        }
        assert_eq!(cm.estimate(42), 0);
        assert_eq!(cm.estimate(7), 0);
    }

    #[test]
    fn entropy_matches_exact_on_collision_free_universe() {
        let mut sk = EntropySketch::new(256);
        // Three symbols with distinct buckets, counts 1/2/4.
        let mut symbols = Vec::new();
        let mut used = std::collections::HashSet::new();
        let mut candidate = 0u64;
        while symbols.len() < 3 {
            if used.insert(sk.bucket_of(candidate)) {
                symbols.push(candidate);
            }
            candidate += 1;
        }
        let counts = [1u64, 2, 4];
        for (s, &c) in symbols.iter().zip(&counts) {
            for _ in 0..c {
                sk.observe(*s);
            }
        }
        let total: u64 = counts.iter().sum();
        let exact: f64 = counts
            .iter()
            .map(|&c| {
                let p = c as f64 / total as f64;
                -p * p.ln()
            })
            .sum();
        assert!((sk.entropy() - exact).abs() < 1e-12);
    }

    #[test]
    fn entropy_decay_keeps_total_consistent() {
        let mut sk = EntropySketch::new(16);
        for i in 0..1000u64 {
            sk.observe(i);
        }
        for _ in 0..70 {
            sk.decay();
            assert!(sk.entropy() >= 0.0);
        }
        assert_eq!(sk.total(), 0, "enough halvings empty the sketch");
        assert_eq!(sk.entropy(), 0.0);
    }

    #[test]
    fn prefilter_mode_parses() {
        assert_eq!(PrefilterMode::parse("off"), Some(PrefilterMode::Off));
        assert_eq!(PrefilterMode::parse("shadow"), Some(PrefilterMode::Shadow));
        assert_eq!(PrefilterMode::parse("on"), Some(PrefilterMode::On));
        assert_eq!(PrefilterMode::parse("auto"), None);
        assert_eq!(PrefilterMode::On.name(), "on");
        assert_eq!(PrefilterMode::default(), PrefilterMode::Off);
    }
}
