//! Numerically stable streaming statistics (Welford's algorithm).
//!
//! The paper's Data Processor keeps running mean and standard deviation
//! of inter-arrival time, packet size, and queue occupancy per flow. A
//! naive sum/sum-of-squares accumulator loses precision catastrophically
//! for long flows with small variance; Welford's update does not.

use serde::{Deserialize, Serialize};

/// Streaming count / mean / variance / extrema accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamingStats {
    n: u64,
    mean: f64,
    m2: f64,
    sum: f64,
    min: f64,
    max: f64,
}

impl StreamingStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        if self.n == 1 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Mean; 0 if empty (the paper initializes flow-level values at 0).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Population variance; 0 for fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64).max(0.0)
        }
    }

    /// Population standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merge another accumulator into this one (parallel reduction —
    /// Chan et al.'s pairwise combination).
    pub fn merge(&mut self, other: &StreamingStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_std(xs: &[f64]) -> f64 {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        (xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n).sqrt()
    }

    #[test]
    fn empty_is_all_zero() {
        let s = StreamingStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn single_observation() {
        let mut s = StreamingStats::new();
        s.push(7.5);
        assert_eq!(s.mean(), 7.5);
        assert_eq!(s.std(), 0.0);
        assert_eq!(s.min(), 7.5);
        assert_eq!(s.max(), 7.5);
        assert_eq!(s.sum(), 7.5);
    }

    #[test]
    fn matches_reference_implementation() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut s = StreamingStats::new();
        for &x in &xs {
            s.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.std() - reference_std(&xs)).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn stable_for_large_offset_small_variance() {
        // The classic catastrophic-cancellation case for naive sums.
        let base = 1e9;
        let mut s = StreamingStats::new();
        for i in 0..1000 {
            s.push(base + (i % 2) as f64); // values 1e9 and 1e9+1
        }
        assert!((s.std() - 0.5).abs() < 1e-6, "std {}", s.std());
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = StreamingStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = StreamingStats::new();
        let mut right = StreamingStats::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-12);
        assert!((left.std() - whole.std()).abs() < 1e-12);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = StreamingStats::new();
        s.push(1.0);
        s.push(2.0);
        let snapshot = s;
        s.merge(&StreamingStats::new());
        assert_eq!(s, snapshot);

        let mut empty = StreamingStats::new();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot);
    }

    #[test]
    fn variance_never_negative() {
        let mut s = StreamingStats::new();
        for _ in 0..100 {
            s.push(0.1 + 0.2); // representation noise
        }
        assert!(s.variance() >= 0.0);
        assert!(s.std() >= 0.0);
    }
}
