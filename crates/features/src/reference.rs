//! Reference flow table: the pre-slab `FnvHashMap` implementation.
//!
//! [`HashFlowTable`] is the behavioral oracle for the slab-backed
//! [`crate::FlowTable`]: both drive `FlowRecord::observe` for the
//! per-event record update, so any divergence is in table mechanics
//! (lookup, creation, eviction) — exactly what the equivalence proptest
//! in `tests/proptests.rs` pins down. It also serves as the allocating
//! baseline in the ingest benchmarks.
//!
//! Not for production use: it allocates per new flow and rehashes on
//! growth, which is what the slab design exists to avoid.

use crate::table::{FlowRecord, FlowTableConfig, FlowUpdate, UpdateKind};
use amlight_net::flow::FnvHashMap;
use amlight_net::FlowKey;

/// The straightforward hashmap-backed flow table. Semantically identical
/// to [`crate::FlowTable`]; kept as an oracle and baseline.
#[derive(Debug, Default)]
pub struct HashFlowTable {
    cfg: FlowTableConfig,
    flows: FnvHashMap<FlowKey, FlowRecord>,
    created: u64,
    updated: u64,
    evicted: u64,
}

impl HashFlowTable {
    pub fn new(cfg: FlowTableConfig) -> Self {
        Self {
            cfg,
            flows: FnvHashMap::default(),
            created: 0,
            updated: 0,
            evicted: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.flows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    pub fn created(&self) -> u64 {
        self.created
    }

    pub fn updated(&self) -> u64 {
        self.updated
    }

    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    pub fn get(&self, key: &FlowKey) -> Option<&FlowRecord> {
        self.flows.get(key)
    }

    pub fn records(&self) -> impl Iterator<Item = &FlowRecord> {
        self.flows.values()
    }

    /// See [`crate::FlowTable::apply`].
    // amlint: cold -- reference model: HashMap-based by design, not the optimized path
    pub fn apply(&mut self, update: &FlowUpdate) -> (UpdateKind, &FlowRecord) {
        let key = update.flow;
        let now_ns = update.now_ns;
        if self.flows.len() >= self.cfg.max_flows && !self.flows.contains_key(&key) {
            self.evict_idle(now_ns);
        }
        let entry = self.flows.entry(key);
        let kind = match &entry {
            std::collections::hash_map::Entry::Occupied(_) => UpdateKind::Updated,
            std::collections::hash_map::Entry::Vacant(_) => UpdateKind::Created,
        };
        let rec = entry.or_insert_with(|| FlowRecord::new(key, now_ns));
        if kind == UpdateKind::Created {
            self.created += 1;
        } else {
            self.updated += 1;
            rec.update_seq += 1;
        }
        rec.observe(
            now_ns,
            update.len,
            update.stamp32,
            update.observed_ns,
            update.queue_occupancy,
        );
        (kind, &*rec)
    }

    /// See [`crate::FlowTable::evict_idle`].
    pub fn evict_idle(&mut self, now_ns: u64) -> usize {
        let deadline = now_ns.saturating_sub(self.cfg.idle_timeout_ns);
        let before = self.flows.len();
        self.flows.retain(|_, r| r.last_seen_ns >= deadline);
        let mut evicted = before - self.flows.len();
        if evicted == 0 && self.flows.len() >= self.cfg.max_flows {
            if let Some(oldest) = self
                .flows
                .values()
                .min_by_key(|r| r.last_seen_ns)
                .map(|r| r.key)
            {
                self.flows.remove(&oldest);
                evicted = 1;
            }
        }
        self.evicted += evicted as u64;
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amlight_net::Protocol;
    use std::net::Ipv4Addr;

    fn sample(port: u16, observed_ns: u64) -> FlowUpdate {
        FlowUpdate {
            flow: FlowKey::new(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 0, 2),
                port,
                80,
                Protocol::Tcp,
            ),
            now_ns: observed_ns,
            len: 100,
            stamp32: None,
            observed_ns: Some(observed_ns),
            queue_occupancy: None,
        }
    }

    #[test]
    fn tracks_counters_like_the_slab_table() {
        let mut hash = HashFlowTable::new(FlowTableConfig::default());
        let mut slab = crate::FlowTable::new(FlowTableConfig::default());
        for (port, ts) in [(1u16, 10u64), (2, 20), (1, 30), (3, 40), (2, 50)] {
            let s = sample(port, ts);
            let (hk, hr) = hash.apply(&s);
            // Rust won't let both mutable borrows overlap; compare eagerly.
            let (hk, hseq, hcount) = (hk, hr.update_seq, hr.packet_count);
            let (sk, sr) = slab.apply(&s);
            assert_eq!(hk, sk);
            assert_eq!(hseq, sr.update_seq);
            assert_eq!(hcount, sr.packet_count);
        }
        assert_eq!(hash.len(), slab.len());
        assert_eq!(hash.created(), slab.created());
        assert_eq!(hash.updated(), slab.updated());
    }
}
