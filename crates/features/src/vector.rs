//! Feature identities and vectors.

use serde::{Deserialize, Serialize};

/// Every feature the Data Processor can produce, in canonical order.
///
/// Subscript conventions follow the paper's Table V: `Cum` = cumulative,
/// `Avg` = mean, `Std` = standard deviation. Cumulative inter-arrival
/// time *is* the flow duration (paper Table II note).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(usize)]
pub enum FeatureId {
    Protocol = 0,
    PacketLen,
    PacketLenCum,
    PacketLenAvg,
    PacketLenStd,
    InterArrival,
    InterArrivalCum,
    InterArrivalAvg,
    InterArrivalStd,
    QueueOcc,
    QueueOccAvg,
    QueueOccStd,
    PacketCount,
    PacketsPerSec,
    BytesPerSec,
    /// The triage stage's anomaly score (`features::triage`) — an
    /// *extension* column outside the paper's 15 canonical features.
    /// [`FeatureSet::full`] does not include it; opt in with
    /// [`FeatureSet::with`].
    SketchScore,
}

impl FeatureId {
    /// Total columns, canonical + extensions.
    pub const COUNT: usize = 16;

    /// The paper's Table V feature space — what [`FeatureSet::full`]
    /// spans. Extension columns sit after this prefix of
    /// [`FeatureId::ALL`].
    pub const CANONICAL: usize = 15;

    pub const ALL: [FeatureId; Self::COUNT] = [
        FeatureId::Protocol,
        FeatureId::PacketLen,
        FeatureId::PacketLenCum,
        FeatureId::PacketLenAvg,
        FeatureId::PacketLenStd,
        FeatureId::InterArrival,
        FeatureId::InterArrivalCum,
        FeatureId::InterArrivalAvg,
        FeatureId::InterArrivalStd,
        FeatureId::QueueOcc,
        FeatureId::QueueOccAvg,
        FeatureId::QueueOccStd,
        FeatureId::PacketCount,
        FeatureId::PacketsPerSec,
        FeatureId::BytesPerSec,
        FeatureId::SketchScore,
    ];

    /// The columns derived from in-band queue telemetry — the ones a
    /// header-sampling backend cannot populate (paper Table II).
    pub const QUEUE_COLUMNS: [FeatureId; 3] = [
        FeatureId::QueueOcc,
        FeatureId::QueueOccAvg,
        FeatureId::QueueOccStd,
    ];

    /// Paper-style display name.
    pub fn name(self) -> &'static str {
        match self {
            FeatureId::Protocol => "Protocol",
            FeatureId::PacketLen => "Packet Size",
            FeatureId::PacketLenCum => "Packet Size_cum",
            FeatureId::PacketLenAvg => "Packet Size_avg",
            FeatureId::PacketLenStd => "Packet Size_std",
            FeatureId::InterArrival => "Inter Arrival Time",
            FeatureId::InterArrivalCum => "Inter Arrival Time_cum",
            FeatureId::InterArrivalAvg => "Inter Arrival Time_avg",
            FeatureId::InterArrivalStd => "Inter Arrival Time_std",
            FeatureId::QueueOcc => "Queue Occupancy",
            FeatureId::QueueOccAvg => "Queue Occupancy_avg",
            FeatureId::QueueOccStd => "Queue Occupancy_std",
            FeatureId::PacketCount => "Number of Packets",
            FeatureId::PacketsPerSec => "Packets per Second",
            FeatureId::BytesPerSec => "Packet Size per Second",
            FeatureId::SketchScore => "Sketch Score",
        }
    }

    /// Is this feature derived from in-band queue telemetry?
    pub fn is_queue_derived(self) -> bool {
        Self::QUEUE_COLUMNS.contains(&self)
    }
}

/// Descriptor of the feature projection a telemetry backend can
/// populate: a bitmask over [`FeatureId::ALL`] (bit *i* set = column *i*
/// present). The width, the column names, and the projection all derive
/// from the mask, so adding backend N+1 means composing a mask — not
/// adding a variant and chasing match arms.
///
/// Columns a backend cannot populate are *imputed* consistently: the
/// flow table leaves them at their 0-defaults and the projection skips
/// them, exactly as the sFlow path has always done for queue occupancy.
///
/// The backend → descriptor mapping itself lives in one place,
/// `amlight_core::event::TelemetryBackend::feature_set` — the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FeatureSet {
    /// Bitmask over the canonical feature space.
    columns: u16,
}

/// Mask with every canonical column set (extensions excluded).
const FULL_MASK: u16 = (1 << FeatureId::CANONICAL) - 1;

impl FeatureSet {
    /// All 15 canonical columns (the full-INT projection).
    pub const fn full() -> Self {
        Self { columns: FULL_MASK }
    }

    /// Add columns to this set — how extension columns like
    /// [`FeatureId::SketchScore`] opt in:
    /// `FeatureSet::full().with(&[FeatureId::SketchScore])`.
    pub fn with(self, cols: &[FeatureId]) -> Self {
        let mut columns = self.columns;
        for c in cols {
            columns |= 1u16 << *c as usize;
        }
        Self { columns }
    }

    /// Remove columns from this set.
    pub fn without(self, cols: &[FeatureId]) -> Self {
        let mut columns = self.columns;
        for c in cols {
            columns &= !(1u16 << *c as usize);
        }
        Self { columns }
    }

    /// Does the set include this column?
    #[inline]
    pub fn contains(self, id: FeatureId) -> bool {
        self.columns & (1u16 << id as usize) != 0
    }

    /// Exactly the canonical columns, no extensions?
    #[inline]
    pub fn is_full(self) -> bool {
        self.columns == FULL_MASK
    }

    /// The features in this set, in canonical order.
    // amlint: cold -- config-time enumeration, not per-report
    pub fn features(self) -> Vec<FeatureId> {
        FeatureId::ALL
            .into_iter()
            .filter(|f| self.contains(*f))
            .collect()
    }

    /// Paper-style display names of the columns, in canonical order.
    // amlint: cold -- config-time enumeration, not per-report
    pub fn names(self) -> Vec<&'static str> {
        self.features().into_iter().map(FeatureId::name).collect()
    }

    /// Width of a projected row.
    pub fn dim(self) -> usize {
        self.columns.count_ones() as usize
    }

    /// The raw column bitmask (bit *i* = `FeatureId::ALL[i]` present).
    /// Exposed for diagnostics — two sets of equal width can still be
    /// different projections, and error messages should show which.
    pub fn mask(self) -> u16 {
        self.columns
    }
}

impl Default for FeatureSet {
    fn default() -> Self {
        Self::full()
    }
}

/// A dense feature vector over the full canonical space. Consumers
/// project it down to a [`FeatureSet`] when building model inputs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeatureVector {
    pub values: [f64; FeatureId::COUNT],
}

impl Default for FeatureVector {
    fn default() -> Self {
        Self {
            values: [0.0; FeatureId::COUNT],
        }
    }
}

impl FeatureVector {
    // amlint: allow(R8) -- FeatureId discriminants are < FeatureId::COUNT
    #[inline]
    pub fn get(&self, id: FeatureId) -> f64 {
        self.values[id as usize]
    }

    // amlint: allow(R8) -- FeatureId discriminants are < FeatureId::COUNT
    #[inline]
    pub fn set(&mut self, id: FeatureId, v: f64) {
        self.values[id as usize] = v;
    }

    /// Project onto a feature set, appending to `out` (hot path: no
    /// allocation when the caller reuses the buffer). Mask-driven: one
    /// code path for every backend's projection.
    // amlint: allow(R8) -- FeatureId discriminants are < FeatureId::COUNT
    pub fn project_into(&self, set: FeatureSet, out: &mut Vec<f64>) {
        if set.is_full() {
            // Canonical prefix only — the vector is COUNT wide to hold
            // extension columns, but full() spans just the paper's 15.
            // amlint: cold -- caller-owned row buffer, reused across events
            out.extend_from_slice(&self.values[..FeatureId::CANONICAL]);
            return;
        }
        for f in FeatureId::ALL {
            if set.contains(f) {
                // amlint: cold -- caller-owned row buffer, reused across events
                out.push(self.values[f as usize]);
            }
        }
    }

    /// Convenience allocating projection.
    pub fn project(&self, set: FeatureSet) -> Vec<f64> {
        let mut v = Vec::with_capacity(set.dim());
        self.project_into(set, &mut v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sflow_like() -> FeatureSet {
        FeatureSet::full().without(&FeatureId::QUEUE_COLUMNS)
    }

    #[test]
    fn fifteen_canonical_features_plus_extensions() {
        assert_eq!(FeatureId::ALL.len(), FeatureId::COUNT);
        assert_eq!(FeatureId::CANONICAL, 15);
        assert_eq!(FeatureSet::full().dim(), 15);
        assert_eq!(FeatureSet::full().features().len(), 15);
        assert!(FeatureSet::full().is_full());
        assert!(!FeatureSet::full().contains(FeatureId::SketchScore));
    }

    #[test]
    fn extension_column_is_opt_in_and_projects_last() {
        let ext = FeatureSet::full().with(&[FeatureId::SketchScore]);
        assert_eq!(ext.dim(), 16);
        assert!(!ext.is_full(), "extended sets are not the canonical full");
        assert!(ext.contains(FeatureId::SketchScore));
        let mut v = FeatureVector::default();
        v.set(FeatureId::Protocol, 6.0);
        v.set(FeatureId::SketchScore, 2.5);
        let row = v.project(ext);
        assert_eq!(row.len(), 16);
        assert_eq!(row[0], 6.0);
        assert_eq!(row[15], 2.5, "extensions sit after the canonical prefix");
        // The canonical projection never leaks the extension value.
        let full = v.project(FeatureSet::full());
        assert_eq!(full.len(), 15);
        assert!(full.iter().all(|&x| x != 2.5));
        // with() is idempotent and undone by without().
        assert_eq!(ext.with(&[FeatureId::SketchScore]), ext);
        assert_eq!(ext.without(&[FeatureId::SketchScore]), FeatureSet::full());
    }

    #[test]
    fn queueless_set_lacks_queue_occupancy() {
        let set = sflow_like();
        assert_eq!(set.dim(), 12);
        let feats = set.features();
        assert_eq!(feats.len(), 12);
        assert!(feats.iter().all(|f| !f.is_queue_derived()));
        assert!(!set.is_full());
        assert!(!set.contains(FeatureId::QueueOcc));
        assert!(set.contains(FeatureId::Protocol));
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<_> = FeatureId::ALL.iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), FeatureId::COUNT);
        assert_eq!(FeatureSet::full().names().len(), 15);
        assert_eq!(sflow_like().names().len(), 12);
    }

    #[test]
    fn projection_preserves_order_and_values() {
        let mut v = FeatureVector::default();
        for (i, f) in FeatureId::ALL.into_iter().enumerate() {
            v.set(f, i as f64);
        }
        let full = v.project(FeatureSet::full());
        assert_eq!(full, (0..15).map(|i| i as f64).collect::<Vec<_>>());
        let queueless = v.project(sflow_like());
        assert_eq!(queueless.len(), 12);
        // Queue features (indices 9, 10, 11) skipped.
        assert_eq!(
            queueless,
            vec![0., 1., 2., 3., 4., 5., 6., 7., 8., 12., 13., 14.]
        );
    }

    #[test]
    fn project_into_reuses_buffer() {
        let v = FeatureVector::default();
        let mut buf = Vec::with_capacity(32);
        v.project_into(FeatureSet::full(), &mut buf);
        v.project_into(sflow_like(), &mut buf);
        assert_eq!(buf.len(), 27);
    }

    #[test]
    fn without_is_idempotent_and_composable() {
        let a = FeatureSet::full().without(&[FeatureId::QueueOcc]);
        let b = a.without(&[FeatureId::QueueOcc]);
        assert_eq!(a, b);
        assert_eq!(a.dim(), 14);
        let c = a.without(&[FeatureId::QueueOccAvg, FeatureId::QueueOccStd]);
        assert_eq!(c, sflow_like());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut v = FeatureVector::default();
        v.set(FeatureId::QueueOccAvg, 3.25);
        assert_eq!(v.get(FeatureId::QueueOccAvg), 3.25);
        assert_eq!(v.get(FeatureId::Protocol), 0.0);
    }
}
