//! Feature identities and vectors.

use serde::{Deserialize, Serialize};

/// Every feature the Data Processor can produce, in canonical order.
///
/// Subscript conventions follow the paper's Table V: `Cum` = cumulative,
/// `Avg` = mean, `Std` = standard deviation. Cumulative inter-arrival
/// time *is* the flow duration (paper Table II note).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(usize)]
pub enum FeatureId {
    Protocol = 0,
    PacketLen,
    PacketLenCum,
    PacketLenAvg,
    PacketLenStd,
    InterArrival,
    InterArrivalCum,
    InterArrivalAvg,
    InterArrivalStd,
    QueueOcc,
    QueueOccAvg,
    QueueOccStd,
    PacketCount,
    PacketsPerSec,
    BytesPerSec,
}

impl FeatureId {
    pub const COUNT: usize = 15;

    pub const ALL: [FeatureId; Self::COUNT] = [
        FeatureId::Protocol,
        FeatureId::PacketLen,
        FeatureId::PacketLenCum,
        FeatureId::PacketLenAvg,
        FeatureId::PacketLenStd,
        FeatureId::InterArrival,
        FeatureId::InterArrivalCum,
        FeatureId::InterArrivalAvg,
        FeatureId::InterArrivalStd,
        FeatureId::QueueOcc,
        FeatureId::QueueOccAvg,
        FeatureId::QueueOccStd,
        FeatureId::PacketCount,
        FeatureId::PacketsPerSec,
        FeatureId::BytesPerSec,
    ];

    /// Paper-style display name.
    pub fn name(self) -> &'static str {
        match self {
            FeatureId::Protocol => "Protocol",
            FeatureId::PacketLen => "Packet Size",
            FeatureId::PacketLenCum => "Packet Size_cum",
            FeatureId::PacketLenAvg => "Packet Size_avg",
            FeatureId::PacketLenStd => "Packet Size_std",
            FeatureId::InterArrival => "Inter Arrival Time",
            FeatureId::InterArrivalCum => "Inter Arrival Time_cum",
            FeatureId::InterArrivalAvg => "Inter Arrival Time_avg",
            FeatureId::InterArrivalStd => "Inter Arrival Time_std",
            FeatureId::QueueOcc => "Queue Occupancy",
            FeatureId::QueueOccAvg => "Queue Occupancy_avg",
            FeatureId::QueueOccStd => "Queue Occupancy_std",
            FeatureId::PacketCount => "Number of Packets",
            FeatureId::PacketsPerSec => "Packets per Second",
            FeatureId::BytesPerSec => "Packet Size per Second",
        }
    }

    /// Is this feature derived from INT-only telemetry (queue occupancy)?
    pub fn requires_int(self) -> bool {
        matches!(
            self,
            FeatureId::QueueOcc | FeatureId::QueueOccAvg | FeatureId::QueueOccStd
        )
    }
}

/// Which telemetry source the vector is built from — selects the feature
/// subset (paper Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureSet {
    /// All 15 features.
    Int,
    /// 12 features: everything except queue occupancy.
    Sflow,
}

impl FeatureSet {
    /// The features in this set, in canonical order.
    // amlint: cold -- config-time enumeration, not per-report
    pub fn features(self) -> Vec<FeatureId> {
        FeatureId::ALL
            .into_iter()
            .filter(|f| self == FeatureSet::Int || !f.requires_int())
            .collect()
    }

    pub fn dim(self) -> usize {
        match self {
            FeatureSet::Int => 15,
            FeatureSet::Sflow => 12,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            FeatureSet::Int => "INT",
            FeatureSet::Sflow => "sFlow",
        }
    }
}

/// A dense feature vector over the full canonical space. Consumers
/// project it down to a [`FeatureSet`] when building model inputs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeatureVector {
    pub values: [f64; FeatureId::COUNT],
}

impl Default for FeatureVector {
    fn default() -> Self {
        Self {
            values: [0.0; FeatureId::COUNT],
        }
    }
}

impl FeatureVector {
    // amlint: allow(R8) -- FeatureId discriminants are < FeatureId::COUNT
    #[inline]
    pub fn get(&self, id: FeatureId) -> f64 {
        self.values[id as usize]
    }

    // amlint: allow(R8) -- FeatureId discriminants are < FeatureId::COUNT
    #[inline]
    pub fn set(&mut self, id: FeatureId, v: f64) {
        self.values[id as usize] = v;
    }

    /// Project onto a feature set, appending to `out` (hot path: no
    /// allocation when the caller reuses the buffer).
    // amlint: allow(R8) -- FeatureId discriminants are < FeatureId::COUNT
    pub fn project_into(&self, set: FeatureSet, out: &mut Vec<f64>) {
        match set {
            // amlint: cold -- caller-owned row buffer, reused across events
            FeatureSet::Int => out.extend_from_slice(&self.values),
            FeatureSet::Sflow => {
                for f in FeatureId::ALL {
                    if !f.requires_int() {
                        // amlint: cold -- caller-owned row buffer, reused across events
                        out.push(self.values[f as usize]);
                    }
                }
            }
        }
    }

    /// Convenience allocating projection.
    pub fn project(&self, set: FeatureSet) -> Vec<f64> {
        let mut v = Vec::with_capacity(set.dim());
        self.project_into(set, &mut v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_features_total() {
        assert_eq!(FeatureId::ALL.len(), 15);
        assert_eq!(FeatureSet::Int.dim(), 15);
        assert_eq!(FeatureSet::Int.features().len(), 15);
    }

    #[test]
    fn sflow_set_lacks_queue_occupancy() {
        let feats = FeatureSet::Sflow.features();
        assert_eq!(feats.len(), 12);
        assert!(feats.iter().all(|f| !f.requires_int()));
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<_> = FeatureId::ALL.iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), 15);
    }

    #[test]
    fn projection_preserves_order_and_values() {
        let mut v = FeatureVector::default();
        for (i, f) in FeatureId::ALL.into_iter().enumerate() {
            v.set(f, i as f64);
        }
        let int = v.project(FeatureSet::Int);
        assert_eq!(int, (0..15).map(|i| i as f64).collect::<Vec<_>>());
        let sflow = v.project(FeatureSet::Sflow);
        assert_eq!(sflow.len(), 12);
        // Queue features (indices 9, 10, 11) skipped.
        assert_eq!(
            sflow,
            vec![0., 1., 2., 3., 4., 5., 6., 7., 8., 12., 13., 14.]
        );
    }

    #[test]
    fn project_into_reuses_buffer() {
        let v = FeatureVector::default();
        let mut buf = Vec::with_capacity(32);
        v.project_into(FeatureSet::Int, &mut buf);
        v.project_into(FeatureSet::Sflow, &mut buf);
        assert_eq!(buf.len(), 27);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut v = FeatureVector::default();
        v.set(FeatureId::QueueOccAvg, 3.25);
        assert_eq!(v.get(FeatureId::QueueOccAvg), 3.25);
        assert_eq!(v.get(FeatureId::Protocol), 0.0);
    }
}
