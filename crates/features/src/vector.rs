//! Feature identities and vectors.

use serde::{Deserialize, Serialize};

/// Every feature the Data Processor can produce, in canonical order.
///
/// Subscript conventions follow the paper's Table V: `Cum` = cumulative,
/// `Avg` = mean, `Std` = standard deviation. Cumulative inter-arrival
/// time *is* the flow duration (paper Table II note).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(usize)]
pub enum FeatureId {
    Protocol = 0,
    PacketLen,
    PacketLenCum,
    PacketLenAvg,
    PacketLenStd,
    InterArrival,
    InterArrivalCum,
    InterArrivalAvg,
    InterArrivalStd,
    QueueOcc,
    QueueOccAvg,
    QueueOccStd,
    PacketCount,
    PacketsPerSec,
    BytesPerSec,
}

impl FeatureId {
    pub const COUNT: usize = 15;

    pub const ALL: [FeatureId; Self::COUNT] = [
        FeatureId::Protocol,
        FeatureId::PacketLen,
        FeatureId::PacketLenCum,
        FeatureId::PacketLenAvg,
        FeatureId::PacketLenStd,
        FeatureId::InterArrival,
        FeatureId::InterArrivalCum,
        FeatureId::InterArrivalAvg,
        FeatureId::InterArrivalStd,
        FeatureId::QueueOcc,
        FeatureId::QueueOccAvg,
        FeatureId::QueueOccStd,
        FeatureId::PacketCount,
        FeatureId::PacketsPerSec,
        FeatureId::BytesPerSec,
    ];

    /// The columns derived from in-band queue telemetry — the ones a
    /// header-sampling backend cannot populate (paper Table II).
    pub const QUEUE_COLUMNS: [FeatureId; 3] = [
        FeatureId::QueueOcc,
        FeatureId::QueueOccAvg,
        FeatureId::QueueOccStd,
    ];

    /// Paper-style display name.
    pub fn name(self) -> &'static str {
        match self {
            FeatureId::Protocol => "Protocol",
            FeatureId::PacketLen => "Packet Size",
            FeatureId::PacketLenCum => "Packet Size_cum",
            FeatureId::PacketLenAvg => "Packet Size_avg",
            FeatureId::PacketLenStd => "Packet Size_std",
            FeatureId::InterArrival => "Inter Arrival Time",
            FeatureId::InterArrivalCum => "Inter Arrival Time_cum",
            FeatureId::InterArrivalAvg => "Inter Arrival Time_avg",
            FeatureId::InterArrivalStd => "Inter Arrival Time_std",
            FeatureId::QueueOcc => "Queue Occupancy",
            FeatureId::QueueOccAvg => "Queue Occupancy_avg",
            FeatureId::QueueOccStd => "Queue Occupancy_std",
            FeatureId::PacketCount => "Number of Packets",
            FeatureId::PacketsPerSec => "Packets per Second",
            FeatureId::BytesPerSec => "Packet Size per Second",
        }
    }

    /// Is this feature derived from in-band queue telemetry?
    pub fn is_queue_derived(self) -> bool {
        Self::QUEUE_COLUMNS.contains(&self)
    }
}

/// Descriptor of the feature projection a telemetry backend can
/// populate: a bitmask over [`FeatureId::ALL`] (bit *i* set = column *i*
/// present). The width, the column names, and the projection all derive
/// from the mask, so adding backend N+1 means composing a mask — not
/// adding a variant and chasing match arms.
///
/// Columns a backend cannot populate are *imputed* consistently: the
/// flow table leaves them at their 0-defaults and the projection skips
/// them, exactly as the sFlow path has always done for queue occupancy.
///
/// The backend → descriptor mapping itself lives in one place,
/// `amlight_core::event::TelemetryBackend::feature_set` — the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FeatureSet {
    /// Bitmask over the canonical feature space.
    columns: u16,
}

/// Mask with every canonical column set.
const FULL_MASK: u16 = (1 << FeatureId::COUNT) - 1;

impl FeatureSet {
    /// All 15 canonical columns (the full-INT projection).
    pub const fn full() -> Self {
        Self { columns: FULL_MASK }
    }

    /// Remove columns from this set.
    pub fn without(self, cols: &[FeatureId]) -> Self {
        let mut columns = self.columns;
        for c in cols {
            columns &= !(1u16 << *c as usize);
        }
        Self { columns }
    }

    /// Does the set include this column?
    #[inline]
    pub fn contains(self, id: FeatureId) -> bool {
        self.columns & (1u16 << id as usize) != 0
    }

    /// Every canonical column present?
    #[inline]
    pub fn is_full(self) -> bool {
        self.columns == FULL_MASK
    }

    /// The features in this set, in canonical order.
    // amlint: cold -- config-time enumeration, not per-report
    pub fn features(self) -> Vec<FeatureId> {
        FeatureId::ALL
            .into_iter()
            .filter(|f| self.contains(*f))
            .collect()
    }

    /// Paper-style display names of the columns, in canonical order.
    // amlint: cold -- config-time enumeration, not per-report
    pub fn names(self) -> Vec<&'static str> {
        self.features().into_iter().map(FeatureId::name).collect()
    }

    /// Width of a projected row.
    pub fn dim(self) -> usize {
        self.columns.count_ones() as usize
    }

    /// The raw column bitmask (bit *i* = `FeatureId::ALL[i]` present).
    /// Exposed for diagnostics — two sets of equal width can still be
    /// different projections, and error messages should show which.
    pub fn mask(self) -> u16 {
        self.columns
    }
}

impl Default for FeatureSet {
    fn default() -> Self {
        Self::full()
    }
}

/// A dense feature vector over the full canonical space. Consumers
/// project it down to a [`FeatureSet`] when building model inputs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeatureVector {
    pub values: [f64; FeatureId::COUNT],
}

impl Default for FeatureVector {
    fn default() -> Self {
        Self {
            values: [0.0; FeatureId::COUNT],
        }
    }
}

impl FeatureVector {
    // amlint: allow(R8) -- FeatureId discriminants are < FeatureId::COUNT
    #[inline]
    pub fn get(&self, id: FeatureId) -> f64 {
        self.values[id as usize]
    }

    // amlint: allow(R8) -- FeatureId discriminants are < FeatureId::COUNT
    #[inline]
    pub fn set(&mut self, id: FeatureId, v: f64) {
        self.values[id as usize] = v;
    }

    /// Project onto a feature set, appending to `out` (hot path: no
    /// allocation when the caller reuses the buffer). Mask-driven: one
    /// code path for every backend's projection.
    // amlint: allow(R8) -- FeatureId discriminants are < FeatureId::COUNT
    pub fn project_into(&self, set: FeatureSet, out: &mut Vec<f64>) {
        if set.is_full() {
            // amlint: cold -- caller-owned row buffer, reused across events
            out.extend_from_slice(&self.values);
            return;
        }
        for f in FeatureId::ALL {
            if set.contains(f) {
                // amlint: cold -- caller-owned row buffer, reused across events
                out.push(self.values[f as usize]);
            }
        }
    }

    /// Convenience allocating projection.
    pub fn project(&self, set: FeatureSet) -> Vec<f64> {
        let mut v = Vec::with_capacity(set.dim());
        self.project_into(set, &mut v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sflow_like() -> FeatureSet {
        FeatureSet::full().without(&FeatureId::QUEUE_COLUMNS)
    }

    #[test]
    fn fifteen_features_total() {
        assert_eq!(FeatureId::ALL.len(), 15);
        assert_eq!(FeatureSet::full().dim(), 15);
        assert_eq!(FeatureSet::full().features().len(), 15);
        assert!(FeatureSet::full().is_full());
    }

    #[test]
    fn queueless_set_lacks_queue_occupancy() {
        let set = sflow_like();
        assert_eq!(set.dim(), 12);
        let feats = set.features();
        assert_eq!(feats.len(), 12);
        assert!(feats.iter().all(|f| !f.is_queue_derived()));
        assert!(!set.is_full());
        assert!(!set.contains(FeatureId::QueueOcc));
        assert!(set.contains(FeatureId::Protocol));
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<_> = FeatureId::ALL.iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), 15);
        assert_eq!(FeatureSet::full().names().len(), 15);
        assert_eq!(sflow_like().names().len(), 12);
    }

    #[test]
    fn projection_preserves_order_and_values() {
        let mut v = FeatureVector::default();
        for (i, f) in FeatureId::ALL.into_iter().enumerate() {
            v.set(f, i as f64);
        }
        let full = v.project(FeatureSet::full());
        assert_eq!(full, (0..15).map(|i| i as f64).collect::<Vec<_>>());
        let queueless = v.project(sflow_like());
        assert_eq!(queueless.len(), 12);
        // Queue features (indices 9, 10, 11) skipped.
        assert_eq!(
            queueless,
            vec![0., 1., 2., 3., 4., 5., 6., 7., 8., 12., 13., 14.]
        );
    }

    #[test]
    fn project_into_reuses_buffer() {
        let v = FeatureVector::default();
        let mut buf = Vec::with_capacity(32);
        v.project_into(FeatureSet::full(), &mut buf);
        v.project_into(sflow_like(), &mut buf);
        assert_eq!(buf.len(), 27);
    }

    #[test]
    fn without_is_idempotent_and_composable() {
        let a = FeatureSet::full().without(&[FeatureId::QueueOcc]);
        let b = a.without(&[FeatureId::QueueOcc]);
        assert_eq!(a, b);
        assert_eq!(a.dim(), 14);
        let c = a.without(&[FeatureId::QueueOccAvg, FeatureId::QueueOccStd]);
        assert_eq!(c, sflow_like());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut v = FeatureVector::default();
        v.set(FeatureId::QueueOccAvg, 3.25);
        assert_eq!(v.get(FeatureId::QueueOccAvg), 3.25);
        assert_eq!(v.get(FeatureId::Protocol), 0.0);
    }
}
