//! The flow table: one record per *Flow ID*, updated per telemetry event.

use crate::stats::StreamingStats;
use crate::vector::{FeatureId, FeatureVector};
use amlight_int::TelemetryReport;
use amlight_net::flow::FnvHashMap;
use amlight_net::{FlowKey, Protocol};
use amlight_sflow::FlowSample;
use serde::{Deserialize, Serialize};

/// Whether an ingest created a new record or updated an existing one.
///
/// The distinction matters downstream: the paper's CentralServer "does
/// not consider new entries with new Flow IDs, but focuses on existing
/// records from their first update" (§III-3) — predictions start at the
/// second packet of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpdateKind {
    Created,
    Updated,
}

/// Per-flow state: latest packet-level fields plus streaming aggregates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowRecord {
    pub key: FlowKey,
    /// Collector-clock time the record was created, ns.
    pub first_seen_ns: u64,
    /// Collector-clock time of the latest update, ns.
    pub last_seen_ns: u64,
    /// Monotone per-record update sequence (0 = just created).
    pub update_seq: u64,

    // -- packet-level (replaced each packet) --
    pub last_packet_len: u16,
    /// Inter-arrival time derived from consecutive telemetry stamps, s.
    pub last_inter_arrival_s: f64,
    pub last_queue_occ: u32,
    /// Previous 32-bit telemetry stamp (INT path).
    last_stamp32: Option<u32>,
    /// Previous full-width observation time (sFlow path), ns.
    last_observed_ns: Option<u64>,

    // -- flow-level aggregates --
    pub packet_count: u64,
    pub byte_count: u64,
    pub len_stats: StreamingStats,
    pub iat_stats: StreamingStats,
    pub qocc_stats: StreamingStats,
}

impl FlowRecord {
    fn new(key: FlowKey, now_ns: u64) -> Self {
        Self {
            key,
            first_seen_ns: now_ns,
            last_seen_ns: now_ns,
            update_seq: 0,
            last_packet_len: 0,
            last_inter_arrival_s: 0.0,
            last_queue_occ: 0,
            last_stamp32: None,
            last_observed_ns: None,
            packet_count: 0,
            byte_count: 0,
            len_stats: StreamingStats::new(),
            iat_stats: StreamingStats::new(),
            qocc_stats: StreamingStats::new(),
        }
    }

    fn push_packet(&mut self, now_ns: u64, len: u16, iat_s: Option<f64>, qocc: Option<u32>) {
        self.last_seen_ns = now_ns;
        self.last_packet_len = len;
        self.packet_count += 1;
        self.byte_count += u64::from(len);
        self.len_stats.push(f64::from(len));
        if let Some(iat) = iat_s {
            self.last_inter_arrival_s = iat;
            self.iat_stats.push(iat);
        }
        if let Some(q) = qocc {
            self.last_queue_occ = q;
            self.qocc_stats.push(f64::from(q));
        }
    }

    /// Flow duration as the paper computes it: cumulative inter-arrival
    /// time (Table II note). Inherits 32-bit aliasing on the INT path.
    pub fn duration_s(&self) -> f64 {
        self.iat_stats.sum()
    }

    /// Build the canonical 15-feature vector for the current state.
    pub fn features(&self) -> FeatureVector {
        let mut v = FeatureVector::default();
        v.set(FeatureId::Protocol, f64::from(self.key.protocol.number()));
        v.set(FeatureId::PacketLen, f64::from(self.last_packet_len));
        v.set(FeatureId::PacketLenCum, self.byte_count as f64);
        v.set(FeatureId::PacketLenAvg, self.len_stats.mean());
        v.set(FeatureId::PacketLenStd, self.len_stats.std());
        v.set(FeatureId::InterArrival, self.last_inter_arrival_s);
        v.set(FeatureId::InterArrivalCum, self.duration_s());
        v.set(FeatureId::InterArrivalAvg, self.iat_stats.mean());
        v.set(FeatureId::InterArrivalStd, self.iat_stats.std());
        v.set(FeatureId::QueueOcc, f64::from(self.last_queue_occ));
        v.set(FeatureId::QueueOccAvg, self.qocc_stats.mean());
        v.set(FeatureId::QueueOccStd, self.qocc_stats.std());
        v.set(FeatureId::PacketCount, self.packet_count as f64);
        let dur = self.duration_s();
        if dur > 0.0 {
            v.set(FeatureId::PacketsPerSec, self.packet_count as f64 / dur);
            v.set(FeatureId::BytesPerSec, self.byte_count as f64 / dur);
        }
        v
    }
}

/// Flow-table housekeeping knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowTableConfig {
    /// Evict records idle longer than this (collector clock), ns.
    pub idle_timeout_ns: u64,
    /// Hard cap on tracked flows; oldest-idle records are evicted first
    /// when exceeded. Protects the processor against flood-driven state
    /// explosion (every spoofed SYN is a new flow!).
    pub max_flows: usize,
}

impl Default for FlowTableConfig {
    fn default() -> Self {
        Self {
            idle_timeout_ns: 60 * 1_000_000_000,
            max_flows: 1_000_000,
        }
    }
}

/// The flow table. Keyed by [`FlowKey`] with an FNV hasher (hot path).
///
/// ```
/// use amlight_features::{FlowTable, FlowTableConfig, UpdateKind};
/// use amlight_int::{HopMetadata, InstructionSet, TelemetryReport};
/// use amlight_net::{FlowKey, Protocol};
///
/// let mut table = FlowTable::new(FlowTableConfig::default());
/// let report = TelemetryReport {
///     flow: FlowKey::new([10, 0, 0, 1].into(), [10, 0, 0, 2].into(), 4242, 80, Protocol::Tcp),
///     ip_len: 60,
///     tcp_flags: Some(0x02),
///     instructions: InstructionSet::amlight(),
///     hops: vec![HopMetadata::default()],
///     export_ns: 1_000,
/// };
/// let (kind, record) = table.update_int(&report);
/// assert_eq!(kind, UpdateKind::Created);
/// assert_eq!(record.packet_count, 1);
/// ```
#[derive(Debug)]
pub struct FlowTable {
    cfg: FlowTableConfig,
    flows: FnvHashMap<FlowKey, FlowRecord>,
    created: u64,
    updated: u64,
    evicted: u64,
}

impl Default for FlowTable {
    fn default() -> Self {
        Self::new(FlowTableConfig::default())
    }
}

impl FlowTable {
    pub fn new(cfg: FlowTableConfig) -> Self {
        Self {
            cfg,
            flows: FnvHashMap::default(),
            created: 0,
            updated: 0,
            evicted: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.flows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    pub fn created(&self) -> u64 {
        self.created
    }

    pub fn updated(&self) -> u64 {
        self.updated
    }

    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    pub fn get(&self, key: &FlowKey) -> Option<&FlowRecord> {
        self.flows.get(key)
    }

    pub fn records(&self) -> impl Iterator<Item = &FlowRecord> {
        self.flows.values()
    }

    /// Ingest an INT telemetry report. Inter-arrival derives from the
    /// sink hop's 32-bit egress stamp via wrapping subtraction (paper
    /// §III-2 / §V).
    pub fn update_int(&mut self, report: &TelemetryReport) -> (UpdateKind, &FlowRecord) {
        let now = report.export_ns;
        let stamp = report.sink_hop().map(|h| h.egress_tstamp);
        let qocc = report.sink_hop().map(|h| h.queue_occupancy);
        self.ingest(report.flow, now, report.ip_len, stamp, None, qocc)
    }

    /// Ingest an sFlow sample. Inter-arrival derives from the agent's
    /// full-width observation clock — but remember these are *samples*:
    /// consecutive samples of a flow are typically thousands of packets
    /// apart.
    pub fn update_sflow(&mut self, sample: &FlowSample) -> (UpdateKind, &FlowRecord) {
        self.ingest(
            sample.flow,
            sample.observed_ns,
            sample.ip_len,
            None,
            Some(sample.observed_ns),
            None,
        )
    }

    fn ingest(
        &mut self,
        key: FlowKey,
        now_ns: u64,
        len: u16,
        stamp32: Option<u32>,
        observed_ns: Option<u64>,
        qocc: Option<u32>,
    ) -> (UpdateKind, &FlowRecord) {
        if self.flows.len() >= self.cfg.max_flows && !self.flows.contains_key(&key) {
            self.evict_idle(now_ns);
        }
        let entry = self.flows.entry(key);
        let kind = match &entry {
            std::collections::hash_map::Entry::Occupied(_) => UpdateKind::Updated,
            std::collections::hash_map::Entry::Vacant(_) => UpdateKind::Created,
        };
        let rec = entry.or_insert_with(|| FlowRecord::new(key, now_ns));
        if kind == UpdateKind::Created {
            self.created += 1;
        } else {
            self.updated += 1;
            rec.update_seq += 1;
        }

        // Inter-arrival: INT path uses wrapped 32-bit stamps; sFlow path
        // uses the full-width agent clock.
        let iat_s = match (stamp32, rec.last_stamp32, observed_ns, rec.last_observed_ns) {
            (Some(s), Some(prev), _, _) => Some(f64::from(s.wrapping_sub(prev)) / 1e9),
            (_, _, Some(o), Some(prev)) => Some((o - prev) as f64 / 1e9),
            _ => None,
        };
        if let Some(s) = stamp32 {
            rec.last_stamp32 = Some(s);
        }
        if let Some(o) = observed_ns {
            rec.last_observed_ns = Some(o);
        }
        rec.push_packet(now_ns, len, iat_s, qocc);
        (kind, &*rec)
    }

    /// Evict records idle past the timeout as of `now_ns`. Returns the
    /// number evicted. If nothing is idle but the table is over capacity,
    /// evicts the single longest-idle record (to guarantee progress).
    pub fn evict_idle(&mut self, now_ns: u64) -> usize {
        let deadline = now_ns.saturating_sub(self.cfg.idle_timeout_ns);
        let before = self.flows.len();
        self.flows.retain(|_, r| r.last_seen_ns >= deadline);
        let mut evicted = before - self.flows.len();
        if evicted == 0 && self.flows.len() >= self.cfg.max_flows {
            if let Some(oldest) = self
                .flows
                .values()
                .min_by_key(|r| r.last_seen_ns)
                .map(|r| r.key)
            {
                self.flows.remove(&oldest);
                evicted = 1;
            }
        }
        self.evicted += evicted as u64;
        evicted
    }

    /// Protocol histogram over live flows — cheap observability hook.
    pub fn protocol_split(&self) -> (usize, usize) {
        let tcp = self
            .flows
            .values()
            .filter(|r| r.key.protocol == Protocol::Tcp)
            .count();
        (tcp, self.flows.len() - tcp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::FeatureId;
    use amlight_int::{HopMetadata, InstructionSet};
    use std::net::Ipv4Addr;

    fn key(port: u16) -> FlowKey {
        FlowKey::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            port,
            80,
            Protocol::Tcp,
        )
    }

    fn report(port: u16, export_ns: u64, egress32: u32, len: u16, qocc: u32) -> TelemetryReport {
        TelemetryReport {
            flow: key(port),
            ip_len: len,
            tcp_flags: Some(0x02),
            instructions: InstructionSet::amlight(),
            hops: vec![HopMetadata {
                switch_id: 0,
                ingress_tstamp: egress32.wrapping_sub(500),
                egress_tstamp: egress32,
                hop_latency: 0,
                queue_occupancy: qocc,
            }],
            export_ns,
        }
    }

    #[test]
    fn first_packet_creates_record_with_defaults() {
        let mut t = FlowTable::default();
        let (kind, rec) = t.update_int(&report(1, 1000, 1000, 40, 3));
        assert_eq!(kind, UpdateKind::Created);
        assert_eq!(rec.update_seq, 0);
        assert_eq!(rec.packet_count, 1);
        assert_eq!(rec.last_packet_len, 40);
        assert_eq!(rec.last_inter_arrival_s, 0.0, "no IAT on first packet");
        assert_eq!(rec.last_queue_occ, 3);
        assert_eq!(t.len(), 1);
        assert_eq!(t.created(), 1);
    }

    #[test]
    fn second_packet_updates_and_derives_iat() {
        let mut t = FlowTable::default();
        t.update_int(&report(1, 1_000, 1_000, 40, 0));
        let (kind, rec) = t.update_int(&report(1, 2_000_000, 2_001_000, 1400, 5));
        assert_eq!(kind, UpdateKind::Updated);
        assert_eq!(rec.update_seq, 1);
        assert_eq!(rec.packet_count, 2);
        // IAT = (2_001_000 - 1_000) ns = 2 ms.
        assert!((rec.last_inter_arrival_s - 0.002).abs() < 1e-12);
        assert_eq!(rec.last_packet_len, 1400, "packet-level fields replaced");
        assert_eq!(rec.byte_count, 1440);
        assert!((rec.duration_s() - 0.002).abs() < 1e-12);
    }

    #[test]
    fn iat_wraps_like_the_paper_warns() {
        let mut t = FlowTable::default();
        // First stamp just below the wrap, second just above zero.
        t.update_int(&report(1, 0, u32::MAX - 999, 40, 0));
        let (_, rec) = t.update_int(&report(1, 10_000, 1_000, 40, 0));
        // True gap 2000 ns across the wrap: wrapping_sub gets it right.
        assert!((rec.last_inter_arrival_s - 2e-6).abs() < 1e-12);
    }

    #[test]
    fn iat_aliases_when_gap_exceeds_wrap_period() {
        let mut t = FlowTable::default();
        t.update_int(&report(1, 0, 1_000, 40, 0));
        // True gap = 2^32 + 500 ns, but the 32-bit stamp only moved 500.
        let (_, rec) = t.update_int(&report(1, 4_294_967_796, 1_500, 40, 0));
        assert!(
            (rec.last_inter_arrival_s - 5e-7).abs() < 1e-15,
            "aliased to 500 ns, the paper's §V artifact"
        );
    }

    #[test]
    fn distinct_flows_distinct_records() {
        let mut t = FlowTable::default();
        t.update_int(&report(1, 0, 0, 40, 0));
        t.update_int(&report(2, 10, 10, 40, 0));
        assert_eq!(t.len(), 2);
        assert_eq!(t.created(), 2);
        assert_eq!(t.updated(), 0);
    }

    #[test]
    fn features_reflect_aggregates() {
        let mut t = FlowTable::default();
        t.update_int(&report(1, 1_000, 1_000, 100, 2));
        t.update_int(&report(1, 1_001_000, 1_001_000, 300, 4));
        let (_, rec) = t.update_int(&report(1, 2_001_000, 2_001_000, 200, 6));
        let v = rec.features();
        assert_eq!(v.get(FeatureId::Protocol), 6.0);
        assert_eq!(v.get(FeatureId::PacketLen), 200.0);
        assert_eq!(v.get(FeatureId::PacketLenCum), 600.0);
        assert_eq!(v.get(FeatureId::PacketLenAvg), 200.0);
        assert_eq!(v.get(FeatureId::PacketCount), 3.0);
        assert_eq!(v.get(FeatureId::QueueOcc), 6.0);
        assert_eq!(v.get(FeatureId::QueueOccAvg), 4.0);
        // Duration 2 ms → 1500 pps, 300_000 Bps.
        assert!((v.get(FeatureId::PacketsPerSec) - 1500.0).abs() < 1e-6);
        assert!((v.get(FeatureId::BytesPerSec) - 300_000.0).abs() < 1e-6);
    }

    #[test]
    fn sflow_ingest_has_no_queue_data() {
        use amlight_sflow::FlowSample;
        let mut t = FlowTable::default();
        let s1 = FlowSample {
            flow: key(9),
            ip_len: 500,
            tcp_flags: Some(0x10),
            observed_ns: 1_000_000,
            sampling_period: 4096,
        };
        let s2 = FlowSample {
            observed_ns: 3_000_000,
            ip_len: 700,
            ..s1
        };
        t.update_sflow(&s1);
        let (kind, rec) = t.update_sflow(&s2);
        assert_eq!(kind, UpdateKind::Updated);
        assert_eq!(rec.last_queue_occ, 0);
        assert!(rec.qocc_stats.is_empty());
        assert!((rec.last_inter_arrival_s - 0.002).abs() < 1e-12);
    }

    #[test]
    fn idle_eviction() {
        let mut t = FlowTable::new(FlowTableConfig {
            idle_timeout_ns: 1_000,
            max_flows: 100,
        });
        t.update_int(&report(1, 0, 0, 40, 0));
        t.update_int(&report(2, 1_500, 1_500, 40, 0));
        let evicted = t.evict_idle(2_000);
        assert_eq!(evicted, 1, "flow 1 idle past timeout");
        assert!(t.get(&key(2)).is_some());
        assert!(t.get(&key(1)).is_none());
        assert_eq!(t.evicted(), 1);
    }

    #[test]
    fn capacity_pressure_evicts_oldest() {
        let mut t = FlowTable::new(FlowTableConfig {
            idle_timeout_ns: u64::MAX / 2, // nothing times out
            max_flows: 3,
        });
        for (i, ts) in [(1u16, 100u64), (2, 200), (3, 300)] {
            t.update_int(&report(i, ts, ts as u32, 40, 0));
        }
        // A fourth flow forces eviction of the oldest-idle (flow 1).
        t.update_int(&report(4, 400, 400, 40, 0));
        assert_eq!(t.len(), 3);
        assert!(t.get(&key(1)).is_none());
        assert!(t.get(&key(4)).is_some());
    }

    #[test]
    fn protocol_split_counts() {
        let mut t = FlowTable::default();
        t.update_int(&report(1, 0, 0, 40, 0));
        let mut udp_key = key(2);
        udp_key.protocol = Protocol::Udp;
        let udp_sample = FlowSample {
            flow: udp_key,
            ip_len: 100,
            tcp_flags: None,
            observed_ns: 0,
            sampling_period: 1,
        };
        t.update_sflow(&udp_sample);
        assert_eq!(t.protocol_split(), (1, 1));
    }
}
