//! The flow table: one record per *Flow ID*, updated per telemetry event.

use crate::stats::StreamingStats;
use crate::vector::{FeatureId, FeatureVector};
use amlight_net::flow::FnvBuildHasher;
use amlight_net::{FlowKey, Protocol};
use serde::{Deserialize, Serialize};
use std::hash::BuildHasher;

/// One normalized flow-table update — the backend-neutral currency every
/// telemetry event lowers into before it touches a table.
///
/// The flow table does not know which telemetry system produced an
/// observation; it only sees byte/packet deltas plus the optional
/// clock/queue fields a backend could populate. The lowering from a
/// concrete event type into a `FlowUpdate` lives in one place per
/// backend (`amlight_core::event::Telemetry::flow_update`), which is
/// what keeps this crate N-backend-blind.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowUpdate {
    /// The 5-tuple the observation belongs to.
    pub flow: FlowKey,
    /// Collector-clock time of the observation, ns (drives eviction).
    pub now_ns: u64,
    /// IP length of the observed packet.
    pub len: u16,
    /// Wrapped 32-bit device timestamp (INT egress stamps). When set,
    /// inter-arrival time derives from consecutive stamps via wrapping
    /// subtraction — inheriting the paper's §V 4.3 s aliasing artifact.
    pub stamp32: Option<u32>,
    /// Full-width observation clock, ns (header-sampling backends).
    /// Inter-arrival derives via saturating subtraction (samples can
    /// arrive reordered over UDP).
    pub observed_ns: Option<u64>,
    /// Queue occupancy, if this backend can populate the queue columns.
    /// `None` leaves the queue aggregates untouched — the consistent
    /// imputation every queue-blind backend shares.
    pub queue_occupancy: Option<u32>,
}

/// Whether an ingest created a new record or updated an existing one.
///
/// The distinction matters downstream: the paper's CentralServer "does
/// not consider new entries with new Flow IDs, but focuses on existing
/// records from their first update" (§III-3) — predictions start at the
/// second packet of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpdateKind {
    Created,
    Updated,
}

/// Per-flow state: latest packet-level fields plus streaming aggregates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowRecord {
    pub key: FlowKey,
    /// Collector-clock time the record was created, ns.
    pub first_seen_ns: u64,
    /// Collector-clock time of the latest update, ns.
    pub last_seen_ns: u64,
    /// Monotone per-record update sequence (0 = just created).
    pub update_seq: u64,

    // -- packet-level (replaced each packet) --
    pub last_packet_len: u16,
    /// Inter-arrival time derived from consecutive telemetry stamps, s.
    pub last_inter_arrival_s: f64,
    pub last_queue_occ: u32,
    /// Previous 32-bit telemetry stamp (INT path).
    last_stamp32: Option<u32>,
    /// Previous full-width observation time (sFlow path), ns.
    last_observed_ns: Option<u64>,

    // -- flow-level aggregates --
    pub packet_count: u64,
    pub byte_count: u64,
    pub len_stats: StreamingStats,
    pub iat_stats: StreamingStats,
    pub qocc_stats: StreamingStats,
}

impl FlowRecord {
    pub(crate) fn new(key: FlowKey, now_ns: u64) -> Self {
        Self {
            key,
            first_seen_ns: now_ns,
            last_seen_ns: now_ns,
            update_seq: 0,
            last_packet_len: 0,
            last_inter_arrival_s: 0.0,
            last_queue_occ: 0,
            last_stamp32: None,
            last_observed_ns: None,
            packet_count: 0,
            byte_count: 0,
            len_stats: StreamingStats::new(),
            iat_stats: StreamingStats::new(),
            qocc_stats: StreamingStats::new(),
        }
    }

    /// One telemetry observation: derive the inter-arrival time from the
    /// record's clock state, remember the new clocks, fold the packet
    /// into the aggregates. This is the *entire* per-event record update,
    /// shared by the slab table and the reference hashmap table
    /// ([`crate::reference::HashFlowTable`]) so their records are
    /// bit-identical by construction.
    pub(crate) fn observe(
        &mut self,
        now_ns: u64,
        len: u16,
        stamp32: Option<u32>,
        observed_ns: Option<u64>,
        qocc: Option<u32>,
    ) {
        // Inter-arrival: INT path uses wrapped 32-bit stamps; sFlow path
        // uses the full-width agent clock. sFlow samples can arrive out
        // of order (UDP transport, multiple agents), so the full-width
        // difference saturates instead of underflowing.
        let iat_s = match (
            stamp32,
            self.last_stamp32,
            observed_ns,
            self.last_observed_ns,
        ) {
            (Some(s), Some(prev), _, _) => Some(f64::from(s.wrapping_sub(prev)) / 1e9),
            (_, _, Some(o), Some(prev)) => Some(o.saturating_sub(prev) as f64 / 1e9),
            _ => None,
        };
        if let Some(s) = stamp32 {
            self.last_stamp32 = Some(s);
        }
        if let Some(o) = observed_ns {
            self.last_observed_ns = Some(o);
        }
        self.push_packet(now_ns, len, iat_s, qocc);
    }

    fn push_packet(&mut self, now_ns: u64, len: u16, iat_s: Option<f64>, qocc: Option<u32>) {
        self.last_seen_ns = now_ns;
        self.last_packet_len = len;
        self.packet_count += 1;
        self.byte_count += u64::from(len);
        self.len_stats.push(f64::from(len)); // amlint: cold -- RunningStats is constant-space
        if let Some(iat) = iat_s {
            self.last_inter_arrival_s = iat;
            self.iat_stats.push(iat); // amlint: cold -- RunningStats is constant-space
        }
        if let Some(q) = qocc {
            self.last_queue_occ = q;
            self.qocc_stats.push(f64::from(q)); // amlint: cold -- RunningStats is constant-space
        }
    }

    /// Flow duration as the paper computes it: cumulative inter-arrival
    /// time (Table II note). Inherits 32-bit aliasing on the INT path.
    pub fn duration_s(&self) -> f64 {
        self.iat_stats.sum()
    }

    /// Build the canonical 15-feature vector for the current state.
    pub fn features(&self) -> FeatureVector {
        let mut v = FeatureVector::default();
        v.set(FeatureId::Protocol, f64::from(self.key.protocol.number()));
        v.set(FeatureId::PacketLen, f64::from(self.last_packet_len));
        v.set(FeatureId::PacketLenCum, self.byte_count as f64);
        v.set(FeatureId::PacketLenAvg, self.len_stats.mean());
        v.set(FeatureId::PacketLenStd, self.len_stats.std());
        v.set(FeatureId::InterArrival, self.last_inter_arrival_s);
        v.set(FeatureId::InterArrivalCum, self.duration_s());
        v.set(FeatureId::InterArrivalAvg, self.iat_stats.mean());
        v.set(FeatureId::InterArrivalStd, self.iat_stats.std());
        v.set(FeatureId::QueueOcc, f64::from(self.last_queue_occ));
        v.set(FeatureId::QueueOccAvg, self.qocc_stats.mean());
        v.set(FeatureId::QueueOccStd, self.qocc_stats.std());
        v.set(FeatureId::PacketCount, self.packet_count as f64);
        let dur = self.duration_s();
        if dur > 0.0 {
            v.set(FeatureId::PacketsPerSec, self.packet_count as f64 / dur);
            v.set(FeatureId::BytesPerSec, self.byte_count as f64 / dur);
        }
        v
    }
}

/// Flow-table housekeeping knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowTableConfig {
    /// Evict records idle longer than this (collector clock), ns.
    pub idle_timeout_ns: u64,
    /// Hard cap on tracked flows; oldest-idle records are evicted first
    /// when exceeded. Protects the processor against flood-driven state
    /// explosion (every spoofed SYN is a new flow!).
    pub max_flows: usize,
}

impl Default for FlowTableConfig {
    fn default() -> Self {
        Self {
            idle_timeout_ns: 60 * 1_000_000_000,
            max_flows: 1_000_000,
        }
    }
}

/// Sentinel for an unoccupied bucket in the open-addressing index.
const EMPTY: u32 = u32::MAX;

/// Buckets allocated on the first insert (power of two).
const INITIAL_BUCKETS: usize = 16;

/// The flow table: a slab of records plus a compact open-addressing
/// index keyed by the [`FlowKey`]'s FNV hash.
///
/// Records live contiguously in `slots` (feature extraction walks them
/// cache-linearly); the `buckets` index maps hash → slot with linear
/// probing. Removal is tombstone-free: the bucket cluster is repaired
/// with backward-shift deletion and the slab hole is filled by
/// `swap_remove`, so lookups never scan deleted entries and the table
/// performs **zero allocations in steady state** — only index growth
/// (amortized, on new-flow creation) touches the allocator.
///
/// Semantics are bit-identical to the pre-slab `FnvHashMap` table; the
/// equivalence oracle lives in [`crate::reference::HashFlowTable`].
///
/// ```
/// use amlight_features::{FlowTable, FlowTableConfig, FlowUpdate, UpdateKind};
/// use amlight_net::{FlowKey, Protocol};
///
/// let mut table = FlowTable::new(FlowTableConfig::default());
/// let update = FlowUpdate {
///     flow: FlowKey::new([10, 0, 0, 1].into(), [10, 0, 0, 2].into(), 4242, 80, Protocol::Tcp),
///     now_ns: 1_000,
///     len: 60,
///     stamp32: Some(500),
///     observed_ns: None,
///     queue_occupancy: Some(3),
/// };
/// let (kind, record) = table.apply(&update);
/// assert_eq!(kind, UpdateKind::Created);
/// assert_eq!(record.packet_count, 1);
/// ```
#[derive(Debug)]
pub struct FlowTable {
    cfg: FlowTableConfig,
    hasher: FnvBuildHasher,
    /// Dense slab of live records.
    slots: Vec<FlowRecord>,
    /// Cached key hash per slot, parallel to `slots` (rehash-free index
    /// growth and cheap bucket repair).
    hashes: Vec<u64>,
    /// Open-addressing index: slot number or [`EMPTY`], linear probing,
    /// power-of-two length.
    buckets: Vec<u32>,
    created: u64,
    updated: u64,
    evicted: u64,
}

impl Default for FlowTable {
    fn default() -> Self {
        Self::new(FlowTableConfig::default())
    }
}

impl FlowTable {
    pub fn new(cfg: FlowTableConfig) -> Self {
        Self {
            cfg,
            hasher: FnvBuildHasher::default(),
            slots: Vec::new(),
            hashes: Vec::new(),
            buckets: Vec::new(),
            created: 0,
            updated: 0,
            evicted: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    pub fn created(&self) -> u64 {
        self.created
    }

    pub fn updated(&self) -> u64 {
        self.updated
    }

    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    pub fn get(&self, key: &FlowKey) -> Option<&FlowRecord> {
        let slot = self.find_slot(*key, self.hasher.hash_one(*key))?;
        self.slots.get(slot)
    }

    pub fn records(&self) -> impl Iterator<Item = &FlowRecord> {
        self.slots.iter()
    }

    /// Apply one normalized telemetry observation — the single update
    /// path every backend shares. Inter-arrival derives from whichever
    /// clock the update carries (wrapped 32-bit stamp, full-width
    /// observation time, or neither); queue aggregates update only when
    /// `queue_occupancy` is populated.
    // amlint: hot
    // amlint: allow(R8) -- slot indices come from find_slot/insert_slot, in-bounds by construction
    pub fn apply(&mut self, update: &FlowUpdate) -> (UpdateKind, &FlowRecord) {
        let key = update.flow;
        let now_ns = update.now_ns;
        let hash = self.hasher.hash_one(key);
        let (kind, slot) = match self.find_slot(key, hash) {
            Some(slot) => {
                self.updated += 1;
                self.slots[slot].update_seq += 1;
                (UpdateKind::Updated, slot)
            }
            None => {
                if self.slots.len() >= self.cfg.max_flows {
                    self.evict_idle(now_ns);
                }
                self.created += 1;
                (UpdateKind::Created, self.insert_slot(key, hash, now_ns))
            }
        };
        self.slots[slot].observe(
            now_ns,
            update.len,
            update.stamp32,
            update.observed_ns,
            update.queue_occupancy,
        );
        (kind, &self.slots[slot])
    }

    /// Evict records idle past the timeout as of `now_ns`. Returns the
    /// number evicted. If nothing is idle but the table is over capacity,
    /// evicts the single longest-idle record (to guarantee progress).
    // amlint: allow(R8) -- `i < slots.len()` loop bound; oldest index from enumerate()
    pub fn evict_idle(&mut self, now_ns: u64) -> usize {
        let deadline = now_ns.saturating_sub(self.cfg.idle_timeout_ns);
        let before = self.slots.len();
        let mut i = 0usize;
        while i < self.slots.len() {
            if self.slots[i].last_seen_ns < deadline {
                // swap_remove refills slot i with the last record; do not
                // advance, the replacement needs the same check.
                self.remove_slot(i);
            } else {
                i += 1;
            }
        }
        let mut evicted = before - self.slots.len();
        if evicted == 0 && self.slots.len() >= self.cfg.max_flows {
            let oldest = self
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, r)| r.last_seen_ns)
                .map(|(i, _)| i);
            if let Some(slot) = oldest {
                self.remove_slot(slot);
                evicted = 1;
            }
        }
        self.evicted += evicted as u64;
        evicted
    }

    /// Protocol histogram over live flows — cheap observability hook.
    pub fn protocol_split(&self) -> (usize, usize) {
        let tcp = self
            .slots
            .iter()
            .filter(|r| r.key.protocol == Protocol::Tcp)
            .count();
        (tcp, self.slots.len() - tcp)
    }

    // ---- slab / index internals -------------------------------------

    /// Linear-probe lookup. The load factor is capped below 1 (see
    /// [`FlowTable::insert_slot`]), so an empty bucket always terminates
    /// the probe.
    // amlint: allow(R8) -- buckets.len() is a power of two, probes masked; load < 1 terminates
    #[inline]
    fn find_slot(&self, key: FlowKey, hash: u64) -> Option<usize> {
        if self.buckets.is_empty() {
            return None;
        }
        let mask = self.buckets.len() - 1;
        let mut b = (hash as usize) & mask;
        loop {
            let s = self.buckets[b];
            if s == EMPTY {
                return None;
            }
            let s = s as usize;
            if self.hashes[s] == hash && self.slots[s].key == key {
                return Some(s);
            }
            b = (b + 1) & mask;
        }
    }

    /// Append a fresh record to the slab and index it. Grows the bucket
    /// array (outside steady state) to keep load ≤ 7/8.
    // amlint: allow(R8) -- probes masked by power-of-two bucket len
    fn insert_slot(&mut self, key: FlowKey, hash: u64, now_ns: u64) -> usize {
        if (self.slots.len() + 1) * 8 > self.buckets.len() * 7 {
            self.grow_buckets();
        }
        let mask = self.buckets.len() - 1;
        let mut b = (hash as usize) & mask;
        while self.buckets[b] != EMPTY {
            b = (b + 1) & mask;
        }
        let slot = self.slots.len();
        self.buckets[b] = slot as u32;
        self.slots.push(FlowRecord::new(key, now_ns)); // amlint: cold -- slab append, amortized
        self.hashes.push(hash); // amlint: cold -- slab append, amortized
        slot
    }

    /// Double the bucket array and re-index every slot from its cached
    /// hash (records are never touched).
    // amlint: cold -- bucket doubling happens outside steady state by definition
    fn grow_buckets(&mut self) {
        let new_cap = (self.buckets.len() * 2).max(INITIAL_BUCKETS);
        self.buckets.clear();
        self.buckets.resize(new_cap, EMPTY);
        let mask = new_cap - 1;
        for (slot, &h) in self.hashes.iter().enumerate() {
            let mut b = (h as usize) & mask;
            while self.buckets[b] != EMPTY {
                b = (b + 1) & mask;
            }
            self.buckets[b] = slot as u32;
        }
    }

    /// Remove the record in `slot`: backward-shift the bucket cluster
    /// (tombstone-free), then `swap_remove` the slab hole and re-point
    /// the moved record's bucket. O(cluster length), no allocation.
    // amlint: allow(R8) -- cluster walk stays within the masked bucket array; slab indices < len
    fn remove_slot(&mut self, slot: usize) {
        let mask = self.buckets.len() - 1;

        // Locate the bucket holding `slot` (reachable from its hash by
        // the linear-probe invariant).
        let mut b = (self.hashes[slot] as usize) & mask;
        while self.buckets[b] != slot as u32 {
            b = (b + 1) & mask;
        }

        // Backward-shift deletion: close the gap by pulling cluster
        // entries whose probe path crosses it.
        let mut gap = b;
        let mut j = (gap + 1) & mask;
        while self.buckets[j] != EMPTY {
            let s = self.buckets[j] as usize;
            let ideal = (self.hashes[s] as usize) & mask;
            // The entry at j may fill the gap iff its probe walked
            // through the gap position, i.e. its displacement from the
            // ideal bucket reaches at least back to the gap.
            if j.wrapping_sub(ideal) & mask >= j.wrapping_sub(gap) & mask {
                self.buckets[gap] = self.buckets[j];
                gap = j;
            }
            j = (j + 1) & mask;
        }
        self.buckets[gap] = EMPTY;

        // Fill the slab hole with the last record and fix its bucket.
        let last = self.slots.len() - 1;
        self.slots.swap_remove(slot);
        self.hashes.swap_remove(slot);
        if slot != last {
            let mut b = (self.hashes[slot] as usize) & mask;
            while self.buckets[b] != last as u32 {
                b = (b + 1) & mask;
            }
            self.buckets[b] = slot as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::FeatureId;
    use std::net::Ipv4Addr;

    fn key(port: u16) -> FlowKey {
        FlowKey::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            port,
            80,
            Protocol::Tcp,
        )
    }

    /// An INT-shaped update: wrapped 32-bit stamp + queue occupancy.
    fn report(port: u16, now_ns: u64, egress32: u32, len: u16, qocc: u32) -> FlowUpdate {
        FlowUpdate {
            flow: key(port),
            now_ns,
            len,
            stamp32: Some(egress32),
            observed_ns: None,
            queue_occupancy: Some(qocc),
        }
    }

    /// A sample-shaped update: full-width clock, no queue telemetry.
    fn sample(flow: FlowKey, observed_ns: u64, len: u16) -> FlowUpdate {
        FlowUpdate {
            flow,
            now_ns: observed_ns,
            len,
            stamp32: None,
            observed_ns: Some(observed_ns),
            queue_occupancy: None,
        }
    }

    #[test]
    fn first_packet_creates_record_with_defaults() {
        let mut t = FlowTable::default();
        let (kind, rec) = t.apply(&report(1, 1000, 1000, 40, 3));
        assert_eq!(kind, UpdateKind::Created);
        assert_eq!(rec.update_seq, 0);
        assert_eq!(rec.packet_count, 1);
        assert_eq!(rec.last_packet_len, 40);
        assert_eq!(rec.last_inter_arrival_s, 0.0, "no IAT on first packet");
        assert_eq!(rec.last_queue_occ, 3);
        assert_eq!(t.len(), 1);
        assert_eq!(t.created(), 1);
    }

    #[test]
    fn second_packet_updates_and_derives_iat() {
        let mut t = FlowTable::default();
        t.apply(&report(1, 1_000, 1_000, 40, 0));
        let (kind, rec) = t.apply(&report(1, 2_000_000, 2_001_000, 1400, 5));
        assert_eq!(kind, UpdateKind::Updated);
        assert_eq!(rec.update_seq, 1);
        assert_eq!(rec.packet_count, 2);
        // IAT = (2_001_000 - 1_000) ns = 2 ms.
        assert!((rec.last_inter_arrival_s - 0.002).abs() < 1e-12);
        assert_eq!(rec.last_packet_len, 1400, "packet-level fields replaced");
        assert_eq!(rec.byte_count, 1440);
        assert!((rec.duration_s() - 0.002).abs() < 1e-12);
    }

    #[test]
    fn iat_wraps_like_the_paper_warns() {
        let mut t = FlowTable::default();
        // First stamp just below the wrap, second just above zero.
        t.apply(&report(1, 0, u32::MAX - 999, 40, 0));
        let (_, rec) = t.apply(&report(1, 10_000, 1_000, 40, 0));
        // True gap 2000 ns across the wrap: wrapping_sub gets it right.
        assert!((rec.last_inter_arrival_s - 2e-6).abs() < 1e-12);
    }

    #[test]
    fn iat_aliases_when_gap_exceeds_wrap_period() {
        let mut t = FlowTable::default();
        t.apply(&report(1, 0, 1_000, 40, 0));
        // True gap = 2^32 + 500 ns, but the 32-bit stamp only moved 500.
        let (_, rec) = t.apply(&report(1, 4_294_967_796, 1_500, 40, 0));
        assert!(
            (rec.last_inter_arrival_s - 5e-7).abs() < 1e-15,
            "aliased to 500 ns, the paper's §V artifact"
        );
    }

    #[test]
    fn distinct_flows_distinct_records() {
        let mut t = FlowTable::default();
        t.apply(&report(1, 0, 0, 40, 0));
        t.apply(&report(2, 10, 10, 40, 0));
        assert_eq!(t.len(), 2);
        assert_eq!(t.created(), 2);
        assert_eq!(t.updated(), 0);
    }

    #[test]
    fn features_reflect_aggregates() {
        let mut t = FlowTable::default();
        t.apply(&report(1, 1_000, 1_000, 100, 2));
        t.apply(&report(1, 1_001_000, 1_001_000, 300, 4));
        let (_, rec) = t.apply(&report(1, 2_001_000, 2_001_000, 200, 6));
        let v = rec.features();
        assert_eq!(v.get(FeatureId::Protocol), 6.0);
        assert_eq!(v.get(FeatureId::PacketLen), 200.0);
        assert_eq!(v.get(FeatureId::PacketLenCum), 600.0);
        assert_eq!(v.get(FeatureId::PacketLenAvg), 200.0);
        assert_eq!(v.get(FeatureId::PacketCount), 3.0);
        assert_eq!(v.get(FeatureId::QueueOcc), 6.0);
        assert_eq!(v.get(FeatureId::QueueOccAvg), 4.0);
        // Duration 2 ms → 1500 pps, 300_000 Bps.
        assert!((v.get(FeatureId::PacketsPerSec) - 1500.0).abs() < 1e-6);
        assert!((v.get(FeatureId::BytesPerSec) - 300_000.0).abs() < 1e-6);
    }

    #[test]
    fn sflow_ingest_has_no_queue_data() {
        let mut t = FlowTable::default();
        let s1 = sample(key(9), 1_000_000, 500);
        let s2 = sample(key(9), 3_000_000, 700);
        t.apply(&s1);
        let (kind, rec) = t.apply(&s2);
        assert_eq!(kind, UpdateKind::Updated);
        assert_eq!(rec.last_queue_occ, 0);
        assert!(rec.qocc_stats.is_empty());
        assert!((rec.last_inter_arrival_s - 0.002).abs() < 1e-12);
    }

    #[test]
    fn idle_eviction() {
        let mut t = FlowTable::new(FlowTableConfig {
            idle_timeout_ns: 1_000,
            max_flows: 100,
        });
        t.apply(&report(1, 0, 0, 40, 0));
        t.apply(&report(2, 1_500, 1_500, 40, 0));
        let evicted = t.evict_idle(2_000);
        assert_eq!(evicted, 1, "flow 1 idle past timeout");
        assert!(t.get(&key(2)).is_some());
        assert!(t.get(&key(1)).is_none());
        assert_eq!(t.evicted(), 1);
    }

    #[test]
    fn capacity_pressure_evicts_oldest() {
        let mut t = FlowTable::new(FlowTableConfig {
            idle_timeout_ns: u64::MAX / 2, // nothing times out
            max_flows: 3,
        });
        for (i, ts) in [(1u16, 100u64), (2, 200), (3, 300)] {
            t.apply(&report(i, ts, ts as u32, 40, 0));
        }
        // A fourth flow forces eviction of the oldest-idle (flow 1).
        t.apply(&report(4, 400, 400, 40, 0));
        assert_eq!(t.len(), 3);
        assert!(t.get(&key(1)).is_none());
        assert!(t.get(&key(4)).is_some());
    }

    /// Regression: sFlow samples can arrive out of order (UDP transport,
    /// multiple agents). An older observation must saturate the IAT to
    /// zero, not underflow the u64 clock difference into a ~584-year
    /// inter-arrival.
    #[test]
    fn reordered_sflow_sample_saturates_iat() {
        let mut t = FlowTable::default();
        let newer = sample(key(7), 5_000_000, 500);
        // Arrives second, observed earlier.
        let older = sample(key(7), 2_000_000, 600);
        t.apply(&newer);
        let (_, rec) = t.apply(&older);
        assert_eq!(
            rec.last_inter_arrival_s, 0.0,
            "reordered sample must clamp, not wrap to ~1.8e10 s"
        );
        assert!(rec.duration_s().is_finite());
        assert!(rec.features().get(FeatureId::InterArrivalCum) < 1.0);
    }

    /// Eviction path under sustained capacity pressure with *no* idle
    /// flows: every new flow must make progress via the oldest-idle
    /// fallback, the table must not grow past `max_flows`, and the
    /// counters must account for every record that passed through.
    #[test]
    fn full_table_with_no_idle_flows_keeps_making_progress() {
        const CAP: usize = 64;
        let mut t = FlowTable::new(FlowTableConfig {
            idle_timeout_ns: u64::MAX / 2, // idle sweep never fires
            max_flows: CAP,
        });
        // Strictly increasing clock: nothing ever idles out, so each
        // over-capacity insert exercises the single-eviction fallback.
        for i in 0..10 * CAP as u64 {
            let port = 1 + i as u16; // all distinct: worst-case pressure
            t.apply(&report(
                port,
                1_000 * (i + 1),
                (1_000 * (i + 1)) as u32,
                40,
                0,
            ));
            assert!(t.len() <= CAP, "table exceeded cap at step {i}");
        }
        assert_eq!(t.len(), CAP);
        assert_eq!(
            t.evicted(),
            t.created() - CAP as u64,
            "every create past cap evicted one"
        );
        assert_eq!(t.created() + t.updated(), 10 * CAP as u64);
        // The survivors are exactly the most recent CAP distinct flows.
        let mut seen: Vec<u64> = t.records().map(|r| r.last_seen_ns).collect();
        seen.sort_unstable();
        assert!(seen.windows(2).all(|w| w[0] < w[1]));
    }

    /// Slab-index stress: interleaved inserts and removals must keep the
    /// open-addressing index consistent (every live key findable, every
    /// removed key gone) across swap_remove relocations and backward-shift
    /// cluster repairs.
    #[test]
    fn slab_index_survives_churn() {
        let mut t = FlowTable::new(FlowTableConfig {
            idle_timeout_ns: 500,
            max_flows: 10_000,
        });
        let mut live: Vec<u16> = Vec::new();
        let mut clock = 0u64;
        for round in 0u16..40 {
            // Insert a batch of new flows...
            for p in 0..23u16 {
                let port = round * 100 + p + 1;
                clock += 10;
                t.apply(&report(port, clock, clock as u32, 40, 0));
                live.push(port);
            }
            // ...touch a stale subset so only the rest idles out.
            clock += 1_000;
            let keep_from = live.len().saturating_sub(11);
            for &port in &live[keep_from..] {
                clock += 1;
                t.apply(&report(port, clock, clock as u32, 40, 0));
            }
            clock += 400;
            t.evict_idle(clock);
            let (gone, kept) = live.split_at(keep_from);
            for &port in gone {
                assert!(t.get(&key(port)).is_none(), "evicted {port} still findable");
            }
            for &port in kept {
                assert!(
                    t.get(&key(port)).is_some(),
                    "live {port} lost by index repair"
                );
            }
            live = kept.to_vec();
        }
        assert_eq!(t.len(), live.len());
    }

    #[test]
    fn protocol_split_counts() {
        let mut t = FlowTable::default();
        t.apply(&report(1, 0, 0, 40, 0));
        let mut udp_key = key(2);
        udp_key.protocol = Protocol::Udp;
        t.apply(&sample(udp_key, 0, 100));
        assert_eq!(t.protocol_split(), (1, 1));
    }
}
