//! Sharded, data-parallel flow processing — the "faster processing
//! capabilities" the paper's §V calls for before production deployment.
//!
//! The flow table is an associative map keyed by the five-tuple, so it
//! shards perfectly: hash each report's flow key to a shard, process the
//! shards in parallel with rayon, and no lock is ever contended (each
//! shard is owned by exactly one worker per batch). Per-flow update
//! order is preserved because a flow always lands in the same shard and
//! shard-local processing is sequential.

use crate::table::{FlowTable, FlowTableConfig, FlowUpdate, UpdateKind};
use crate::vector::FeatureVector;
use amlight_net::flow::FnvBuildHasher;
use amlight_net::FlowKey;
use rayon::prelude::*;
use std::hash::BuildHasher;

/// Routes flow keys to shards with a bitmask over the FNV hash.
///
/// The shard count is always a power of two (requests are rounded up),
/// so routing is `hash & mask` instead of an integer modulo — the
/// division would otherwise sit in the per-report hot path of every
/// sharded consumer. Shared by [`ShardedFlowTable`], the core crate's
/// `BatchDetector`, and the threaded runtime's collection→shard fan-out
/// (`ThreadedPipeline::with_shards`), so all consumers route a given
/// flow identically.
#[derive(Debug, Clone, Default)]
pub struct ShardRouter {
    hasher: FnvBuildHasher,
    mask: u64,
}

impl ShardRouter {
    /// Router for at least `min_shards` shards, rounded up to the next
    /// power of two.
    pub fn new(min_shards: usize) -> Self {
        assert!(min_shards >= 1, "need at least one shard");
        Self {
            hasher: FnvBuildHasher::default(),
            mask: min_shards.next_power_of_two() as u64 - 1,
        }
    }

    /// The actual (power-of-two) shard count.
    pub fn shard_count(&self) -> usize {
        (self.mask + 1) as usize
    }

    /// Shard index for a flow key.
    #[inline]
    pub fn route(&self, flow: FlowKey) -> usize {
        (self.hasher.hash_one(flow) & self.mask) as usize
    }
}

/// The outcome of one report's ingest, in input order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardedUpdate {
    pub kind: UpdateKind,
    pub features: FeatureVector,
    /// Per-flow update counter after this ingest.
    pub update_seq: u64,
}

/// Per-shard routing and result scratch, retained across batches so the
/// steady-state batch path performs no allocations (capacities grow to
/// the high-water mark once, then are reused).
#[derive(Debug, Default)]
struct ShardScratch {
    /// Input indices routed to this shard, in input order.
    idxs: Vec<u32>,
    /// This shard's `(input index, update)` results.
    out: Vec<(u32, ShardedUpdate)>,
}

/// A flow table split into independently processed shards.
#[derive(Debug)]
pub struct ShardedFlowTable {
    shards: Vec<FlowTable>,
    scratch: Vec<ShardScratch>,
    router: ShardRouter,
}

impl ShardedFlowTable {
    /// `shards` should be ≥ the worker count; the count is rounded up to
    /// a power of two so routing is a bitmask, not a modulo.
    pub fn new(cfg: FlowTableConfig, shards: usize) -> Self {
        let router = ShardRouter::new(shards);
        let shards = router.shard_count();
        // Split the global flow budget across shards.
        let per_shard = FlowTableConfig {
            max_flows: (cfg.max_flows / shards).max(16),
            ..cfg
        };
        Self {
            shards: (0..shards).map(|_| FlowTable::new(per_shard)).collect(),
            scratch: (0..shards).map(|_| ShardScratch::default()).collect(),
            router,
        }
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    pub fn len(&self) -> usize {
        self.shards.iter().map(FlowTable::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(FlowTable::is_empty)
    }

    pub fn created(&self) -> u64 {
        self.shards.iter().map(FlowTable::created).sum()
    }

    pub fn updated(&self) -> u64 {
        self.shards.iter().map(FlowTable::updated).sum()
    }

    /// Ingest a batch of normalized updates in parallel. Results come
    /// back in input order; per-flow sequencing is exactly what
    /// sequential ingest would produce.
    pub fn apply_batch(&mut self, updates: &[FlowUpdate]) -> Vec<ShardedUpdate> {
        let mut results = Vec::new();
        self.apply_batch_into(updates, &mut results);
        results
    }

    /// Scratch-reusing form of [`ShardedFlowTable::apply_batch`]:
    /// writes the input-ordered results into `results` (cleared first).
    /// Routing and per-shard result buffers persist inside `self`, so a
    /// steady-state caller that also reuses `results` allocates nothing.
    // amlint: hot
    // amlint: allow(R8) -- indices come from enumerate(); route() is masked by the shard count
    pub fn apply_batch_into(&mut self, updates: &[FlowUpdate], results: &mut Vec<ShardedUpdate>) {
        // Route: per shard, the input indices it owns (order-preserving).
        for s in &mut self.scratch {
            s.idxs.clear();
            s.out.clear();
        }
        for (i, u) in updates.iter().enumerate() {
            // amlint: cold -- retained scratch, grows to high-water mark once
            self.scratch[self.router.route(u.flow)].idxs.push(i as u32);
        }

        // Process each shard sequentially, shards in parallel.
        self.shards
            .par_iter_mut()
            .zip(self.scratch.par_iter_mut())
            .for_each(|(table, scratch)| {
                for &i in &scratch.idxs {
                    let (kind, rec) = table.apply(&updates[i as usize]);
                    // amlint: cold -- retained scratch, grows to high-water mark once
                    scratch.out.push((
                        i,
                        ShardedUpdate {
                            kind,
                            features: rec.features(),
                            update_seq: rec.update_seq,
                        },
                    ));
                }
            });

        // Scatter back to input order into a pre-sized buffer. Every slot
        // is overwritten: the routing loop above assigns each input index
        // to exactly one shard, and each shard echoes back exactly the
        // indices it was routed.
        results.clear();
        // amlint: cold -- caller-owned buffer, reused across batches
        results.resize(
            updates.len(),
            ShardedUpdate {
                kind: UpdateKind::Created,
                features: FeatureVector::default(),
                update_seq: 0,
            },
        );
        for shard in &self.scratch {
            for &(i, u) in &shard.out {
                results[i as usize] = u;
            }
        }
    }

    /// Evict idle flows across all shards (parallel). Returns the total
    /// evicted.
    pub fn evict_idle(&mut self, now_ns: u64) -> usize {
        self.shards
            .par_iter_mut()
            .map(|t| t.evict_idle(now_ns))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amlight_net::{FlowKey, Protocol};
    use std::net::Ipv4Addr;

    fn report(port: u16, t_ns: u64, len: u16) -> FlowUpdate {
        FlowUpdate {
            flow: FlowKey::new(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 0, 2),
                port,
                80,
                Protocol::Tcp,
            ),
            now_ns: t_ns,
            len,
            stamp32: Some((t_ns as u32).wrapping_add(500)),
            observed_ns: None,
            queue_occupancy: Some(0),
        }
    }

    fn batch(n: u64, flows: u16) -> Vec<FlowUpdate> {
        (0..n)
            .map(|i| {
                report(
                    1000 + (i % u64::from(flows)) as u16,
                    i * 1_000,
                    100 + (i % 7) as u16,
                )
            })
            .collect()
    }

    #[test]
    fn matches_sequential_processing_exactly() {
        let reports = batch(5_000, 64);

        let mut sequential = FlowTable::new(FlowTableConfig::default());
        let seq_out: Vec<(UpdateKind, FeatureVector, u64)> = reports
            .iter()
            .map(|r| {
                let (k, rec) = sequential.apply(r);
                (k, rec.features(), rec.update_seq)
            })
            .collect();

        let mut sharded = ShardedFlowTable::new(FlowTableConfig::default(), 8);
        let par_out = sharded.apply_batch(&reports);

        assert_eq!(par_out.len(), seq_out.len());
        for (p, (k, f, u)) in par_out.iter().zip(&seq_out) {
            assert_eq!(p.kind, *k);
            assert_eq!(p.update_seq, *u);
            assert_eq!(&p.features, f);
        }
        assert_eq!(sharded.len(), sequential.len());
        assert_eq!(sharded.created(), sequential.created());
        assert_eq!(sharded.updated(), sequential.updated());
    }

    #[test]
    fn single_shard_degenerates_to_plain_table() {
        let reports = batch(500, 16);
        let mut sharded = ShardedFlowTable::new(FlowTableConfig::default(), 1);
        let out = sharded.apply_batch(&reports);
        assert_eq!(out.len(), 500);
        assert_eq!(sharded.shard_count(), 1);
        assert_eq!(sharded.len(), 16);
    }

    #[test]
    fn results_are_in_input_order() {
        let reports = batch(1_000, 32);
        let mut sharded = ShardedFlowTable::new(FlowTableConfig::default(), 4);
        let out = sharded.apply_batch(&reports);
        // The first occurrence of each flow must be Created, later ones
        // Updated, in input order.
        let mut seen = std::collections::HashSet::new();
        for (r, u) in reports.iter().zip(&out) {
            if seen.insert(r.flow) {
                assert_eq!(u.kind, UpdateKind::Created);
            } else {
                assert_eq!(u.kind, UpdateKind::Updated);
            }
        }
    }

    #[test]
    fn multiple_batches_continue_state() {
        let reports = batch(600, 8);
        let mut sharded = ShardedFlowTable::new(FlowTableConfig::default(), 4);
        let first = sharded.apply_batch(&reports[..300]);
        let second = sharded.apply_batch(&reports[300..]);
        // Flow state persists: second batch has no creations (all 8 flows
        // appeared in the first 300 reports).
        assert!(first.iter().any(|u| u.kind == UpdateKind::Created));
        assert!(second.iter().all(|u| u.kind == UpdateKind::Updated));
        assert_eq!(sharded.created(), 8);
    }

    #[test]
    fn into_variant_reuses_results_buffer() {
        let reports = batch(900, 24);
        let mut fresh = ShardedFlowTable::new(FlowTableConfig::default(), 4);
        let expected = fresh.apply_batch(&reports);

        let mut sharded = ShardedFlowTable::new(FlowTableConfig::default(), 4);
        let mut results = Vec::new();
        // Stale oversized content must be fully replaced, not appended to.
        sharded.apply_batch_into(&reports[..600], &mut results);
        assert_eq!(results.len(), 600);
        let cap = results.capacity();
        sharded.apply_batch_into(&reports[600..], &mut results);
        assert_eq!(results.len(), 300);
        assert_eq!(results.capacity(), cap, "buffer reused, not reallocated");

        // Same state evolution as the one-shot batch path.
        let mut replay = ShardedFlowTable::new(FlowTableConfig::default(), 4);
        let mut out = Vec::new();
        replay.apply_batch_into(&reports, &mut out);
        assert_eq!(out, expected);
    }

    #[test]
    fn parallel_eviction_sums_shards() {
        let mut sharded = ShardedFlowTable::new(
            FlowTableConfig {
                idle_timeout_ns: 1_000,
                max_flows: 1_000,
            },
            4,
        );
        sharded.apply_batch(&batch(100, 50));
        let evicted = sharded.evict_idle(10_000_000_000);
        assert_eq!(evicted, 50);
        assert!(sharded.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        ShardedFlowTable::new(FlowTableConfig::default(), 0);
    }

    #[test]
    fn shard_count_rounds_up_to_power_of_two() {
        for (requested, actual) in [(1, 1), (2, 2), (3, 4), (5, 8), (8, 8), (9, 16)] {
            let t = ShardedFlowTable::new(FlowTableConfig::default(), requested);
            assert_eq!(t.shard_count(), actual, "requested {requested}");
            assert_eq!(ShardRouter::new(requested).shard_count(), actual);
        }
    }

    #[test]
    fn router_mask_matches_modulo_for_pow2() {
        // With a power-of-two shard count, `hash & mask` must equal
        // `hash % count` — the routing change is pure strength reduction.
        let router = ShardRouter::new(8);
        let hasher = FnvBuildHasher::default();
        for i in 0..200u64 {
            let key = report(1000 + (i % 64) as u16, i, 100).flow;
            let h = hasher.hash_one(key);
            assert_eq!(router.route(key), (h % 8) as usize);
        }
    }

    #[test]
    fn non_pow2_request_still_matches_sequential() {
        let reports = batch(2_000, 48);
        let mut sequential = FlowTable::new(FlowTableConfig::default());
        let seq_out: Vec<u64> = reports
            .iter()
            .map(|r| sequential.apply(r).1.update_seq)
            .collect();
        // Requesting 6 shards yields 8; semantics must be unchanged.
        let mut sharded = ShardedFlowTable::new(FlowTableConfig::default(), 6);
        assert_eq!(sharded.shard_count(), 8);
        let out = sharded.apply_batch(&reports);
        for (u, seq) in out.iter().zip(&seq_out) {
            assert_eq!(u.update_seq, *seq);
        }
    }
}
