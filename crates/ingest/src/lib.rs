//! The network-facing collector daemon: sharded socket listeners
//! feeding the zero-alloc decode path.
//!
//! The paper's production deployment runs the INT collector as a
//! network service: sinks export report streams and sFlow agents fire
//! datagrams at a well-known port, and the detection pipeline consumes
//! whatever arrives. This crate is that front end. [`IngestServer`]
//! binds a group of `SO_REUSEPORT` sockets to one port — N listener
//! threads, each owning its own socket, with the kernel's flow hash
//! spreading traffic across the group (so one hot flow cannot starve
//! the others, and no userspace dispatch lock exists at all) — and
//! drains each socket in syscall batches via [`netio::recv_batch`].
//!
//! Every listener thread owns its entire hot path: a fixed
//! [`netio::Frame`] array receives datagrams, the backend decoder
//! ([`amlight_int::IntCollector`] / [`amlight_sflow::SflowCollector`])
//! appends into long-lived scratch, and decoded events accumulate into
//! a pooled batch published to that listener's own
//! [`amlight_core::EventMailbox`]. Nothing is shared between listeners
//! but atomic counters, and the steady-state loop performs zero heap
//! allocations — frames, decoder scratch, and batch shells are all
//! reused.
//!
//! Downstream, [`IngestServer::source`] hands out a
//! [`amlight_core::SocketSource`] that fans the per-listener mailboxes
//! into the pipeline's collection thread, round-robin. Backpressure is
//! explicit: each mailbox holds a bounded number of batches and sheds
//! per its [`OverflowPolicy`] when the consumer lags, with counters
//! making every dropped event visible — at any quiet point
//! `events_decoded == consumed + dropped + pending`.
//!
//! Three wire protocols, selected per [`ListenerConfig`]:
//!
//! * [`WireProtocol::SflowUdp`] — one sFlow v5 datagram per UDP
//!   datagram (the standard transport).
//! * [`WireProtocol::IntUdp`] — whole INT reports packed in a UDP
//!   datagram; a report split across datagrams is a decode error, never
//!   reassembled (UDP guarantees neither order nor adjacency).
//! * [`WireProtocol::IntTcp`] — the sink's byte stream over TCP with
//!   cross-read reassembly, one decoder per connection. Listener
//!   threads form a `SO_REUSEPORT` *accept* group; each accepted
//!   connection gets its own handler thread publishing into the
//!   accepting listener's mailbox.
//! * [`WireProtocol::PintUdp`] — PINT probabilistic digests packed in
//!   UDP datagrams; each listener owns a [`amlight_pint::PintCollector`]
//!   whose sketch reconstructs queue state across that listener's
//!   digest stream.

// Compiler-enforced arm of amlint rule R5: unsafe stays in shims/.
#![forbid(unsafe_code)]

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use amlight_core::{EventMailbox, LabeledEvent, OverflowPolicy, SocketSource};
use amlight_int::{IntCollector, TelemetryReport};
use amlight_pint::PintCollector;
use amlight_sflow::SflowCollector;
use netio::{Frame, MAX_BATCH};
use serde::{Deserialize, Serialize};

/// Which telemetry framing a listener group speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireProtocol {
    /// sFlow v5 datagrams over UDP.
    SflowUdp,
    /// Whole INT reports per UDP datagram.
    IntUdp,
    /// The INT sink's report byte stream over TCP.
    IntTcp,
    /// PINT probabilistic per-packet digests over UDP.
    PintUdp,
}

impl WireProtocol {
    pub fn name(self) -> &'static str {
        match self {
            WireProtocol::SflowUdp => "sflow-udp",
            WireProtocol::IntUdp => "int-udp",
            WireProtocol::IntTcp => "int-tcp",
            WireProtocol::PintUdp => "pint-udp",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "sflow-udp" => Some(WireProtocol::SflowUdp),
            "int-udp" => Some(WireProtocol::IntUdp),
            "int-tcp" => Some(WireProtocol::IntTcp),
            "pint-udp" => Some(WireProtocol::PintUdp),
            _ => None,
        }
    }

    pub fn is_tcp(self) -> bool {
        matches!(self, WireProtocol::IntTcp)
    }
}

/// How an [`IngestServer`] binds and paces its listener group.
#[derive(Debug, Clone)]
pub struct ListenerConfig {
    /// Address every group member binds (port 0 picks one shared port).
    pub addr: SocketAddr,
    pub protocol: WireProtocol,
    /// Listener threads, each with its own `SO_REUSEPORT` socket and
    /// mailbox.
    pub listeners: usize,
    /// Bounded mailbox depth, in batches, per listener.
    pub mailbox_batches: usize,
    /// Events per published batch (the mailbox transfer unit).
    pub batch_events: usize,
    /// What to shed when a mailbox is full.
    pub overflow: OverflowPolicy,
    /// Socket read timeout: bounds how long a quiet listener blocks
    /// before checking its stop flag and flushing a partial batch.
    pub read_timeout: Duration,
}

impl ListenerConfig {
    pub fn new(addr: SocketAddr, protocol: WireProtocol) -> Self {
        Self {
            addr,
            protocol,
            listeners: 1,
            mailbox_batches: 64,
            batch_events: 256,
            overflow: OverflowPolicy::DropOldest,
            read_timeout: Duration::from_millis(20),
        }
    }

    pub fn listeners(mut self, n: usize) -> Self {
        self.listeners = n.max(1);
        self
    }

    pub fn batch_events(mut self, n: usize) -> Self {
        self.batch_events = n.max(1);
        self
    }

    pub fn mailbox_batches(mut self, n: usize) -> Self {
        self.mailbox_batches = n.max(1);
        self
    }

    pub fn overflow(mut self, policy: OverflowPolicy) -> Self {
        self.overflow = policy;
        self
    }

    pub fn read_timeout(mut self, t: Duration) -> Self {
        self.read_timeout = t.max(Duration::from_millis(1));
        self
    }
}

/// Monotonic listener-side counters, shared across all threads of one
/// server. Mailbox-side counters (published/dropped/pending) live on
/// the mailboxes themselves; [`IngestServer::stats`] merges both views.
#[derive(Debug, Default)]
struct Counters {
    /// UDP datagrams received (TCP bytes arrive as a stream and show up
    /// in `bytes` only).
    datagrams: AtomicU64,
    bytes: AtomicU64,
    events_decoded: AtomicU64,
    decode_errors: AtomicU64,
    recv_errors: AtomicU64,
    connections: AtomicU64,
}

/// A point-in-time snapshot of everything an [`IngestServer`] has done.
///
/// At any quiet point (no datagram mid-decode), every decoded event is
/// in exactly one bucket: consumed downstream, shed
/// (`events_dropped`), or still pending in a mailbox — so
/// `events_decoded == consumed + events_dropped + pending_events`.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct IngestStats {
    pub datagrams: u64,
    pub bytes: u64,
    pub events_decoded: u64,
    pub decode_errors: u64,
    pub recv_errors: u64,
    pub connections: u64,
    pub events_published: u64,
    pub events_dropped: u64,
    pub batches_published: u64,
    pub batches_dropped: u64,
    pub batches_pending: u64,
}

/// A running listener group bound to one port. Dropping the server (or
/// calling [`IngestServer::shutdown`]) stops every listener, joins the
/// threads, and closes the mailboxes so the downstream [`SocketSource`]
/// drains cleanly to `End`.
pub struct IngestServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    mailboxes: Vec<Arc<EventMailbox>>,
    counters: Arc<Counters>,
}

impl IngestServer {
    /// Bind the listener group and start its threads.
    pub fn bind(cfg: ListenerConfig) -> std::io::Result<IngestServer> {
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let listeners = cfg.listeners.max(1);
        let mut mailboxes = Vec::with_capacity(listeners);
        let mut threads = Vec::with_capacity(listeners);
        let spawn_ctx = |mailbox: &Arc<EventMailbox>| ListenerCtx {
            mailbox: Arc::clone(mailbox),
            counters: Arc::clone(&counters),
            stop: Arc::clone(&stop),
            cfg: cfg.clone(),
        };

        let local_addr;
        if cfg.protocol.is_tcp() {
            let first = netio::bind_tcp_reuseport(cfg.addr, 64)?;
            local_addr = first.local_addr()?;
            let mut socks = vec![first];
            for _ in 1..listeners {
                // The portable fallback cannot double-bind; degrade to
                // sharing the first listener's accept queue.
                let sock = match netio::bind_tcp_reuseport(local_addr, 64) {
                    Ok(s) => s,
                    Err(_) => socks[0].try_clone()?,
                };
                socks.push(sock);
            }
            for (i, sock) in socks.into_iter().enumerate() {
                let mailbox = Arc::new(EventMailbox::new(cfg.mailbox_batches, cfg.overflow));
                let ctx = spawn_ctx(&mailbox);
                mailboxes.push(mailbox);
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("ingest-tcp-{i}"))
                        .spawn(move || run_tcp_listener(sock, ctx))?,
                );
            }
        } else {
            let first = netio::bind_udp_reuseport(cfg.addr)?;
            local_addr = first.local_addr()?;
            let mut socks = vec![first];
            for _ in 1..listeners {
                // Same portable-fallback degradation as TCP: share one
                // socket when the platform can't bind a reuseport group.
                let sock = match netio::bind_udp_reuseport(local_addr) {
                    Ok(s) => s,
                    Err(_) => socks[0].try_clone()?,
                };
                socks.push(sock);
            }
            for (i, sock) in socks.into_iter().enumerate() {
                sock.set_read_timeout(Some(cfg.read_timeout))?;
                let mailbox = Arc::new(EventMailbox::new(cfg.mailbox_batches, cfg.overflow));
                let ctx = spawn_ctx(&mailbox);
                mailboxes.push(mailbox);
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("ingest-udp-{i}"))
                        .spawn(move || run_udp_listener(sock, ctx))?,
                );
            }
        }
        Ok(IngestServer {
            local_addr,
            stop,
            threads,
            mailboxes,
            counters,
        })
    }

    /// The port the whole group shares (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A fan-in source over this server's mailboxes, for
    /// `ThreadedPipeline` or direct draining. One consumer at a time is
    /// the intended shape — concurrent sources would race for batches.
    pub fn source(&self) -> SocketSource {
        SocketSource::new(self.mailboxes.clone())
    }

    /// Direct mailbox access for consumers that want batch granularity
    /// (the loopback bench drains these without boxing events).
    pub fn mailboxes(&self) -> &[Arc<EventMailbox>] {
        &self.mailboxes
    }

    /// Merged listener + mailbox counters.
    pub fn stats(&self) -> IngestStats {
        let c = &self.counters;
        let mut s = IngestStats {
            datagrams: c.datagrams.load(Ordering::Relaxed),
            bytes: c.bytes.load(Ordering::Relaxed),
            events_decoded: c.events_decoded.load(Ordering::Relaxed),
            decode_errors: c.decode_errors.load(Ordering::Relaxed),
            recv_errors: c.recv_errors.load(Ordering::Relaxed),
            connections: c.connections.load(Ordering::Relaxed),
            ..IngestStats::default()
        };
        for mb in &self.mailboxes {
            s.events_published += mb.published_events();
            s.events_dropped += mb.dropped_events();
            s.batches_published += mb.published_batches();
            s.batches_dropped += mb.dropped_batches();
            s.batches_pending += mb.pending_batches() as u64;
        }
        s
    }

    /// Stop listeners, join threads, close mailboxes. Pending batches
    /// stay poppable; a [`SocketSource`] then drains them and reports
    /// `End`.
    pub fn shutdown(mut self) -> IngestStats {
        self.stop_and_join();
        self.stats()
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // Listener threads close their own mailbox on exit; closing
        // again here is an idempotent safety net (a panicked thread
        // must not leave the consumer spinning forever).
        for mb in &self.mailboxes {
            mb.close();
        }
    }
}

impl Drop for IngestServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

impl std::fmt::Debug for IngestServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngestServer")
            .field("local_addr", &self.local_addr)
            .field("listeners", &self.mailboxes.len())
            .finish()
    }
}

/// Everything one listener thread owns besides its socket.
struct ListenerCtx {
    mailbox: Arc<EventMailbox>,
    counters: Arc<Counters>,
    stop: Arc<AtomicBool>,
    cfg: ListenerConfig,
}

/// Publish `batch` and hand back a recycled (or fresh-from-pool) shell.
/// Empty batches skip the mailbox entirely: idle flushes are free.
// amlint: hot
fn flush(mailbox: &EventMailbox, batch: Vec<LabeledEvent>) -> Vec<LabeledEvent> {
    if batch.is_empty() {
        return batch;
    }
    mailbox.publish(batch);
    mailbox.acquire()
}

/// The UDP hot loop: one `recvmmsg` batch per iteration, decoded into
/// per-thread scratch, events appended to the pooled outgoing batch.
/// Zero steady-state allocations — frames, decoder scratch, and batch
/// shells are all reused.
// amlint: hot
fn run_udp_listener(sock: UdpSocket, ctx: ListenerCtx) {
    // amlint: cold -- one-time listener setup before the loop
    let mut frames = vec![Frame::new(); MAX_BATCH];
    let mut sflow = SflowCollector::new();
    // amlint: cold -- one-time listener setup before the loop
    let mut pint = PintCollector::new(amlight_pint::SketchConfig::default());
    // amlint: cold -- one-time listener setup before the loop
    let mut reports: Vec<TelemetryReport> = Vec::with_capacity(ctx.cfg.batch_events.min(1024));
    let mut batch = ctx.mailbox.acquire();
    let mut sflow_errors = 0u64;
    let mut pint_errors = 0u64;

    while !ctx.stop.load(Ordering::Relaxed) {
        let got = match netio::recv_batch(&sock, &mut frames) {
            Ok(n) => n,
            Err(_) => {
                ctx.counters.recv_errors.fetch_add(1, Ordering::Relaxed);
                continue;
            }
        };
        if got == 0 {
            // Quiet interval: bound latency by flushing what we have.
            batch = flush(&ctx.mailbox, batch);
            continue;
        }
        ctx.counters
            .datagrams
            .fetch_add(got as u64, Ordering::Relaxed);
        let mut bytes = 0u64;
        let mut decoded = 0u64;
        let mut errors = 0u64;
        for frame in frames.iter().take(got) {
            let payload = frame.payload();
            bytes += payload.len() as u64;
            match ctx.cfg.protocol {
                WireProtocol::SflowUdp => {
                    if sflow.ingest(payload).is_err() {
                        // The collector classifies the reject in its own
                        // stats; mirror the delta outward.
                        errors += sflow.decode_errors() - sflow_errors;
                        sflow_errors = sflow.decode_errors();
                    }
                    for s in sflow.samples() {
                        // amlint: cold -- pooled batch shell from mailbox.acquire()
                        batch.push(LabeledEvent::new((*s).into()));
                    }
                    decoded += sflow.samples().len() as u64;
                    sflow.clear_samples();
                }
                WireProtocol::IntUdp => {
                    let outcome = IntCollector::decode_datagram_into(payload, &mut reports);
                    errors += u64::from(outcome.decode_errors);
                    decoded += reports.len() as u64;
                    for r in reports.drain(..) {
                        // amlint: cold -- pooled batch shell from mailbox.acquire()
                        batch.push(LabeledEvent::new(r.into()));
                    }
                }
                WireProtocol::PintUdp => {
                    if pint.ingest(payload).is_err() {
                        // The collector classifies the reject in its own
                        // stats; mirror the delta outward.
                        errors += pint.decode_errors() - pint_errors;
                        pint_errors = pint.decode_errors();
                    }
                    for r in pint.reports() {
                        // amlint: cold -- pooled batch shell from mailbox.acquire()
                        batch.push(LabeledEvent::new((*r).into()));
                    }
                    decoded += pint.reports().len() as u64;
                    // Keeps the allocation and the sketch; only the
                    // drained digests go.
                    pint.clear_reports();
                }
                // TCP traffic never reaches the UDP loop.
                WireProtocol::IntTcp => {}
            }
            if batch.len() >= ctx.cfg.batch_events {
                batch = flush(&ctx.mailbox, batch);
            }
        }
        ctx.counters.bytes.fetch_add(bytes, Ordering::Relaxed);
        ctx.counters
            .events_decoded
            .fetch_add(decoded, Ordering::Relaxed);
        if errors > 0 {
            ctx.counters
                .decode_errors
                .fetch_add(errors, Ordering::Relaxed);
        }
    }
    let batch = flush(&ctx.mailbox, batch);
    ctx.mailbox.recycle(batch);
    ctx.mailbox.close();
}

/// The TCP accept loop: nonblocking accept on this thread's reuseport
/// listening socket, one handler thread per connection. Handlers
/// publish into the accepting listener's mailbox; the mailbox closes
/// only after every handler has drained its final batch.
fn run_tcp_listener(listener: TcpListener, ctx: ListenerCtx) {
    if listener.set_nonblocking(true).is_err() {
        ctx.mailbox.close();
        return;
    }
    let accept_pause = ctx.cfg.read_timeout.min(Duration::from_millis(5));
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !ctx.stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                ctx.counters.connections.fetch_add(1, Ordering::Relaxed);
                let conn = ConnCtx {
                    mailbox: Arc::clone(&ctx.mailbox),
                    counters: Arc::clone(&ctx.counters),
                    stop: Arc::clone(&ctx.stop),
                    batch_events: ctx.cfg.batch_events,
                    read_timeout: ctx.cfg.read_timeout,
                };
                match std::thread::Builder::new()
                    .name("ingest-conn".to_string())
                    .spawn(move || run_tcp_conn(stream, conn))
                {
                    Ok(h) => handlers.push(h),
                    Err(_) => {
                        ctx.counters.recv_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
                // Reap finished handlers so a long-lived server doesn't
                // accumulate join handles.
                handlers.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(accept_pause);
            }
            Err(_) => {
                ctx.counters.recv_errors.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(accept_pause);
            }
        }
    }
    for h in handlers {
        let _ = h.join();
    }
    ctx.mailbox.close();
}

struct ConnCtx {
    mailbox: Arc<EventMailbox>,
    counters: Arc<Counters>,
    stop: Arc<AtomicBool>,
    batch_events: usize,
    read_timeout: Duration,
}

/// One TCP connection: the sink's byte stream through a per-connection
/// streaming [`IntCollector`] (cross-read reassembly), batching into
/// the accepting listener's mailbox.
// amlint: hot
fn run_tcp_conn(stream: TcpStream, ctx: ConnCtx) {
    if stream.set_read_timeout(Some(ctx.read_timeout)).is_err() {
        return;
    }
    let mut stream = stream;
    let mut buf = [0u8; 8192];
    let mut collector = IntCollector::new();
    // amlint: cold -- one-time per-connection setup before the loop
    let mut reports: Vec<TelemetryReport> = Vec::with_capacity(ctx.batch_events.min(1024));
    let mut batch = ctx.mailbox.acquire();
    let mut seen_errors = 0u64;

    while !ctx.stop.load(Ordering::Relaxed) {
        match stream.read(&mut buf) {
            Ok(0) => break, // peer closed
            Ok(n) => {
                ctx.counters.bytes.fetch_add(n as u64, Ordering::Relaxed);
                collector.ingest_into(&buf[..n], &mut reports);
                let stats = collector.stats();
                if stats.decode_errors > seen_errors {
                    ctx.counters
                        .decode_errors
                        .fetch_add(stats.decode_errors - seen_errors, Ordering::Relaxed);
                    seen_errors = stats.decode_errors;
                }
                ctx.counters
                    .events_decoded
                    .fetch_add(reports.len() as u64, Ordering::Relaxed);
                for r in reports.drain(..) {
                    // amlint: cold -- pooled batch shell from mailbox.acquire()
                    batch.push(LabeledEvent::new(r.into()));
                    if batch.len() >= ctx.batch_events {
                        batch = flush(&ctx.mailbox, batch);
                    }
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Quiet connection: flush what we have, stay subscribed.
                batch = flush(&ctx.mailbox, batch);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                ctx.counters.recv_errors.fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
    }
    let batch = flush(&ctx.mailbox, batch);
    ctx.mailbox.recycle(batch);
    // A report truncated by the connection dying can never complete.
    if collector.pending_bytes() > 0 {
        ctx.counters.decode_errors.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amlight_core::{EventSource, SourcePoll, Telemetry};
    use amlight_int::{HopMetadata, InstructionSet};
    use amlight_net::{FlowKey, Protocol};
    use amlight_sflow::{batch_into_datagrams, FlowSample};
    use std::io::Write;
    use std::net::Ipv4Addr;

    fn cfg(protocol: WireProtocol) -> ListenerConfig {
        ListenerConfig::new("127.0.0.1:0".parse().unwrap(), protocol)
            .read_timeout(Duration::from_millis(10))
            .batch_events(32)
    }

    fn int_report(tag: u32) -> TelemetryReport {
        TelemetryReport {
            flow: FlowKey::new(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 0, 2),
                (1000 + (tag % 60000)) as u16,
                80,
                Protocol::Tcp,
            ),
            ip_len: 120,
            tcp_flags: Some(0x02),
            instructions: InstructionSet::amlight(),
            hops: vec![HopMetadata {
                switch_id: tag,
                ..Default::default()
            }]
            .into(),
            export_ns: u64::from(tag) * 100,
        }
    }

    fn sflow_sample(tag: u16) -> FlowSample {
        FlowSample {
            flow: FlowKey::new(
                Ipv4Addr::new(10, 0, 0, 3),
                Ipv4Addr::new(10, 0, 0, 4),
                2000 + tag,
                443,
                Protocol::Udp,
            ),
            ip_len: 90,
            tcp_flags: None,
            observed_ns: u64::from(tag) * 1000,
            sampling_period: 64,
        }
    }

    /// Drain a server's source until `want` events arrive, End, or a
    /// deadline.
    fn drain_events(source: &mut SocketSource, want: usize) -> Vec<LabeledEvent> {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut out = Vec::new();
        while out.len() < want && std::time::Instant::now() < deadline {
            match source.poll_event() {
                SourcePoll::Event(e) => out.push(*e),
                SourcePoll::Idle => std::thread::sleep(Duration::from_millis(1)),
                SourcePoll::End => break,
            }
        }
        out
    }

    #[test]
    fn sflow_udp_roundtrip_through_the_server() {
        let server = IngestServer::bind(cfg(WireProtocol::SflowUdp)).unwrap();
        let addr = server.local_addr();
        let samples: Vec<FlowSample> = (0..40).map(sflow_sample).collect();
        let grams = batch_into_datagrams(Ipv4Addr::new(9, 9, 9, 9), &samples, 8);
        let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
        for g in &grams {
            tx.send_to(g, addr).unwrap();
        }
        let mut source = server.source();
        let got = drain_events(&mut source, samples.len());
        assert_eq!(got.len(), samples.len());
        let stats = server.shutdown();
        assert_eq!(stats.events_decoded, 40);
        assert_eq!(stats.decode_errors, 0);
        assert_eq!(stats.datagrams as usize, grams.len());
        // Source reports End once the closed mailboxes are dry.
        assert!(matches!(source.poll_event(), SourcePoll::End));
    }

    #[test]
    fn int_udp_roundtrip_preserves_flow_keys() {
        let server = IngestServer::bind(cfg(WireProtocol::IntUdp)).unwrap();
        let addr = server.local_addr();
        let reports: Vec<TelemetryReport> = (0..30).map(int_report).collect();
        let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
        // 3 reports per datagram.
        for chunk in reports.chunks(3) {
            let dgram = IntCollector::encode_stream(chunk);
            tx.send_to(&dgram, addr).unwrap();
        }
        let mut source = server.source();
        let got = drain_events(&mut source, reports.len());
        assert_eq!(got.len(), reports.len());
        let mut want_flows: Vec<FlowKey> = reports.iter().map(|r| r.flow).collect();
        let mut got_flows: Vec<FlowKey> = got.iter().map(|e| e.event.flow()).collect();
        want_flows.sort_unstable_by_key(|f| f.src_port);
        got_flows.sort_unstable_by_key(|f| f.src_port);
        assert_eq!(got_flows, want_flows);
        let stats = server.shutdown();
        assert_eq!(stats.events_decoded, 30);
        assert_eq!(stats.decode_errors, 0);
    }

    #[test]
    fn int_tcp_stream_reassembles_across_reads() {
        let server = IngestServer::bind(cfg(WireProtocol::IntTcp)).unwrap();
        let addr = server.local_addr();
        let reports: Vec<TelemetryReport> = (0..25).map(int_report).collect();
        let stream_bytes = IntCollector::encode_stream(&reports);
        let mut tx = std::net::TcpStream::connect(addr).unwrap();
        // Dribble in 11-byte writes to force cross-read reassembly.
        for chunk in stream_bytes.chunks(11) {
            tx.write_all(chunk).unwrap();
            tx.flush().unwrap();
        }
        drop(tx);
        let mut source = server.source();
        let got = drain_events(&mut source, reports.len());
        assert_eq!(got.len(), reports.len());
        let stats = server.shutdown();
        assert_eq!(stats.events_decoded, 25);
        assert_eq!(stats.decode_errors, 0);
        assert_eq!(stats.connections, 1);
    }

    #[test]
    fn malformed_datagrams_are_counted_never_fatal() {
        let server = IngestServer::bind(cfg(WireProtocol::IntUdp)).unwrap();
        let addr = server.local_addr();
        let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
        // Garbage, then a truncated report, then a good one.
        tx.send_to(&[0xde, 0xad, 0xbe, 0xef, 0x00], addr).unwrap();
        let good = IntCollector::encode_stream(&[int_report(7)]);
        tx.send_to(&good[..good.len() / 2], addr).unwrap();
        tx.send_to(&good, addr).unwrap();
        let mut source = server.source();
        let got = drain_events(&mut source, 1);
        assert_eq!(got.len(), 1);
        let stats = server.shutdown();
        assert_eq!(stats.events_decoded, 1);
        assert!(stats.decode_errors >= 2, "garbage + truncated both counted");
        assert_eq!(stats.datagrams, 3);
    }

    #[test]
    fn slow_consumer_accounting_is_exact() {
        // Tiny mailbox + DropOldest + no consumer while sending: most
        // events shed, and decoded == drained + dropped exactly.
        let server =
            IngestServer::bind(cfg(WireProtocol::IntUdp).mailbox_batches(2).batch_events(4))
                .unwrap();
        let addr = server.local_addr();
        let mut source = server.source();
        let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
        for i in 0..200u32 {
            let dgram = IntCollector::encode_stream(&[int_report(i)]);
            tx.send_to(&dgram, addr).unwrap();
        }
        // Give listeners time to drain the socket and shed.
        std::thread::sleep(Duration::from_millis(300));
        let stats = server.shutdown();
        assert!(stats.events_dropped > 0, "tiny mailbox must shed");
        // Drain what survived; every decoded event is now accounted for.
        let drained = drain_events(&mut source, usize::MAX).len() as u64;
        assert_eq!(drained + stats.events_dropped, stats.events_decoded);
    }

    #[test]
    fn listener_group_binds_n_sockets_on_one_port() {
        let server = IngestServer::bind(cfg(WireProtocol::SflowUdp).listeners(4)).unwrap();
        assert_eq!(server.mailboxes().len(), 4);
        let addr = server.local_addr();
        // Many source ports spread across the group; all must arrive.
        let samples = [sflow_sample(1)];
        let grams = batch_into_datagrams(Ipv4Addr::new(9, 9, 9, 9), &samples, 8);
        for _ in 0..32 {
            let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
            tx.send_to(&grams[0], addr).unwrap();
        }
        let mut source = server.source();
        let got = drain_events(&mut source, 32);
        assert_eq!(got.len(), 32);
        server.shutdown();
    }

    #[test]
    fn shutdown_is_prompt_and_idempotent_under_drop() {
        let server = IngestServer::bind(cfg(WireProtocol::IntTcp).listeners(2)).unwrap();
        let t0 = std::time::Instant::now();
        drop(server); // Drop path: stop + join + close.
        assert!(t0.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn pint_udp_roundtrip_annotates_queue_state() {
        let server = IngestServer::bind(cfg(WireProtocol::PintUdp)).unwrap();
        let addr = server.local_addr();
        // Digest a synthetic packet stream: every event for one flow so
        // the listener-side sketch sees queue digests before latency
        // digests and can annotate the latter.
        let enc = amlight_pint::PintEncoder::new(8);
        let reports: Vec<amlight_pint::PintReport> = (0..40u32)
            .map(|i| {
                let r = int_report(1); // one flow, consecutive export times
                enc.encode(
                    r.flow,
                    r.ip_len,
                    r.tcp_flags,
                    u64::from(i) * 100,
                    &[(12, 500)],
                )
            })
            .collect();
        let grams = amlight_pint::batch_into_datagrams(Ipv4Addr::new(9, 9, 9, 9), &reports, 8);
        let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
        for g in &grams {
            tx.send_to(g, addr).unwrap();
        }
        let mut source = server.source();
        let got = drain_events(&mut source, reports.len());
        assert_eq!(got.len(), reports.len());
        for e in &got {
            assert_eq!(e.event.flow(), int_report(1).flow);
        }
        let stats = server.shutdown();
        assert_eq!(stats.events_decoded, 40);
        assert_eq!(stats.decode_errors, 0);
        assert_eq!(stats.datagrams as usize, grams.len());
    }

    #[test]
    fn pint_udp_garbage_is_counted_never_fatal() {
        let server = IngestServer::bind(cfg(WireProtocol::PintUdp)).unwrap();
        let addr = server.local_addr();
        let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
        tx.send_to(&[0x91, 0x4f, 0x00], addr).unwrap(); // truncated header
        let r = int_report(3);
        let enc = amlight_pint::PintEncoder::new(8);
        let good = amlight_pint::batch_into_datagrams(
            Ipv4Addr::new(9, 9, 9, 9),
            &[enc.encode(r.flow, r.ip_len, r.tcp_flags, r.export_ns, &[(3, 700)])],
            4,
        );
        tx.send_to(&good[0], addr).unwrap();
        let mut source = server.source();
        let got = drain_events(&mut source, 1);
        assert_eq!(got.len(), 1);
        let stats = server.shutdown();
        assert_eq!(stats.events_decoded, 1);
        assert!(stats.decode_errors >= 1, "garbage datagram counted");
    }

    #[test]
    fn wire_protocol_parse_roundtrips() {
        for p in [
            WireProtocol::SflowUdp,
            WireProtocol::IntUdp,
            WireProtocol::IntTcp,
            WireProtocol::PintUdp,
        ] {
            assert_eq!(WireProtocol::parse(p.name()), Some(p));
        }
        assert_eq!(WireProtocol::parse("netconf"), None);
    }
}
