//! Experiment harness: everything needed to regenerate the paper's
//! tables and figures.
//!
//! Each `repro_*` binary in `src/bin/` is a thin wrapper over a function
//! here; Criterion microbenches live in `benches/`. See DESIGN.md §4 for
//! the experiment index and EXPERIMENTS.md for recorded results.

// Compiler-enforced arm of amlint rule R5: unsafe stays in shims/.
#![forbid(unsafe_code)]

pub mod capture;
pub mod figures;
pub mod tables;
pub mod util;

pub use capture::{ExperimentCapture, ExperimentConfig};
pub use figures::{fig3_4_confusions, fig5_timeline, fig7_distributions};
pub use tables::{
    table1_schedule, table2_features, table3_comparison, table4_zero_day, table5_importance,
    table6_automated, MetricsRow, Table6Row,
};
