//! Small shared helpers for the `repro_*` binaries.

use serde::Serialize;
use std::path::{Path, PathBuf};

/// `--fast` trims workload sizes and training budgets for smoke runs.
pub fn flag_fast() -> bool {
    std::env::args().any(|a| a == "--fast")
}

/// `--seed N` overrides the default experiment seed.
pub fn arg_seed(default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Directory JSON results are written to (`results/` at the repo root,
/// overridable with `AMLIGHT_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    std::env::var("AMLIGHT_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Serialize `value` to `results/<name>.json`, creating the directory.
/// Failures are reported, not fatal — the printed table is the primary
/// artifact.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warn: cannot create {}: {e}", dir.display());
        return;
    }
    let path: &Path = &dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("warn: cannot write {}: {e}", path.display());
            } else {
                eprintln!("(wrote {})", path.display());
            }
        }
        Err(e) => eprintln!("warn: cannot serialize {name}: {e}"),
    }
}

/// Print a section header.
pub fn banner(title: &str) {
    println!("\n== {title} ==");
}
