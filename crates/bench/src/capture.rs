//! Building the experiment capture: the paper's June 6–11 data,
//! compressed into a seeded synthetic equivalent.
//!
//! One workload generation pass produces *both* telemetry views:
//!
//! * INT — every delivered packet yields a telemetry report (via the
//!   dataplane simulator + instrumenter);
//! * sFlow — the same packet stream is sampled 1-in-4096 at the switch.
//!
//! That pairing is the paper's §IV-B experimental design.

use amlight_core::testbed::{Testbed, TestbedConfig};
use amlight_int::TelemetryReport;
use amlight_net::{Trace, TrafficClass};
use amlight_sflow::{FlowSample, SflowAgent};
use amlight_traffic::{EpisodeSchedule, TrafficMix, TrafficMixConfig};
use serde::{Deserialize, Serialize};

/// Capture parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Seconds per compressed "day" (the paper's June 10 / June 11).
    pub day_len_s: u64,
    pub seed: u64,
    /// sFlow sampling denominator (production: 4096). The compressed
    /// capture has ~10⁵ packets instead of the paper's ~10⁸, so the
    /// default here scales the rate down to keep the *expected number of
    /// samples per episode* comparable.
    pub sflow_period: u32,
    /// Testbed shape the capture runs through. The congestion ablation
    /// narrows the link so queue occupancy becomes informative.
    pub testbed: TestbedConfig,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            day_len_s: 20,
            seed: 0xA317,
            sflow_period: 64,
            testbed: TestbedConfig::default(),
        }
    }
}

impl ExperimentConfig {
    /// Tiny capture for CI/tests.
    pub fn smoke() -> Self {
        Self {
            day_len_s: 3,
            seed: 7,
            sflow_period: 16,
            ..Default::default()
        }
    }

    /// The congestion ablation: a 20 Mb/s bottleneck toward the server,
    /// so flood episodes genuinely build queue depth (the regime the
    /// paper's §V says its 100 Gb/s testbed never reached).
    pub fn congested() -> Self {
        use amlight_sim::queue::QueueConfig;
        use amlight_sim::topology::LinkParams;
        Self {
            testbed: TestbedConfig {
                hops: 1,
                link: LinkParams {
                    delay_ns: 2_000,
                    queue: QueueConfig {
                        rate_bps: 20_000_000,
                        capacity_pkts: 512,
                    },
                },
            },
            ..Default::default()
        }
    }
}

/// Labeled INT telemetry: (report, ground truth) pairs.
pub type LabeledReports = Vec<(TelemetryReport, TrafficClass)>;
/// Labeled sFlow samples: (sample, ground truth) pairs.
pub type LabeledSamples = Vec<(FlowSample, TrafficClass)>;

/// The generated capture: both telemetry views plus ground truth.
pub struct ExperimentCapture {
    pub config: ExperimentConfig,
    pub schedule: EpisodeSchedule,
    /// INT view: (report, truth), export-time ordered.
    pub int: Vec<(TelemetryReport, TrafficClass)>,
    /// sFlow view: (sample, truth), observation-time ordered.
    pub sflow: Vec<(FlowSample, TrafficClass)>,
    /// Underlying packet counts per class (for coverage reporting).
    pub trace_packets: usize,
    pub trace_flows: usize,
}

impl ExperimentCapture {
    /// Generate the full two-day capture.
    pub fn generate(config: ExperimentConfig) -> Self {
        let mix = TrafficMix::new(TrafficMixConfig::paper_capture(
            config.day_len_s,
            config.seed,
        ));
        let schedule = mix.schedule().clone();
        let trace = mix.generate();
        Self::from_trace(config, schedule, &trace)
    }

    fn from_trace(config: ExperimentConfig, schedule: EpisodeSchedule, trace: &Trace) -> Self {
        let stats = trace.stats();
        let lab = Testbed::new(config.testbed);
        let int = lab.run_labeled(trace);

        let mut agent = SflowAgent::new(
            amlight_sflow::SamplingMode::RandomSkip {
                period: config.sflow_period,
            },
            config.seed ^ 0x5f10,
        );
        let sflow = agent.sample_stream(trace.iter().map(|r| (r.ts_ns, &r.packet, r.class)));

        Self {
            config,
            schedule,
            int,
            sflow,
            trace_packets: stats.packets,
            trace_flows: stats.flows,
        }
    }

    /// Split the INT view at the day boundary (paper Table IV: train on
    /// day 0, test on day 1 where SlowLoris is unseen).
    pub fn int_split_by_day(&self) -> (LabeledReports, LabeledReports) {
        let boundary = self.schedule.day_boundary_ns(0);
        let train = self
            .int
            .iter()
            .filter(|(r, _)| r.export_ns < boundary)
            .cloned()
            .collect();
        let test = self
            .int
            .iter()
            .filter(|(r, _)| r.export_ns >= boundary)
            .cloned()
            .collect();
        (train, test)
    }

    /// Same split for the sFlow view.
    pub fn sflow_split_by_day(&self) -> (LabeledSamples, LabeledSamples) {
        let boundary = self.schedule.day_boundary_ns(0);
        let train = self
            .sflow
            .iter()
            .filter(|(s, _)| s.observed_ns < boundary)
            .cloned()
            .collect();
        let test = self
            .sflow
            .iter()
            .filter(|(s, _)| s.observed_ns >= boundary)
            .cloned()
            .collect();
        (train, test)
    }

    /// Per-class INT report counts.
    pub fn int_class_counts(&self) -> Vec<(TrafficClass, usize)> {
        TrafficClass::ALL
            .into_iter()
            .map(|c| (c, self.int.iter().filter(|(_, k)| *k == c).count()))
            .collect()
    }

    /// Per-class sFlow sample counts — the sampling-coverage story of
    /// Fig. 5 (SlowLoris often has *zero* samples).
    pub fn sflow_class_counts(&self) -> Vec<(TrafficClass, usize)> {
        TrafficClass::ALL
            .into_iter()
            .map(|c| (c, self.sflow.iter().filter(|(_, k)| *k == c).count()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_capture_has_both_views() {
        let cap = ExperimentCapture::generate(ExperimentConfig::smoke());
        assert!(!cap.int.is_empty());
        assert!(!cap.sflow.is_empty());
        // INT sees every delivered packet; sFlow a small fraction.
        assert!(cap.sflow.len() * 4 < cap.int.len());
        assert!(cap.trace_packets >= cap.int.len());
    }

    #[test]
    fn day_split_separates_slowloris() {
        let cap = ExperimentCapture::generate(ExperimentConfig::smoke());
        let (train, test) = cap.int_split_by_day();
        assert!(train.iter().all(|(_, c)| *c != TrafficClass::SlowLoris));
        assert!(test.iter().any(|(_, c)| *c == TrafficClass::SlowLoris));
        assert_eq!(train.len() + test.len(), cap.int.len());
    }

    #[test]
    fn class_counts_cover_all_classes_in_int() {
        let cap = ExperimentCapture::generate(ExperimentConfig::smoke());
        for (class, n) in cap.int_class_counts() {
            assert!(n > 0, "INT missing {class:?}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = ExperimentCapture::generate(ExperimentConfig::smoke());
        let b = ExperimentCapture::generate(ExperimentConfig::smoke());
        assert_eq!(a.int.len(), b.int.len());
        assert_eq!(a.sflow.len(), b.sflow.len());
    }
}
