//! Hot-path throughput: single-row vs columnar batched inference.
//!
//! Measures rows/second for each ensemble member and for the full
//! scale-then-vote ensemble decision, through both the per-row
//! `predict_proba_one` loop and the batched `predict_proba_batch` /
//! `votes_batch` path, at several batch sizes. Writes
//! `results/hotpath.json` with one record per (model, path, batch).
//!
//! Usage: `bench_hotpath [--fast] [--seed N]`

use amlight_bench::util::{arg_seed, banner, flag_fast, write_json};
use amlight_core::testbed::{Testbed, TestbedConfig};
use amlight_core::trainer::{dataset_from_events, train_bundle, TrainerConfig, VoteScratch};
use amlight_features::FeatureSet;
use amlight_ml::model::BinaryClassifier;
use amlight_ml::{
    Dataset, GaussianNb, Knn, Mlp, MlpConfig, RandomForest, RandomForestConfig, StandardScaler,
};
use amlight_net::TrafficClass;
use amlight_traffic::ReplayLibrary;
use serde::Serialize;
use std::time::Instant;

/// Counting allocator, so the batched paths can report allocations per
/// row alongside throughput.
#[global_allocator]
static ALLOC: stats_alloc::StatsAlloc = stats_alloc::StatsAlloc;

#[derive(Serialize)]
struct HotpathRecord {
    model: String,
    /// `"single"` (per-row loop) or `"batched"` (columnar).
    path: String,
    batch: usize,
    rows_per_s: f64,
    ns_per_row: f64,
}

#[derive(Serialize)]
struct HotpathReport {
    seed: u64,
    n_features: usize,
    records: Vec<HotpathRecord>,
    /// batched ÷ single rows/s per (model, batch), keyed `model@batch`.
    speedups: Vec<(String, f64)>,
    /// Steady-state allocations per row on the batched ensemble path,
    /// keyed `ensemble@batch`. Warm scratch should hold this at zero.
    allocs_per_row: Vec<(String, f64)>,
}

/// Time `work` (which processes `rows_per_call` rows per call) long
/// enough to be stable; returns rows/second. Warm-up runs until ~30 ms
/// have elapsed so the core reaches steady clock before sampling; the
/// best of five samples is kept, which rejects scheduler/frequency
/// noise on a shared container.
fn measure(rows_per_call: usize, reps: usize, mut work: impl FnMut()) -> f64 {
    let warm = Instant::now();
    while warm.elapsed().as_millis() < 30 {
        work();
    }
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..reps {
            work();
        }
        let secs = start.elapsed().as_secs_f64();
        best = best.min(secs / reps as f64);
    }
    rows_per_call as f64 / best
}

fn block(d: &Dataset, batch: usize) -> Vec<f64> {
    let mut rows = Vec::with_capacity(batch * d.n_features());
    for i in 0..batch {
        rows.extend_from_slice(d.row(i % d.len()));
    }
    rows
}

fn main() {
    let fast = flag_fast();
    let seed = arg_seed(0xB10C);
    let batches: &[usize] = if fast {
        &[1024]
    } else {
        &[64, 256, 1024, 4096]
    };
    let reps = if fast { 3 } else { 10 };

    let lab = Testbed::new(TestbedConfig::default());
    let library = ReplayLibrary::build(if fast { 400 } else { 900 }, seed | 1);
    let mut training = Vec::new();
    for class in TrafficClass::ALL {
        if class != TrafficClass::SlowLoris {
            training.extend(lab.replay_class(&library, class));
        }
    }
    let raw = dataset_from_events(&training, FeatureSet::full());
    let mut scaled = raw.clone();
    let _ = StandardScaler::fit_transform(&mut scaled);
    let nf = scaled.n_features();

    let bundle = train_bundle(
        &raw,
        FeatureSet::full(),
        &TrainerConfig {
            mlp: MlpConfig {
                epochs: if fast { 4 } else { 8 },
                batch_size: 256,
                ..MlpConfig::paper_mlp()
            },
            ..Default::default()
        },
    );

    let models: Vec<(&str, Box<dyn BinaryClassifier>)> = vec![
        (
            "rf",
            Box::new(RandomForest::fit(&scaled, &RandomForestConfig::fast(), 1)),
        ),
        ("gnb", Box::new(GaussianNb::fit(&scaled))),
        ("knn", Box::new(Knn::fit_subsampled(&scaled, 5, 0.05, 1))),
        (
            "mlp",
            Box::new(Mlp::fit(
                &scaled,
                &MlpConfig {
                    epochs: 3,
                    ..MlpConfig::paper_nn()
                },
                1,
            )),
        ),
    ];

    banner("Hot-path throughput: single-row vs batched inference");
    println!(
        "{:<10} {:>6}  {:>14} {:>14} {:>9}",
        "model", "batch", "single row/s", "batched row/s", "speedup"
    );

    let mut records = Vec::new();
    let mut speedups = Vec::new();
    let mut allocs_per_row = Vec::new();
    for &batch in batches {
        let rows = block(&scaled, batch);
        for (name, model) in &models {
            let mut out = vec![0.0f64; batch];
            let single = measure(batch, reps, || {
                for (row, o) in rows.chunks_exact(nf).zip(out.iter_mut()) {
                    *o = model.predict_proba_one(std::hint::black_box(row));
                }
            });
            let batched = measure(batch, reps, || {
                model.predict_proba_batch(std::hint::black_box(&rows), nf, &mut out);
            });
            report_pair(name, batch, single, batched, &mut records, &mut speedups);
        }

        // Full ensemble decision over raw (unscaled) rows, as the
        // pipeline feeds it.
        let raw_rows = block(&raw, batch);
        let mut decisions = vec![false; batch];
        let single = measure(batch, reps, || {
            for (row, o) in raw_rows.chunks_exact(nf).zip(decisions.iter_mut()) {
                *o = bundle.ensemble_vote(std::hint::black_box(row));
            }
        });
        let mut scratch = VoteScratch::default();
        let mut out = Vec::with_capacity(batch);
        let batched = measure(batch, reps, || {
            bundle.votes_batch(std::hint::black_box(&raw_rows), nf, &mut scratch, &mut out);
        });
        report_pair(
            "ensemble",
            batch,
            single,
            batched,
            &mut records,
            &mut speedups,
        );

        // Steady-state allocation count on the warm batched path (the
        // measure() warmup above already grew scratch to high water).
        let region = stats_alloc::Region::new();
        bundle.votes_batch(&raw_rows, nf, &mut scratch, &mut out);
        let per_row = region.change().acquisitions() as f64 / batch as f64;
        println!("ensemble@{batch}: {per_row:.3} allocs/row steady state");
        allocs_per_row.push((format!("ensemble@{batch}"), per_row));
    }

    write_json(
        "hotpath",
        &HotpathReport {
            seed,
            n_features: nf,
            records,
            speedups,
            allocs_per_row,
        },
    );
}

fn report_pair(
    model: &str,
    batch: usize,
    single: f64,
    batched: f64,
    records: &mut Vec<HotpathRecord>,
    speedups: &mut Vec<(String, f64)>,
) {
    let speedup = batched / single;
    println!("{model:<10} {batch:>6}  {single:>14.0} {batched:>14.0} {speedup:>8.2}x");
    for (path, rate) in [("single", single), ("batched", batched)] {
        records.push(HotpathRecord {
            model: model.to_string(),
            path: path.to_string(),
            batch,
            rows_per_s: rate,
            ns_per_row: 1e9 / rate,
        });
    }
    speedups.push((format!("{model}@{batch}"), speedup));
}
