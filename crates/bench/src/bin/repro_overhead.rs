//! Telemetry-budget study: detection accuracy vs INT overhead.
//!
//! The paper's future work points at PINT (its ref \[30\]) and spatial
//! sampling (its ref \[31\]) to cut INT's per-packet byte cost before
//! production deployment. This binary measures the actual trade: train
//! and test the Random Forest on telemetry thinned to a fraction of the
//! full INT byte budget, and report accuracy vs bytes.
//!
//! Usage: `repro_overhead [--fast] [--seed N]`

use amlight_bench::util::{arg_seed, banner, flag_fast, write_json};
use amlight_core::testbed::{Testbed, TestbedConfig};
use amlight_core::trainer::dataset_from_events;
use amlight_features::FeatureSet;
use amlight_int::{BudgetedTelemetry, TelemetryBudget};
use amlight_ml::model::BinaryClassifier;
use amlight_ml::{RandomForest, RandomForestConfig, StandardScaler};
use amlight_traffic::{TrafficMix, TrafficMixConfig};
use serde_json::json;

fn main() {
    let fast = flag_fast();
    let seed = arg_seed(0xA317);
    let day_len = if fast { 3 } else { 10 };

    // One capture through a 4-hop INT chain (multi-hop so spatial
    // sampling has something to drop).
    let lab = Testbed::new(TestbedConfig {
        hops: 4,
        ..Default::default()
    });
    let mix = TrafficMix::new(TrafficMixConfig::paper_capture(day_len, seed));
    let labeled = lab.run_labeled(&mix.generate());
    eprintln!(
        "capture: {} telemetry reports over a 4-hop chain",
        labeled.len()
    );

    let budgets: Vec<(&str, TelemetryBudget)> = vec![
        ("full INT", TelemetryBudget::Full),
        ("PINT p=0.50", TelemetryBudget::Probabilistic { p: 0.5 }),
        ("PINT p=0.25", TelemetryBudget::Probabilistic { p: 0.25 }),
        ("PINT p=0.10", TelemetryBudget::Probabilistic { p: 0.1 }),
        ("PINT p=0.05", TelemetryBudget::Probabilistic { p: 0.05 }),
        ("spatial stride=2", TelemetryBudget::Spatial { stride: 2 }),
        ("spatial stride=3", TelemetryBudget::Spatial { stride: 3 }),
    ];

    banner("Telemetry budget vs detection accuracy (RF, 90:10 split)");
    println!(
        "{:<18} {:>12} {:>9} {:>10} {:>10} {:>8}",
        "budget", "bytes", "of full", "coverage", "accuracy", "F1"
    );
    let mut rows = Vec::new();
    let forest_cfg = if fast {
        RandomForestConfig {
            n_trees: 10,
            ..RandomForestConfig::fast()
        }
    } else {
        RandomForestConfig::fast()
    };
    for (name, budget) in budgets {
        let mut reducer = BudgetedTelemetry::new(budget, seed ^ 0xB0);
        let thinned = reducer.apply_stream(&labeled);
        let stats = reducer.stats();
        // Fraction of reports that still carry any per-hop metadata.
        let coverage = thinned.iter().filter(|(r, _)| !r.hops.is_empty()).count() as f64
            / thinned.len().max(1) as f64;

        let raw = dataset_from_events(&thinned, FeatureSet::full());
        let (train_raw, test_raw) = raw.train_test_split(0.9, seed ^ 0x90);
        let mut train = train_raw.clone();
        let scaler = StandardScaler::fit_transform(&mut train);
        let mut test = test_raw;
        scaler.transform(&mut test);
        let rf = RandomForest::fit(&train, &forest_cfg, seed);
        let m = rf.evaluate(&test).metrics();

        println!(
            "{:<18} {:>12} {:>8.1}% {:>9.1}% {:>10.4} {:>8.4}",
            name,
            stats.carried_bytes,
            stats.cost_fraction() * 100.0,
            coverage * 100.0,
            m.accuracy,
            m.f1
        );
        rows.push(json!({
            "budget": name,
            "carried_bytes": stats.carried_bytes,
            "cost_fraction": stats.cost_fraction(),
            "metadata_coverage": coverage,
            "accuracy": m.accuracy,
            "f1": m.f1,
        }));
    }
    println!(
        "\nThe headline: accuracy is nearly flat down to a 5% byte budget.\n\
         Every packet still produces a (header-only) report, so flow\n\
         accounting stays exact and the size/count features that dominate\n\
         detection survive. INT's advantage over sFlow for this task is\n\
         PER-PACKET COVERAGE, not per-packet telemetry depth — which is\n\
         why PINT-style thinning is the right production lever (paper §V\n\
         future work) while 1-in-4096 sFlow sampling is not."
    );
    write_json("overhead_tradeoff", &rows);
}
