//! Reproduce paper Fig. 5: ground truth vs RF predictions over time for
//! INT and sFlow. The phenomenon to look for: sFlow has NO samples (and
//! so no predictions) inside the SlowLoris episodes.
//!
//! Usage: `repro_fig5 [--fast] [--seed N]`

use amlight_bench::capture::{ExperimentCapture, ExperimentConfig};
use amlight_bench::figures::{fig5_timeline, render_fig5_ascii};
use amlight_bench::util::{arg_seed, banner, flag_fast, write_json};

fn main() {
    let fast = flag_fast();
    let mut cfg = if fast {
        ExperimentConfig::smoke()
    } else {
        ExperimentConfig::default()
    };
    cfg.seed = arg_seed(cfg.seed);
    let cap = ExperimentCapture::generate(cfg);
    let buckets = if fast { 80 } else { 160 };
    let points = fig5_timeline(&cap, buckets, fast);

    banner("Fig. 5 — truth vs RF predictions over time (█ = attack, · = no data)");
    print!("{}", render_fig5_ascii(&points));

    let missed: Vec<f64> = points
        .iter()
        .filter(|p| p.truth && p.sflow_samples == 0)
        .map(|p| p.t_s)
        .collect();
    println!(
        "\nattack-active buckets with ZERO sFlow samples: {} (at t = {:?} s)",
        missed.len(),
        missed
    );
    write_json("fig5", &points);
}
