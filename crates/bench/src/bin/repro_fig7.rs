//! Reproduce paper Figs. 7a/7b: distribution of predictions across the
//! replay for benign and SlowLoris flows — misclassifications cluster at
//! flow starts.
//!
//! Usage: `repro_fig7 [--fast] [--seed N]`

use amlight_bench::figures::fig7_distributions;
use amlight_bench::tables::table6_automated;
use amlight_bench::util::{arg_seed, banner, flag_fast, write_json};
use amlight_core::pipeline::PipelineConfig;
use amlight_net::TrafficClass;

fn main() {
    let fast = flag_fast();
    let seed = arg_seed(0xA317);
    let packets = if fast { 300 } else { 2500 };
    let (_, reports) = table6_automated(packets, PipelineConfig::paper_pace(), fast, seed);

    for (idx, class, label) in [
        (
            0usize,
            TrafficClass::Benign,
            "Fig. 7a — benign replay (0 = correct)",
        ),
        (
            4usize,
            TrafficClass::SlowLoris,
            "Fig. 7b — SlowLoris replay (1 = correct)",
        ),
    ] {
        banner(label);
        let series = fig7_distributions(&reports[idx], class);
        let total = series.len();
        let wrong: Vec<u64> = series
            .iter()
            .filter(|p| p.correct == Some(false))
            .map(|p| p.index)
            .collect();
        println!("predictions: {total}, misclassified: {}", wrong.len());
        if !wrong.is_empty() {
            let first_half = wrong.iter().filter(|&&i| i < total as u64 / 2).count();
            println!(
                "misclassification positions: {:?}{}",
                &wrong[..wrong.len().min(20)],
                if wrong.len() > 20 { " …" } else { "" }
            );
            println!(
                "fraction of errors in first half of replay: {:.2}",
                first_half as f64 / wrong.len() as f64
            );
        }
        write_json(
            &format!("fig7_{}", class.name().replace(' ', "_").to_lowercase()),
            &series,
        );
    }
}
