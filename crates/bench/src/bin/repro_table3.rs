//! Reproduce paper Table III: ML performance, INT vs sFlow, 90:10 split.
//!
//! Usage: `repro_table3 [--fast] [--seed N]`

use amlight_bench::capture::{ExperimentCapture, ExperimentConfig};
use amlight_bench::tables::table3_comparison;
use amlight_bench::util::{arg_seed, banner, flag_fast, write_json};

fn main() {
    let fast = flag_fast();
    let mut cfg = if fast {
        ExperimentConfig::smoke()
    } else {
        ExperimentConfig::default()
    };
    cfg.seed = arg_seed(cfg.seed);

    eprintln!(
        "generating capture (day_len={}s, seed={})...",
        cfg.day_len_s, cfg.seed
    );
    let cap = ExperimentCapture::generate(cfg);
    eprintln!(
        "capture: {} packets, {} flows → INT reports {} / sFlow samples {}",
        cap.trace_packets,
        cap.trace_flows,
        cap.int.len(),
        cap.sflow.len()
    );

    banner("Table III — ML model performance, INT vs sFlow (90:10 split)");
    println!(
        "{:<6} {:<5} {:<8} {:<8} {:<9} {:<8}",
        "Data", "Model", "Acc", "Recall", "Precision", "F1"
    );
    let rows = table3_comparison(&cap, fast);
    for r in &rows {
        println!("{}", r.render());
    }
    write_json("table3", &rows);
}
