//! Reproduce paper Table IV: zero-day evaluation — train on day 0, test
//! on day 1 (SlowLoris unseen in training).
//!
//! Usage: `repro_table4 [--fast] [--seed N]`

use amlight_bench::capture::{ExperimentCapture, ExperimentConfig};
use amlight_bench::tables::table4_zero_day;
use amlight_bench::util::{arg_seed, banner, flag_fast, write_json};

fn main() {
    let fast = flag_fast();
    let mut cfg = if fast {
        ExperimentConfig::smoke()
    } else {
        ExperimentConfig::default()
    };
    cfg.seed = arg_seed(cfg.seed);
    let cap = ExperimentCapture::generate(cfg);

    banner("Table IV — zero-day (SlowLoris unseen) evaluation");
    println!(
        "{:<6} {:<5} {:<8} {:<8} {:<9} {:<8}",
        "Data", "Model", "Acc", "Recall", "Precision", "F1"
    );
    let rows = table4_zero_day(&cap, fast);
    for r in &rows {
        println!("{}", r.render());
    }
    println!("\nsFlow sample counts per class (sampling loss in the test day):");
    for (class, n) in cap.sflow_class_counts() {
        println!("  {:<10} {}", class.name(), n);
    }
    write_json("table4", &rows);
}
