//! Reproduce paper Table V: top-5 most important features per model,
//! INT data.
//!
//! Usage: `repro_table5 [--fast] [--seed N]`

use amlight_bench::capture::{ExperimentCapture, ExperimentConfig};
use amlight_bench::tables::table5_importance;
use amlight_bench::util::{arg_seed, banner, flag_fast, write_json};

fn main() {
    let fast = flag_fast();
    let mut cfg = if fast {
        ExperimentConfig::smoke()
    } else {
        ExperimentConfig::default()
    };
    cfg.seed = arg_seed(cfg.seed);
    let cap = ExperimentCapture::generate(cfg);

    banner("Table V — five most important features per model (INT data)");
    let rows = table5_importance(&cap, fast);
    for r in &rows {
        println!("\n{}:", r.model);
        for (name, score) in &r.top {
            println!("  {:<26} {:.4}", name, score);
        }
    }
    write_json("table5", &rows);
}
