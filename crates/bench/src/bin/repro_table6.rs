//! Reproduce paper Table VI: the automated detection mechanism on the
//! testbed — per-class accuracy and prediction latency.
//!
//! Usage: `repro_table6 [--fast] [--seed N] [--rust-pace]`
//!
//! Default pace models the paper's Python/JS prototype (`paper_pace`) so
//! the latency column lands on the paper's scale; `--rust-pace` reports
//! what this Rust implementation would cost instead.

use amlight_bench::tables::table6_automated;
use amlight_bench::util::{arg_seed, banner, flag_fast, write_json};
use amlight_core::pipeline::PipelineConfig;

fn main() {
    let fast = flag_fast();
    let rust_pace = std::env::args().any(|a| a == "--rust-pace");
    let seed = arg_seed(0xA317);
    let packets = if fast { 300 } else { 2500 };
    let pace = if rust_pace {
        PipelineConfig::rust_pace()
    } else {
        PipelineConfig::paper_pace()
    };

    banner(&format!(
        "Table VI — automated DDoS detection, {} packets per flow type ({} pace)",
        packets,
        if rust_pace { "Rust" } else { "paper" }
    ));
    let (rows, _reports) = table6_automated(packets, pace, fast, seed);
    println!(
        "{:<10} {:<8} {:<15} {:>12} {:>12}",
        "Type", "Acc", "Misc/Predicted", "AvgPred(s)", "MaxPred(s)"
    );
    for r in &rows {
        println!("{}", r.render());
    }
    println!("\nNote: benign row reports p99 instead of max, as in the paper.");
    write_json("table6", &rows);
}
