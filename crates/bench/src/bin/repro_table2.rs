//! Reproduce paper Table II: features available from INT vs sFlow.

use amlight_bench::tables::table2_features;
use amlight_bench::util::{banner, write_json};

fn main() {
    banner("Table II — features used to detect DDoS attacks");
    let rows = table2_features();
    for r in &rows {
        println!("{r}");
    }
    println!("\nNote: Hop Latency exists in INT but is excluded from the models,");
    println!("      as in the paper (Table II note / §IV-B.2).");
    write_json("table2", &rows);
}
