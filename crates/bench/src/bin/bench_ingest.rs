//! Loopback throughput of the socket ingest server — the network front
//! end added for live operation — against a one-datagram-per-syscall
//! baseline.
//!
//! Three phases, all over real loopback UDP sockets carrying encoded
//! INT report datagrams:
//!
//! 1. **Baseline**: the shape a socket feed had before this subsystem
//!    existed — a single listener draining its socket with plain `recv`
//!    (one syscall per datagram), an allocating decode, and one bounded
//!    `ChannelSource` send per event, drained event-by-event on the
//!    other side. This is the classic collector shape the server
//!    replaces.
//! 2. **Server sweep**: [`IngestServer`] at 1/2/4/8 `SO_REUSEPORT`
//!    listeners, each draining in `recvmmsg` batches. A consumer thread
//!    drains the mailboxes at batch granularity (no per-event boxing),
//!    a sender blasts pre-encoded datagrams from 16 source ports so the
//!    kernel's flow hash exercises the whole group. During the
//!    4-listener window a [`stats_alloc::Region`] verifies the steady
//!    state allocates nothing anywhere in the process.
//! 3. **Slow consumer**: a tiny mailbox with nobody draining it while
//!    the sender blasts, then an exact audit — every decoded event must
//!    be accounted for as drained-after-the-fact or counted dropped.
//!
//! Writes `BENCH_ingest.json` at the repo root. `--check` turns the
//! acceptance gates into process failures: ≥2× the baseline
//! datagrams/s at 4 listeners, zero steady-state allocations, and
//! exact slow-consumer accounting.
//!
//! Note the host: this container pins everything to one core, so the
//! sweep does *not* measure parallel speedup — batching is what beats
//! the baseline (fewer syscalls per datagram for sender and receiver
//! both). `host_cpus` is recorded in the JSON so multi-core runs can be
//! told apart.
//!
//! Usage: `bench_ingest [--fast] [--seed N] [--check]`

use amlight_bench::util::{arg_seed, banner, flag_fast};
use amlight_core::{ChannelSource, EventMailbox, EventSource, LabeledEvent, SourcePoll};
use amlight_ingest::{IngestServer, IngestStats, ListenerConfig, WireProtocol};
use amlight_int::{HopMetadata, InstructionSet, IntCollector, TelemetryReport};
use amlight_net::{FlowKey, Protocol};
use serde::Serialize;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Counting allocator for the zero-steady-state-allocation gate.
#[global_allocator]
static ALLOC: stats_alloc::StatsAlloc = stats_alloc::StatsAlloc;

/// Reports per datagram — a realistic sink export batch that keeps
/// datagrams well under [`netio::MAX_DATAGRAM`].
const REPORTS_PER_DATAGRAM: usize = 8;
/// Distinct sender sockets; each is a distinct source port, so the
/// kernel's reuseport flow hash spreads them across the group.
const SENDER_SOCKETS: usize = 16;

#[derive(Serialize, Clone, Copy)]
struct ThroughputRecord {
    listeners: usize,
    batched: bool,
    datagrams_sent: u64,
    datagrams_received: u64,
    events_decoded: u64,
    events_drained: u64,
    decode_errors: u64,
    events_dropped: u64,
    window_ms: f64,
    datagrams_per_s: f64,
    events_per_s: f64,
}

#[derive(Serialize)]
struct AllocRecord {
    /// Datagrams moved during the measured region.
    datagrams: u64,
    acquisitions: u64,
    allocs_per_datagram: f64,
}

#[derive(Serialize)]
struct SlowConsumerRecord {
    events_decoded: u64,
    events_drained: u64,
    events_dropped: u64,
    /// drained + dropped == decoded, exactly.
    accounted: bool,
}

#[derive(Serialize)]
struct IngestBenchReport {
    seed: u64,
    fast: bool,
    host_cpus: usize,
    baseline: ThroughputRecord,
    sweep: Vec<ThroughputRecord>,
    /// 4-listener batched ÷ single-listener unbatched datagrams/s.
    speedup_vs_baseline_at_4: f64,
    alloc: AllocRecord,
    slow_consumer: SlowConsumerRecord,
}

fn report(tag: u32) -> TelemetryReport {
    TelemetryReport {
        flow: FlowKey::new(
            std::net::Ipv4Addr::new(10, (tag >> 8) as u8, tag as u8, 1),
            std::net::Ipv4Addr::new(10, 99, 99, 2),
            (1024 + (tag % 32768)) as u16,
            80,
            Protocol::Tcp,
        ),
        ip_len: 120,
        tcp_flags: Some(0x02),
        instructions: InstructionSet::amlight(),
        hops: vec![HopMetadata {
            switch_id: tag % 8,
            ingress_tstamp: tag,
            egress_tstamp: tag.wrapping_add(200),
            hop_latency: 200,
            queue_occupancy: tag % 24,
        }]
        .into(),
        export_ns: u64::from(tag) * 800,
    }
}

/// Pre-encode the datagram corpus the sender cycles through: 256
/// datagrams × 4 reports over a few hundred distinct flows.
fn build_corpus(seed: u64) -> Vec<Vec<u8>> {
    let mut out = Vec::with_capacity(256);
    let mut tag = seed as u32;
    for _ in 0..256 {
        let reports: Vec<TelemetryReport> = (0..REPORTS_PER_DATAGRAM)
            .map(|i| {
                tag = tag.wrapping_mul(1664525).wrapping_add(1013904223);
                report(tag ^ i as u32)
            })
            .collect();
        out.push(IntCollector::encode_stream(&reports).to_vec());
    }
    out
}

/// Connect [`SENDER_SOCKETS`] sockets (distinct source ports, so the
/// kernel's reuseport flow hash spreads them across the group) at `dst`.
fn make_senders(dst: SocketAddr) -> Vec<UdpSocket> {
    (0..SENDER_SOCKETS)
        .map(|_| {
            let s = UdpSocket::bind("127.0.0.1:0").expect("bind sender");
            s.connect(dst).expect("connect sender");
            s
        })
        .collect()
}

/// Blast the pre-chunked corpus for `window` using `sendmmsg` batches,
/// rotating sockets and chunks. Returns datagrams sent. Everything is
/// prepared by the caller — this loop allocates nothing, so it can run
/// inside the steady-state allocation gate.
fn blast(socks: &[UdpSocket], chunks: &[&[&[u8]]], window: Duration) -> u64 {
    let mut sent = 0u64;
    let mut sock_i = 0usize;
    let mut chunk_i = 0usize;
    let t0 = Instant::now();
    while t0.elapsed() < window {
        let sock = &socks[sock_i % socks.len()];
        let chunk = chunks[chunk_i % chunks.len()];
        match netio::send_batch(sock, chunk) {
            Ok(n) => sent += n as u64,
            // Loopback can refuse under pressure (ENOBUFS); yield and
            // keep going — receive-side counters stay truthful.
            Err(_) => std::thread::yield_now(),
        }
        sock_i += 1;
        chunk_i += 1;
    }
    sent
}

/// Drain every mailbox at batch granularity until `stop`, then drain
/// the leftovers. Counts events; recycles shells so the producers stay
/// pooled. This is the bench-side consumer — no per-event boxing, so
/// the measured loop is listener + mailbox + this.
fn run_consumer(mailboxes: &[Arc<EventMailbox>], stop: &AtomicBool, drained: &AtomicU64) {
    loop {
        let mut moved = false;
        for mb in mailboxes {
            if let Some(batch) = mb.pop() {
                drained.fetch_add(batch.len() as u64, Ordering::Relaxed);
                mb.recycle(batch);
                moved = true;
            }
        }
        if !moved {
            if stop.load(Ordering::Relaxed) && mailboxes.iter().all(|m| m.is_finished()) {
                return;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

struct WindowOutcome {
    stats: IngestStats,
    sent: u64,
    drained: u64,
    window: Duration,
    /// Allocations inside the measured window (sender + listeners +
    /// consumer — the whole process).
    acquisitions: u64,
}

/// One measured server run: warm up, then measure a send window with
/// all counters snapshotted at the window edges.
fn run_server_window(
    listeners: usize,
    corpus: &[Vec<u8>],
    warmup: Duration,
    window: Duration,
) -> WindowOutcome {
    let server = IngestServer::bind(
        ListenerConfig::new("127.0.0.1:0".parse().expect("addr"), WireProtocol::IntUdp)
            .listeners(listeners)
            .batch_events(256)
            .mailbox_batches(256)
            .read_timeout(Duration::from_millis(5)),
    )
    .expect("bind server");
    let dst = server.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    let drained = Arc::new(AtomicU64::new(0));
    let consumer = {
        let mailboxes: Vec<Arc<EventMailbox>> = server.mailboxes().to_vec();
        let stop = Arc::clone(&stop);
        let drained = Arc::clone(&drained);
        std::thread::spawn(move || run_consumer(&mailboxes, &stop, &drained))
    };

    // Prefill every mailbox pool to its capacity bound with shells big
    // enough for a full batch plus one datagram of overshoot, so the
    // measured window never grows a shell no matter how the scheduler
    // interleaves producers and the consumer.
    for mb in server.mailboxes() {
        let shells: Vec<Vec<LabeledEvent>> = (0..257)
            .map(|_| {
                let mut s = mb.acquire();
                s.reserve(256 + netio::MAX_BATCH * REPORTS_PER_DATAGRAM);
                s
            })
            .collect();
        for s in shells {
            mb.recycle(s);
        }
    }

    // All sender-side buffers exist before the measured region.
    let socks = make_senders(dst);
    let refs: Vec<&[u8]> = corpus.iter().map(Vec::as_slice).collect();
    let chunks: Vec<&[&[u8]]> = refs.chunks(netio::MAX_BATCH).collect();

    // Warmup: grow every pool to its high-water mark.
    blast(&socks, &chunks, warmup);
    std::thread::sleep(Duration::from_millis(30));

    let before = server.stats();
    let drained_before = drained.load(Ordering::Relaxed);
    let region = stats_alloc::Region::new();
    let t0 = Instant::now();
    let sent = blast(&socks, &chunks, window);
    let elapsed = t0.elapsed();
    let acquisitions = region.change().acquisitions();
    let after = server.stats();
    let drained_after = drained.load(Ordering::Relaxed);

    stop.store(true, Ordering::Relaxed);
    let final_stats = server.shutdown();
    let _ = consumer.join();
    let _ = final_stats;

    WindowOutcome {
        stats: IngestStats {
            datagrams: after.datagrams - before.datagrams,
            bytes: after.bytes - before.bytes,
            events_decoded: after.events_decoded - before.events_decoded,
            decode_errors: after.decode_errors - before.decode_errors,
            events_dropped: after.events_dropped - before.events_dropped,
            ..after
        },
        sent,
        drained: drained_after - drained_before,
        window: elapsed,
        acquisitions,
    }
}

/// The pre-server baseline: the shape a socket feed had before this
/// subsystem existed — a single listener, one `recv` syscall per
/// datagram, allocating decode (`ingest` returns a fresh vector), and
/// one bounded-channel send per event into a [`ChannelSource`] drained
/// event-by-event. No reuseport group, no syscall batching, no batch
/// mailboxes, no pooling.
fn run_baseline_window(corpus: &[Vec<u8>], warmup: Duration, window: Duration) -> WindowOutcome {
    let sock = netio::bind_udp_reuseport("127.0.0.1:0".parse().expect("addr")).expect("bind");
    sock.set_read_timeout(Some(Duration::from_millis(5)))
        .expect("timeout");
    let dst = sock.local_addr().expect("addr");
    let stop = Arc::new(AtomicBool::new(false));
    let datagrams = Arc::new(AtomicU64::new(0));
    let events = Arc::new(AtomicU64::new(0));
    let drained = Arc::new(AtomicU64::new(0));

    let (tx, mut source) = ChannelSource::bounded(1024);
    let listener = {
        let stop = Arc::clone(&stop);
        let datagrams = Arc::clone(&datagrams);
        let events = Arc::clone(&events);
        std::thread::spawn(move || {
            let mut buf = [0u8; netio::MAX_DATAGRAM];
            let mut collector = IntCollector::new();
            while !stop.load(Ordering::Relaxed) {
                let n = match sock.recv(&mut buf) {
                    Ok(n) => n,
                    Err(_) => continue, // timeout; check the stop flag
                };
                datagrams.fetch_add(1, Ordering::Relaxed);
                let reports = collector.ingest(&buf[..n]);
                events.fetch_add(reports.len() as u64, Ordering::Relaxed);
                for r in reports {
                    if tx.send(r.into()).is_err() {
                        return;
                    }
                }
            }
        })
    };
    let consumer = {
        let stop = Arc::clone(&stop);
        let drained = Arc::clone(&drained);
        std::thread::spawn(move || loop {
            match source.poll_event() {
                SourcePoll::Event(_) => {
                    drained.fetch_add(1, Ordering::Relaxed);
                }
                SourcePoll::Idle => {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                }
                SourcePoll::End => return,
            }
        })
    };

    let socks = make_senders(dst);
    let refs: Vec<&[u8]> = corpus.iter().map(Vec::as_slice).collect();
    let chunks: Vec<&[&[u8]]> = refs.chunks(netio::MAX_BATCH).collect();

    blast(&socks, &chunks, warmup);
    std::thread::sleep(Duration::from_millis(30));

    let dg_before = datagrams.load(Ordering::Relaxed);
    let ev_before = events.load(Ordering::Relaxed);
    let drained_before = drained.load(Ordering::Relaxed);
    let t0 = Instant::now();
    let sent = blast(&socks, &chunks, window);
    let elapsed = t0.elapsed();
    let dg = datagrams.load(Ordering::Relaxed) - dg_before;
    let ev = events.load(Ordering::Relaxed) - ev_before;
    let dr = drained.load(Ordering::Relaxed) - drained_before;

    stop.store(true, Ordering::Relaxed);
    let _ = listener.join();
    let _ = consumer.join();

    WindowOutcome {
        stats: IngestStats {
            datagrams: dg,
            events_decoded: ev,
            ..IngestStats::default()
        },
        sent,
        drained: dr,
        window: elapsed,
        acquisitions: 0,
    }
}

fn record(listeners: usize, batched: bool, w: &WindowOutcome) -> ThroughputRecord {
    let secs = w.window.as_secs_f64().max(1e-9);
    ThroughputRecord {
        listeners,
        batched,
        datagrams_sent: w.sent,
        datagrams_received: w.stats.datagrams,
        events_decoded: w.stats.events_decoded,
        events_drained: w.drained,
        decode_errors: w.stats.decode_errors,
        events_dropped: w.stats.events_dropped,
        window_ms: secs * 1e3,
        datagrams_per_s: w.stats.datagrams as f64 / secs,
        events_per_s: w.stats.events_decoded as f64 / secs,
    }
}

fn print_record(name: &str, r: &ThroughputRecord) {
    println!(
        "{:<14} {:>9} {:>12.0} {:>12.0} {:>10} {:>10}",
        name, r.listeners, r.datagrams_per_s, r.events_per_s, r.decode_errors, r.events_dropped,
    );
}

/// Slow-consumer audit: tiny mailboxes, nobody draining during the
/// blast, exact accounting afterwards.
fn run_slow_consumer(corpus: &[Vec<u8>], window: Duration) -> SlowConsumerRecord {
    let server = IngestServer::bind(
        ListenerConfig::new("127.0.0.1:0".parse().expect("addr"), WireProtocol::IntUdp)
            .listeners(2)
            .batch_events(64)
            .mailbox_batches(4)
            .read_timeout(Duration::from_millis(5)),
    )
    .expect("bind server");
    let dst = server.local_addr();
    let socks = make_senders(dst);
    let refs: Vec<&[u8]> = corpus.iter().map(Vec::as_slice).collect();
    let chunks: Vec<&[&[u8]]> = refs.chunks(netio::MAX_BATCH).collect();
    blast(&socks, &chunks, window);
    std::thread::sleep(Duration::from_millis(50));
    let mailboxes: Vec<Arc<EventMailbox>> = server.mailboxes().to_vec();
    let stats = server.shutdown();
    // Drain what survived the shedding.
    let mut drained = 0u64;
    for mb in &mailboxes {
        while let Some(batch) = mb.pop() {
            drained += batch.len() as u64;
        }
    }
    SlowConsumerRecord {
        events_decoded: stats.events_decoded,
        events_drained: drained,
        events_dropped: stats.events_dropped,
        accounted: drained + stats.events_dropped == stats.events_decoded,
    }
}

fn main() {
    let fast = flag_fast();
    let check = std::env::args().any(|a| a == "--check");
    let seed = arg_seed(20817);
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let warmup = Duration::from_millis(if fast { 80 } else { 150 });
    let window = Duration::from_millis(if fast { 200 } else { 500 });
    let corpus = build_corpus(seed);
    let corpus_bytes: usize = corpus.iter().map(Vec::len).sum();

    banner(&format!(
        "socket ingest: {} datagrams × {} reports in corpus ({} KiB), {} cpu(s), {}ms windows",
        corpus.len(),
        REPORTS_PER_DATAGRAM,
        corpus_bytes / 1024,
        host_cpus,
        window.as_millis(),
    ));
    println!(
        "{:<14} {:>9} {:>12} {:>12} {:>10} {:>10}",
        "path", "listeners", "datagrams/s", "events/s", "dec errs", "shed"
    );

    let base = run_baseline_window(&corpus, warmup, window);
    let baseline = record(1, false, &base);
    print_record("recv-per-dgram", &baseline);

    let mut sweep = Vec::new();
    let mut alloc = AllocRecord {
        datagrams: 0,
        acquisitions: 0,
        allocs_per_datagram: 0.0,
    };
    let mut at_4 = 0.0f64;
    for listeners in [1usize, 2, 4, 8] {
        let w = run_server_window(listeners, &corpus, warmup, window);
        let r = record(listeners, true, &w);
        print_record("recvmmsg-group", &r);
        if listeners == 4 {
            at_4 = r.datagrams_per_s;
            alloc = AllocRecord {
                datagrams: w.stats.datagrams,
                acquisitions: w.acquisitions,
                allocs_per_datagram: w.acquisitions as f64 / (w.stats.datagrams.max(1)) as f64,
            };
        }
        sweep.push(r);
    }
    let speedup = at_4 / baseline.datagrams_per_s.max(1e-9);
    println!("4-listener batched vs unbatched baseline: {speedup:.2}x");
    println!(
        "steady-state allocations at 4 listeners: {} over {} datagrams ({:.4}/datagram)",
        alloc.acquisitions, alloc.datagrams, alloc.allocs_per_datagram
    );

    let slow = run_slow_consumer(&corpus, Duration::from_millis(if fast { 100 } else { 200 }));
    println!(
        "slow consumer: {} decoded = {} drained + {} dropped (exact: {})",
        slow.events_decoded, slow.events_drained, slow.events_dropped, slow.accounted
    );

    let report = IngestBenchReport {
        seed,
        fast,
        host_cpus,
        baseline,
        sweep,
        speedup_vs_baseline_at_4: speedup,
        alloc,
        slow_consumer: slow,
    };
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write("BENCH_ingest.json", json) {
                eprintln!("warn: cannot write BENCH_ingest.json: {e}");
            } else {
                eprintln!("(wrote BENCH_ingest.json)");
            }
        }
        Err(e) => eprintln!("warn: cannot serialize report: {e}"),
    }

    if check {
        let mut failed = false;
        if report.speedup_vs_baseline_at_4 < 2.0 {
            eprintln!(
                "GATE FAIL: 4-listener batched ingest is only {:.2}x the unbatched baseline (need ≥2x)",
                report.speedup_vs_baseline_at_4
            );
            failed = true;
        }
        if report.alloc.acquisitions > 0 {
            eprintln!(
                "GATE FAIL: listener hot loop allocated {} times in steady state (expected 0)",
                report.alloc.acquisitions
            );
            failed = true;
        }
        if !report.slow_consumer.accounted {
            eprintln!(
                "GATE FAIL: slow-consumer accounting leaked events ({} decoded ≠ {} drained + {} dropped)",
                report.slow_consumer.events_decoded,
                report.slow_consumer.events_drained,
                report.slow_consumer.events_dropped
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!("check: all ingest gates passed ✓");
    }
}
