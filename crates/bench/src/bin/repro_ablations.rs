//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! 1. **Sampling-rate sweep** — how the sFlow period drives the
//!    probability of missing low-rate attack episodes entirely (the
//!    mechanism behind the paper's Fig. 5 SlowLoris blind spot).
//! 2. **Ensemble vs single models** — §IV-C.4's 2-of-3 vote on the
//!    zero-day attack.
//! 3. **Smoothing-window sweep** — the 3-prediction wait vs raw verdicts.
//! 4. **Flood flow structure** — spoofed-per-packet floods vs a fixed
//!    socket pool: why single-packet flows are invisible to a per-update
//!    prediction pipeline.
//! 5. **Congested testbed** — a 20 Mb/s bottleneck makes queue occupancy
//!    informative, recovering the paper's Table V importance ranking
//!    that a clean 100 Gb/s testbed cannot show (its §V admits this).
//!
//! Usage: `repro_ablations [--fast] [--seed N]`

use amlight_bench::capture::{ExperimentCapture, ExperimentConfig};
use amlight_bench::tables::table5_importance;
use amlight_bench::util::{arg_seed, banner, flag_fast, write_json};
use amlight_core::pipeline::{DetectionPipeline, PipelineConfig};
use amlight_core::testbed::{Testbed, TestbedConfig};
use amlight_core::trainer::{dataset_from_events, train_bundle, TrainerConfig};
use amlight_features::FeatureSet;
use amlight_ml::model::BinaryClassifier;
use amlight_ml::{GbtConfig, GradientBoost, MlpConfig, StandardScaler};
use amlight_net::TrafficClass;
use amlight_sflow::{SamplingMode, SflowAgent};
use amlight_traffic::attacks::SynFloodConfig;
use amlight_traffic::{AttackConfig, AttackKind, ReplayLibrary};
use serde_json::json;

fn main() {
    let fast = flag_fast();
    let seed = arg_seed(0xA317);

    sampling_sweep(fast, seed);
    let (bundle, test_lib, lab) = trained(fast, seed);
    ensemble_ablation(&bundle, &test_lib, &lab);
    smoothing_sweep(&bundle, &test_lib, &lab);
    flood_structure(&bundle, &lab, fast, seed);
    congested_importance(fast, seed);
}

/// Ablation 1: probability that an attack episode leaves zero samples,
/// per sampling period.
fn sampling_sweep(fast: bool, seed: u64) {
    banner("Ablation 1 — sFlow sampling period vs episode visibility");
    let trials: u64 = if fast { 5 } else { 20 };
    let attacks = AttackConfig::default();
    let mut rows = Vec::new();
    println!(
        "{:<10} {:>14} {:>22}",
        "period", "slowloris pkts", "episodes fully missed"
    );
    for period in [64u32, 256, 1024, 4096, 16384] {
        let mut missed = 0u64;
        let mut sampled_total = 0u64;
        for t in 0..trials {
            // A 60 s SlowLoris episode, sampled 1-in-period.
            let episode =
                attacks.generate(AttackKind::SlowLoris, 0, 60_000_000_000, seed ^ (t * 7919));
            let mut agent = SflowAgent::new(SamplingMode::RandomSkip { period }, seed ^ t);
            let samples = episode
                .iter()
                .filter(|r| agent.observe(r.ts_ns, &r.packet).is_some())
                .count() as u64;
            sampled_total += samples;
            if samples == 0 {
                missed += 1;
            }
        }
        println!(
            "1/{:<8} {:>14.1} {:>18}/{}",
            period,
            sampled_total as f64 / trials as f64,
            missed,
            trials
        );
        rows.push(json!({
            "period": period,
            "mean_samples": sampled_total as f64 / trials as f64,
            "missed_episodes": missed,
            "trials": trials,
        }));
    }
    println!("(at the production 1/4096 rate, a 60 s SlowLoris episode is usually invisible)");
    write_json("ablation_sampling", &rows);
}

type Trained = (amlight_core::trainer::ModelBundle, ReplayLibrary, Testbed);

fn trained(fast: bool, seed: u64) -> Trained {
    let lab = Testbed::new(TestbedConfig::default());
    let n = if fast { 400 } else { 2500 };
    let train_lib = ReplayLibrary::build(n * 2, seed ^ 0x77);
    let mut training = Vec::new();
    for class in TrafficClass::ALL {
        if class != TrafficClass::SlowLoris {
            training.extend(lab.replay_class(&train_lib, class));
        }
    }
    let raw = dataset_from_events(&training, FeatureSet::full());
    let bundle = train_bundle(
        &raw,
        FeatureSet::full(),
        &TrainerConfig {
            mlp: MlpConfig {
                epochs: if fast { 6 } else { 20 },
                batch_size: 256,
                ..MlpConfig::paper_mlp()
            },
            ..Default::default()
        },
    );
    (bundle, ReplayLibrary::build(n, seed ^ 0x6), lab)
}

/// Ablation 2: 2-of-3 ensemble vs each member on zero-day SlowLoris.
///
/// Also resolves the paper's GB/GNB ambiguity (§IV-C.3 says Gaussian
/// Naive Bayes; the Table VI note says "GB") by training a gradient-
/// boosted model and comparing both ensemble compositions.
fn ensemble_ablation(
    bundle: &amlight_core::trainer::ModelBundle,
    test_lib: &ReplayLibrary,
    lab: &Testbed,
) {
    banner("Ablation 2 — ensemble vote vs single models (zero-day SlowLoris)");
    let labeled = lab.replay_class(test_lib, TrafficClass::SlowLoris);
    let raw = dataset_from_events(&labeled, FeatureSet::full());
    let mut scaled = raw.clone();
    bundle.scaler.transform(&mut scaled);

    // The GB candidate, trained on the same (scaled) data the bundle saw.
    // Refit the scaler path: bundle models were trained on scaled rows.
    let train_lib = ReplayLibrary::build(raw.len().max(800) * 2, 0xA317 ^ 0x77);
    let mut train_labeled = Vec::new();
    for class in TrafficClass::ALL {
        if class != TrafficClass::SlowLoris {
            train_labeled.extend(lab.replay_class(&train_lib, class));
        }
    }
    let train_raw = dataset_from_events(&train_labeled, FeatureSet::full());
    let mut train_scaled = train_raw.clone();
    let scaler = StandardScaler::fit(&train_raw);
    scaler.transform(&mut train_scaled);
    let gb = GradientBoost::fit(&train_scaled, &GbtConfig::default(), 0xA317);
    let mut scaled_for_gb = raw.clone();
    scaler.transform(&mut scaled_for_gb);

    let mut results = Vec::new();
    for (name, acc) in [
        ("MLP", bundle.mlp.evaluate(&scaled).accuracy()),
        ("RF", bundle.forest.evaluate(&scaled).accuracy()),
        ("GNB", bundle.gnb.evaluate(&scaled).accuracy()),
        ("GB", gb.evaluate(&scaled_for_gb).accuracy()),
    ] {
        println!("  {:<10} accuracy {:.4}", name, acc);
        results.push(json!({ "model": name, "accuracy": acc }));
    }
    let vote3 = |a: bool, b: bool, c: bool| (u8::from(a) + u8::from(b) + u8::from(c)) >= 2;
    let mut gnb_ens_ok = 0usize;
    let mut gb_ens_ok = 0usize;
    for i in 0..raw.len() {
        let votes = bundle.votes(raw.row(i));
        if vote3(votes[0], votes[1], votes[2]) {
            gnb_ens_ok += 1;
        }
        if vote3(votes[0], votes[1], gb.predict_one(scaled_for_gb.row(i))) {
            gb_ens_ok += 1;
        }
    }
    let gnb_ens = gnb_ens_ok as f64 / raw.len() as f64;
    let gb_ens = gb_ens_ok as f64 / raw.len() as f64;
    println!(
        "  {:<10} accuracy {:.4}  (MLP+RF+GNB, 2-of-3)",
        "Ens/GNB", gnb_ens
    );
    println!(
        "  {:<10} accuracy {:.4}  (MLP+RF+GB,  2-of-3)",
        "Ens/GB", gb_ens
    );
    println!("  (either reading of the paper's \"GB\" yields a working ensemble)");
    results.push(json!({ "model": "Ensemble(MLP,RF,GNB)", "accuracy": gnb_ens }));
    results.push(json!({ "model": "Ensemble(MLP,RF,GB)", "accuracy": gb_ens }));
    write_json("ablation_ensemble", &results);
}

/// Ablation 3: smoothing window sweep on SlowLoris and benign replays.
fn smoothing_sweep(
    bundle: &amlight_core::trainer::ModelBundle,
    test_lib: &ReplayLibrary,
    lab: &Testbed,
) {
    banner("Ablation 3 — smoothing window (paper uses 3)");
    println!(
        "{:<8} {:>18} {:>18} {:>14}",
        "window", "slowloris acc", "benign acc", "pending frac"
    );
    let mut rows = Vec::new();
    for window in [1usize, 3, 5, 7] {
        let cfg = PipelineConfig {
            smoothing_window: window,
            ..PipelineConfig::rust_pace()
        };
        let mut accs = Vec::new();
        let mut pend_frac = 0.0;
        for class in [TrafficClass::SlowLoris, TrafficClass::Benign] {
            let labeled = lab.replay_class(test_lib, class);
            let mut pipe = DetectionPipeline::new(bundle.clone(), cfg);
            let report = pipe.run_sync(&labeled);
            let s = report.class_summary(class);
            accs.push(s.accuracy());
            pend_frac = s.pending as f64 / (s.pending + s.predicted).max(1) as f64;
        }
        println!(
            "{:<8} {:>18.4} {:>18.4} {:>14.3}",
            window, accs[0], accs[1], pend_frac
        );
        rows.push(json!({
            "window": window,
            "slowloris_accuracy": accs[0],
            "benign_accuracy": accs[1],
        }));
    }
    write_json("ablation_smoothing", &rows);
}

/// Ablation 4: spoofed flood vs socket-pool flood through the pipeline.
fn flood_structure(
    bundle: &amlight_core::trainer::ModelBundle,
    lab: &Testbed,
    fast: bool,
    seed: u64,
) {
    banner(
        "Ablation 4 — flood flow structure (per-update pipelines cannot see single-packet flows)",
    );
    let n: u64 = if fast { 2_000 } else { 10_000 };
    let mut rows = Vec::new();
    for (name, pool) in [
        ("socket-pool-16", Some(16usize)),
        ("spoofed-per-packet", None),
    ] {
        let attacks = AttackConfig {
            syn_flood: SynFloodConfig {
                rate_pps: 5_000.0,
                spoof_sources: pool.is_none(),
                socket_pool: pool,
            },
            ..Default::default()
        };
        let trace = attacks.generate(AttackKind::SynFlood, 0, n * 200_000, seed ^ 0x4);
        let labeled = lab.run_labeled(&trace);
        let mut pipe = DetectionPipeline::new(bundle.clone(), PipelineConfig::rust_pace());
        let report = pipe.run_sync(&labeled);
        let s = report.class_summary(TrafficClass::SynFlood);
        println!(
            "  {:<20} {:>7} packets → {:>6} ML predictions (accuracy {:.4}), {:>3} guard alerts",
            name,
            labeled.len(),
            s.predicted + s.pending,
            s.accuracy(),
            report.flood_alerts.len(),
        );
        rows.push(json!({
            "flood": name,
            "packets": labeled.len(),
            "predictions": s.predicted + s.pending,
            "final_accuracy": s.accuracy(),
            "guard_alerts": report.flood_alerts.len(),
        }));
    }
    println!("  (a fully spoofed flood is every-packet-a-new-flow: the ML path sees zero updates,");
    println!("   but the new-flow-rate guard raises alerts on exactly that signature)");
    write_json("ablation_flood_structure", &rows);
}

/// Ablation 5: congested bottleneck — queue occupancy becomes a top
/// feature, as in the paper's Table V.
fn congested_importance(fast: bool, seed: u64) {
    banner("Ablation 5 — queue occupancy importance, clean vs congested testbed");
    for (name, mut cfg) in [
        ("clean 100 Gb/s", ExperimentConfig::default()),
        ("congested 20 Mb/s", ExperimentConfig::congested()),
    ] {
        if fast {
            cfg.day_len_s = 4;
        }
        cfg.seed = seed;
        let cap = ExperimentCapture::generate(cfg);
        let rows = table5_importance(&cap, fast);
        let rf = &rows[0];
        let queue_rank = rf
            .top
            .iter()
            .position(|(n, _)| n.contains("Queue"))
            .map(|p| format!("#{}", p + 1))
            .unwrap_or_else(|| "not in top-5".into());
        println!(
            "  {:<20} RF top-5: {:?}",
            name,
            rf.top.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>()
        );
        println!("  {:<20} queue-occupancy rank: {}", "", queue_rank);
        write_json(
            &format!(
                "ablation_congestion_{}",
                if name.starts_with("clean") {
                    "clean"
                } else {
                    "congested"
                }
            ),
            &rows,
        );
    }
    println!("  (the paper's §V admits its 100 Gb/s testbed rarely moved queue occupancy;");
    println!("   under a real bottleneck the feature earns its Table V ranking)");
}
