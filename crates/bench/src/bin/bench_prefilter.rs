//! Triage pre-filter payoff: what the sketch-based gate in
//! `features::triage` buys the Predictor under the paper's Table I
//! flood episodes.
//!
//! Three runs of the threaded pipeline over the same labeled capture —
//! `--prefilter off`, `shadow`, and `on` — twice:
//!
//! 1. **Flood replay**: the capture restricted to the Table I SYN-flood
//!    episode windows (benign background included), the regime the
//!    pre-filter exists for. This is where the acceptance gates bind:
//!    `on` must cut predictor-evaluated updates ≥5× versus `off` while
//!    flow-level attack recall (ground-truth attack flows that receive
//!    a final Attack verdict) stays within 0.005.
//! 2. **Day replay**: the full two-day capture, for context — scans,
//!    SlowLoris, and long benign stretches where the gate should stay
//!    out of the way.
//!
//! A final audit replays the flood updates through a bare
//! `FlowTable::apply` + `TriageStage::assess` loop inside a
//! [`stats_alloc::Region`]: after warm-up the triage path must not
//! allocate at all (the R6 static-allocation invariant, measured).
//!
//! Writes `BENCH_prefilter.json` at the repo root. `--check` turns the
//! three gates into process failures.
//!
//! Usage: `bench_prefilter [--fast] [--seed N] [--check]`

use amlight_bench::util::{arg_seed, banner, flag_fast};
use amlight_core::event::Telemetry;
use amlight_core::runtime::ThreadedPipeline;
use amlight_core::source::ReplaySource;
use amlight_core::testbed::{Testbed, TestbedConfig};
use amlight_core::trainer::{dataset_from_events, train_bundle, ModelBundle, TrainerConfig};
use amlight_features::{
    FeatureSet, FlowTable, FlowTableConfig, PrefilterMode, TriageConfig, TriageStage,
};
use amlight_int::TelemetryReport;
use amlight_ml::{MlpConfig, RandomForestConfig};
use amlight_net::{FlowKey, TrafficClass};
use amlight_traffic::{AttackKind, TrafficMix, TrafficMixConfig};
use serde::Serialize;
use std::collections::HashSet;
use std::time::Instant;

/// Counting allocator for the zero-steady-state-allocation gate.
#[global_allocator]
static ALLOC: stats_alloc::StatsAlloc = stats_alloc::StatsAlloc;

/// One pipeline run of one labeled replay at one pre-filter mode.
#[derive(Serialize, Clone, Copy)]
struct ModeRecord {
    mode: &'static str,
    events_in: u64,
    flows_created: u64,
    /// Predictor-evaluated flow updates — the quantity the gate cuts.
    predictions: u64,
    forwarded: u64,
    deferred: u64,
    dropped: u64,
    shed: u64,
    /// Updates the triage scorer graded (0 when the stage is off).
    scored: u64,
    alarm_windows: u64,
    wall_ms: f64,
    events_per_s: f64,
    /// Wall-clock registration→prediction latency over evaluated updates.
    mean_latency_us: f64,
    max_latency_us: f64,
    /// Per-update recall over the updates the Predictor evaluated.
    update_recall: f64,
    false_alarm_rate: f64,
    /// Flow-level detection: ground-truth attack flows seen / flagged.
    attack_flows: u64,
    attack_flows_flagged: u64,
    flow_recall: f64,
}

#[derive(Serialize)]
struct AllocRecord {
    /// Updates assessed during the measured steady-state pass.
    events: u64,
    acquisitions: u64,
    allocs_per_event: f64,
}

#[derive(Serialize)]
struct PrefilterBenchReport {
    seed: u64,
    fast: bool,
    host_cpus: usize,
    /// Capture restricted to Table I SYN-flood episode windows.
    flood: Vec<ModeRecord>,
    /// The full two-day Table I capture.
    day: Vec<ModeRecord>,
    /// flood off ÷ flood on predictor-evaluated updates.
    reduction_under_flood: f64,
    /// Flow-level attack recall on the flood replay, off vs on.
    recall_off: f64,
    recall_on: f64,
    recall_delta: f64,
    alloc: AllocRecord,
}

/// Run one labeled replay through the threaded pipeline at `mode` and
/// score it against the capture's ground-truth attack flows.
fn run_mode(
    bundle: &ModelBundle,
    labeled: &[(TelemetryReport, TrafficClass)],
    attack_flows: &HashSet<FlowKey>,
    mode: PrefilterMode,
) -> ModeRecord {
    let pipe = ThreadedPipeline::new(bundle.clone())
        .with_shards(1)
        .with_prefilter(mode);
    let t0 = Instant::now();
    let stats = pipe
        .start(ReplaySource::from_labeled(labeled))
        .join()
        .expect("no module thread panicked");
    let wall = t0.elapsed().as_secs_f64();

    let seqs = pipe.database().verdict_sequences();
    let flagged = attack_flows
        .iter()
        .filter(|key| {
            seqs.get(key)
                .is_some_and(|seq| seq.contains(&Some(true)))
        })
        .count() as u64;
    let t = stats.triage;
    ModeRecord {
        mode: mode.name(),
        events_in: stats.events_in,
        flows_created: stats.flows_created,
        predictions: stats.predictions,
        forwarded: t.forwarded,
        deferred: t.deferred,
        dropped: t.dropped,
        shed: t.shed,
        scored: t.would.scored,
        alarm_windows: t.would.alarm_windows,
        wall_ms: wall * 1e3,
        events_per_s: stats.events_in as f64 / wall.max(1e-9),
        mean_latency_us: stats.mean_latency_us,
        max_latency_us: stats.max_latency_us,
        update_recall: stats.labeled.recall(),
        false_alarm_rate: stats.labeled.false_alarm_rate(),
        attack_flows: attack_flows.len() as u64,
        attack_flows_flagged: flagged,
        flow_recall: if attack_flows.is_empty() {
            0.0
        } else {
            flagged as f64 / attack_flows.len() as f64
        },
    }
}

fn print_record(r: &ModeRecord) {
    println!(
        "{:<8} {:>9} {:>11} {:>9} {:>9} {:>9} {:>7} {:>10.0} {:>8.3} {:>8.3}",
        r.mode,
        r.events_in,
        r.predictions,
        r.forwarded,
        r.deferred,
        r.dropped,
        r.shed,
        r.events_per_s,
        r.update_recall,
        r.flow_recall,
    );
}

fn run_replay(
    name: &str,
    bundle: &ModelBundle,
    labeled: &[(TelemetryReport, TrafficClass)],
) -> Vec<ModeRecord> {
    let attack_flows: HashSet<FlowKey> = labeled
        .iter()
        .filter(|(_, c)| *c != TrafficClass::Benign)
        .map(|(r, _)| r.flow)
        .collect();
    let attack_events = labeled
        .iter()
        .filter(|(_, c)| *c != TrafficClass::Benign)
        .count();
    banner(&format!(
        "{name}: {} events ({} attack, {} attack flows)",
        labeled.len(),
        attack_events,
        attack_flows.len()
    ));
    println!(
        "{:<8} {:>9} {:>11} {:>9} {:>9} {:>9} {:>7} {:>10} {:>8} {:>8}",
        "mode",
        "events",
        "predicted",
        "forward",
        "defer",
        "drop",
        "shed",
        "events/s",
        "recall",
        "flows",
    );
    [PrefilterMode::Off, PrefilterMode::Shadow, PrefilterMode::On]
        .iter()
        .map(|&mode| {
            let r = run_mode(bundle, labeled, &attack_flows, mode);
            print_record(&r);
            r
        })
        .collect()
}

/// Steady-state allocation audit of the bare triage path: flow-table
/// update + triage assessment per event, nothing else. The first pass
/// creates every flow and settles the sketches; the measured second
/// pass must allocate exactly nothing.
fn alloc_audit(labeled: &[(TelemetryReport, TrafficClass)]) -> AllocRecord {
    let updates: Vec<_> = labeled.iter().map(|(r, _)| r.flow_update()).collect();
    let mut table = FlowTable::new(FlowTableConfig::default());
    let mut stage = TriageStage::new(TriageConfig::default());
    for u in &updates {
        let (_, rec) = table.apply(u);
        std::hint::black_box(stage.assess(u, rec));
    }
    let region = stats_alloc::Region::new();
    for u in &updates {
        let (_, rec) = table.apply(u);
        std::hint::black_box(stage.assess(u, rec));
    }
    let acquisitions = region.change().acquisitions();
    AllocRecord {
        events: updates.len() as u64,
        acquisitions,
        allocs_per_event: acquisitions as f64 / (updates.len().max(1)) as f64,
    }
}

fn main() {
    let fast = flag_fast();
    let check = std::env::args().any(|a| a == "--check");
    let seed = arg_seed(20825);
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let day_len = if fast { 4 } else { 10 };
    let lab = Testbed::new(TestbedConfig::default());

    // Offline phase: train on one Table I capture, replay a fresh one.
    let train_labeled = lab
        .run_labeled(&TrafficMix::new(TrafficMixConfig::paper_capture(day_len, seed)).generate());
    let bundle = train_bundle(
        &dataset_from_events(&train_labeled, FeatureSet::full()),
        FeatureSet::full(),
        &TrainerConfig {
            mlp: MlpConfig {
                epochs: if fast { 4 } else { 10 },
                ..MlpConfig::paper_mlp()
            },
            forest: RandomForestConfig {
                n_trees: if fast { 10 } else { 30 },
                ..RandomForestConfig::fast()
            },
            ..Default::default()
        },
    );

    let test_mix = TrafficMix::new(TrafficMixConfig::paper_capture(day_len, seed ^ 0x5F10));
    let day_labeled = lab.run_labeled(&test_mix.generate());
    // The flood replay: only events inside a SYN-flood episode window —
    // flood packets plus whatever benign background overlaps them.
    let flood_labeled: Vec<(TelemetryReport, TrafficClass)> = day_labeled
        .iter()
        .filter(|(r, _)| test_mix.schedule().active_at(r.export_ns) == Some(AttackKind::SynFlood))
        .cloned()
        .collect();

    let flood = run_replay("flood episodes", &bundle, &flood_labeled);
    let day = run_replay("full day", &bundle, &day_labeled);

    let (off, on) = (flood[0], flood[2]);
    let reduction = off.predictions as f64 / (on.predictions.max(1)) as f64;
    let recall_delta = (off.flow_recall - on.flow_recall).abs();
    println!(
        "\nflood: {} → {} predictor-evaluated updates ({reduction:.2}x cut), \
         flow recall {:.4} → {:.4} (Δ {recall_delta:.4})",
        off.predictions, on.predictions, off.flow_recall, on.flow_recall
    );

    let alloc = alloc_audit(&flood_labeled);
    println!(
        "triage steady state: {} allocations over {} updates ({:.4}/update)",
        alloc.acquisitions, alloc.events, alloc.allocs_per_event
    );

    let report = PrefilterBenchReport {
        seed,
        fast,
        host_cpus,
        flood,
        day,
        reduction_under_flood: reduction,
        recall_off: off.flow_recall,
        recall_on: on.flow_recall,
        recall_delta,
        alloc,
    };
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write("BENCH_prefilter.json", json) {
                eprintln!("warn: cannot write BENCH_prefilter.json: {e}");
            } else {
                eprintln!("(wrote BENCH_prefilter.json)");
            }
        }
        Err(e) => eprintln!("warn: cannot serialize report: {e}"),
    }

    if check {
        let mut failed = false;
        if report.reduction_under_flood < 5.0 {
            eprintln!(
                "GATE FAIL: pre-filter cut predictor load only {:.2}x under flood (need ≥5x)",
                report.reduction_under_flood
            );
            failed = true;
        }
        if report.recall_delta > 0.005 {
            eprintln!(
                "GATE FAIL: gating moved flow-level attack recall by {:.4} (allowed ≤0.005)",
                report.recall_delta
            );
            failed = true;
        }
        if report.alloc.acquisitions > 0 {
            eprintln!(
                "GATE FAIL: triage path allocated {} times in steady state (expected 0)",
                report.alloc.acquisitions
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!("check: all pre-filter gates passed ✓");
    }
}
